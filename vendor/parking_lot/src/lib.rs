//! Offline stand-in for the `parking_lot` locks this workspace uses.
//!
//! Backed by `std::sync::{Mutex, RwLock}`; the only API difference that
//! matters to callers is preserved: `lock()`, `read()` and `write()` return
//! guards directly instead of a poison `Result` (a poisoned std lock is
//! recovered transparently, matching parking_lot's no-poisoning semantics).

use std::fmt;
use std::sync::{self, PoisonError, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose guard methods never return poison errors.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guard methods never return poison errors.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert!(m.try_lock().is_some());
    }
}
