//! Offline stand-in for the slice of the `criterion` API the `h2tap-bench`
//! benches use: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `measurement_time`, and `Bencher::iter`.
//!
//! Statistics are deliberately simple — each `bench_function` runs the
//! closure `sample_size` times and reports the mean wall-clock time per
//! iteration. When invoked with `--test` (which `cargo test` passes to
//! harness-less bench targets) every benchmark runs exactly once, mirroring
//! real criterion's smoke-test mode.

use std::time::{Duration, Instant};

/// Entry point handed to every bench function by [`criterion_group!`].
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { test_mode: std::env::args().any(|a| a == "--test") }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, test_mode: self.test_mode }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets how many samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in always runs exactly
    /// `sample_size` iterations regardless of target measurement time.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher { samples, elapsed: Duration::ZERO, iterations: 0 };
        f(&mut bencher);
        let mean = if bencher.iterations > 0 { bencher.elapsed / bencher.iterations as u32 } else { Duration::ZERO };
        println!("{}/{}: {} iterations, mean {:?}/iter", self.name, id, bencher.iterations, mean);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.samples;
    }
}

/// Bundles bench functions into a single group runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a harness-less bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure_sample_size_times() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("g");
        let mut count = 0;
        group.sample_size(7).bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 7);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut count = 0;
        group.sample_size(50).bench_function("count", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }
}
