//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! This workspace builds in an environment without access to a crates
//! registry, and nothing in it actually serialises data — the
//! `#[derive(Serialize, Deserialize)]` annotations on config and stats types
//! only document intent (and keep the door open for a real `serde` swap-in).
//! The derives therefore expand to nothing; swapping the `vendor/serde*`
//! path dependencies for the real crates re-enables full codegen without any
//! source change.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
