//! Offline stand-in for the `crossbeam-channel` API this workspace uses:
//! bounded multi-producer multi-consumer channels with blocking sends
//! (back-pressure), non-blocking and timed receives, and disconnect
//! detection when all peers on the other side have been dropped.
//!
//! Implemented over `Mutex` + `Condvar`. The fairness and lock-free
//! performance properties of the real crate are not reproduced — only the
//! semantics the Caldera OLTP fabric and runtime rely on.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the undelivered message back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a bounded channel with room for `capacity` in-flight messages.
/// A capacity of zero is treated as one (the rendezvous mode of the real
/// crate is not needed here).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while the channel is full. Fails only when every
    /// receiver has been dropped, returning the message.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    fn pop(&self, state: &mut State<T>) -> Option<T> {
        let msg = state.queue.pop_front();
        if msg.is_some() {
            self.shared.not_full.notify_one();
        }
        msg
    }

    /// Receives a message, blocking until one arrives or every sender is
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = self.pop(&mut state) {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        match self.pop(&mut state) {
            Some(msg) => Ok(msg),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking receive that gives up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = self.pop(&mut state) {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _timed_out) =
                self.shared.not_empty.wait_timeout(state, remaining).unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_reports_disconnect_after_drain() {
        let (tx, rx) = bounded(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_when_idle() {
        let (_tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn full_channel_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let producer = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        producer.join().unwrap();
    }

    #[test]
    fn cross_thread_round_trip() {
        let (tx, rx) = bounded(8);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        while let Ok(v) = rx.recv() {
            sum += v;
        }
        producer.join().unwrap();
        assert_eq!(sum, (0..100).sum::<i32>());
    }
}
