//! Offline stand-in for the `serde` crate surface this workspace uses.
//!
//! The workspace annotates plain-data types with
//! `#[derive(Serialize, Deserialize)]` but never serialises anything, so the
//! traits here are empty markers and the derives (re-exported from the
//! sibling `serde_derive` shim) expand to nothing. Replacing the two
//! `vendor/serde*` path dependencies with the real crates restores full
//! serde behaviour with no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
