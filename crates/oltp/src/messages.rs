//! The OLTP message protocol.
//!
//! Caldera's transaction runtime never synchronises through shared memory:
//! when a transaction hosted on one worker (the *client*) needs a record
//! owned by another worker (the *server*), the client sends a lock-request
//! message, the server acquires the lock on its thread-private lock table and
//! replies with a grant carrying the record's location ("rather than shipping
//! the whole record ... sending only the record pointer"), and at commit or
//! abort the client sends an explicit release for every remote record it
//! acquired.

use h2tap_common::{RecordId, TableId};

/// Identifies a transaction for lock bookkeeping: the worker hosting it plus
/// a worker-local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnToken {
    /// Index of the hosting (client) worker.
    pub client: u32,
    /// Client-local transaction sequence number.
    pub seq: u64,
}

impl TxnToken {
    /// Creates a token.
    pub fn new(client: u32, seq: u64) -> Self {
        Self { client, seq }
    }
}

/// Lock modes of the per-worker two-phase-locking tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Messages exchanged between OLTP workers.
#[derive(Debug, Clone)]
pub enum OltpMsg {
    /// Client asks the owner of a partition to lock the record with primary
    /// key `key` in `table` on behalf of `txn`. The server performs the index
    /// lookup, so the client never touches a remote index.
    LockRequest {
        /// Requesting transaction.
        txn: TxnToken,
        /// Table the record belongs to.
        table: TableId,
        /// Primary key of the record.
        key: i64,
        /// Requested mode.
        mode: LockMode,
    },
    /// Server grants the lock and returns the record's location so the client
    /// can access shared memory directly.
    LockGrant {
        /// Transaction the grant is for.
        txn: TxnToken,
        /// Location of the locked record.
        rid: RecordId,
        /// Key that was requested (echoed back for client bookkeeping).
        key: i64,
    },
    /// Server refuses the lock (conflict or unknown key); the transaction
    /// aborts and may retry. Caldera's prototype uses no-wait conflict
    /// resolution for remote locks, which keeps the protocol deadlock-free.
    LockDenied {
        /// Transaction the denial is for.
        txn: TxnToken,
        /// Key that was requested.
        key: i64,
        /// Whether the key simply does not exist (as opposed to a conflict).
        unknown_key: bool,
    },
    /// Client releases all remote locks it holds on the server's partition
    /// (sent once per server at commit or abort time).
    Release {
        /// Transaction releasing its locks.
        txn: TxnToken,
        /// Records to unlock.
        rids: Vec<RecordId>,
    },
    /// Orderly shutdown request from the runtime.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::PartitionId;

    #[test]
    fn tokens_are_ordered_by_client_then_seq() {
        let a = TxnToken::new(0, 5);
        let b = TxnToken::new(0, 6);
        let c = TxnToken::new(1, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn messages_are_cloneable_for_fanout() {
        let msg =
            OltpMsg::Release { txn: TxnToken::new(2, 9), rids: vec![RecordId::new(PartitionId(1), TableId(0), 3)] };
        let copy = msg.clone();
        match copy {
            OltpMsg::Release { txn, rids } => {
                assert_eq!(txn.seq, 9);
                assert_eq!(rids.len(), 1);
            }
            _ => panic!("unexpected variant"),
        }
    }
}
