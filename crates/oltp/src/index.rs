//! Thread-private primary-key indexes.
//!
//! "Each thread uses ... a primary-key index to assist in record lookup.
//! Unlike data, which is shared across archipelagos, the lock tables and
//! indices are private to each thread ... and do not belong to the snapshot
//! hierarchy. Thus, they refer to logical records whose physical location
//! changes during copy-on-write operations."
//!
//! The index therefore maps a primary key to a *logical* row slot within the
//! owning partition's table fragment — never to a page pointer.

use h2tap_common::{H2Error, PartitionId, RecordId, Result, TableId};
use std::collections::{BTreeMap, HashMap};

/// The primary-key indexes of one partition (one map per table).
#[derive(Debug, Default, Clone)]
pub struct PartitionIndex {
    tables: HashMap<TableId, BTreeMap<i64, u64>>,
}

impl PartitionIndex {
    /// Creates an empty index set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `key -> row` for `table`, replacing any previous mapping.
    pub fn insert(&mut self, table: TableId, key: i64, row: u64) {
        self.tables.entry(table).or_default().insert(key, row);
    }

    /// Looks up the row of `key` in `table`.
    pub fn lookup(&self, table: TableId, key: i64) -> Option<u64> {
        self.tables.get(&table).and_then(|m| m.get(&key)).copied()
    }

    /// Looks up a key and converts it to a [`RecordId`] in `partition`.
    pub fn lookup_rid(&self, partition: PartitionId, table: TableId, key: i64) -> Result<RecordId> {
        self.lookup(table, key)
            .map(|row| RecordId::new(partition, table, row))
            .ok_or_else(|| H2Error::UnknownRecord(format!("key {key} in {table} of {partition}")))
    }

    /// Removes a key (used only by tests and future delete support).
    pub fn remove(&mut self, table: TableId, key: i64) -> Option<u64> {
        self.tables.get_mut(&table).and_then(|m| m.remove(&key))
    }

    /// Number of keys indexed for `table`.
    pub fn key_count(&self, table: TableId) -> usize {
        self.tables.get(&table).map(|m| m.len()).unwrap_or(0)
    }

    /// Iterates `(key, row)` pairs of `table` in key order.
    pub fn iter_table(&self, table: TableId) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.tables.get(&table).into_iter().flat_map(|m| m.iter().map(|(k, v)| (*k, *v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut idx = PartitionIndex::new();
        let t = TableId(3);
        idx.insert(t, 10, 0);
        idx.insert(t, 20, 1);
        assert_eq!(idx.lookup(t, 10), Some(0));
        assert_eq!(idx.lookup(t, 30), None);
        assert_eq!(idx.key_count(t), 2);
        assert_eq!(idx.remove(t, 10), Some(0));
        assert_eq!(idx.lookup(t, 10), None);
    }

    #[test]
    fn lookup_rid_builds_record_ids() {
        let mut idx = PartitionIndex::new();
        let t = TableId(1);
        idx.insert(t, 7, 42);
        let rid = idx.lookup_rid(PartitionId(5), t, 7).unwrap();
        assert_eq!(rid, RecordId::new(PartitionId(5), t, 42));
        assert!(idx.lookup_rid(PartitionId(5), t, 8).is_err());
    }

    #[test]
    fn keys_are_per_table() {
        let mut idx = PartitionIndex::new();
        idx.insert(TableId(1), 5, 0);
        idx.insert(TableId(2), 5, 9);
        assert_eq!(idx.lookup(TableId(1), 5), Some(0));
        assert_eq!(idx.lookup(TableId(2), 5), Some(9));
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut idx = PartitionIndex::new();
        let t = TableId(0);
        for k in [5i64, 1, 3] {
            idx.insert(t, k, k as u64);
        }
        let keys: Vec<i64> = idx.iter_table(t).map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }
}
