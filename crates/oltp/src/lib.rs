//! Caldera's OLTP runtime: message-passing transactions without cache
//! coherence.
//!
//! "Caldera scales OLTP workloads within the task-parallel archipelago by
//! using message passing-based parallelism (that relies on fast core-to-core
//! messaging) rather than shared-memory parallelism (that relies on cache
//! coherence)." Concretely:
//!
//! * one worker thread per core, each owning one horizontal partition, its
//!   [`locktable::LockTable`] and its [`index::PartitionIndex`] ([`worker`]),
//! * transactions are hosted by a client worker and programmed against a
//!   [`txn::TxnCtx`]: local records are locked by direct function calls,
//!   remote records through the lock-request / grant / release protocol of
//!   [`messages`],
//! * conflicts use no-wait resolution (abort and retry), which keeps the
//!   protocol deadlock-free; all writes are deferred to commit so aborts need
//!   no undo,
//! * the explicit cache write-back points of the paper (server before
//!   granting, client before releasing) are tracked as coherence events so
//!   experiments can report them; their correctness is validated against the
//!   `h2tap-mpmsg` software cache model in the integration tests.
//!
//! [`runtime::OltpRuntime`] spawns the fleet, accepts submitted transactions
//! and drives benchmark windows for the evaluation figures.

pub mod index;
pub mod locktable;
pub mod messages;
pub mod runtime;
pub mod txn;
pub mod worker;

pub use index::PartitionIndex;
pub use locktable::LockTable;
pub use messages::{LockMode, OltpMsg, TxnToken};
pub use runtime::{
    BenchmarkWindow, ModuloPartitioner, OltpConfig, OltpRuntime, OltpStats, Partitioner, PartitionerKind,
    StridePartitioner, TxnGenerator, TxnProc, WorkerCounters,
};
pub use txn::TxnCtx;
pub use worker::TxnOutcome;

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{AttrType, PartitionId, Schema, TableId, Value};
    use h2tap_storage::{Database, Layout};
    use std::sync::Arc;
    use std::time::Duration;

    /// Builds a database with `workers` partitions, one table of two int64
    /// columns (key, balance), `rows_per_partition` rows per partition keyed
    /// round-robin (key % workers == partition), and the matching indexes.
    fn setup(workers: usize, rows_per_partition: u64) -> (Arc<Database>, TableId, Vec<PartitionIndex>) {
        let db = Database::new(workers);
        let table = db.create_table("accounts", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        let mut indexes = vec![PartitionIndex::new(); workers];
        for (p, index) in indexes.iter_mut().enumerate() {
            for i in 0..rows_per_partition {
                let key = (i * workers as u64 + p as u64) as i64;
                let rid = db.insert(PartitionId(p as u32), table, &[Value::Int64(key), Value::Int64(100)]).unwrap();
                index.insert(table, key, rid.row);
            }
        }
        (db, table, indexes)
    }

    fn runtime(workers: usize, rows: u64) -> (OltpRuntime, TableId) {
        let (db, table, indexes) = setup(workers, rows);
        let rt = OltpRuntime::start(
            db,
            OltpConfig { workers, ..OltpConfig::default() },
            Arc::new(ModuloPartitioner::new(workers)),
            indexes,
            None,
        )
        .unwrap();
        (rt, table)
    }

    #[test]
    fn local_read_and_update_commit() {
        let (rt, table) = runtime(2, 16);
        // Key 0 lives in partition 0; run the transaction there.
        rt.execute(
            PartitionId(0),
            Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(table, 0)?;
                rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 11);
                ctx.update(table, 0, rec)
            }),
        )
        .unwrap();
        // Verify from another transaction.
        rt.execute(
            PartitionId(0),
            Arc::new(move |ctx| {
                let rec = ctx.read(table, 0)?;
                assert_eq!(rec[1], Value::Int64(111));
                Ok(())
            }),
        )
        .unwrap();
        let stats = rt.shutdown();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.remote_requests, 0);
    }

    #[test]
    fn remote_read_uses_the_message_protocol() {
        let (rt, table) = runtime(2, 16);
        // Key 1 lives in partition 1; host the transaction on partition 0.
        rt.execute(
            PartitionId(0),
            Arc::new(move |ctx| {
                let rec = ctx.read(table, 1)?;
                assert_eq!(rec[0], Value::Int64(1));
                assert_eq!(ctx.remote_lock_count(), 1);
                Ok(())
            }),
        )
        .unwrap();
        let stats = rt.shutdown();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.remote_requests, 1);
        assert!(stats.messages >= 2, "request plus release should flow through the fabric");
    }

    #[test]
    fn remote_update_is_visible_after_commit() {
        let (rt, table) = runtime(4, 8);
        rt.execute(
            PartitionId(0),
            Arc::new(move |ctx| {
                // Keys 1, 2, 3 live on partitions 1, 2, 3.
                for key in 1..4 {
                    let mut rec = ctx.read_for_update(table, key)?;
                    rec[1] = Value::Int64(1000 + key);
                    ctx.update(table, key, rec)?;
                }
                Ok(())
            }),
        )
        .unwrap();
        for key in 1..4i64 {
            rt.execute(
                PartitionId(key as u32),
                Arc::new(move |ctx| {
                    let rec = ctx.read(table, key)?;
                    assert_eq!(rec[1], Value::Int64(1000 + key));
                    Ok(())
                }),
            )
            .unwrap();
        }
        rt.shutdown();
    }

    #[test]
    fn unknown_keys_abort_without_retry_storm() {
        let (rt, table) = runtime(2, 4);
        let err = rt.execute(PartitionId(0), Arc::new(move |ctx| ctx.read(table, 999_999).map(|_| ())));
        assert!(err.is_err());
        let stats = rt.shutdown();
        assert_eq!(stats.committed, 0);
        assert_eq!(stats.aborted, 1);
    }

    #[test]
    fn inserts_become_visible_and_indexed() {
        let (rt, table) = runtime(2, 4);
        rt.execute(
            PartitionId(0),
            Arc::new(move |ctx| {
                // Key 100 maps to partition 0 (100 % 2 == 0).
                ctx.insert_local(table, 100, vec![Value::Int64(100), Value::Int64(5)])
            }),
        )
        .unwrap();
        rt.execute(
            PartitionId(1),
            Arc::new(move |ctx| {
                // Read it remotely from partition 1.
                let rec = ctx.read(table, 100)?;
                assert_eq!(rec[1], Value::Int64(5));
                Ok(())
            }),
        )
        .unwrap();
        rt.shutdown();
    }

    #[test]
    fn duplicate_insert_fails() {
        let (rt, table) = runtime(2, 4);
        let err = rt.execute(
            PartitionId(0),
            Arc::new(move |ctx| ctx.insert_local(table, 0, vec![Value::Int64(0), Value::Int64(0)])),
        );
        assert!(err.is_err());
        rt.shutdown();
    }

    #[test]
    fn concurrent_increments_from_all_workers_are_serializable() {
        let workers = 4;
        let (rt, table) = runtime(workers, 8);
        // Every worker increments the same remote-ish key 40 times; the final
        // balance must reflect every committed increment exactly once.
        let per_worker = 40;
        let mut receivers = Vec::new();
        for w in 0..workers {
            for _ in 0..per_worker {
                let rx = rt
                    .submit(
                        PartitionId(w as u32),
                        Arc::new(move |ctx| {
                            let mut rec = ctx.read_for_update(table, 3)?;
                            rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 1);
                            ctx.update(table, 3, rec)
                        }),
                    )
                    .unwrap();
                receivers.push(rx);
            }
        }
        let mut committed = 0;
        for rx in receivers {
            match rx.recv_timeout(Duration::from_secs(20)).expect("worker reply") {
                TxnOutcome::Committed => committed += 1,
                TxnOutcome::Aborted(_) => {}
            }
        }
        // Check the final balance matches the number of commits.
        rt.execute(
            PartitionId(3),
            Arc::new(move |ctx| {
                let rec = ctx.read(table, 3)?;
                assert_eq!(rec[1].as_i64().unwrap(), 100 + committed);
                Ok(())
            }),
        )
        .unwrap();
        let stats = rt.shutdown();
        assert!(stats.committed >= committed as u64);
        assert!(committed > 0);
    }

    #[test]
    fn benchmark_mode_reports_throughput() {
        struct LocalRmw {
            table: TableId,
            workers: u64,
            rows: u64,
        }
        impl TxnGenerator for LocalRmw {
            fn next_txn(&self, home: PartitionId, _seq: u64, rng: &mut h2tap_common::rng::SplitMixRng) -> TxnProc {
                let table = self.table;
                let key = (rng.next_below(self.rows) * self.workers + u64::from(home.0)) as i64;
                Arc::new(move |ctx| {
                    let mut rec = ctx.read_for_update(table, key)?;
                    rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 1);
                    ctx.update(table, key, rec)
                })
            }
        }
        let workers = 2;
        let (db, table, indexes) = setup(workers, 64);
        let rt = OltpRuntime::start(
            db,
            OltpConfig::with_workers(workers),
            Arc::new(ModuloPartitioner::new(workers)),
            indexes,
            Some(Arc::new(LocalRmw { table, workers: workers as u64, rows: 64 })),
        )
        .unwrap();
        let window = rt.run_for(Duration::from_millis(150)).unwrap();
        assert!(window.stats.committed > 100, "committed {}", window.stats.committed);
        assert!(window.throughput_tps > 1000.0, "tps {}", window.throughput_tps);
        rt.shutdown();
    }

    #[test]
    fn runtime_rejects_mismatched_partition_count() {
        let (db, _, indexes) = setup(2, 4);
        let err =
            OltpRuntime::start(db, OltpConfig::with_workers(3), Arc::new(ModuloPartitioner::new(3)), indexes, None);
        assert!(err.is_err());
    }

    #[test]
    fn partitioner_kind_builds_the_matching_partitioner() {
        let modulo = PartitionerKind::Modulo.build(4);
        assert_eq!(modulo.partition_of(TableId(0), 6), PartitionId(2));
        let stride = PartitionerKind::Stride { stride: 100 }.build(4);
        assert_eq!(stride.partition_of(TableId(0), 250), PartitionId(2));
        assert_eq!(PartitionerKind::default(), PartitionerKind::Modulo);
    }

    #[test]
    fn stride_partitioner_round_trips() {
        let p = StridePartitioner::new(1_000_000, 8);
        let key = p.encode(PartitionId(5), 123);
        assert_eq!(p.partition_of(TableId(0), key), PartitionId(5));
        let m = ModuloPartitioner::new(8);
        assert_eq!(m.partition_of(TableId(0), 17), PartitionId(1));
    }
}
