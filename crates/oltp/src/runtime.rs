//! The OLTP runtime: spawning, driving and measuring the worker fleet.
//!
//! The runtime owns the task-parallel archipelago's worker threads. It can be
//! driven in two ways:
//!
//! * **Submission mode** — callers submit individual transactions to a chosen
//!   home worker and wait for the outcome ([`OltpRuntime::submit`] /
//!   [`OltpRuntime::execute`]). Used by the engine API and the examples.
//! * **Benchmark mode** — every worker generates transactions back-to-back
//!   from a [`TxnGenerator`] for a fixed wall-clock window
//!   ([`OltpRuntime::run_for`]). Used by the Figure 5-9 experiments.

use crate::index::PartitionIndex;
use crate::messages::OltpMsg;
use crate::txn::TxnCtx;
use crate::worker::{TxnOutcome, Worker, WorkerState};
use crossbeam_channel::{bounded, Sender};
use h2tap_common::rng::SplitMixRng;
use h2tap_common::stats::throughput;
use h2tap_common::{H2Error, PartitionId, Result, TableId};
use h2tap_mpmsg::build_fabric;
use h2tap_storage::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A transaction body. It is re-run from scratch on retry, so it must be a
/// pure function of the context (no side effects outside it).
pub type TxnProc = Arc<dyn Fn(&mut TxnCtx<'_>) -> Result<()> + Send + Sync>;

/// Maps `(table, key)` to the partition that owns the record.
pub trait Partitioner: Send + Sync {
    /// The owning partition of `key` in `table`.
    fn partition_of(&self, table: TableId, key: i64) -> PartitionId;
}

/// Default partitioner: a key is owned by partition `|key| % partitions`
/// (modulo hashing). Consecutive keys land on consecutive partitions, but
/// ownership is a pure function of the key value — unlike round-robin, the
/// arrival order of keys plays no role.
#[derive(Debug, Clone)]
pub struct ModuloPartitioner {
    partitions: u32,
}

impl ModuloPartitioner {
    /// Creates a partitioner over `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0);
        Self { partitions: partitions as u32 }
    }
}

impl Partitioner for ModuloPartitioner {
    fn partition_of(&self, _table: TableId, key: i64) -> PartitionId {
        PartitionId((key.unsigned_abs() % u64::from(self.partitions)) as u32)
    }
}

/// Partitioner whose keys carry their partition in the high bits:
/// `key = partition * stride + local_key`. Used by TPC-C (warehouse-per-
/// partition) and the multisite microbenchmark.
#[derive(Debug, Clone)]
pub struct StridePartitioner {
    stride: i64,
    partitions: u32,
}

impl StridePartitioner {
    /// Creates a stride partitioner.
    pub fn new(stride: i64, partitions: usize) -> Self {
        assert!(stride > 0 && partitions > 0);
        Self { stride, partitions: partitions as u32 }
    }

    /// Encodes a (partition, local key) pair into a global key.
    pub fn encode(&self, partition: PartitionId, local_key: i64) -> i64 {
        i64::from(partition.0) * self.stride + local_key
    }
}

impl Partitioner for StridePartitioner {
    fn partition_of(&self, _table: TableId, key: i64) -> PartitionId {
        PartitionId(((key / self.stride).unsigned_abs() % u64::from(self.partitions)) as u32)
    }
}

/// Declarative choice of a built-in [`Partitioner`], so engine configuration
/// can select the partitioning scheme instead of callers hard-wiring one at
/// runtime construction. Custom partitioners still plug in through
/// [`Partitioner`] directly (e.g. `CalderaBuilder::set_partitioner`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionerKind {
    /// [`ModuloPartitioner`]: partition = `|key| % partitions`.
    #[default]
    Modulo,
    /// [`StridePartitioner`]: keys carry their partition in the high bits
    /// (`key = partition * stride + local_key`).
    Stride {
        /// Keys per partition block.
        stride: i64,
    },
}

impl PartitionerKind {
    /// Builds the chosen partitioner over `partitions` partitions.
    pub fn build(self, partitions: usize) -> Arc<dyn Partitioner> {
        match self {
            PartitionerKind::Modulo => Arc::new(ModuloPartitioner::new(partitions)),
            PartitionerKind::Stride { stride } => Arc::new(StridePartitioner::new(stride, partitions)),
        }
    }
}

/// Produces the next transaction for a worker in benchmark mode.
pub trait TxnGenerator: Send + Sync {
    /// The transaction that worker `home` should run as its `seq`-th
    /// generated transaction.
    fn next_txn(&self, home: PartitionId, seq: u64, rng: &mut SplitMixRng) -> TxnProc;
}

/// Shared per-worker counters.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    committed: AtomicU64,
    aborted: AtomicU64,
    retries: AtomicU64,
    remote_requests: AtomicU64,
    remote_denied: AtomicU64,
    messages: AtomicU64,
    writebacks: AtomicU64,
}

impl WorkerCounters {
    pub(crate) fn add_committed(&self) {
        self.committed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_aborted(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_remote_request(&self) {
        self.remote_requests.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_remote_denied(&self) {
        self.remote_denied.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_message(&self) {
        self.messages.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_writeback(&self) {
        self.writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }
    /// Aborted (retry-exhausted) transactions.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }
    /// Abort-and-retry events.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
    /// Remote lock requests issued.
    pub fn remote_requests(&self) -> u64 {
        self.remote_requests.load(Ordering::Relaxed)
    }
    /// Remote lock requests denied.
    pub fn remote_denied(&self) -> u64 {
        self.remote_denied.load(Ordering::Relaxed)
    }
    /// Messages handled in the server role.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
    /// Explicit cache write-back events (software-managed coherence).
    pub fn writebacks(&self) -> u64 {
        self.writebacks.load(Ordering::Relaxed)
    }
}

/// Point-in-time aggregate across all workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OltpStats {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Abort-and-retry events.
    pub retries: u64,
    /// Remote lock requests.
    pub remote_requests: u64,
    /// Remote lock denials.
    pub remote_denied: u64,
    /// Messages handled.
    pub messages: u64,
    /// Software cache write-backs.
    pub writebacks: u64,
}

impl OltpStats {
    /// Difference between two aggregates.
    #[must_use]
    pub fn delta_since(&self, earlier: &OltpStats) -> OltpStats {
        OltpStats {
            committed: self.committed - earlier.committed,
            aborted: self.aborted - earlier.aborted,
            retries: self.retries - earlier.retries,
            remote_requests: self.remote_requests - earlier.remote_requests,
            remote_denied: self.remote_denied - earlier.remote_denied,
            messages: self.messages - earlier.messages,
            writebacks: self.writebacks - earlier.writebacks,
        }
    }
}

/// Result of one benchmark window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkWindow {
    /// Wall-clock duration of the window.
    pub elapsed: Duration,
    /// Counter deltas over the window.
    pub stats: OltpStats,
    /// Committed transactions per second.
    pub throughput_tps: f64,
}

/// An externally submitted transaction.
pub struct Job {
    /// The transaction body.
    pub proc: TxnProc,
    /// Where to report the outcome (None for fire-and-forget).
    pub reply: Option<Sender<TxnOutcome>>,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct OltpConfig {
    /// Number of worker threads (= partitions = cores of the task-parallel
    /// archipelago).
    pub workers: usize,
    /// Mailbox depth per worker.
    pub mailbox_capacity: usize,
    /// How many times an aborted transaction is retried before giving up.
    pub max_retries: u32,
    /// Client-side timeout for remote lock replies.
    pub remote_timeout: Duration,
    /// Seed for the per-worker workload RNGs.
    pub seed: u64,
}

impl Default for OltpConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            mailbox_capacity: 1024,
            max_retries: 32,
            remote_timeout: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

impl OltpConfig {
    /// Config with a specific worker count and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }
}

/// The running OLTP archipelago.
pub struct OltpRuntime {
    db: Arc<Database>,
    config: OltpConfig,
    job_senders: Vec<Sender<Job>>,
    counters: Vec<Arc<WorkerCounters>>,
    generating: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl OltpRuntime {
    /// Starts `config.workers` worker threads over `db`.
    ///
    /// `indexes` supplies each worker's pre-built primary-key index (one per
    /// partition, in partition order); missing entries start empty.
    /// `generator` is the optional benchmark-mode workload.
    ///
    /// The database must have exactly as many partitions as workers.
    pub fn start(
        db: Arc<Database>,
        config: OltpConfig,
        partitioner: Arc<dyn Partitioner>,
        mut indexes: Vec<PartitionIndex>,
        generator: Option<Arc<dyn TxnGenerator>>,
    ) -> Result<Self> {
        if config.workers == 0 {
            return Err(H2Error::Config("OLTP runtime needs at least one worker".into()));
        }
        if db.partition_count() != config.workers {
            return Err(H2Error::Config(format!(
                "database has {} partitions but runtime was asked for {} workers",
                db.partition_count(),
                config.workers
            )));
        }
        indexes.resize_with(config.workers, PartitionIndex::new);

        let (postboxes, mailboxes, _fabric_stats) = build_fabric::<OltpMsg>(config.workers, config.mailbox_capacity);
        let generating = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut job_senders = Vec::with_capacity(config.workers);
        let mut counters = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);

        let mut mailboxes: Vec<Option<_>> = mailboxes.into_iter().map(Some).collect();
        for (i, index) in indexes.into_iter().enumerate() {
            let (job_tx, job_rx) = bounded::<Job>(256);
            job_senders.push(job_tx);
            let worker_counters = Arc::new(WorkerCounters::default());
            counters.push(Arc::clone(&worker_counters));
            let state = WorkerState {
                id: i as u32,
                db: Arc::clone(&db),
                postbox: postboxes[i].clone(),
                mailbox: mailboxes[i].take().expect("mailbox taken once"),
                lock_table: crate::locktable::LockTable::new(),
                index,
                partitioner: Arc::clone(&partitioner),
                counters: worker_counters,
                remote_timeout: config.remote_timeout,
            };
            let worker = Worker {
                state,
                jobs: job_rx,
                generator: generator.clone(),
                generating: Arc::clone(&generating),
                shutdown: Arc::clone(&shutdown),
                max_retries: config.max_retries,
                rng: SplitMixRng::new(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9)),
            };
            let handle = std::thread::Builder::new()
                .name(format!("oltp-worker-{i}"))
                .spawn(move || worker.run())
                .map_err(|e| H2Error::Config(format!("failed to spawn worker: {e}")))?;
            handles.push(handle);
        }

        Ok(Self { db, config, job_senders, counters, generating, shutdown, handles })
    }

    /// The database this runtime operates on.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Submits a transaction to a home worker and returns immediately; the
    /// outcome arrives on the returned channel.
    pub fn submit(&self, home: PartitionId, proc: TxnProc) -> Result<crossbeam_channel::Receiver<TxnOutcome>> {
        let (tx, rx) = bounded(1);
        let sender =
            self.job_senders.get(home.0 as usize).ok_or_else(|| H2Error::Config(format!("no worker for {home}")))?;
        sender
            .send(Job { proc, reply: Some(tx) })
            .map_err(|_| H2Error::ChannelClosed(format!("worker {home} is gone")))?;
        Ok(rx)
    }

    /// Submits a transaction and blocks until it commits or aborts.
    pub fn execute(&self, home: PartitionId, proc: TxnProc) -> Result<()> {
        let rx = self.submit(home, proc)?;
        match rx.recv() {
            Ok(TxnOutcome::Committed) => Ok(()),
            Ok(TxnOutcome::Aborted(err)) => Err(err),
            Err(_) => Err(H2Error::ChannelClosed("worker dropped the reply channel".into())),
        }
    }

    /// Aggregated counters across all workers.
    pub fn stats(&self) -> OltpStats {
        let mut s = OltpStats::default();
        for c in &self.counters {
            s.committed += c.committed();
            s.aborted += c.aborted();
            s.retries += c.retries();
            s.remote_requests += c.remote_requests();
            s.remote_denied += c.remote_denied();
            s.messages += c.messages();
            s.writebacks += c.writebacks();
        }
        s
    }

    /// Per-worker committed counts (for scalability plots).
    pub fn per_worker_committed(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.committed()).collect()
    }

    /// Runs the benchmark-mode generator on every worker for `window` and
    /// returns the counter deltas and throughput.
    ///
    /// # Errors
    /// Returns an error if the runtime was started without a generator — the
    /// workers would simply idle and report zero throughput.
    pub fn run_for(&self, window: Duration) -> Result<BenchmarkWindow> {
        let before = self.stats();
        let start = Instant::now();
        self.generating.store(true, Ordering::Release);
        std::thread::sleep(window);
        self.generating.store(false, Ordering::Release);
        // Let in-flight transactions drain before sampling counters.
        std::thread::sleep(Duration::from_millis(10));
        let elapsed = start.elapsed();
        let stats = self.stats().delta_since(&before);
        if stats.committed == 0 && stats.aborted == 0 {
            return Err(H2Error::Config(
                "benchmark window produced no transactions; was a generator configured?".into(),
            ));
        }
        Ok(BenchmarkWindow { elapsed, stats, throughput_tps: throughput(stats.committed, elapsed) })
    }

    /// Stops all workers and waits for them to exit, leaving the runtime
    /// alive for final statistics collection. Pending submissions drain
    /// before the workers exit, so the counters read after `stop` reflect
    /// every transaction that was ever accepted. Idempotent.
    pub fn stop(&mut self) -> OltpStats {
        self.generating.store(false, Ordering::Release);
        self.shutdown.store(true, Ordering::Release);
        // Dropping the job senders unblocks workers waiting on submissions.
        self.job_senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Stops all workers and waits for them to exit.
    pub fn shutdown(mut self) -> OltpStats {
        self.stop()
    }
}

impl Drop for OltpRuntime {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.job_senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
