//! OLTP worker threads.
//!
//! Caldera "schedules one thread per core in the task-parallel archipelago
//! and assigns one data partition to each thread, which then mediates access
//! to partition-local records". A [`Worker`] is that thread: it owns its
//! partition's lock table and primary-key index outright (no sharing, no
//! latches), executes the transactions it hosts, and services lock-request /
//! release messages from other workers.

use crate::index::PartitionIndex;
use crate::locktable::LockTable;
use crate::messages::{LockMode, OltpMsg, TxnToken};
use crate::runtime::{Job, Partitioner, TxnGenerator, WorkerCounters};
use crate::txn::TxnCtx;
use crossbeam_channel::Receiver;
use h2tap_common::rng::SplitMixRng;
use h2tap_common::{H2Error, PartitionId, Result};
use h2tap_mpmsg::{CoreId, Envelope, Mailbox, Postbox};
use h2tap_storage::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything a transaction needs mutable access to while it executes on its
/// host worker. Split out from [`Worker`] so the transaction context can
/// borrow it while the worker's control fields stay untouched.
pub struct WorkerState {
    /// Worker index; by construction equal to the partition it owns.
    pub id: u32,
    /// Shared-memory database.
    pub db: Arc<Database>,
    /// Sending side of the message fabric.
    pub postbox: Postbox<OltpMsg>,
    /// This worker's mailbox.
    pub mailbox: Mailbox<OltpMsg>,
    /// Thread-private 2PL lock table for the owned partition.
    pub lock_table: LockTable,
    /// Thread-private primary-key index for the owned partition.
    pub index: PartitionIndex,
    /// Maps (table, key) to the owning partition.
    pub partitioner: Arc<dyn Partitioner>,
    /// Shared counters for this worker.
    pub counters: Arc<WorkerCounters>,
    /// How long a client waits for a remote lock reply before giving up.
    pub remote_timeout: Duration,
}

impl WorkerState {
    /// The partition this worker owns.
    pub fn home(&self) -> PartitionId {
        PartitionId(self.id)
    }

    /// Handles one incoming message in the server role. Returns the grant or
    /// denial that belongs to `waiting_for` (if any) instead of handling it,
    /// so a client blocked on a remote lock can keep servicing other workers
    /// without losing its own reply.
    pub fn handle_message(&mut self, env: Envelope<OltpMsg>, waiting_for: Option<TxnToken>) -> Option<OltpMsg> {
        self.counters.add_message();
        match env.payload {
            OltpMsg::LockRequest { txn, table, key, mode } => {
                let reply = match self.index.lookup(table, key) {
                    None => OltpMsg::LockDenied { txn, key, unknown_key: true },
                    Some(row) => {
                        let rid = h2tap_common::RecordId::new(self.home(), table, row);
                        if self.lock_table.acquire(rid, mode, txn) {
                            // Before handing the record to another core the
                            // server writes back any dirty cache lines for it
                            // (software-managed coherence).
                            self.counters.add_writeback();
                            OltpMsg::LockGrant { txn, rid, key }
                        } else {
                            OltpMsg::LockDenied { txn, key, unknown_key: false }
                        }
                    }
                };
                // Best effort: if the requester is gone the runtime is
                // shutting down and the reply does not matter.
                let _ = self.postbox.send(env.from, reply);
                None
            }
            OltpMsg::Release { txn, rids } => {
                for rid in rids {
                    self.lock_table.release(rid, txn);
                }
                None
            }
            msg @ (OltpMsg::LockGrant { .. } | OltpMsg::LockDenied { .. }) => {
                let for_me = match (&msg, waiting_for) {
                    (OltpMsg::LockGrant { txn, .. }, Some(t)) | (OltpMsg::LockDenied { txn, .. }, Some(t)) => *txn == t,
                    _ => false,
                };
                if for_me {
                    Some(msg)
                } else {
                    // A reply for a transaction that has already aborted
                    // (e.g. it timed out); drop it, its locks will be
                    // released by the abort path's release message.
                    None
                }
            }
            OltpMsg::Shutdown => None,
        }
    }

    /// Drains all currently pending messages (server role only).
    pub fn drain_messages(&mut self) -> Result<()> {
        while let Some(env) = self.mailbox.try_recv()? {
            self.handle_message(env, None);
        }
        Ok(())
    }
}

/// Outcome of executing one transaction attempt (after retries).
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOutcome {
    /// The transaction committed.
    Committed,
    /// The transaction aborted and exhausted its retries.
    Aborted(H2Error),
}

/// Executes `proc` on `state`, retrying aborts up to `max_retries` times.
pub fn execute_transaction(
    state: &mut WorkerState,
    proc: &crate::runtime::TxnProc,
    seq: &mut u64,
    max_retries: u32,
) -> TxnOutcome {
    let mut attempt = 0;
    loop {
        let token = TxnToken::new(state.id, *seq);
        *seq += 1;
        let mut ctx = TxnCtx::new(state, token);
        match proc(&mut ctx) {
            Ok(()) => {
                ctx.commit();
                state.counters.add_committed();
                return TxnOutcome::Committed;
            }
            Err(err) => {
                ctx.abort();
                let retryable = matches!(err, H2Error::TxnAborted(_) | H2Error::LockTimeout(_));
                if retryable && attempt < max_retries {
                    attempt += 1;
                    state.counters.add_retry();
                    continue;
                }
                state.counters.add_aborted();
                return TxnOutcome::Aborted(err);
            }
        }
    }
}

/// One worker thread's control loop.
pub struct Worker {
    /// Transaction-visible state.
    pub state: WorkerState,
    /// Externally submitted jobs.
    pub jobs: Receiver<Job>,
    /// Optional self-driving workload generator (benchmark mode).
    pub generator: Option<Arc<dyn TxnGenerator>>,
    /// While true, the worker keeps generating transactions from `generator`.
    pub generating: Arc<AtomicBool>,
    /// Orderly shutdown flag.
    pub shutdown: Arc<AtomicBool>,
    /// Abort retry budget.
    pub max_retries: u32,
    /// Deterministic per-worker RNG for the generator.
    pub rng: SplitMixRng,
}

impl Worker {
    /// Runs the worker until shutdown. This is the body of the spawned
    /// thread.
    pub fn run(mut self) {
        let mut seq = 0u64;
        let mut generated = 0u64;
        loop {
            // 1. Serve pending lock traffic first so remote clients never
            //    starve behind local work.
            if self.state.drain_messages().is_err() {
                break;
            }

            // 2. Externally submitted transactions.
            match self.jobs.try_recv() {
                Ok(job) => {
                    let outcome = execute_transaction(&mut self.state, &job.proc, &mut seq, self.max_retries);
                    if let Some(reply) = job.reply {
                        let _ = reply.send(outcome);
                    }
                    continue;
                }
                Err(crossbeam_channel::TryRecvError::Empty) => {}
                Err(crossbeam_channel::TryRecvError::Disconnected) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                }
            }

            // 3. Benchmark mode: generate and run the next transaction.
            if self.generating.load(Ordering::Acquire) {
                if let Some(generator) = self.generator.clone() {
                    let proc = generator.next_txn(self.state.home(), generated, &mut self.rng);
                    generated += 1;
                    execute_transaction(&mut self.state, &proc, &mut seq, self.max_retries);
                    continue;
                }
            }

            // 4. Shutdown only once quiescent.
            if self.shutdown.load(Ordering::Acquire) {
                let _ = self.state.drain_messages();
                break;
            }

            // 5. Idle: block briefly on the mailbox so lock requests are
            //    served promptly even when this worker has no work.
            match self.state.mailbox.recv_timeout(Duration::from_micros(200)) {
                Ok(Some(env)) => {
                    self.state.handle_message(env, None);
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
    }
}

/// Convenience used by the runtime and tests to acquire a local lock outside
/// the message path (e.g. warm-up).
pub fn local_lock(state: &mut WorkerState, rid: h2tap_common::RecordId, mode: LockMode, txn: TxnToken) -> bool {
    state.lock_table.acquire(rid, mode, txn)
}

/// Which fabric core a partition's owner listens on. Workers are created so
/// that worker `i` owns partition `i` and listens on core `i`.
pub fn core_of(partition: PartitionId) -> CoreId {
    CoreId(partition.0)
}
