//! The transaction context: what a stored procedure sees while it runs.
//!
//! A transaction executes entirely on its host (client) worker thread. Reads
//! and writes are keyed by primary key; the context resolves the owning
//! partition, acquires the 2PL lock (directly for local records, via a
//! lock-request message for remote records), and defers all writes to commit
//! time so an abort never needs undo. At commit the client applies its writes
//! through shared memory (it holds every lock), conceptually writes its dirty
//! cache lines back, releases local locks directly and remote locks with one
//! release message per server — exactly the protocol of Section 4.

use crate::messages::{LockMode, OltpMsg, TxnToken};
use crate::worker::{core_of, WorkerState};
use h2tap_common::{H2Error, PartitionId, RecordId, Result, TableId, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Per-key lock bookkeeping within one transaction.
#[derive(Debug, Clone, Copy)]
struct HeldLock {
    rid: RecordId,
    mode: LockMode,
}

/// The interface transactions program against.
pub struct TxnCtx<'a> {
    state: &'a mut WorkerState,
    token: TxnToken,
    held: HashMap<(TableId, i64), HeldLock>,
    /// Remote locks grouped by owning worker, for release messages.
    remote: HashMap<u32, Vec<RecordId>>,
    /// Deferred updates: applied at commit while all locks are held.
    write_set: Vec<(RecordId, Vec<Value>)>,
    /// Deferred inserts into the home partition.
    insert_set: Vec<(TableId, i64, Vec<Value>)>,
    finished: bool,
}

impl<'a> TxnCtx<'a> {
    /// Creates a context for one transaction attempt.
    pub fn new(state: &'a mut WorkerState, token: TxnToken) -> Self {
        Self {
            state,
            token,
            held: HashMap::new(),
            remote: HashMap::new(),
            write_set: Vec::new(),
            insert_set: Vec::new(),
            finished: false,
        }
    }

    /// The partition hosting this transaction.
    pub fn home(&self) -> PartitionId {
        self.state.home()
    }

    /// The transaction's token (exposed for diagnostics).
    pub fn token(&self) -> TxnToken {
        self.token
    }

    /// Reads the record with primary key `key` in `table` under a shared
    /// lock.
    pub fn read(&mut self, table: TableId, key: i64) -> Result<Vec<Value>> {
        let rid = self.ensure_lock(table, key, LockMode::Shared)?;
        self.read_locked(rid)
    }

    /// Reads the record under an exclusive lock (read-modify-write pattern).
    pub fn read_for_update(&mut self, table: TableId, key: i64) -> Result<Vec<Value>> {
        let rid = self.ensure_lock(table, key, LockMode::Exclusive)?;
        self.read_locked(rid)
    }

    /// Overwrites the record with primary key `key`. The write is buffered
    /// and applied at commit.
    pub fn update(&mut self, table: TableId, key: i64, values: Vec<Value>) -> Result<()> {
        let rid = self.ensure_lock(table, key, LockMode::Exclusive)?;
        // Later reads of the same key must see this write.
        self.write_set.retain(|(r, _)| *r != rid);
        self.write_set.push((rid, values));
        Ok(())
    }

    /// Inserts a new record with primary key `key` into the home partition.
    /// The insert is buffered and applied at commit.
    pub fn insert_local(&mut self, table: TableId, key: i64, values: Vec<Value>) -> Result<()> {
        let home = self.home();
        if self.state.partitioner.partition_of(table, key) != home {
            return Err(H2Error::TxnAborted(format!("insert of key {key} does not belong to home partition {home}")));
        }
        if self.state.index.lookup(table, key).is_some() {
            return Err(H2Error::TxnAborted(format!("duplicate primary key {key}")));
        }
        self.insert_set.push((table, key, values));
        Ok(())
    }

    /// Number of remote lock requests this transaction has issued so far.
    pub fn remote_lock_count(&self) -> usize {
        self.remote.values().map(Vec::len).sum()
    }

    fn read_locked(&mut self, rid: RecordId) -> Result<Vec<Value>> {
        // Read-your-writes: serve from the deferred write set if present.
        if let Some((_, values)) = self.write_set.iter().rev().find(|(r, _)| *r == rid) {
            return Ok(values.clone());
        }
        self.state.db.read(rid)
    }

    /// Resolves the lock for `(table, key)` in the requested mode, acquiring
    /// it locally or remotely as needed.
    fn ensure_lock(&mut self, table: TableId, key: i64, mode: LockMode) -> Result<RecordId> {
        if let Some(held) = self.held.get(&(table, key)) {
            match (held.mode, mode) {
                (_, LockMode::Shared) | (LockMode::Exclusive, _) => return Ok(held.rid),
                (LockMode::Shared, LockMode::Exclusive) => {
                    // Upgrade. Local upgrades go through the local lock
                    // table; remote upgrades re-issue the request.
                }
            }
        }
        let target = self.state.partitioner.partition_of(table, key);
        let rid = if target == self.home() {
            self.acquire_local(table, key, mode)?
        } else {
            self.acquire_remote(target, table, key, mode)?
        };
        self.held.insert((table, key), HeldLock { rid, mode });
        Ok(rid)
    }

    fn acquire_local(&mut self, table: TableId, key: i64, mode: LockMode) -> Result<RecordId> {
        let row = self
            .state
            .index
            .lookup(table, key)
            .ok_or_else(|| H2Error::UnknownRecord(format!("key {key} in {table} (local)")))?;
        let rid = RecordId::new(self.home(), table, row);
        if self.state.lock_table.acquire(rid, mode, self.token) {
            Ok(rid)
        } else {
            Err(H2Error::TxnAborted(format!("local lock conflict on {rid}")))
        }
    }

    fn acquire_remote(&mut self, target: PartitionId, table: TableId, key: i64, mode: LockMode) -> Result<RecordId> {
        self.state.counters.add_remote_request();
        self.state.postbox.send(core_of(target), OltpMsg::LockRequest { txn: self.token, table, key, mode })?;
        let deadline = Instant::now() + self.state.remote_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(H2Error::LockTimeout(format!("no reply for key {key} from {target}")));
            }
            let Some(env) = self.state.mailbox.recv_timeout(remaining.min(std::time::Duration::from_micros(500)))?
            else {
                continue;
            };
            // While waiting for our grant we keep playing the server role so
            // two clients waiting on each other's partitions make progress.
            if let Some(reply) = self.state.handle_message(env, Some(self.token)) {
                match reply {
                    OltpMsg::LockGrant { rid, .. } => {
                        self.remote.entry(target.0).or_default().push(rid);
                        return Ok(rid);
                    }
                    OltpMsg::LockDenied { unknown_key, .. } => {
                        self.state.counters.add_remote_denied();
                        return if unknown_key {
                            Err(H2Error::UnknownRecord(format!("key {key} in {table} ({target})")))
                        } else {
                            Err(H2Error::TxnAborted(format!("remote lock conflict on key {key} ({target})")))
                        };
                    }
                    _ => unreachable!("handle_message only returns grant/denied"),
                }
            }
        }
    }

    /// Applies the write and insert sets, releases all locks and notifies
    /// remote owners. Called by the worker after the stored procedure
    /// returned `Ok`.
    pub fn commit(mut self) {
        // Apply deferred writes while every lock is still held. The client
        // accesses remote records directly through shared memory — only lock
        // metadata ever crossed the fabric.
        for (rid, values) in self.write_set.drain(..) {
            // The lock guarantees exclusive access, so failures here would be
            // logic errors (schema mismatch), surfaced loudly in debug runs.
            let applied = self.state.db.update(rid, &values);
            debug_assert!(applied.is_ok(), "commit-time update failed: {applied:?}");
        }
        let home = self.state.home();
        for (table, key, values) in self.insert_set.drain(..) {
            if let Ok(rid) = self.state.db.insert(home, table, &values) {
                self.state.index.insert(table, key, rid.row);
            }
        }
        // Client writes back its dirty lines before releasing anything.
        self.state.counters.add_writeback();
        self.finish();
    }

    /// Discards buffered writes and releases all locks.
    pub fn abort(mut self) {
        self.write_set.clear();
        self.insert_set.clear();
        self.finish();
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.state.lock_table.release_all(self.token);
        for (server, rids) in self.remote.drain() {
            let _ = self.state.postbox.send(core_of(PartitionId(server)), OltpMsg::Release { txn: self.token, rids });
        }
        self.held.clear();
    }
}

impl Drop for TxnCtx<'_> {
    fn drop(&mut self) {
        // Safety net: a context dropped without commit/abort (e.g. the stored
        // procedure panicked) still releases its locks.
        self.finish();
    }
}
