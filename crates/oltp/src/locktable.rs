//! Thread-private two-phase-locking tables.
//!
//! Each OLTP worker owns one lock table covering the records of its
//! partition. The table is an ordinary (non-thread-safe) map — it never needs
//! atomics or latches because only its owning thread touches it; remote
//! transactions reach it through messages. Conflicts are resolved with
//! no-wait: the requester is told to abort and retry, which keeps the
//! message protocol deadlock-free without a waits-for graph.

use crate::messages::{LockMode, TxnToken};
use h2tap_common::RecordId;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// State of one locked record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LockState {
    Shared(Vec<TxnToken>),
    Exclusive(TxnToken),
}

/// A per-worker lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: HashMap<RecordId, LockState>,
    acquired: u64,
    denied: u64,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to acquire a lock for `txn`. Returns `true` on success; `false`
    /// means the caller must abort (no-wait conflict resolution).
    ///
    /// Re-entrant requests by the same transaction succeed, and a shared
    /// holder that is the *only* holder may upgrade to exclusive.
    pub fn acquire(&mut self, rid: RecordId, mode: LockMode, txn: TxnToken) -> bool {
        let granted = match self.locks.entry(rid) {
            Entry::Vacant(v) => {
                v.insert(match mode {
                    LockMode::Shared => LockState::Shared(vec![txn]),
                    LockMode::Exclusive => LockState::Exclusive(txn),
                });
                true
            }
            Entry::Occupied(mut o) => match (o.get_mut(), mode) {
                (LockState::Shared(holders), LockMode::Shared) => {
                    if !holders.contains(&txn) {
                        holders.push(txn);
                    }
                    true
                }
                (LockState::Shared(holders), LockMode::Exclusive) => {
                    if holders.len() == 1 && holders[0] == txn {
                        *o.get_mut() = LockState::Exclusive(txn);
                        true
                    } else {
                        false
                    }
                }
                (LockState::Exclusive(holder), _) => *holder == txn,
            },
        };
        if granted {
            self.acquired += 1;
        } else {
            self.denied += 1;
        }
        granted
    }

    /// Releases `txn`'s lock on `rid` (no-op if it holds none).
    pub fn release(&mut self, rid: RecordId, txn: TxnToken) {
        if let Entry::Occupied(mut o) = self.locks.entry(rid) {
            let remove = match o.get_mut() {
                LockState::Shared(holders) => {
                    holders.retain(|t| *t != txn);
                    holders.is_empty()
                }
                LockState::Exclusive(holder) => *holder == txn,
            };
            if remove {
                o.remove();
            }
        }
    }

    /// Releases every lock held by `txn`. Used for local locks at
    /// commit/abort; remote locks are released via explicit messages instead.
    pub fn release_all(&mut self, txn: TxnToken) {
        self.locks.retain(|_, state| match state {
            LockState::Shared(holders) => {
                holders.retain(|t| *t != txn);
                !holders.is_empty()
            }
            LockState::Exclusive(holder) => *holder != txn,
        });
    }

    /// Whether any lock is currently held on `rid`.
    pub fn is_locked(&self, rid: RecordId) -> bool {
        self.locks.contains_key(&rid)
    }

    /// Number of records currently locked.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether the table holds no locks.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Successful acquisitions so far.
    pub fn acquired(&self) -> u64 {
        self.acquired
    }

    /// Denied acquisitions so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{PartitionId, TableId};

    fn rid(row: u64) -> RecordId {
        RecordId::new(PartitionId(0), TableId(0), row)
    }

    #[test]
    fn shared_locks_are_compatible() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(rid(1), LockMode::Shared, TxnToken::new(0, 0)));
        assert!(lt.acquire(rid(1), LockMode::Shared, TxnToken::new(1, 0)));
        assert_eq!(lt.len(), 1);
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let mut lt = LockTable::new();
        let a = TxnToken::new(0, 0);
        let b = TxnToken::new(1, 0);
        assert!(lt.acquire(rid(1), LockMode::Exclusive, a));
        assert!(!lt.acquire(rid(1), LockMode::Exclusive, b));
        assert!(!lt.acquire(rid(1), LockMode::Shared, b));
        assert_eq!(lt.denied(), 2);
    }

    #[test]
    fn reentrant_acquisition_succeeds() {
        let mut lt = LockTable::new();
        let a = TxnToken::new(0, 0);
        assert!(lt.acquire(rid(1), LockMode::Exclusive, a));
        assert!(lt.acquire(rid(1), LockMode::Exclusive, a));
        assert!(lt.acquire(rid(1), LockMode::Shared, a));
    }

    #[test]
    fn sole_shared_holder_can_upgrade() {
        let mut lt = LockTable::new();
        let a = TxnToken::new(0, 0);
        let b = TxnToken::new(1, 0);
        assert!(lt.acquire(rid(1), LockMode::Shared, a));
        assert!(lt.acquire(rid(1), LockMode::Exclusive, a));
        // Now exclusive: another shared request fails.
        assert!(!lt.acquire(rid(1), LockMode::Shared, b));
    }

    #[test]
    fn upgrade_with_other_holders_is_denied() {
        let mut lt = LockTable::new();
        let a = TxnToken::new(0, 0);
        let b = TxnToken::new(1, 0);
        assert!(lt.acquire(rid(1), LockMode::Shared, a));
        assert!(lt.acquire(rid(1), LockMode::Shared, b));
        assert!(!lt.acquire(rid(1), LockMode::Exclusive, a));
    }

    #[test]
    fn release_frees_the_record() {
        let mut lt = LockTable::new();
        let a = TxnToken::new(0, 0);
        let b = TxnToken::new(1, 0);
        lt.acquire(rid(1), LockMode::Exclusive, a);
        lt.release(rid(1), a);
        assert!(!lt.is_locked(rid(1)));
        assert!(lt.acquire(rid(1), LockMode::Exclusive, b));
    }

    #[test]
    fn release_by_non_holder_is_a_noop() {
        let mut lt = LockTable::new();
        let a = TxnToken::new(0, 0);
        let b = TxnToken::new(1, 0);
        lt.acquire(rid(1), LockMode::Exclusive, a);
        lt.release(rid(1), b);
        assert!(lt.is_locked(rid(1)));
    }

    #[test]
    fn release_all_only_drops_own_locks() {
        let mut lt = LockTable::new();
        let a = TxnToken::new(0, 0);
        let b = TxnToken::new(1, 0);
        lt.acquire(rid(1), LockMode::Shared, a);
        lt.acquire(rid(1), LockMode::Shared, b);
        lt.acquire(rid(2), LockMode::Exclusive, a);
        lt.release_all(a);
        assert!(lt.is_locked(rid(1)), "b still holds the shared lock");
        assert!(!lt.is_locked(rid(2)));
        assert!(lt.is_empty() || lt.len() == 1);
    }
}
