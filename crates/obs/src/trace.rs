//! The per-query trace: typed spans in a bounded, lock-free ring.
//!
//! Every layer of the engine (placement, the plan-data cache, the three
//! execution sites) emits [`SpanEvent`]s through a shared [`Tracer`] handle.
//! The design centre is the *disabled* cost: a single relaxed atomic load
//! guards every emission site, so the CI-gated hostperf thresholds hold with
//! tracing off. Enabled, a span claims its slot with one relaxed
//! `fetch_add` on the ring cursor and writes the record through an
//! uncontended per-slot lock; if a reader (or a wrapped writer) holds the
//! slot, the span is *dropped* and counted — recording never blocks a query.

use h2tap_common::ExecBreakdown;
use h2tap_scheduler::OlapTarget;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Observability configuration, carried by `CalderaConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether the engine's tracer records spans. Off by default: the
    /// observability layer must be provably near-zero-cost when unused.
    pub tracing: bool,
    /// Ring capacity in spans (rounded up to a power of two). When more
    /// spans are recorded than fit, the oldest are overwritten.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self { tracing: false, trace_capacity: 16_384 }
    }
}

/// What a span measured. The fixed vocabulary keeps records `Copy` and lets
/// exporters and tests match on phases without string parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The dispatch-time site decision (N-way argmin over site estimates).
    Placement,
    /// A plan-data-cache probe (columns or hash table); `hit` says which
    /// way it went.
    CacheLookup,
    /// Column materialisation after a cache miss.
    Materialise,
    /// Join-hash-table build after a cache miss.
    HashBuild,
    /// One execution-site kernel (simulated GPU kernel launch or the CPU
    /// site's chunk pipeline); duration is the site's reported time.
    Kernel,
    /// A partial-merge phase (`merge_scan_partials` / `merge_groups`).
    Merge,
    /// A failed attempt falling back to the next-best healthy site.
    Fallback,
    /// A typed fault surfaced by an execution site (injected or organic).
    Fault,
    /// A bounded in-place retry after a transient fault.
    Retry,
    /// A site-health state change (quarantine entered or lifted).
    Quarantine,
}

impl SpanKind {
    /// Stable lower-case label (used as the Chrome trace event name).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Placement => "placement",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::Materialise => "materialise",
            SpanKind::HashBuild => "hash_build",
            SpanKind::Kernel => "kernel",
            SpanKind::Merge => "merge",
            SpanKind::Fallback => "fallback",
            SpanKind::Fault => "fault",
            SpanKind::Retry => "retry",
            SpanKind::Quarantine => "quarantine",
        }
    }
}

/// A span as emitted by an instrumentation site. Everything an emitter may
/// know; the tracer stamps sequence, query id and timeline position.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// The measured phase.
    pub kind: SpanKind,
    /// The execution site the span belongs to, `None` for host/dispatch
    /// work (placement, cache management).
    pub site: Option<OlapTarget>,
    /// The table involved, if any (raw `TableId` index).
    pub table: Option<u64>,
    /// The snapshot epoch the work keyed on, if any.
    pub epoch: Option<u64>,
    /// Bytes moved or produced by the phase (0 when unknown).
    pub bytes: u64,
    /// Duration in seconds. Wall-clock for host phases, *simulated* seconds
    /// for site kernels — the same frame of reference as the site's
    /// reported `ExecBreakdown`, which is what makes per-query span sums
    /// comparable with the query's breakdown.
    pub dur_secs: f64,
    /// The site's time breakdown, on spans that summarise site execution.
    pub breakdown: Option<ExecBreakdown>,
    /// Cache-probe outcome (`CacheLookup` spans only).
    pub hit: Option<bool>,
}

impl SpanEvent {
    /// A zeroed event of `kind`; chain the builder setters for the rest.
    pub fn new(kind: SpanKind) -> Self {
        Self { kind, site: None, table: None, epoch: None, bytes: 0, dur_secs: 0.0, breakdown: None, hit: None }
    }

    /// Sets the execution site.
    pub fn site(mut self, site: OlapTarget) -> Self {
        self.site = Some(site);
        self
    }

    /// Sets the table id.
    pub fn table(mut self, table: u64) -> Self {
        self.table = Some(table);
        self
    }

    /// Sets the snapshot epoch.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Sets bytes moved.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Sets the duration in seconds (simulated or wall-clock).
    pub fn dur_secs(mut self, secs: f64) -> Self {
        self.dur_secs = secs;
        self
    }

    /// Attaches the site's execution breakdown.
    pub fn breakdown(mut self, b: ExecBreakdown) -> Self {
        self.breakdown = Some(b);
        self
    }

    /// Sets the cache-probe outcome.
    pub fn hit(mut self, hit: bool) -> Self {
        self.hit = Some(hit);
        self
    }
}

/// A recorded span: the event plus the tracer's stamps.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Global emission order (monotonic across threads).
    pub seq: u64,
    /// The query index active when the span was recorded.
    pub query: u64,
    /// The emitted event.
    pub event: SpanEvent,
    /// Microseconds since tracer creation at which the span *started*
    /// (recording time minus the wall-clock duration; simulated durations
    /// start at recording time).
    pub start_us: u64,
}

struct TracerInner {
    enabled: AtomicBool,
    /// Ring cursor; `fetch_add(1, Relaxed)` is the hot path's only shared
    /// write.
    cursor: AtomicU64,
    /// Current query id, stamped onto every span. OLAP dispatch is
    /// serialised under the engine's query lock, so a single cell suffices.
    query: AtomicU64,
    /// Spans dropped because their slot was contended.
    dropped: AtomicU64,
    /// Wall-clock anchor for the `start_us` timeline.
    anchor: Instant,
    /// Power-of-two ring of slots. Each slot's lock is only ever contended
    /// by a concurrent reader or a lapped writer; writers `try_lock` and
    /// drop the span on contention rather than waiting.
    slots: Box<[Mutex<Option<SpanRecord>>]>,
}

/// The shared trace handle. Cheap to clone (one `Arc`); a disabled tracer
/// costs one relaxed atomic load per would-be span.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("capacity", &self.inner.slots.len())
            .field("recorded", &self.inner.cursor.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    fn build(enabled: bool, capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let slots: Vec<Mutex<Option<SpanRecord>>> = (0..capacity).map(|_| Mutex::new(None)).collect();
        Self {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(enabled),
                cursor: AtomicU64::new(0),
                query: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                anchor: Instant::now(),
                slots: slots.into_boxed_slice(),
            }),
        }
    }

    /// A permanently cheap no-op tracer (capacity 1, disabled). The default
    /// every site starts with until the engine installs a real one.
    pub fn disabled() -> Self {
        Self::build(false, 1)
    }

    /// An enabled tracer with room for `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(true, capacity)
    }

    /// A tracer configured from [`ObsConfig`].
    pub fn from_config(config: &ObsConfig) -> Self {
        if config.tracing {
            Self::with_capacity(config.trace_capacity)
        } else {
            Self::disabled()
        }
    }

    /// Whether spans are being recorded — the one-relaxed-load guard every
    /// emission site checks before doing any other work.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Starts a wall-clock measurement, or `None` when disabled (so the
    /// disabled path never calls `Instant::now`).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.enabled().then(Instant::now)
    }

    /// Sets the query id stamped onto subsequent spans.
    pub fn set_query(&self, query: u64) {
        if self.enabled() {
            self.inner.query.store(query, Ordering::Relaxed);
        }
    }

    /// Records an event whose duration is already in `event.dur_secs`
    /// (simulated site time). The span starts at recording time.
    pub fn record(&self, event: SpanEvent) {
        if !self.enabled() {
            return;
        }
        let now_us = self.inner.anchor.elapsed().as_micros() as u64;
        self.push(event, now_us);
    }

    /// Records an event measured by wall clock: duration is
    /// `started.elapsed()` and the span starts where the measurement did.
    /// `started` comes from [`Tracer::start`]; a `None` (tracing was off at
    /// start time) records nothing.
    pub fn record_wall(&self, event: SpanEvent, started: Option<Instant>) {
        let Some(started) = started else { return };
        if !self.enabled() {
            return;
        }
        let dur = started.elapsed();
        let start_us = started.saturating_duration_since(self.inner.anchor).as_micros() as u64;
        self.push(event.dur_secs(dur.as_secs_f64()), start_us);
    }

    fn push(&self, event: SpanEvent, start_us: u64) {
        let seq = self.inner.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.inner.slots[(seq as usize) & (self.inner.slots.len() - 1)];
        match slot.try_lock() {
            Some(mut guard) => {
                *guard = Some(SpanRecord { seq, query: self.inner.query.load(Ordering::Relaxed), event, start_us })
            }
            None => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Spans dropped due to slot contention (not ring overwrites).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Total spans ever recorded (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.inner.cursor.load(Ordering::Relaxed)
    }

    /// The retained spans, oldest first. Takes each slot's lock briefly —
    /// a span being written concurrently is skipped, never waited on.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::with_capacity(self.inner.slots.len());
        for slot in self.inner.slots.iter() {
            if let Some(guard) = slot.try_lock() {
                if let Some(record) = *guard {
                    out.push(record);
                }
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Clears every retained span (the ring stays enabled).
    pub fn clear(&self) {
        for slot in self.inner.slots.iter() {
            if let Some(mut guard) = slot.try_lock() {
                *guard = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(t.start().is_none());
        t.record(SpanEvent::new(SpanKind::Kernel).dur_secs(1.0));
        t.record_wall(SpanEvent::new(SpanKind::Placement), t.start());
        assert_eq!(t.recorded(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn spans_are_stamped_in_order_with_the_current_query() {
        let t = Tracer::with_capacity(64);
        t.set_query(7);
        t.record(SpanEvent::new(SpanKind::Placement).site(OlapTarget::Gpu));
        t.set_query(8);
        t.record(SpanEvent::new(SpanKind::Kernel).site(OlapTarget::Gpu).dur_secs(0.25).bytes(1024));
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].query, 7);
        assert_eq!(spans[0].event.kind, SpanKind::Placement);
        assert_eq!(spans[1].query, 8);
        assert_eq!(spans[1].event.dur_secs, 0.25);
        assert_eq!(spans[1].event.bytes, 1024);
        assert!(spans[0].seq < spans[1].seq);
        assert!(spans[0].start_us <= spans[1].start_us);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.record(SpanEvent::new(SpanKind::Kernel).bytes(i));
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 4);
        // The four newest survive, in emission order.
        let bytes: Vec<u64> = spans.iter().map(|s| s.event.bytes).collect();
        assert_eq!(bytes, vec![6, 7, 8, 9]);
        assert_eq!(t.recorded(), 10);
    }

    #[test]
    fn wall_measurement_sets_duration_and_start() {
        let t = Tracer::with_capacity(8);
        let started = t.start();
        assert!(started.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.record_wall(SpanEvent::new(SpanKind::Materialise), started);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].event.dur_secs >= 0.002);
    }

    #[test]
    fn concurrent_recording_from_many_threads_is_safe() {
        let t = Tracer::with_capacity(1024);
        std::thread::scope(|scope| {
            for thread in 0..4u64 {
                let t = t.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        t.record(SpanEvent::new(SpanKind::Kernel).bytes(thread * 1000 + i));
                    }
                });
            }
        });
        let spans = t.snapshot();
        // 800 spans fit in 1024 slots; a handful may drop under contention.
        assert_eq!(t.recorded(), 800);
        assert!(spans.len() as u64 + t.dropped() == 800, "{} retained, {} dropped", spans.len(), t.dropped());
        // seq stamps are unique.
        let mut seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), spans.len());
    }

    #[test]
    fn config_default_is_off() {
        let cfg = ObsConfig::default();
        assert!(!cfg.tracing);
        assert!(!Tracer::from_config(&cfg).enabled());
        assert!(Tracer::from_config(&ObsConfig { tracing: true, ..cfg }).enabled());
    }
}
