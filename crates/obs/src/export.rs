//! Trace export: Chrome trace-event JSON from captured [`SpanRecord`]s.
//!
//! The output is the `{"traceEvents": [...]}` object form of the Trace
//! Event Format, loadable in Perfetto (ui.perfetto.dev) and the legacy
//! `chrome://tracing` viewer. Every span becomes a complete (`"ph":"X"`)
//! event; execution sites map to trace thread ids so each site gets its own
//! timeline row. The workspace's vendored serde is an empty marker
//! stand-in, so the JSON is hand-written — and [`json_is_valid`], a small
//! recursive-descent checker, keeps it honest under test.

use crate::trace::SpanRecord;
use h2tap_scheduler::OlapTarget;

/// Trace thread id for a span's site: host/dispatch work on row 0, each
/// execution site on its own row.
pub fn trace_tid(site: Option<OlapTarget>) -> u32 {
    match site {
        None => 0,
        Some(OlapTarget::Gpu) => 1,
        Some(OlapTarget::Cpu) => 2,
        Some(OlapTarget::MultiGpu) => 3,
    }
}

fn tid_name(tid: u32) -> &'static str {
    match tid {
        0 => "host",
        1 => "gpu-site",
        2 => "cpu-site",
        _ => "multi-gpu-site",
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn event_json(record: &SpanRecord) -> String {
    let e = &record.event;
    let tid = trace_tid(e.site);
    let dur_us = (e.dur_secs.max(0.0) * 1e6).round() as u64;
    let mut args: Vec<String> = vec![format!("\"query\":{}", record.query), format!("\"seq\":{}", record.seq)];
    if let Some(site) = e.site {
        args.push(format!("\"site\":\"{site:?}\""));
    }
    if let Some(table) = e.table {
        args.push(format!("\"table\":{table}"));
    }
    if let Some(epoch) = e.epoch {
        args.push(format!("\"epoch\":{epoch}"));
    }
    if e.bytes > 0 {
        args.push(format!("\"bytes\":{}", e.bytes));
    }
    if let Some(hit) = e.hit {
        args.push(format!("\"hit\":{hit}"));
    }
    if let Some(b) = e.breakdown {
        args.push(format!(
            "\"breakdown\":{{\"stream_secs\":{},\"compute_secs\":{},\"overhead_secs\":{}}}",
            fmt_f64(b.stream_secs),
            fmt_f64(b.compute_secs),
            fmt_f64(b.overhead_secs)
        ));
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"h2tap\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
        e.kind.label(),
        record.start_us,
        dur_us,
        tid,
        args.join(",")
    )
}

/// Serialises captured spans as Chrome trace-event JSON.
///
/// Events are emitted sorted by `(tid, start_us, seq)`, so each trace row's
/// timestamps are monotonically non-decreasing — viewers do not require
/// this, but it makes the artifact diff-stable and easy to assert on.
/// Thread-name metadata events label each row with its site.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|r| (trace_tid(r.event.site), r.start_us, r.seq));

    let mut tids: Vec<u32> = ordered.iter().map(|r| trace_tid(r.event.site)).collect();
    tids.dedup();
    tids.sort_unstable();
    tids.dedup();

    let mut events: Vec<String> = tids
        .iter()
        .map(|&tid| {
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                tid_name(tid)
            )
        })
        .collect();
    events.extend(ordered.iter().map(|r| event_json(r)));
    format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", events.join(","))
}

/// A minimal JSON validity checker (objects, arrays, strings, numbers,
/// `true`/`false`/`null`). Exists because the vendored serde stand-in has
/// no parser; used by tests to property-check every hand-written exporter.
pub fn json_is_valid(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    if !parse_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> bool {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        _ => false,
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> bool {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                // Escape: accept any single escaped byte (\uXXXX included —
                // the four hex digits parse as ordinary string bytes).
                *pos += 2;
            }
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == int_start {
        return false;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    *pos > start
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') || !parse_string(bytes, pos) {
            return false;
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(bytes, pos) {
            return false;
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(bytes, pos) {
            return false;
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanEvent, SpanKind, Tracer};
    use h2tap_common::ExecBreakdown;

    fn sample_spans(n: u64) -> Vec<SpanRecord> {
        let t = Tracer::with_capacity(256);
        for q in 0..n {
            t.set_query(q);
            t.record_wall(SpanEvent::new(SpanKind::Placement), t.start());
            t.record(SpanEvent::new(SpanKind::CacheLookup).site(OlapTarget::Gpu).table(q % 3).epoch(q).hit(q % 2 == 0));
            t.record(
                SpanEvent::new(SpanKind::Kernel)
                    .site(if q % 2 == 0 { OlapTarget::Gpu } else { OlapTarget::Cpu })
                    .bytes(4096 * (q + 1))
                    .dur_secs(1e-3 * (q + 1) as f64)
                    .breakdown(ExecBreakdown::new(1e-4, 2e-4, 3e-5)),
            );
            t.record(SpanEvent::new(SpanKind::Merge).site(OlapTarget::MultiGpu).dur_secs(5e-4));
        }
        t.snapshot()
    }

    #[test]
    fn exported_trace_is_valid_json_across_span_mixes() {
        // Property: whatever combination of optional fields the spans carry,
        // the exporter emits valid JSON.
        for n in [0, 1, 2, 7, 23] {
            let json = chrome_trace_json(&sample_spans(n));
            assert!(json_is_valid(&json), "invalid JSON for {n} queries: {json}");
            assert!(json.starts_with("{\"traceEvents\":["));
        }
    }

    #[test]
    fn events_are_complete_phase_with_consistent_per_thread_timestamps() {
        let json = chrome_trace_json(&sample_spans(9));
        // Walk the emitted events in order and check ts monotonicity per tid.
        let mut last_ts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let mut x_events = 0usize;
        for chunk in json.split("{\"name\":").skip(1) {
            if !chunk.contains("\"ph\":\"X\"") {
                continue;
            }
            x_events += 1;
            let field = |key: &str| -> u64 {
                let tail = &chunk[chunk.find(key).unwrap() + key.len()..];
                tail[..tail.find([',', '}']).unwrap()].parse().unwrap()
            };
            let (ts, dur, tid) = (field("\"ts\":"), field("\"dur\":"), field("\"tid\":"));
            let prev = last_ts.insert(tid, ts).unwrap_or(0);
            assert!(ts >= prev, "tid {tid}: ts {ts} went backwards from {prev}");
            // dur is parseable and non-negative by construction (u64).
            let _ = dur;
        }
        assert_eq!(x_events, 9 * 4);
    }

    #[test]
    fn span_metadata_lands_in_args() {
        let json = chrome_trace_json(&sample_spans(2));
        for needle in [
            "\"name\":\"placement\"",
            "\"name\":\"cache_lookup\"",
            "\"hit\":true",
            "\"hit\":false",
            "\"breakdown\":{",
            "\"stream_secs\":0.0001",
            "\"site\":\"Gpu\"",
            "\"name\":\"gpu-site\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn validator_accepts_and_rejects_correctly() {
        for good in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            "\"a \\\"quoted\\\" string\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":false}",
            " { \"x\" : 0.5 } ",
        ] {
            assert!(json_is_valid(good), "should accept {good}");
        }
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "01x", "tru", "\"unterminated", "{}extra", "[1 2]"] {
            assert!(!json_is_valid(bad), "should reject {bad}");
        }
    }
}
