//! The metrics registry: named counters, gauges and latency histograms.
//!
//! One registry per engine; every dispatch records its latency into
//! log-bucketed [`Histogram`]s (overall and per site) and bumps per-site
//! counters. [`MetricsRegistry::snapshot`] clones the current state into a
//! [`MetricsSnapshot`] — what `HtapStats::metrics` carries and what the
//! bench binary serialises into the `BENCH_*.json` artifacts.
//!
//! The three families have distinct semantics, mirroring the
//! counters/gauges split of `PlanCacheStats`: counters are monotonic,
//! gauges are point-in-time samples, histograms are mergeable
//! distributions.

use h2tap_common::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A point-in-time copy of the registry. `BTreeMap`s keep iteration (and
/// therefore every exported artifact) deterministically ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The named monotonic counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Hand-written JSON (the workspace's offline serde stand-in has no
    /// serializer): `{"counters":{...},"gauges":{...},"histograms":{name:
    /// {count,p50,p95,p99,max,mean}}}`. Keys are emitted in `BTreeMap`
    /// order, so the output is byte-stable for a given state.
    pub fn json(&self) -> String {
        let counters: Vec<String> = self.counters.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        let gauges: Vec<String> = self.gauges.iter().map(|(k, v)| format!("\"{k}\":{}", fmt_f64(*v))).collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "\"{k}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"mean\":{}}}",
                    h.count(),
                    fmt_opt(h.p50()),
                    fmt_opt(h.p95()),
                    fmt_opt(h.p99()),
                    fmt_opt(h.max()),
                    fmt_opt(h.mean()),
                )
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), fmt_f64)
}

/// The shared, thread-safe registry handle (one `Arc`-backed clone per
/// holder). Recording takes one short mutex; OLAP dispatch records once per
/// *query*, not per row, so the lock is far off the data hot path.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<MetricsSnapshot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named monotonic counter (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Overwrites the named counter with an externally tracked monotonic
    /// value (e.g. mirroring the plan cache's own hit counters).
    pub fn counter_set(&self, name: &str, value: u64) {
        self.inner.lock().counters.insert(name.to_string(), value);
    }

    /// Sets the named gauge to a point-in-time sample.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_string(), value);
    }

    /// Records one observation (seconds) into the named histogram.
    pub fn observe_secs(&self, name: &str, secs: f64) {
        self.inner.lock().histograms.entry(name.to_string()).or_default().record(secs);
    }

    /// Merges a whole histogram recorded elsewhere into the named one.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        self.inner.lock().histograms.entry(name.to_string()).or_default().merge(h);
    }

    /// A deep copy of the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().clone()
    }
}

/// The one shared percentile-line formatter: every latency report (bench
/// binary, dashboard example, JSON artifacts) renders p50/p95/p99/max the
/// same way, in milliseconds.
pub fn format_latency_secs(h: &Histogram) -> String {
    match (h.p50(), h.p95(), h.p99(), h.max()) {
        (Some(p50), Some(p95), Some(p99), Some(max)) => format!(
            "p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms | max {:.3} ms ({} samples)",
            p50 * 1e3,
            p95 * 1e3,
            p99 * 1e3,
            max * 1e3,
            h.count()
        ),
        _ => "no samples".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let m = MetricsRegistry::new();
        m.counter_add("olap.queries.gpu", 2);
        m.counter_add("olap.queries.gpu", 3);
        m.counter_set("cache.hits", 11);
        m.gauge_set("cache.occupancy_bytes", 4096.0);
        for i in 1..=100 {
            m.observe_secs("olap.latency.secs", i as f64 * 1e-3);
        }
        let s = m.snapshot();
        assert_eq!(s.counter("olap.queries.gpu"), Some(5));
        assert_eq!(s.counter("cache.hits"), Some(11));
        assert_eq!(s.gauge("cache.occupancy_bytes"), Some(4096.0));
        let h = s.histogram("olap.latency.secs").unwrap();
        assert_eq!(h.count(), 100);
        let p50 = h.p50().unwrap();
        assert!((p50 - 0.050).abs() / 0.050 < 0.05, "p50 {p50}");
        assert!(s.counter("missing").is_none());
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn merge_histogram_aggregates_thread_local_recordings() {
        let m = MetricsRegistry::new();
        let mut local_a = Histogram::new();
        let mut local_b = Histogram::new();
        for i in 0..50 {
            local_a.record(1e-3 + i as f64 * 1e-5);
            local_b.record(2e-3 + i as f64 * 1e-5);
        }
        m.merge_histogram("lat", &local_a);
        m.merge_histogram("lat", &local_b);
        assert_eq!(m.snapshot().histogram("lat").unwrap().count(), 100);
    }

    #[test]
    fn snapshot_json_is_valid_and_deterministic() {
        let m = MetricsRegistry::new();
        m.counter_add("b.count", 1);
        m.counter_add("a.count", 2);
        m.gauge_set("g", 1.5);
        m.observe_secs("h", 0.25);
        let json = m.snapshot().json();
        assert!(crate::export::json_is_valid(&json), "{json}");
        // BTreeMap ordering: "a.count" precedes "b.count".
        assert!(json.find("a.count").unwrap() < json.find("b.count").unwrap());
        assert_eq!(json, m.snapshot().json());
        // Empty histograms/maps still serialise validly.
        assert!(crate::export::json_is_valid(&MetricsSnapshot::default().json()));
    }

    #[test]
    fn latency_line_formats_percentiles_once_for_everyone() {
        let mut h = Histogram::new();
        assert_eq!(format_latency_secs(&h), "no samples");
        for _ in 0..10 {
            h.record(0.002);
        }
        let line = format_latency_secs(&h);
        assert!(line.contains("p50 2.000 ms"), "{line}");
        assert!(line.contains("p99 2.000 ms"), "{line}");
        assert!(line.contains("10 samples"), "{line}");
    }
}
