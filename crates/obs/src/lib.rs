//! Observability for the Caldera H2TAP engine.
//!
//! Three instruments, all designed to be near-free when disabled:
//!
//! * [`Tracer`] — per-query typed spans ([`SpanKind`]: placement,
//!   cache lookup, materialise, hash build, kernel, merge, fallback)
//!   recorded into a bounded ring. The hot path pays one relaxed atomic
//!   load when tracing is off and one relaxed cursor bump plus an
//!   uncontended slot store when it is on; a contended slot drops the span
//!   rather than blocking the query.
//! * [`MetricsRegistry`] — named counters, gauges and log-bucketed
//!   latency [`Histogram`]s (p50/p95/p99/max), snapshotted into
//!   `HtapStats::metrics` and the `BENCH_*.json` artifacts.
//! * [`chrome_trace_json`] — exports captured spans as Chrome
//!   trace-event JSON, loadable in Perfetto / `chrome://tracing`.
//!
//! The histogram itself lives in `h2tap_common::stats` (re-exported here)
//! so latency percentiles are available below this crate in the dependency
//! graph; this crate owns the recording and export machinery.

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{chrome_trace_json, json_is_valid};
pub use h2tap_common::Histogram;
pub use metrics::{format_latency_secs, MetricsRegistry, MetricsSnapshot};
pub use trace::{ObsConfig, SpanEvent, SpanKind, SpanRecord, Tracer};
