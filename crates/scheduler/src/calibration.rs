//! Online cost-model calibration: the placement feedback loop.
//!
//! "The scheduler can combine dynamic run-time information … with static
//! optimizer cost models." The static half lives in [`crate::placement`]; this
//! module supplies the dynamic half. Every analytical dispatch produces a
//! [`PlacementObservation`] — the hints the decision saw, the site that ran,
//! the closed-form prediction and the time the site actually reported — and
//! the [`CostCalibrator`] folds it into an exponentially-weighted regression
//! over the model's linear terms:
//!
//! * **CPU site**: the time model is `overlap(stream, tuple)` with
//!   `stream = bytes / (cores · bw)` and `tuple = rows · ns / cores`. The
//!   site reports both terms in its [`ExecBreakdown`], so each constant is a
//!   one-dimensional regression `y = θ·x` solved per observation and smoothed
//!   exponentially: effective per-core bandwidth and per-tuple nanoseconds.
//! * **GPU site**: the time model is affine in the spec-derived streaming
//!   time, `y = overhead + scale · t_stream(spec, hints)`. The site's
//!   breakdown separates launch overhead from data movement, so the intercept
//!   (dispatch overhead) and slope (bandwidth scale) are each estimated
//!   directly and smoothed.
//!
//! A hand-tuned constant that drifts from what the engines actually report is
//! a systematic mis-placement bug; with this loop it self-corrects within
//! tens of queries, and placement can flip mid-workload when one side's
//! measured behaviour changes. The sustained *signed* prediction error also
//! feeds a [`CoreMigrationPolicy`]: when one side keeps running slower than
//! its calibrated model says it should, that side is saturated and cores can
//! be shifted between archipelagos.

use crate::archipelago::ArchipelagoKind;
use crate::placement::{
    estimate_site_secs, gpu_site_stream_feature, OlapTarget, PlacementHints, SiteCapability, CPU_CACHE_LINE_BYTES,
    DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
};
use h2tap_common::{ExecBreakdown, HASH_ENTRY_BYTES};
use h2tap_gpu_sim::GpuSpec;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The calibratable constants of the placement cost model. Seeded from
/// configuration, then continuously re-estimated from measured site times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Aggregate per-tuple CPU processing cost in nanoseconds.
    pub cpu_per_tuple_ns: f64,
    /// Effective sustained per-core CPU memory bandwidth in GB/s.
    pub cpu_core_bandwidth_gbps: f64,
    /// Fixed per-query GPU dispatch cost in seconds.
    pub gpu_dispatch_overhead_secs: f64,
    /// Multiplier on the spec-derived GPU streaming time (1.0 = datasheet).
    pub gpu_bandwidth_scale: f64,
    /// Fixed per-query dispatch cost of the multi-GPU site in seconds.
    /// A separate intercept from the single GPU's: launching on every device
    /// of a shard has its own fixed cost.
    pub multi_gpu_dispatch_overhead_secs: f64,
    /// Multiplier on the multi-GPU site's streaming feature (the critical
    /// device's shard time). Per-site so each device mix converges to its
    /// own effective bandwidth.
    pub multi_gpu_bandwidth_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            cpu_per_tuple_ns: 93.0,
            cpu_core_bandwidth_gbps: 68.0 / 24.0,
            gpu_dispatch_overhead_secs: DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
            gpu_bandwidth_scale: 1.0,
            multi_gpu_dispatch_overhead_secs: DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
            multi_gpu_bandwidth_scale: 1.0,
        }
    }
}

impl CostModel {
    /// Returns `hints` with the model's calibratable constants filled in —
    /// the hook `Caldera` uses so every placement decision consults the
    /// *calibrated* model instead of the static configuration seeds.
    #[must_use]
    pub fn apply_to(&self, hints: PlacementHints) -> PlacementHints {
        PlacementHints {
            cpu_per_tuple_ns: self.cpu_per_tuple_ns,
            cpu_core_bandwidth_gbps: self.cpu_core_bandwidth_gbps,
            gpu_dispatch_overhead_secs: self.gpu_dispatch_overhead_secs,
            gpu_bandwidth_scale: self.gpu_bandwidth_scale,
            multi_gpu_dispatch_overhead_secs: self.multi_gpu_dispatch_overhead_secs,
            multi_gpu_bandwidth_scale: self.multi_gpu_bandwidth_scale,
            ..hints
        }
        .sanitized()
    }
}

/// One completed analytical dispatch, as seen by the feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementObservation {
    /// The site that actually executed the query (after any OOM fallback).
    pub site: OlapTarget,
    /// Whether the site was forced (`run_olap_on`) rather than placed.
    /// Forced observations still calibrate the model — they are ground truth
    /// about the site — but they never *came from* the placement heuristic,
    /// so they are reported separately
    /// ([`SiteCalibration::forced_observations`]) and agreement statistics
    /// must not count them.
    pub forced: bool,
    /// The placement hints the dispatch was (or would have been) decided on.
    pub hints: PlacementHints,
    /// The closed-form predicted time for `site`, in seconds.
    pub predicted_secs: f64,
    /// The simulated time the site reported, in seconds.
    pub actual_secs: f64,
    /// The site's time breakdown, when it reports one.
    pub breakdown: Option<ExecBreakdown>,
}

/// Tuning knobs of the calibrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Whether observations update the model. Error statistics are tracked
    /// either way, so a disabled calibrator still measures how wrong the
    /// static constants are.
    pub enabled: bool,
    /// EWMA gain for the model terms, in (0, 1]. Higher adapts faster but
    /// tracks noise; 0.25 converges within tens of queries.
    pub gain: f64,
    /// EWMA gain for the error statistics (kept slower than the model so
    /// "steady-state error" means something).
    pub error_gain: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self { enabled: true, gain: 0.25, error_gain: 0.1 }
    }
}

/// Per-site prediction-quality statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteCalibration {
    /// Which site the row describes.
    pub target: OlapTarget,
    /// Observations recorded for the site (placed and forced).
    pub observations: u64,
    /// How many of those came from forced dispatches (`run_olap_on`) rather
    /// than the placement heuristic — they calibrate the model like any
    /// other observation, but agreement/placement statistics must not count
    /// them as decisions.
    pub forced_observations: u64,
    /// Exponentially-weighted mean of `|predicted - actual| / actual` — the
    /// headline "how well does the model predict this site" number.
    pub mean_rel_error: f64,
    /// Exponentially-weighted mean of `(actual - predicted) / actual`.
    /// Persistently positive means the site keeps running slower than its
    /// calibrated model — the saturation signal the migration policy watches.
    pub signed_error: f64,
    /// Most recent prediction, in seconds.
    pub last_predicted_secs: f64,
    /// Most recent site-reported time, in seconds.
    pub last_actual_secs: f64,
    /// Valid (finite, positive-time) error samples folded into the EWMAs.
    /// Kept separate from `observations` so a degenerate first observation
    /// cannot consume the EWMA seed slot and dilute later real samples.
    error_samples: u64,
}

impl SiteCalibration {
    fn new(target: OlapTarget) -> Self {
        Self {
            target,
            observations: 0,
            forced_observations: 0,
            mean_rel_error: 0.0,
            signed_error: 0.0,
            last_predicted_secs: 0.0,
            last_actual_secs: 0.0,
            error_samples: 0,
        }
    }

    fn record(&mut self, predicted: f64, actual: f64, forced: bool, gain: f64) {
        self.observations += 1;
        self.forced_observations += u64::from(forced);
        self.last_predicted_secs = predicted;
        self.last_actual_secs = actual;
        if actual <= 0.0 || !predicted.is_finite() || !actual.is_finite() {
            return;
        }
        let rel = (predicted - actual).abs() / actual;
        let signed = (actual - predicted) / actual;
        // Seed the EWMAs with the first *valid* sample so early readings are
        // not dragged toward an arbitrary zero start.
        self.error_samples += 1;
        if self.error_samples == 1 {
            self.mean_rel_error = rel;
            self.signed_error = signed;
        } else {
            self.mean_rel_error += gain * (rel - self.mean_rel_error);
            self.signed_error += gain * (signed - self.signed_error);
        }
    }
}

/// One site's estimated time as seen by a placement decision — a row of the
/// N-way comparison a [`PlacementExplanation`] preserves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteSecsEstimate {
    /// The site the estimate is for.
    pub target: OlapTarget,
    /// Estimated execution time in seconds (`INFINITY` = ineligible, e.g.
    /// the working set does not fit the GPU).
    pub secs: f64,
}

/// Why a dispatch went where it went: the full N-way estimate comparison,
/// the chosen and executed sites, the observed time and the decision's
/// regret against the estimate-oracle (the site the *post-observation*
/// model says was fastest). Produced by [`CostCalibrator::explain_dispatch`]
/// after each query and exposed through `HtapStats::placements`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementExplanation {
    /// The engine's query index for this dispatch.
    pub query: u64,
    /// Every site's estimated time under the current (post-update) model,
    /// in the engine's capability order.
    pub estimates: Vec<SiteSecsEstimate>,
    /// The site placement picked (or the caller forced).
    pub chosen: OlapTarget,
    /// The site that actually ran the query (differs from `chosen` after an
    /// OOM fallback).
    pub executed: OlapTarget,
    /// Whether the caller forced the site rather than letting placement
    /// decide (forced dispatches are excluded from regret accounting — they
    /// are not the heuristic's decisions).
    pub forced: bool,
    /// The simulated time the executing site reported, in seconds.
    pub actual_secs: f64,
    /// `est(executed) - min(est)`: how much slower the model believes the
    /// executed site is than the best available one. Zero when the decision
    /// agrees with the oracle.
    pub regret_secs: f64,
    /// Whether the post-update model would have placed the query elsewhere.
    pub misplaced: bool,
}

impl PlacementExplanation {
    /// The estimate row for `target`.
    pub fn estimate(&self, target: OlapTarget) -> Option<f64> {
        self.estimates.iter().find(|e| e.target == target).map(|e| e.secs)
    }
}

/// Running regret of the placement heuristic against the forced-site oracle
/// (the per-query argmin of the calibrated estimates). Forced dispatches are
/// not counted — they are ground truth for the model, not decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RegretSummary {
    /// Placement decisions accounted (non-forced dispatches).
    pub decisions: u64,
    /// Decisions where the post-update model prefers a different site.
    pub misplacements: u64,
    /// Summed `regret_secs` over all counted decisions.
    pub total_regret_secs: f64,
}

impl RegretSummary {
    /// Mean per-decision regret in seconds (`None` before any decision).
    pub fn mean_regret_secs(&self) -> Option<f64> {
        (self.decisions > 0).then(|| self.total_regret_secs / self.decisions as f64)
    }

    fn record(&mut self, explanation: &PlacementExplanation) {
        if explanation.forced {
            return;
        }
        self.decisions += 1;
        self.misplacements += u64::from(explanation.misplaced);
        if explanation.regret_secs.is_finite() {
            self.total_regret_secs += explanation.regret_secs;
        }
    }
}

/// Snapshot of the feedback loop's state, exposed through `HtapStats`.
/// The `Default` value (no sites, zero observations) is only a placeholder
/// for empty statistics; a live engine always reports both sites.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Whether observations were updating the model.
    pub enabled: bool,
    /// Observations folded in so far (all sites).
    pub observations: u64,
    /// The current calibrated model.
    pub model: CostModel,
    /// Per-site prediction-quality rows, GPU first.
    pub sites: Vec<SiteCalibration>,
    /// Running placement regret vs the estimate-oracle.
    pub regret: RegretSummary,
}

impl CalibrationReport {
    /// The row for `target`.
    pub fn site(&self, target: OlapTarget) -> Option<&SiteCalibration> {
        self.sites.iter().find(|s| s.target == target)
    }
}

/// The online estimator: holds the current [`CostModel`] and re-fits its
/// terms from every [`PlacementObservation`].
#[derive(Debug, Clone)]
pub struct CostCalibrator {
    cfg: CalibrationConfig,
    model: CostModel,
    gpu: SiteCalibration,
    cpu: SiteCalibration,
    multi_gpu: SiteCalibration,
    regret: RegretSummary,
    recent: VecDeque<PlacementExplanation>,
}

/// How many [`PlacementExplanation`]s the calibrator retains for
/// `HtapStats::placements`. Bounded so a long workload cannot grow the
/// engine's statistics without limit.
pub const RECENT_PLACEMENTS_CAP: usize = 64;

/// Bytes the CPU model charges to the bandwidth term for one query — the
/// *hint-side* (pre-execution) bytes, deliberately: placement only ever sees
/// hint features, so inverting against them makes the calibrated constant an
/// **effective** bandwidth that absorbs whatever the hints cannot express
/// (zonemap skipping, join selectivity). Predictions then match what the
/// site actually reports for the observed workload class; the cost is that
/// the constant tracks the recent class rather than physical hardware, which
/// is why samples are trust-region-clamped below and why per-query-class
/// calibration is the recorded ROADMAP follow-on.
fn cpu_stream_bytes(hints: &PlacementHints) -> f64 {
    let cache_waste = (CPU_CACHE_LINE_BYTES / HASH_ENTRY_BYTES) as f64;
    hints.bytes_to_scan as f64 + hints.random_access_bytes as f64 * cache_waste
}

/// Largest multiplicative move a single observation may propose. EWMA steps
/// toward `sample`, but a workload whose effective constants differ wildly
/// from the model's (a 97%-zonemap-skipped scan implies a ~30x "effective"
/// bandwidth) must bend the model gradually — sustained evidence still gets
/// there, one outlier cannot teleport placement.
const MAX_SAMPLE_STEP: f64 = 4.0;

/// EWMA step toward `sample`, ignoring non-finite or out-of-range samples so
/// one degenerate observation (zero-byte breakdown, infinite ratio) cannot
/// wreck the model, and clamping each sample into a trust region of
/// [`MAX_SAMPLE_STEP`] around the current estimate.
fn ewma_toward(current: &mut f64, sample: f64, gain: f64, lo: f64, hi: f64) {
    if sample.is_finite() && sample >= lo && sample <= hi {
        let stepped =
            if *current > 0.0 { sample.clamp(*current / MAX_SAMPLE_STEP, *current * MAX_SAMPLE_STEP) } else { sample };
        *current += gain * (stepped - *current);
    }
}

impl CostCalibrator {
    /// Creates a calibrator seeded with `model`.
    pub fn new(cfg: CalibrationConfig, model: CostModel) -> Self {
        Self {
            cfg,
            model,
            gpu: SiteCalibration::new(OlapTarget::Gpu),
            cpu: SiteCalibration::new(OlapTarget::Cpu),
            multi_gpu: SiteCalibration::new(OlapTarget::MultiGpu),
            regret: RegretSummary::default(),
            recent: VecDeque::new(),
        }
    }

    /// The current calibrated model.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Folds one completed dispatch into the error statistics and (when
    /// enabled) the model terms, for the classic CPU + single-GPU pair.
    /// `gpu` is the device the GPU-side streaming feature is computed
    /// against — the same spec placement used. Engines with more sites call
    /// [`CostCalibrator::observe_sites`] with their enumerated capabilities.
    pub fn observe(&mut self, gpu: &GpuSpec, obs: &PlacementObservation) {
        let sites =
            [SiteCapability::single_gpu(gpu, &obs.hints), SiteCapability::Cpu { cores: obs.hints.available_cpu_cores }];
        self.observe_sites(&sites, obs);
    }

    /// Folds one completed dispatch into the error statistics and (when
    /// enabled) the model terms. `sites` are the engine's enumerated
    /// capabilities — the GPU-family streaming feature of the observed site
    /// (critical device's shard time) is computed from them, which is what
    /// lets the bandwidth scale converge **per device mix**.
    pub fn observe_sites(&mut self, sites: &[SiteCapability], obs: &PlacementObservation) {
        let row = match obs.site {
            OlapTarget::Gpu => &mut self.gpu,
            OlapTarget::Cpu => &mut self.cpu,
            OlapTarget::MultiGpu => &mut self.multi_gpu,
        };
        row.record(obs.predicted_secs, obs.actual_secs, obs.forced, self.cfg.error_gain);
        if !self.cfg.enabled || !obs.actual_secs.is_finite() || obs.actual_secs <= 0.0 {
            return;
        }
        let hints = obs.hints.sanitized();
        let gain = self.cfg.gain;
        match obs.site {
            OlapTarget::Cpu => {
                let Some(b) = obs.breakdown else { return };
                let cores = f64::from(hints.available_cpu_cores.max(1));
                // tuple = rows · ns / cores  ⇒  ns = tuple · cores / rows.
                if hints.rows > 0 && b.compute_secs > 0.0 {
                    let ns = b.compute_secs * 1e9 * cores / hints.rows as f64;
                    ewma_toward(&mut self.model.cpu_per_tuple_ns, ns, gain, 0.0, 1e6);
                }
                // stream = bytes / (cores · bw · 1e9)  ⇒  bw = bytes / (stream · cores · 1e9).
                let bytes = cpu_stream_bytes(&hints);
                if bytes > 0.0 && b.stream_secs > 0.0 {
                    let bw = bytes / (b.stream_secs * cores * 1e9);
                    ewma_toward(&mut self.model.cpu_core_bandwidth_gbps, bw, gain, 1e-3, 1e4);
                }
            }
            OlapTarget::Gpu | OlapTarget::MultiGpu => {
                // The streaming feature comes from the observed site's own
                // device list; without it no bandwidth term is attributable.
                let Some(SiteCapability::Gpu { devices, .. }) = sites.iter().find(|s| s.target() == obs.site) else {
                    return;
                };
                let stream_feature = gpu_site_stream_feature(devices, &hints);
                let (mut overhead, mut scale) = match obs.site {
                    OlapTarget::Gpu => (self.model.gpu_dispatch_overhead_secs, self.model.gpu_bandwidth_scale),
                    _ => (self.model.multi_gpu_dispatch_overhead_secs, self.model.multi_gpu_bandwidth_scale),
                };
                match obs.breakdown {
                    Some(b) => {
                        ewma_toward(&mut overhead, b.overhead_secs, gain, 0.0, 1.0);
                        if stream_feature > 1e-12 && b.stream_secs > 0.0 {
                            let sample = b.stream_secs / stream_feature;
                            ewma_toward(&mut scale, sample, gain, 1e-2, 1e2);
                        }
                    }
                    None => {
                        // Without a breakdown only the intercept is
                        // attributable: whatever the bandwidth terms cannot
                        // explain is charged to the dispatch overhead.
                        let residual = (obs.actual_secs - scale * stream_feature).max(0.0);
                        ewma_toward(&mut overhead, residual, gain, 0.0, 1.0);
                    }
                }
                match obs.site {
                    OlapTarget::Gpu => {
                        self.model.gpu_dispatch_overhead_secs = overhead;
                        self.model.gpu_bandwidth_scale = scale;
                    }
                    _ => {
                        self.model.multi_gpu_dispatch_overhead_secs = overhead;
                        self.model.multi_gpu_bandwidth_scale = scale;
                    }
                }
            }
        }
    }

    /// Explains one completed dispatch against the *post-observation* model:
    /// re-estimates every capability with the freshly calibrated constants,
    /// derives the decision's regret versus the per-query oracle (the argmin
    /// of those estimates) and folds it into the running [`RegretSummary`].
    /// Call after [`CostCalibrator::observe_sites`] for the same dispatch.
    /// The explanation is retained (ring of [`RECENT_PLACEMENTS_CAP`]) for
    /// `HtapStats::placements`.
    pub fn explain_dispatch(
        &mut self,
        sites: &[SiteCapability],
        chosen: OlapTarget,
        obs: &PlacementObservation,
        query: u64,
    ) -> &PlacementExplanation {
        let hints = self.model.apply_to(obs.hints);
        let estimates: Vec<SiteSecsEstimate> = sites
            .iter()
            .map(|site| SiteSecsEstimate { target: site.target(), secs: estimate_site_secs(site, &hints) })
            .collect();
        let best = estimates.iter().map(|e| e.secs).filter(|s| s.is_finite()).fold(f64::INFINITY, f64::min);
        let executed_secs = estimates.iter().find(|e| e.target == obs.site).map(|e| e.secs).unwrap_or(f64::INFINITY);
        let regret_secs =
            if best.is_finite() && executed_secs.is_finite() { (executed_secs - best).max(0.0) } else { 0.0 };
        let explanation = PlacementExplanation {
            query,
            estimates,
            chosen,
            executed: obs.site,
            forced: obs.forced,
            actual_secs: obs.actual_secs,
            regret_secs,
            misplaced: regret_secs > 0.0,
        };
        self.regret.record(&explanation);
        if self.recent.len() == RECENT_PLACEMENTS_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(explanation);
        // h2tap: allow(panic) — back() directly after push_back on a non-empty deque cannot be None.
        self.recent.back().expect("just pushed")
    }

    /// The retained placement explanations, oldest first (bounded at
    /// [`RECENT_PLACEMENTS_CAP`]).
    pub fn recent_placements(&self) -> impl Iterator<Item = &PlacementExplanation> {
        self.recent.iter()
    }

    /// A snapshot of the current state for statistics reporting.
    pub fn report(&self) -> CalibrationReport {
        CalibrationReport {
            enabled: self.cfg.enabled,
            observations: self.gpu.observations + self.cpu.observations + self.multi_gpu.observations,
            model: self.model,
            sites: vec![self.gpu, self.cpu, self.multi_gpu],
            regret: self.regret,
        }
    }
}

/// A recommendation to move one CPU core between archipelagos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMigration {
    /// Archipelago losing a core.
    pub from: ArchipelagoKind,
    /// Archipelago gaining a core.
    pub to: ArchipelagoKind,
}

/// Policy hook consulted after every placement observation: given the current
/// calibration report and core counts, optionally recommend shifting one core
/// between the archipelagos. The engine applies the recommendation through
/// the scheduler (which enforces its own invariants, e.g. the task-parallel
/// archipelago can never be emptied).
pub trait CoreMigrationPolicy: Send {
    /// Returns the migration to apply now, if any. Recommending must not
    /// commit any rate-limiting state: the engine may fail to apply the
    /// move (scheduler invariants, a racing manual migration), and a policy
    /// that burns its cooldown on a refused move goes silent for a whole
    /// cooldown window while the saturation it detected persists.
    fn recommend(
        &mut self,
        report: &CalibrationReport,
        data_parallel_cores: u32,
        task_parallel_cores: u32,
    ) -> Option<CoreMigration>;

    /// Called by the engine after a recommended migration was actually
    /// applied. Policies that rate-limit themselves commit their cooldown
    /// state here; the default is stateless and does nothing.
    fn commit(&mut self, report: &CalibrationReport) {
        let _ = report;
    }
}

/// Error-driven elasticity: when the CPU site's *sustained signed* prediction
/// error shows it running slower than its calibrated model — the side is
/// saturated, queries queue behind too few cores — shift a core from the
/// task-parallel archipelago into the data-parallel one; when it runs
/// persistently faster than predicted, the side is overprovisioned and a core
/// flows back to transactions.
#[derive(Debug, Clone)]
pub struct SaturationMigrationPolicy {
    /// Sustained signed error (fraction of actual time) that triggers a
    /// migration in either direction.
    pub signed_error_threshold: f64,
    /// Minimum CPU-site observations before the policy acts at all.
    pub min_observations: u64,
    /// Cores the task-parallel archipelago must keep.
    pub min_task_cores: u32,
    /// Observations to wait between migrations, so one burst of error moves
    /// one core, not the whole archipelago.
    pub cooldown: u64,
    last_migration_at: Option<u64>,
}

impl Default for SaturationMigrationPolicy {
    fn default() -> Self {
        Self {
            signed_error_threshold: 0.25,
            min_observations: 8,
            min_task_cores: 1,
            cooldown: 4,
            last_migration_at: None,
        }
    }
}

impl SaturationMigrationPolicy {
    /// Sets the sustained signed-error threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.signed_error_threshold = threshold;
        self
    }

    /// Sets the minimum CPU-site observation count before the policy acts.
    #[must_use]
    pub fn with_min_observations(mut self, min: u64) -> Self {
        self.min_observations = min;
        self
    }

    /// Sets the observation cooldown between migrations.
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: u64) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Sets the task-parallel archipelago's core floor.
    #[must_use]
    pub fn with_min_task_cores(mut self, cores: u32) -> Self {
        self.min_task_cores = cores;
        self
    }
}

impl CoreMigrationPolicy for SaturationMigrationPolicy {
    fn recommend(
        &mut self,
        report: &CalibrationReport,
        data_parallel_cores: u32,
        task_parallel_cores: u32,
    ) -> Option<CoreMigration> {
        let cpu = report.site(OlapTarget::Cpu)?;
        if cpu.observations < self.min_observations {
            return None;
        }
        if let Some(at) = self.last_migration_at {
            if report.observations.saturating_sub(at) < self.cooldown {
                return None;
            }
        }
        if cpu.signed_error > self.signed_error_threshold && task_parallel_cores > self.min_task_cores {
            Some(CoreMigration { from: ArchipelagoKind::TaskParallel, to: ArchipelagoKind::DataParallel })
        } else if cpu.signed_error < -self.signed_error_threshold && data_parallel_cores > 1 {
            Some(CoreMigration { from: ArchipelagoKind::DataParallel, to: ArchipelagoKind::TaskParallel })
        } else {
            None
        }
    }

    fn commit(&mut self, report: &CalibrationReport) {
        self.last_migration_at = Some(report.observations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{cpu_term_secs, gpu_streaming_secs, GpuDeviceCapability};

    /// Emulates a CPU site whose true constants differ from the model seeds:
    /// builds the observation a dispatch over `rows`/`bytes` would produce.
    fn cpu_observation(model: &CostModel, rows: u64, bytes: u64, cores: u32) -> PlacementObservation {
        const TRUE_NS: f64 = 93.0;
        const TRUE_BW: f64 = 68.0 / 24.0;
        let hints = model.apply_to(PlacementHints {
            bytes_to_scan: bytes,
            rows,
            available_cpu_cores: cores,
            ..PlacementHints::default()
        });
        let stream = bytes as f64 / (f64::from(cores) * TRUE_BW * 1e9);
        let tuple = rows as f64 * TRUE_NS * 1e-9 / f64::from(cores);
        let actual = crate::placement::overlap_secs(stream, tuple);
        let (pred_stream, pred_tuple) = cpu_term_secs(&hints);
        PlacementObservation {
            site: OlapTarget::Cpu,
            forced: false,
            hints,
            predicted_secs: crate::placement::overlap_secs(pred_stream, pred_tuple),
            actual_secs: actual,
            breakdown: Some(ExecBreakdown::new(stream, tuple, 0.0)),
        }
    }

    #[test]
    fn cpu_terms_recalibrate_from_wrong_seeds() {
        // Per-tuple cost seeded 2x too high, bandwidth 2x too low.
        let seed = CostModel { cpu_per_tuple_ns: 186.0, cpu_core_bandwidth_gbps: 68.0 / 48.0, ..CostModel::default() };
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), seed);
        let gpu = GpuSpec::gtx_980();
        for i in 0..40u64 {
            let rows = 10_000 + (i % 5) * 20_000;
            let obs = cpu_observation(&cal.model(), rows, rows * 16, 24);
            cal.observe(&gpu, &obs);
        }
        let m = cal.model();
        assert!((m.cpu_per_tuple_ns - 93.0).abs() / 93.0 < 0.02, "per-tuple {}", m.cpu_per_tuple_ns);
        assert!(
            (m.cpu_core_bandwidth_gbps - 68.0 / 24.0).abs() / (68.0 / 24.0) < 0.02,
            "bw {}",
            m.cpu_core_bandwidth_gbps
        );
        // Steady state: the model predicts the site within a few percent.
        let report = cal.report();
        assert!(report.site(OlapTarget::Cpu).unwrap().mean_rel_error < 0.10, "{report:?}");
    }

    #[test]
    fn gpu_overhead_and_scale_recalibrate() {
        // Overhead seeded 5x too low, true device 20% slower than datasheet.
        let seed = CostModel { gpu_dispatch_overhead_secs: 6e-6, ..CostModel::default() };
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), seed);
        let gpu = GpuSpec::gtx_980();
        const TRUE_OVERHEAD: f64 = 32e-6;
        const TRUE_SCALE: f64 = 1.2;
        for i in 0..40u64 {
            let bytes = (1 + i % 4) * (8 << 20);
            let hints = cal.model().apply_to(PlacementHints {
                bytes_to_scan: bytes,
                available_cpu_cores: 24,
                ..PlacementHints::default()
            });
            let stream_feature = gpu_streaming_secs(&gpu, &hints);
            let actual_stream = TRUE_SCALE * stream_feature;
            let obs = PlacementObservation {
                site: OlapTarget::Gpu,
                forced: false,
                hints,
                predicted_secs: hints.gpu_dispatch_overhead_secs + hints.gpu_bandwidth_scale * stream_feature,
                actual_secs: TRUE_OVERHEAD + actual_stream,
                breakdown: Some(ExecBreakdown::new(actual_stream, 0.0, TRUE_OVERHEAD)),
            };
            cal.observe(&gpu, &obs);
        }
        let m = cal.model();
        assert!((m.gpu_dispatch_overhead_secs - TRUE_OVERHEAD).abs() / TRUE_OVERHEAD < 0.02, "{m:?}");
        assert!((m.gpu_bandwidth_scale - TRUE_SCALE).abs() / TRUE_SCALE < 0.02, "{m:?}");
        assert!(cal.report().site(OlapTarget::Gpu).unwrap().mean_rel_error < 0.10);
    }

    #[test]
    fn multi_gpu_terms_recalibrate_independently_of_the_single_gpu() {
        // Multi-GPU bandwidth scale seeded 3x too high; the single GPU's
        // terms must not move from multi-GPU observations (per-site terms).
        let seed = CostModel { multi_gpu_bandwidth_scale: 3.0, ..CostModel::default() };
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), seed);
        let device =
            |spec: GpuSpec| GpuDeviceCapability { spec, shard_fraction: 0.5, resident_fraction: 1.0, free_bytes: None };
        let sites = [
            SiteCapability::single_gpu(&GpuSpec::gtx_980(), &PlacementHints::default()),
            SiteCapability::Cpu { cores: 24 },
            SiteCapability::Gpu {
                target: OlapTarget::MultiGpu,
                devices: vec![device(GpuSpec::gtx_980()), device(GpuSpec::gtx_980())],
            },
        ];
        const TRUE_SCALE: f64 = 1.1;
        const TRUE_OVERHEAD: f64 = 40e-6;
        for i in 0..40u64 {
            let bytes = (1 + i % 4) * (8 << 20);
            let hints = cal.model().apply_to(PlacementHints {
                bytes_to_scan: bytes,
                gpu_resident_fraction: 1.0,
                available_cpu_cores: 24,
                ..PlacementHints::default()
            });
            let feature = gpu_site_stream_feature(
                match &sites[2] {
                    SiteCapability::Gpu { devices, .. } => devices,
                    _ => unreachable!(),
                },
                &hints,
            );
            let actual_stream = TRUE_SCALE * feature;
            let obs = PlacementObservation {
                site: OlapTarget::MultiGpu,
                forced: true,
                hints,
                predicted_secs: hints.multi_gpu_dispatch_overhead_secs + hints.multi_gpu_bandwidth_scale * feature,
                actual_secs: TRUE_OVERHEAD + actual_stream,
                breakdown: Some(ExecBreakdown::new(actual_stream, 0.0, TRUE_OVERHEAD)),
            };
            cal.observe_sites(&sites, &obs);
        }
        let m = cal.model();
        assert!((m.multi_gpu_bandwidth_scale - TRUE_SCALE).abs() / TRUE_SCALE < 0.05, "{m:?}");
        assert!((m.multi_gpu_dispatch_overhead_secs - TRUE_OVERHEAD).abs() / TRUE_OVERHEAD < 0.05, "{m:?}");
        // The single-GPU terms never moved.
        assert_eq!(m.gpu_bandwidth_scale, seed.gpu_bandwidth_scale);
        assert_eq!(m.gpu_dispatch_overhead_secs, seed.gpu_dispatch_overhead_secs);
        let report = cal.report();
        let row = report.site(OlapTarget::MultiGpu).unwrap();
        assert_eq!(row.observations, 40);
        assert_eq!(row.forced_observations, 40);
        assert!(row.mean_rel_error.is_finite());
        // The report now carries three rows, GPU first, CPU second (the
        // index the migration policy tests rely on).
        assert_eq!(report.sites.len(), 3);
        assert_eq!(report.sites[0].target, OlapTarget::Gpu);
        assert_eq!(report.sites[1].target, OlapTarget::Cpu);
        assert_eq!(report.sites[2].target, OlapTarget::MultiGpu);
    }

    #[test]
    fn disabled_calibration_tracks_error_but_freezes_the_model() {
        let seed = CostModel { cpu_per_tuple_ns: 186.0, ..CostModel::default() };
        let cfg = CalibrationConfig { enabled: false, ..CalibrationConfig::default() };
        let mut cal = CostCalibrator::new(cfg, seed);
        let gpu = GpuSpec::gtx_980();
        for _ in 0..10 {
            let obs = cpu_observation(&cal.model(), 1_000_000, 16_000_000, 24);
            cal.observe(&gpu, &obs);
        }
        assert_eq!(cal.model(), seed, "disabled calibration must not move the model");
        let report = cal.report();
        let cpu = report.site(OlapTarget::Cpu).unwrap();
        assert_eq!(cpu.observations, 10);
        assert!(cpu.mean_rel_error > 0.3, "2x-wrong per-tuple cost must show up as error: {cpu:?}");
    }

    #[test]
    fn one_outlier_sample_moves_the_model_only_within_the_trust_region() {
        // A 97%-zonemap-skipped scan reports a stream time implying a ~30x
        // "effective" bandwidth. One such observation may bend the model by
        // at most gain * (MAX_SAMPLE_STEP - 1); sustained evidence still
        // converges, a single outlier cannot teleport placement.
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), CostModel::default());
        let before = cal.model().cpu_core_bandwidth_gbps;
        let gpu = GpuSpec::gtx_980();
        let hints = cal.model().apply_to(PlacementHints {
            bytes_to_scan: 150_000 * 28,
            rows: 150_000,
            available_cpu_cores: 24,
            ..PlacementHints::default()
        });
        let implied_stream = 150_000.0 * 28.0 / (24.0 * before * 1e9);
        let obs = PlacementObservation {
            site: OlapTarget::Cpu,
            forced: true,
            hints,
            predicted_secs: implied_stream,
            actual_secs: implied_stream / 30.0,
            // Stream time 30x shorter than the hint bytes imply.
            breakdown: Some(ExecBreakdown::new(implied_stream / 30.0, 1e-4, 0.0)),
        };
        cal.observe(&gpu, &obs);
        let after = cal.model().cpu_core_bandwidth_gbps;
        assert!(after > before, "the sample must still pull the estimate up");
        assert!(
            after <= before * (1.0 + 0.25 * (MAX_SAMPLE_STEP - 1.0)) + 1e-9,
            "one observation moved bandwidth {before} -> {after}, beyond the trust region"
        );
        // Sustained identical evidence keeps converging toward the sample.
        for _ in 0..40 {
            cal.observe(&gpu, &obs);
        }
        assert!(cal.model().cpu_core_bandwidth_gbps > before * 10.0, "sustained evidence must still get there");
    }

    #[test]
    fn degenerate_first_observation_does_not_consume_the_ewma_seed() {
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), CostModel::default());
        let gpu = GpuSpec::gtx_980();
        let hints = PlacementHints { available_cpu_cores: 4, ..PlacementHints::default() };
        // First observation is degenerate (zero actual time): no error sample.
        cal.observe(
            &gpu,
            &PlacementObservation {
                site: OlapTarget::Cpu,
                forced: false,
                hints,
                predicted_secs: 1.0,
                actual_secs: 0.0,
                breakdown: None,
            },
        );
        // The first *valid* sample must seed the EWMA outright, not be
        // diluted toward the artificial 0.0 start.
        cal.observe(
            &gpu,
            &PlacementObservation {
                site: OlapTarget::Cpu,
                forced: false,
                hints,
                predicted_secs: 2.0,
                actual_secs: 1.0,
                breakdown: None,
            },
        );
        let cpu = cal.report();
        let cpu = cpu.site(OlapTarget::Cpu).unwrap();
        assert_eq!(cpu.observations, 2);
        assert_eq!(cpu.mean_rel_error, 1.0, "a 2x-wrong prediction must read as 100% error, not 10%");
    }

    #[test]
    fn forced_observations_are_counted_separately() {
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), CostModel::default());
        let gpu = GpuSpec::gtx_980();
        for forced in [true, true, false] {
            let mut obs = cpu_observation(&cal.model(), 10_000, 160_000, 8);
            obs.forced = forced;
            cal.observe(&gpu, &obs);
        }
        let report = cal.report();
        let cpu = report.site(OlapTarget::Cpu).unwrap();
        assert_eq!(cpu.observations, 3);
        assert_eq!(cpu.forced_observations, 2);
    }

    #[test]
    fn degenerate_observations_cannot_wreck_the_model() {
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), CostModel::default());
        let before = cal.model();
        let gpu = GpuSpec::gtx_980();
        let hints = PlacementHints { bytes_to_scan: 0, rows: 0, available_cpu_cores: 4, ..PlacementHints::default() };
        for actual in [f64::NAN, 0.0, -1.0] {
            cal.observe(
                &gpu,
                &PlacementObservation {
                    site: OlapTarget::Cpu,
                    forced: true,
                    hints,
                    predicted_secs: f64::NAN,
                    actual_secs: actual,
                    breakdown: Some(ExecBreakdown::new(f64::NAN, f64::INFINITY, -1.0)),
                },
            );
        }
        assert_eq!(cal.model(), before);
        assert!(cal.report().site(OlapTarget::Cpu).unwrap().mean_rel_error.is_finite());
    }

    #[test]
    fn saturation_policy_migrates_on_sustained_error_with_cooldown() {
        let mut policy = SaturationMigrationPolicy {
            signed_error_threshold: 0.2,
            min_observations: 2,
            cooldown: 3,
            ..SaturationMigrationPolicy::default()
        };
        let mut report = CostCalibrator::new(CalibrationConfig::default(), CostModel::default()).report();
        // Not enough observations yet.
        assert!(policy.recommend(&report, 2, 4).is_none());
        report.sites[1].observations = 5;
        report.sites[1].signed_error = 0.5; // CPU persistently slower: saturated.
        report.observations = 5;
        let m = policy.recommend(&report, 2, 4).expect("saturated CPU side pulls a core");
        assert_eq!(m.from, ArchipelagoKind::TaskParallel);
        assert_eq!(m.to, ArchipelagoKind::DataParallel);
        policy.commit(&report);
        // Cooldown: no second migration until more observations arrive.
        assert!(policy.recommend(&report, 3, 3).is_none());
        report.observations = 9;
        assert!(policy.recommend(&report, 3, 3).is_some());
        policy.commit(&report);
        // Overprovisioned CPU side returns a core to transactions.
        report.observations = 20;
        report.sites[1].signed_error = -0.5;
        let back = policy.recommend(&report, 3, 3).expect("overprovisioned side gives a core back");
        assert_eq!(back.from, ArchipelagoKind::DataParallel);
        policy.commit(&report);
        // The task-parallel floor is respected.
        report.observations = 40;
        report.sites[1].signed_error = 0.5;
        assert!(policy.recommend(&report, 7, 1).is_none(), "task archipelago at its floor");
    }

    #[test]
    fn uncommitted_recommendations_do_not_burn_the_cooldown() {
        // A recommendation the engine could not apply (the scheduler refused
        // the move) must not start the cooldown window: the policy keeps
        // recommending at every observation until one move actually lands.
        let mut policy = SaturationMigrationPolicy {
            signed_error_threshold: 0.2,
            min_observations: 2,
            cooldown: 100,
            ..SaturationMigrationPolicy::default()
        };
        let mut report = CostCalibrator::new(CalibrationConfig::default(), CostModel::default()).report();
        report.sites[1].observations = 5;
        report.sites[1].signed_error = 0.5;
        report.observations = 5;
        for _ in 0..3 {
            assert!(policy.recommend(&report, 2, 4).is_some(), "refused moves leave the policy armed");
        }
        // Once a move is committed, the (long) cooldown finally engages.
        policy.commit(&report);
        report.observations = 6;
        assert!(policy.recommend(&report, 3, 3).is_none());
    }

    #[test]
    fn explain_dispatch_computes_estimates_regret_and_misplacement() {
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), CostModel::default());
        let gpu = GpuSpec::gtx_980();
        let sites = [SiteCapability::single_gpu(&gpu, &PlacementHints::default()), SiteCapability::Cpu { cores: 24 }];
        // A tiny scan: dispatch overhead dominates, the CPU wins the
        // estimate comparison; executing on the GPU is a misplacement.
        let hints = cal.model().apply_to(PlacementHints {
            bytes_to_scan: 4096,
            rows: 128,
            available_cpu_cores: 24,
            ..PlacementHints::default()
        });
        let obs = PlacementObservation {
            site: OlapTarget::Gpu,
            forced: false,
            hints,
            predicted_secs: 1e-5,
            actual_secs: 1e-5,
            breakdown: None,
        };
        let e = cal.explain_dispatch(&sites, OlapTarget::Gpu, &obs, 3).clone();
        assert_eq!(e.query, 3);
        assert_eq!(e.estimates.len(), 2);
        assert_eq!(e.chosen, OlapTarget::Gpu);
        assert_eq!(e.executed, OlapTarget::Gpu);
        let est_gpu = e.estimate(OlapTarget::Gpu).unwrap();
        let est_cpu = e.estimate(OlapTarget::Cpu).unwrap();
        assert!(est_cpu < est_gpu, "tiny scan: CPU beats GPU overhead ({est_cpu} vs {est_gpu})");
        assert!(e.misplaced);
        assert!((e.regret_secs - (est_gpu - est_cpu)).abs() < 1e-12);

        // A decision that agrees with the oracle has zero regret.
        let obs_cpu = PlacementObservation { site: OlapTarget::Cpu, ..obs };
        let e2 = cal.explain_dispatch(&sites, OlapTarget::Cpu, &obs_cpu, 4).clone();
        assert!(!e2.misplaced);
        assert_eq!(e2.regret_secs, 0.0);

        let report = cal.report();
        assert_eq!(report.regret.decisions, 2);
        assert_eq!(report.regret.misplacements, 1);
        assert!(report.regret.total_regret_secs > 0.0);
        assert_eq!(report.regret.mean_regret_secs().unwrap(), report.regret.total_regret_secs / 2.0);
        assert_eq!(cal.recent_placements().count(), 2);
    }

    #[test]
    fn forced_dispatches_are_retained_but_not_counted_as_decisions() {
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), CostModel::default());
        let gpu = GpuSpec::gtx_980();
        let sites = [SiteCapability::single_gpu(&gpu, &PlacementHints::default()), SiteCapability::Cpu { cores: 24 }];
        let hints = PlacementHints { bytes_to_scan: 4096, available_cpu_cores: 24, ..PlacementHints::default() };
        let obs = PlacementObservation {
            site: OlapTarget::Gpu,
            forced: true,
            hints,
            predicted_secs: 1e-5,
            actual_secs: 1e-5,
            breakdown: None,
        };
        let e = cal.explain_dispatch(&sites, OlapTarget::Gpu, &obs, 0).clone();
        assert!(e.forced);
        let report = cal.report();
        assert_eq!(report.regret.decisions, 0, "forced dispatches are not heuristic decisions");
        assert_eq!(report.regret, RegretSummary::default());
        assert_eq!(cal.recent_placements().count(), 1, "but the explanation is still retained");
        assert!(report.regret.mean_regret_secs().is_none());
    }

    #[test]
    fn recent_placements_are_bounded() {
        let mut cal = CostCalibrator::new(CalibrationConfig::default(), CostModel::default());
        let sites = [SiteCapability::Cpu { cores: 8 }];
        let hints = PlacementHints { bytes_to_scan: 1 << 20, available_cpu_cores: 8, ..PlacementHints::default() };
        for q in 0..(RECENT_PLACEMENTS_CAP as u64 + 10) {
            let obs = PlacementObservation {
                site: OlapTarget::Cpu,
                forced: false,
                hints,
                predicted_secs: 1e-4,
                actual_secs: 1e-4,
                breakdown: None,
            };
            cal.explain_dispatch(&sites, OlapTarget::Cpu, &obs, q);
        }
        assert_eq!(cal.recent_placements().count(), RECENT_PLACEMENTS_CAP);
        // Oldest explanations were evicted: the first retained query is 10.
        assert_eq!(cal.recent_placements().next().unwrap().query, 10);
        assert_eq!(cal.report().regret.decisions, RECENT_PLACEMENTS_CAP as u64 + 10);
    }

    #[test]
    fn apply_to_fills_the_model_constants() {
        let model = CostModel {
            cpu_per_tuple_ns: 50.0,
            cpu_core_bandwidth_gbps: 4.0,
            gpu_dispatch_overhead_secs: 1e-5,
            gpu_bandwidth_scale: 1.5,
            multi_gpu_dispatch_overhead_secs: 2e-5,
            multi_gpu_bandwidth_scale: 0.8,
        };
        let hints = model.apply_to(PlacementHints { bytes_to_scan: 100, ..PlacementHints::default() });
        assert_eq!(hints.cpu_per_tuple_ns, 50.0);
        assert_eq!(hints.cpu_core_bandwidth_gbps, 4.0);
        assert_eq!(hints.gpu_dispatch_overhead_secs, 1e-5);
        assert_eq!(hints.gpu_bandwidth_scale, 1.5);
        assert_eq!(hints.multi_gpu_dispatch_overhead_secs, 2e-5);
        assert_eq!(hints.multi_gpu_bandwidth_scale, 0.8);
        assert_eq!(hints.bytes_to_scan, 100);
    }
}
