//! OLAP placement: should a query run on the GPU or on the data-parallel
//! archipelago's CPU cores?
//!
//! "The scheduler can combine dynamic run-time information, such as data
//! locality, with static optimizer cost models to decide if a given
//! analytical query should be executed on CPU or GPU cores in the
//! data-parallel archipelago." The heuristic here uses the dominant terms of
//! that decision for scan-heavy queries: how many bytes have to cross the
//! interconnect (scaled by whether they are already GPU-resident) plus a
//! fixed GPU dispatch cost, versus how fast the CPU cores can stream the
//! same bytes from memory plus their per-tuple processing work.

use h2tap_common::HASH_ENTRY_BYTES;
use h2tap_gpu_sim::{GpuSpec, DEVICE_TRANSACTION_BYTES};
use serde::{Deserialize, Serialize};

/// Where an analytical query should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OlapTarget {
    /// Execute on the (single) GPU of the data-parallel archipelago.
    Gpu,
    /// Execute on the CPU cores of the data-parallel archipelago.
    Cpu,
    /// Execute on the multi-GPU site: a table's chunks sharded across
    /// several (possibly heterogeneous) devices that run in parallel.
    MultiGpu,
}

/// Fixed per-query cost of dispatching to the GPU (kernel launches, snapshot
/// table registration, result read-back): roughly 30 µs, the right order for
/// a handful of CUDA kernel launches. This is what routes *tiny* scans to the
/// CPU even when their data is device-resident.
pub const DEFAULT_GPU_DISPATCH_OVERHEAD_SECS: f64 = 30e-6;

/// Inputs to the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementHints {
    /// Bytes the query needs to read.
    pub bytes_to_scan: u64,
    /// Fraction of those bytes already resident in GPU memory, in [0, 1].
    pub gpu_resident_fraction: f64,
    /// CPU cores currently available in the data-parallel archipelago.
    pub available_cpu_cores: u32,
    /// Sustained per-core CPU memory bandwidth in GB/s.
    pub cpu_core_bandwidth_gbps: f64,
    /// Fixed per-query GPU dispatch cost in seconds (kernel launch and
    /// registration overheads the bandwidth terms do not capture).
    pub gpu_dispatch_overhead_secs: f64,
    /// Rows the query scans (0 when unknown; disables the per-tuple term).
    pub rows: u64,
    /// Aggregate per-tuple CPU processing cost in nanoseconds, spread over
    /// the available cores. Column-at-a-time engines are per-tuple bound well
    /// before they are bandwidth bound, so ignoring this term would
    /// systematically over-place queries on the CPU.
    pub cpu_per_tuple_ns: f64,
    /// Bytes the query touches with data-dependent random access (hash-join
    /// probes, group-accumulator updates). Zero for streaming scans. Random
    /// bytes cost far more than their payload on both sites — cache lines on
    /// the CPU, memory/interconnect transactions on the GPU — and the
    /// asymmetry between those penalties is what separates plan placement
    /// from scan placement.
    pub random_access_bytes: u64,
    /// Footprint of the query's hash state (join build side), in bytes. A
    /// plan whose hash table cannot fit in free device memory cannot keep
    /// its probes on the device.
    pub hash_table_bytes: u64,
    /// Free GPU device memory in bytes. `u64::MAX` (the default) means
    /// unknown/unbounded and disables the footprint check; `0` means the
    /// device is genuinely full — which must route joins away from it, so
    /// full and unknown are deliberately distinct values.
    pub gpu_free_bytes: u64,
    /// Multiplier on the spec-derived GPU streaming time (1.0 = trust the
    /// catalogue bandwidths). The online calibrator raises it when the
    /// measured device is slower than its datasheet (extra bitmap writes,
    /// imperfect coalescing) and lowers it when it is faster.
    pub gpu_bandwidth_scale: f64,
    /// Fixed per-query dispatch cost of the multi-GPU site in seconds
    /// (kernel launches on every device, shard bookkeeping, cross-device
    /// merge). Calibrated independently of the single-GPU overhead so the
    /// two sites' intercepts can diverge.
    pub multi_gpu_dispatch_overhead_secs: f64,
    /// Multiplier on the multi-GPU site's spec-derived streaming feature
    /// (the critical — slowest — device's shard time). Per-site by design:
    /// each device mix converges to its own scale.
    pub multi_gpu_bandwidth_scale: f64,
}

/// Device-memory headroom a GPU-placed plan needs beyond its hash table: the
/// partial-group arena and per-kernel scratch also live in device memory, so
/// a hash table that *exactly* fills free memory still OOMs at execution
/// time. Placement reserves this margin in the footprint check instead of
/// relying on the (expensive) OOM fallback.
pub const GPU_SCRATCH_HEADROOM_BYTES: u64 = 1 << 20;

/// Closed-form per-site time estimates for one query's placement hints — the
/// reusable predictor behind [`place_olap_query`]. The calibration feedback
/// loop compares these predictions against the times the sites actually
/// report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteEstimate {
    /// Predicted execution time on the GPU site, in seconds.
    pub gpu_secs: f64,
    /// Predicted execution time on the CPU site, in seconds.
    pub cpu_secs: f64,
}

impl SiteEstimate {
    /// The faster target under this estimate (ties go to the GPU, the
    /// Caldera prototype's static choice).
    pub fn faster(&self) -> OlapTarget {
        if self.cpu_secs < self.gpu_secs {
            OlapTarget::Cpu
        } else {
            OlapTarget::Gpu
        }
    }

    /// The predicted time for `target`, in seconds. `SiteEstimate` is the
    /// legacy CPU-vs-single-GPU pair; the multi-GPU site is estimated through
    /// [`estimate_site_secs`] / [`estimate_target_secs`], so `MultiGpu` here
    /// falls back to the single-GPU figure.
    pub fn secs_for(&self, target: OlapTarget) -> f64 {
        match target {
            OlapTarget::Gpu | OlapTarget::MultiGpu => self.gpu_secs,
            OlapTarget::Cpu => self.cpu_secs,
        }
    }
}

/// Cache-line granularity of CPU random access: every hash probe touches one
/// 64-byte line of the table regardless of entry size.
pub const CPU_CACHE_LINE_BYTES: u64 = 64;

impl Default for PlacementHints {
    fn default() -> Self {
        Self {
            bytes_to_scan: 0,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 0,
            cpu_core_bandwidth_gbps: 3.0,
            gpu_dispatch_overhead_secs: DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
            rows: 0,
            cpu_per_tuple_ns: 0.0,
            random_access_bytes: 0,
            hash_table_bytes: 0,
            gpu_free_bytes: u64::MAX,
            gpu_bandwidth_scale: 1.0,
            multi_gpu_dispatch_overhead_secs: DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
            multi_gpu_bandwidth_scale: 1.0,
        }
    }
}

impl PlacementHints {
    /// Returns the hints with every floating-point field forced into its
    /// valid domain, so the closed-form predictor is total: NaN or negative
    /// inputs (a fresh engine's unmeasured residency, a mis-configured cost
    /// constant) must degrade to a deterministic default instead of
    /// poisoning both time estimates and making placement arbitrary.
    #[must_use]
    pub fn sanitized(mut self) -> Self {
        let defaults = Self::default();
        // NaN fails every comparison, so `clamp` alone cannot contain it.
        self.gpu_resident_fraction =
            if self.gpu_resident_fraction.is_finite() { self.gpu_resident_fraction.clamp(0.0, 1.0) } else { 0.0 };
        if !(self.cpu_core_bandwidth_gbps.is_finite() && self.cpu_core_bandwidth_gbps > 0.0) {
            self.cpu_core_bandwidth_gbps = defaults.cpu_core_bandwidth_gbps;
        }
        if !(self.gpu_dispatch_overhead_secs.is_finite() && self.gpu_dispatch_overhead_secs >= 0.0) {
            self.gpu_dispatch_overhead_secs = defaults.gpu_dispatch_overhead_secs;
        }
        if !(self.cpu_per_tuple_ns.is_finite() && self.cpu_per_tuple_ns >= 0.0) {
            self.cpu_per_tuple_ns = 0.0;
        }
        if !(self.gpu_bandwidth_scale.is_finite() && self.gpu_bandwidth_scale > 0.0) {
            self.gpu_bandwidth_scale = 1.0;
        }
        if !(self.multi_gpu_dispatch_overhead_secs.is_finite() && self.multi_gpu_dispatch_overhead_secs >= 0.0) {
            self.multi_gpu_dispatch_overhead_secs = defaults.multi_gpu_dispatch_overhead_secs;
        }
        if !(self.multi_gpu_bandwidth_scale.is_finite() && self.multi_gpu_bandwidth_scale > 0.0) {
            self.multi_gpu_bandwidth_scale = 1.0;
        }
        self
    }
}

/// One GPU device of a (possibly multi-device) execution site, as the
/// placement heuristic sees it: its catalogue spec, the fraction of a
/// table's chunks sharded onto it, how much of its shard is already resident
/// next to its compute, and how much device memory it has free.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDeviceCapability {
    /// The device's catalogue spec (bandwidths, interconnect, architecture).
    pub spec: GpuSpec,
    /// Fraction of each registered table's chunks this device executes, in
    /// `[0, 1]` (1.0 for a single-device site; ~`1/n` under the round-robin
    /// chunk shard of an `n`-device site).
    pub shard_fraction: f64,
    /// Fraction of this device's shard already resident in its device
    /// memory, in `[0, 1]`.
    pub resident_fraction: f64,
    /// Free device memory in bytes; `None` when unknown. Deliberately an
    /// `Option` instead of a `u64::MAX` sentinel so that one unknown device
    /// can never saturate an aggregate — the footprint check takes the
    /// minimum over the *known* devices and is disabled only when every
    /// device is unknown.
    pub free_bytes: Option<u64>,
}

/// What one execution site tells the placement heuristic about itself. Sites
/// *enumerate* their capabilities — placement is an argmin over whatever
/// sites the engine actually has, not a hardcoded CPU-vs-GPU pair.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteCapability {
    /// The CPU cores of the data-parallel archipelago. The time model's
    /// constants (per-core bandwidth, per-tuple cost, core count) travel in
    /// the [`PlacementHints`], which the calibrated cost model fills.
    Cpu {
        /// Cores the site currently owns (informational; the estimate uses
        /// `PlacementHints::available_cpu_cores`, the live archipelago count).
        cores: u32,
    },
    /// A GPU-backed site: one device (`target == Gpu`) or several sharded
    /// devices (`target == MultiGpu`).
    Gpu {
        /// Which placement target this site serves.
        target: OlapTarget,
        /// The site's devices, in shard order.
        devices: Vec<GpuDeviceCapability>,
    },
}

impl SiteCapability {
    /// The placement target this capability describes.
    pub fn target(&self) -> OlapTarget {
        match self {
            SiteCapability::Cpu { .. } => OlapTarget::Cpu,
            SiteCapability::Gpu { target, .. } => *target,
        }
    }

    /// The capability of the classic single-GPU site, reconstructed from the
    /// legacy scalar hint fields (`gpu_resident_fraction`, `gpu_free_bytes`
    /// with `u64::MAX` meaning unknown). Bridges the 2-way API onto the
    /// N-way one.
    pub fn single_gpu(spec: &GpuSpec, hints: &PlacementHints) -> Self {
        SiteCapability::Gpu {
            target: OlapTarget::Gpu,
            devices: vec![GpuDeviceCapability {
                spec: spec.clone(),
                shard_fraction: 1.0,
                resident_fraction: hints.gpu_resident_fraction,
                free_bytes: (hints.gpu_free_bytes != u64::MAX).then_some(hints.gpu_free_bytes),
            }],
        }
    }
}

/// Spec-derived streaming time of one device over a given share of the
/// query's bytes: resident bytes stream at device bandwidth, the rest
/// crosses the interconnect, and random bytes pay the coalescing waste.
fn device_streaming_secs(spec: &GpuSpec, resident_fraction: f64, hints: &PlacementHints) -> f64 {
    let resident = if resident_fraction.is_finite() { resident_fraction.clamp(0.0, 1.0) } else { 0.0 };
    let bytes = hints.bytes_to_scan as f64;
    let random = hints.random_access_bytes as f64;
    // Random access delivers one hash entry per memory transaction: the
    // waste factor is transaction size over entry size — the 128-byte device
    // transaction when the hash state is device-resident, the interconnect
    // MTU when probes cross the bus (the kernel-at-a-time executor keeps
    // intermediates wherever table data lives, so residency is the proxy).
    let gpu_random_device = (DEVICE_TRANSACTION_BYTES / HASH_ENTRY_BYTES) as f64;
    let gpu_random_interconnect = (spec.interconnect.mtu_bytes.max(HASH_ENTRY_BYTES) / HASH_ENTRY_BYTES) as f64;
    (resident * (bytes + random * gpu_random_device)) / spec.mem_bytes_per_sec()
        + ((1.0 - resident) * (bytes + random * gpu_random_interconnect))
            / (spec.interconnect.kind.bandwidth_gbps() * 1e9)
}

/// Spec-derived GPU streaming time at `gpu_bandwidth_scale == 1.0`: resident
/// bytes stream at device bandwidth, the rest crosses the interconnect, and
/// random bytes pay the coalescing waste. This is the bandwidth *feature* of
/// the GPU cost model — the calibrator fits an overhead intercept and a
/// bandwidth scale on top of it.
pub fn gpu_streaming_secs(gpu: &GpuSpec, hints: &PlacementHints) -> f64 {
    device_streaming_secs(gpu, hints.gpu_resident_fraction, hints)
}

/// The streaming feature of a (possibly multi-device) GPU site: each device
/// streams its shard of the bytes concurrently, so the site is bound by its
/// critical — slowest — device. With one device at `shard_fraction == 1.0`
/// this is exactly [`gpu_streaming_secs`]; with a fast+slow mix the slow
/// generation's shard dominates, which is what makes heterogeneous mixes
/// slower than their aggregate bandwidth suggests.
pub fn gpu_site_stream_feature(devices: &[GpuDeviceCapability], hints: &PlacementHints) -> f64 {
    devices
        .iter()
        .map(|d| {
            let frac = if d.shard_fraction.is_finite() { d.shard_fraction.clamp(0.0, 1.0) } else { 0.0 };
            frac * device_streaming_secs(&d.spec, d.resident_fraction, hints)
        })
        .fold(0.0, f64::max)
}

/// The smallest known per-device free memory of a GPU site — the headroom a
/// *replicated* per-device structure (the join hash table every device
/// probes locally) must fit into. Unknown devices are skipped rather than
/// poisoning the aggregate; `None` means no device reported at all.
pub fn min_free_shard_bytes(devices: &[GpuDeviceCapability]) -> Option<u64> {
    devices.iter().filter_map(|d| d.free_bytes).min()
}

/// Whether the hash-table footprint check rules a GPU site out: the plan's
/// hash state plus the scratch headroom must fit the *minimum* known
/// per-device free memory (every device holds a full replica). Disabled when
/// the plan has no hash state or no device reports its free memory.
pub fn gpu_footprint_blocks(devices: &[GpuDeviceCapability], hints: &PlacementHints) -> bool {
    if hints.hash_table_bytes == 0 {
        return false;
    }
    match min_free_shard_bytes(devices) {
        Some(free) => hints.hash_table_bytes.saturating_add(GPU_SCRATCH_HEADROOM_BYTES) > free,
        None => false,
    }
}

/// The CPU model's two linear terms, in seconds: `(streaming, per-tuple)`.
/// All bytes stream from host memory across the available cores (random
/// bytes touch whole cache lines); per-tuple processing work is spread over
/// the same cores. Uses `max(cores, 1)` so forced-CPU runs on an engine with
/// no reserved OLAP cores still get a finite prediction.
pub fn cpu_term_secs(hints: &PlacementHints) -> (f64, f64) {
    let bytes = hints.bytes_to_scan as f64;
    let random = hints.random_access_bytes as f64;
    let cores = f64::from(hints.available_cpu_cores.max(1));
    let cpu_random = (CPU_CACHE_LINE_BYTES / HASH_ENTRY_BYTES) as f64;
    let cpu_bw = cores * hints.cpu_core_bandwidth_gbps * 1e9;
    let stream = (bytes + random * cpu_random) / cpu_bw.max(1.0);
    let tuple = hints.rows as f64 * hints.cpu_per_tuple_ns.max(0.0) * 1e-9 / cores;
    (stream, tuple)
}

/// Combines a streaming term and a compute term the way the CPU site's time
/// model does: the two overlap, so the query costs the larger term plus a
/// quarter of the smaller one. Shared between prediction and execution so the
/// predictor cannot drift from the site it models.
pub fn overlap_secs(stream: f64, compute: f64) -> f64 {
    stream.max(compute) + stream.min(compute) * 0.25
}

/// The closed-form predictor: estimates both sites' execution times from the
/// (sanitized) hints. Total for any input — NaN/negative fields degrade to
/// defaults rather than making both estimates NaN.
pub fn estimate_site_times(gpu: &GpuSpec, hints: &PlacementHints) -> SiteEstimate {
    let hints = hints.sanitized();
    let gpu_secs = hints.gpu_dispatch_overhead_secs + hints.gpu_bandwidth_scale * gpu_streaming_secs(gpu, &hints);
    let (stream, tuple) = cpu_term_secs(&hints);
    SiteEstimate { gpu_secs, cpu_secs: overlap_secs(stream, tuple) }
}

/// The closed-form time estimate for one enumerated site. CPU sites use the
/// overlap of the hints' streaming and per-tuple terms; GPU sites pay their
/// target's calibrated dispatch intercept plus the calibrated bandwidth
/// scale times the site's streaming feature (critical device's shard time).
pub fn estimate_site_secs(site: &SiteCapability, hints: &PlacementHints) -> f64 {
    let hints = hints.sanitized();
    match site {
        SiteCapability::Cpu { .. } => {
            let (stream, tuple) = cpu_term_secs(&hints);
            overlap_secs(stream, tuple)
        }
        SiteCapability::Gpu { target, devices } => {
            let (overhead, scale) = match target {
                OlapTarget::MultiGpu => (hints.multi_gpu_dispatch_overhead_secs, hints.multi_gpu_bandwidth_scale),
                _ => (hints.gpu_dispatch_overhead_secs, hints.gpu_bandwidth_scale),
            };
            overhead + scale * gpu_site_stream_feature(devices, &hints)
        }
    }
}

/// The estimate for `target` among the enumerated sites. A CPU target is
/// always estimable (its terms live in the hints); a GPU target whose site
/// is not in the list is unplaceable and estimates to infinity.
pub fn estimate_target_secs(sites: &[SiteCapability], target: OlapTarget, hints: &PlacementHints) -> f64 {
    match sites.iter().find(|s| s.target() == target) {
        Some(site) => estimate_site_secs(site, hints),
        None if target == OlapTarget::Cpu => {
            estimate_site_secs(&SiteCapability::Cpu { cores: hints.available_cpu_cores }, hints)
        }
        None => f64::INFINITY,
    }
}

/// The N-way placement decision: an argmin over whatever sites the engine
/// enumerates. Eligibility first — the CPU site needs cores and a real scan,
/// a GPU site whose per-device free memory cannot hold the plan's hash-state
/// replica is excluded while a CPU fallback exists — then the smallest
/// estimate wins, with ties going to the earliest site in the list (engines
/// list their GPU sites first, preserving the Caldera prototype's static
/// GPU preference).
pub fn place_olap_query_sites(sites: &[SiteCapability], hints: &PlacementHints) -> OlapTarget {
    let hints = hints.sanitized();
    let cpu_eligible = hints.available_cpu_cores > 0 && hints.bytes_to_scan > 0;
    let mut best: Option<(OlapTarget, f64)> = None;
    for site in sites {
        match site {
            SiteCapability::Cpu { .. } if !cpu_eligible => continue,
            // A hash table that cannot fit a per-device replica — including
            // the scratch headroom the plan's group arena needs, and a
            // completely full device — forces the site to probe across the
            // interconnect on every access or OOM-fall-back mid-query; with
            // CPU cores on hand that is never competitive. Unknown free
            // memory disables the check rather than guessing.
            SiteCapability::Gpu { devices, .. } if cpu_eligible && gpu_footprint_blocks(devices, &hints) => continue,
            _ => {}
        }
        let secs = estimate_site_secs(site, &hints);
        if best.is_none_or(|(_, b)| secs < b) {
            best = Some((site.target(), secs));
        }
    }
    best.map_or(OlapTarget::Gpu, |(target, _)| target)
}

/// Estimates GPU and CPU scan times and picks the faster target. Ties (and
/// the degenerate no-CPU case) go to the GPU, which is the Caldera
/// prototype's static choice. This is the classic 2-way decision, expressed
/// as the N-way [`place_olap_query_sites`] over the CPU site and a
/// single-GPU site reconstructed from the legacy hint fields.
pub fn place_olap_query(gpu: &GpuSpec, hints: &PlacementHints) -> OlapTarget {
    place_olap_query_sites(
        &[SiteCapability::single_gpu(gpu, hints), SiteCapability::Cpu { cores: hints.available_cpu_cores }],
        hints,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_wins_when_data_is_resident() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn many_idle_cpu_cores_win_for_host_resident_data() {
        // 24 cores x 3 GB/s = 72 GB/s of CPU bandwidth beats a 16 GB/s PCIe
        // link when nothing is resident on the GPU.
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
    }

    #[test]
    fn few_cpu_cores_lose_to_the_gpu() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 2,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn no_cpu_cores_defaults_to_gpu() {
        let hints = PlacementHints { bytes_to_scan: 1 << 20, ..PlacementHints::default() };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn tiny_scans_route_to_cpu_even_when_device_resident() {
        // 64 KiB fully resident: the bandwidth terms are microseconds either
        // way, so the fixed GPU dispatch overhead dominates and the CPU wins.
        let hints = PlacementHints {
            bytes_to_scan: 64 << 10,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 4,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
        // Without the overhead term the same tiny resident scan goes to the
        // GPU (224 GB/s of device bandwidth beats 12 GB/s of CPU bandwidth).
        let no_overhead = PlacementHints { gpu_dispatch_overhead_secs: 0.0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &no_overhead), OlapTarget::Gpu);
    }

    #[test]
    fn random_probes_push_host_resident_joins_to_cpu() {
        // A scan of this size over host-resident data routes to the GPU
        // (per-tuple work makes the CPU slower end to end, see below), but
        // the same bytes with one hash probe per row pay the interconnect
        // MTU per access on the GPU — placement must flip to the CPU.
        let scan = PlacementHints {
            bytes_to_scan: (4 << 20) * 16,
            available_cpu_cores: 24,
            rows: 4 << 20,
            cpu_per_tuple_ns: 93.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &scan), OlapTarget::Gpu);
        let join =
            PlacementHints { random_access_bytes: (4 << 20) * HASH_ENTRY_BYTES, hash_table_bytes: 1 << 20, ..scan };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &join), OlapTarget::Cpu);
        // Fully device-resident, the same probes ride the capped device
        // transaction waste and the GPU stays ahead.
        let resident_join = PlacementHints { gpu_resident_fraction: 1.0, ..join };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &resident_join), OlapTarget::Gpu);
    }

    #[test]
    fn oversized_hash_tables_route_to_cpu() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            hash_table_bytes: 8 << 30,
            gpu_free_bytes: 4 << 30,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
        // The same footprint with room to spare keeps the GPU.
        let fits = PlacementHints { gpu_free_bytes: 16 << 30, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &fits), OlapTarget::Gpu);
        // Unknown headroom (the u64::MAX default) disables the check rather
        // than guessing.
        let unknown = PlacementHints { gpu_free_bytes: u64::MAX, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &unknown), OlapTarget::Gpu);
        // A genuinely full device (0 free bytes) routes joins to the CPU.
        let full = PlacementHints { gpu_free_bytes: 0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &full), OlapTarget::Cpu);
        // With no CPU cores the footprint check cannot help.
        let no_cores = PlacementHints { available_cpu_cores: 0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &no_cores), OlapTarget::Gpu);
    }

    #[test]
    fn hash_table_exactly_filling_free_memory_routes_to_cpu() {
        // The boundary of the footprint check: a hash table that exactly
        // fills free device memory leaves no headroom for the group arena and
        // kernel scratch, so it must route to the CPU instead of OOM-falling
        // back mid-query.
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            hash_table_bytes: 4 << 30,
            gpu_free_bytes: 4 << 30,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
        // One byte short of the scratch headroom still routes to the CPU …
        let just_short = PlacementHints { gpu_free_bytes: (4 << 30) + GPU_SCRATCH_HEADROOM_BYTES - 1, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &just_short), OlapTarget::Cpu);
        // … and exactly hash table + headroom fits.
        let fits = PlacementHints { gpu_free_bytes: (4 << 30) + GPU_SCRATCH_HEADROOM_BYTES, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &fits), OlapTarget::Gpu);
        // A saturating footprint near u64::MAX must not wrap around the
        // headroom addition, and MAX-as-unknown still disables the check.
        let huge = PlacementHints { hash_table_bytes: u64::MAX - 1, gpu_free_bytes: u64::MAX - 1, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &huge), OlapTarget::Cpu);
        let unknown = PlacementHints { gpu_free_bytes: u64::MAX, ..huge };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &unknown), OlapTarget::Gpu);
    }

    #[test]
    fn nan_hints_are_sanitized_and_the_predictor_stays_total() {
        let poisoned = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: f64::NAN,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: f64::NAN,
            gpu_dispatch_overhead_secs: -1.0,
            rows: 1 << 20,
            cpu_per_tuple_ns: f64::NEG_INFINITY,
            gpu_bandwidth_scale: f64::NAN,
            ..PlacementHints::default()
        };
        let clean = poisoned.sanitized();
        assert_eq!(clean.gpu_resident_fraction, 0.0);
        assert_eq!(clean.cpu_core_bandwidth_gbps, PlacementHints::default().cpu_core_bandwidth_gbps);
        assert_eq!(clean.gpu_dispatch_overhead_secs, DEFAULT_GPU_DISPATCH_OVERHEAD_SECS);
        assert_eq!(clean.cpu_per_tuple_ns, 0.0);
        assert_eq!(clean.gpu_bandwidth_scale, 1.0);
        // The predictor is total: finite estimates even on the raw hints.
        let est = estimate_site_times(&GpuSpec::gtx_980(), &poisoned);
        assert!(est.cpu_secs.is_finite() && est.gpu_secs.is_finite(), "{est:?}");
        assert_eq!(est, estimate_site_times(&GpuSpec::gtx_980(), &clean));
        // NaN resident fraction must not poison the decision: the sanitized
        // hints behave like the explicit-zero-residency hints.
        let zeroed = PlacementHints { gpu_resident_fraction: 0.0, ..clean };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &poisoned), place_olap_query(&GpuSpec::gtx_980(), &zeroed));
        // Negative residency clamps instead of producing negative time.
        let negative = PlacementHints { gpu_resident_fraction: -3.0, ..clean }.sanitized();
        assert_eq!(negative.gpu_resident_fraction, 0.0);
    }

    #[test]
    fn placement_agrees_with_the_reusable_estimator() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 28,
            gpu_resident_fraction: 0.4,
            available_cpu_cores: 12,
            rows: 1 << 22,
            cpu_per_tuple_ns: 93.0,
            ..PlacementHints::default()
        };
        let est = estimate_site_times(&GpuSpec::gtx_980(), &hints);
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), est.faster());
        assert_eq!(est.secs_for(OlapTarget::Cpu), est.cpu_secs);
        assert_eq!(est.secs_for(OlapTarget::Gpu), est.gpu_secs);
    }

    fn resident_device(spec: GpuSpec, shard_fraction: f64) -> GpuDeviceCapability {
        GpuDeviceCapability { spec, shard_fraction, resident_fraction: 1.0, free_bytes: None }
    }

    fn three_sites() -> Vec<SiteCapability> {
        vec![
            SiteCapability::Gpu { target: OlapTarget::Gpu, devices: vec![resident_device(GpuSpec::gtx_980(), 1.0)] },
            SiteCapability::Cpu { cores: 24 },
            SiteCapability::Gpu {
                target: OlapTarget::MultiGpu,
                devices: vec![resident_device(GpuSpec::gtx_980(), 0.5), resident_device(GpuSpec::gtx_980(), 0.5)],
            },
        ]
    }

    #[test]
    fn n_way_argmin_routes_large_resident_scans_to_the_multi_gpu_site() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            ..PlacementHints::default()
        };
        let sites = three_sites();
        // Two devices halve the critical shard: the multi site beats both the
        // single GPU and the CPU on a large resident scan …
        assert_eq!(place_olap_query_sites(&sites, &hints), OlapTarget::MultiGpu);
        // … but a tiny scan is dominated by the (equal) dispatch overheads,
        // so the CPU still wins with cores on hand.
        let tiny = PlacementHints { bytes_to_scan: 64 << 10, ..hints };
        assert_eq!(place_olap_query_sites(&sites, &tiny), OlapTarget::Cpu);
        // And with no CPU cores the argmin still runs over the GPU sites.
        let no_cores = PlacementHints { available_cpu_cores: 0, ..hints };
        assert_eq!(place_olap_query_sites(&sites, &no_cores), OlapTarget::MultiGpu);
    }

    #[test]
    fn the_slowest_generation_bounds_a_heterogeneous_mix() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            ..PlacementHints::default()
        };
        // A fast+slow half-half mix is bound by the GTX 580's shard.
        let mixed = [resident_device(GpuSpec::gtx_980_ti(), 0.5), resident_device(GpuSpec::gtx_580(), 0.5)];
        let fast_only = [resident_device(GpuSpec::gtx_980_ti(), 0.5), resident_device(GpuSpec::gtx_980_ti(), 0.5)];
        let mixed_feature = gpu_site_stream_feature(&mixed, &hints);
        let fast_feature = gpu_site_stream_feature(&fast_only, &hints);
        assert!(mixed_feature > fast_feature, "mixed {mixed_feature} vs fast {fast_feature}");
        let slow_share =
            0.5 * gpu_streaming_secs(&GpuSpec::gtx_580(), &PlacementHints { gpu_resident_fraction: 1.0, ..hints });
        assert!((mixed_feature - slow_share).abs() < 1e-12, "the slow shard is the critical path");
    }

    #[test]
    fn multi_gpu_footprint_checks_the_min_known_free_and_skips_unknown_devices() {
        let hash = 4u64 << 30;
        let mut hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            hash_table_bytes: hash,
            ..PlacementHints::default()
        };
        let device = |free: Option<u64>| GpuDeviceCapability {
            spec: GpuSpec::gtx_980(),
            shard_fraction: 0.25,
            resident_fraction: 1.0,
            free_bytes: free,
        };
        // One unknown device must not saturate the aggregate: the min over the
        // *known* devices decides.
        let devices = vec![device(Some(hash)), device(None), device(Some(8 << 30))];
        assert_eq!(min_free_shard_bytes(&devices), Some(hash));
        let site = |devices: Vec<GpuDeviceCapability>| {
            vec![SiteCapability::Gpu { target: OlapTarget::MultiGpu, devices }, SiteCapability::Cpu { cores: 24 }]
        };
        // Exact fit leaves no scratch headroom: blocked, routes to the CPU.
        assert!(gpu_footprint_blocks(&devices, &hints));
        assert_eq!(place_olap_query_sites(&site(devices.clone()), &hints), OlapTarget::Cpu);
        // One byte short of headroom still blocks; exactly hash + headroom fits.
        let just_short = vec![device(Some(hash + GPU_SCRATCH_HEADROOM_BYTES - 1)), device(None)];
        assert!(gpu_footprint_blocks(&just_short, &hints));
        let fits = vec![device(Some(hash + GPU_SCRATCH_HEADROOM_BYTES)), device(None)];
        assert!(!gpu_footprint_blocks(&fits, &hints));
        assert_eq!(place_olap_query_sites(&site(fits), &hints), OlapTarget::MultiGpu);
        // All devices unknown: the check is disabled rather than guessed.
        let unknown = vec![device(None), device(None)];
        assert!(!gpu_footprint_blocks(&unknown, &hints));
        // No hash state: never blocked.
        hints.hash_table_bytes = 0;
        assert!(!gpu_footprint_blocks(&devices, &hints));
    }

    #[test]
    fn the_two_way_wrapper_matches_the_n_way_argmin_and_estimator() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 28,
            gpu_resident_fraction: 0.4,
            available_cpu_cores: 12,
            rows: 1 << 22,
            cpu_per_tuple_ns: 93.0,
            gpu_free_bytes: 2 << 30,
            hash_table_bytes: 1 << 20,
            ..PlacementHints::default()
        };
        let gpu = GpuSpec::gtx_980();
        let sites = [SiteCapability::single_gpu(&gpu, &hints), SiteCapability::Cpu { cores: 12 }];
        assert_eq!(place_olap_query(&gpu, &hints), place_olap_query_sites(&sites, &hints));
        // The per-site estimator reproduces the legacy pair exactly.
        let est = estimate_site_times(&gpu, &hints);
        assert_eq!(estimate_site_secs(&sites[0], &hints), est.gpu_secs);
        assert_eq!(estimate_site_secs(&sites[1], &hints), est.cpu_secs);
        assert_eq!(estimate_target_secs(&sites, OlapTarget::Gpu, &hints), est.gpu_secs);
        assert_eq!(estimate_target_secs(&sites, OlapTarget::Cpu, &hints), est.cpu_secs);
        // A target with no site is unplaceable.
        assert_eq!(estimate_target_secs(&sites, OlapTarget::MultiGpu, &hints), f64::INFINITY);
    }

    #[test]
    fn per_tuple_cost_pushes_large_host_scans_back_to_gpu() {
        // 64 M rows of 16 bytes streaming from host memory: bandwidth alone
        // favours 24 CPU cores over PCIe, but 93 ns/tuple of column-at-a-time
        // work (the Figure-4 calibration) makes the CPU slower end to end.
        let hints = PlacementHints {
            bytes_to_scan: (64 << 20) * 16,
            available_cpu_cores: 24,
            rows: 64 << 20,
            cpu_per_tuple_ns: 93.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
        let streaming_only = PlacementHints { cpu_per_tuple_ns: 0.0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &streaming_only), OlapTarget::Cpu);
    }
}
