//! OLAP placement: should a query run on the GPU or on the data-parallel
//! archipelago's CPU cores?
//!
//! "The scheduler can combine dynamic run-time information, such as data
//! locality, with static optimizer cost models to decide if a given
//! analytical query should be executed on CPU or GPU cores in the
//! data-parallel archipelago." The heuristic here uses the two dominant
//! terms of that decision for scan-heavy queries: how many bytes have to
//! cross the interconnect (scaled by whether they are already GPU-resident)
//! versus how fast the CPU cores could stream the same bytes from memory.

use h2tap_gpu_sim::GpuSpec;
use serde::{Deserialize, Serialize};

/// Where an analytical query should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OlapTarget {
    /// Execute on the GPU of the data-parallel archipelago.
    Gpu,
    /// Execute on the CPU cores of the data-parallel archipelago.
    Cpu,
}

/// Inputs to the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementHints {
    /// Bytes the query needs to read.
    pub bytes_to_scan: u64,
    /// Fraction of those bytes already resident in GPU memory, in [0, 1].
    pub gpu_resident_fraction: f64,
    /// CPU cores currently available in the data-parallel archipelago.
    pub available_cpu_cores: u32,
    /// Sustained per-core CPU memory bandwidth in GB/s.
    pub cpu_core_bandwidth_gbps: f64,
}

impl Default for PlacementHints {
    fn default() -> Self {
        Self { bytes_to_scan: 0, gpu_resident_fraction: 0.0, available_cpu_cores: 0, cpu_core_bandwidth_gbps: 3.0 }
    }
}

/// Estimates GPU and CPU scan times and picks the faster target. Ties (and
/// the degenerate no-CPU case) go to the GPU, which is the Caldera
/// prototype's static choice.
pub fn place_olap_query(gpu: &GpuSpec, hints: &PlacementHints) -> OlapTarget {
    if hints.available_cpu_cores == 0 || hints.bytes_to_scan == 0 {
        return OlapTarget::Gpu;
    }
    let resident = hints.gpu_resident_fraction.clamp(0.0, 1.0);
    let bytes = hints.bytes_to_scan as f64;
    // GPU: resident bytes stream at device bandwidth, the rest crosses the
    // interconnect.
    let gpu_time = resident * bytes / gpu.mem_bytes_per_sec()
        + (1.0 - resident) * bytes / (gpu.interconnect.kind.bandwidth_gbps() * 1e9);
    // CPU: all bytes stream from host memory across the available cores.
    let cpu_bw = f64::from(hints.available_cpu_cores) * hints.cpu_core_bandwidth_gbps * 1e9;
    let cpu_time = bytes / cpu_bw.max(1.0);
    if cpu_time < gpu_time {
        OlapTarget::Cpu
    } else {
        OlapTarget::Gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_wins_when_data_is_resident() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: 3.0,
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn many_idle_cpu_cores_win_for_host_resident_data() {
        // 24 cores x 3 GB/s = 72 GB/s of CPU bandwidth beats a 16 GB/s PCIe
        // link when nothing is resident on the GPU.
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: 3.0,
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
    }

    #[test]
    fn few_cpu_cores_lose_to_the_gpu() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 2,
            cpu_core_bandwidth_gbps: 3.0,
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn no_cpu_cores_defaults_to_gpu() {
        let hints = PlacementHints { bytes_to_scan: 1 << 20, ..PlacementHints::default() };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }
}
