//! OLAP placement: should a query run on the GPU or on the data-parallel
//! archipelago's CPU cores?
//!
//! "The scheduler can combine dynamic run-time information, such as data
//! locality, with static optimizer cost models to decide if a given
//! analytical query should be executed on CPU or GPU cores in the
//! data-parallel archipelago." The heuristic here uses the dominant terms of
//! that decision for scan-heavy queries: how many bytes have to cross the
//! interconnect (scaled by whether they are already GPU-resident) plus a
//! fixed GPU dispatch cost, versus how fast the CPU cores can stream the
//! same bytes from memory plus their per-tuple processing work.

use h2tap_gpu_sim::GpuSpec;
use serde::{Deserialize, Serialize};

/// Where an analytical query should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OlapTarget {
    /// Execute on the GPU of the data-parallel archipelago.
    Gpu,
    /// Execute on the CPU cores of the data-parallel archipelago.
    Cpu,
}

/// Fixed per-query cost of dispatching to the GPU (kernel launches, snapshot
/// table registration, result read-back): roughly 30 µs, the right order for
/// a handful of CUDA kernel launches. This is what routes *tiny* scans to the
/// CPU even when their data is device-resident.
pub const DEFAULT_GPU_DISPATCH_OVERHEAD_SECS: f64 = 30e-6;

/// Inputs to the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementHints {
    /// Bytes the query needs to read.
    pub bytes_to_scan: u64,
    /// Fraction of those bytes already resident in GPU memory, in [0, 1].
    pub gpu_resident_fraction: f64,
    /// CPU cores currently available in the data-parallel archipelago.
    pub available_cpu_cores: u32,
    /// Sustained per-core CPU memory bandwidth in GB/s.
    pub cpu_core_bandwidth_gbps: f64,
    /// Fixed per-query GPU dispatch cost in seconds (kernel launch and
    /// registration overheads the bandwidth terms do not capture).
    pub gpu_dispatch_overhead_secs: f64,
    /// Rows the query scans (0 when unknown; disables the per-tuple term).
    pub rows: u64,
    /// Aggregate per-tuple CPU processing cost in nanoseconds, spread over
    /// the available cores. Column-at-a-time engines are per-tuple bound well
    /// before they are bandwidth bound, so ignoring this term would
    /// systematically over-place queries on the CPU.
    pub cpu_per_tuple_ns: f64,
}

impl Default for PlacementHints {
    fn default() -> Self {
        Self {
            bytes_to_scan: 0,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 0,
            cpu_core_bandwidth_gbps: 3.0,
            gpu_dispatch_overhead_secs: DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
            rows: 0,
            cpu_per_tuple_ns: 0.0,
        }
    }
}

/// Estimates GPU and CPU scan times and picks the faster target. Ties (and
/// the degenerate no-CPU case) go to the GPU, which is the Caldera
/// prototype's static choice.
pub fn place_olap_query(gpu: &GpuSpec, hints: &PlacementHints) -> OlapTarget {
    if hints.available_cpu_cores == 0 || hints.bytes_to_scan == 0 {
        return OlapTarget::Gpu;
    }
    let resident = hints.gpu_resident_fraction.clamp(0.0, 1.0);
    let bytes = hints.bytes_to_scan as f64;
    // GPU: resident bytes stream at device bandwidth, the rest crosses the
    // interconnect, plus the fixed dispatch cost every query pays.
    let gpu_time = hints.gpu_dispatch_overhead_secs.max(0.0)
        + resident * bytes / gpu.mem_bytes_per_sec()
        + (1.0 - resident) * bytes / (gpu.interconnect.kind.bandwidth_gbps() * 1e9);
    // CPU: all bytes stream from host memory across the available cores,
    // plus per-tuple processing work spread over the same cores.
    let cpu_bw = f64::from(hints.available_cpu_cores) * hints.cpu_core_bandwidth_gbps * 1e9;
    let cpu_time = bytes / cpu_bw.max(1.0)
        + hints.rows as f64 * hints.cpu_per_tuple_ns.max(0.0) * 1e-9 / f64::from(hints.available_cpu_cores.max(1));
    if cpu_time < gpu_time {
        OlapTarget::Cpu
    } else {
        OlapTarget::Gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_wins_when_data_is_resident() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn many_idle_cpu_cores_win_for_host_resident_data() {
        // 24 cores x 3 GB/s = 72 GB/s of CPU bandwidth beats a 16 GB/s PCIe
        // link when nothing is resident on the GPU.
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
    }

    #[test]
    fn few_cpu_cores_lose_to_the_gpu() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 2,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn no_cpu_cores_defaults_to_gpu() {
        let hints = PlacementHints { bytes_to_scan: 1 << 20, ..PlacementHints::default() };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn tiny_scans_route_to_cpu_even_when_device_resident() {
        // 64 KiB fully resident: the bandwidth terms are microseconds either
        // way, so the fixed GPU dispatch overhead dominates and the CPU wins.
        let hints = PlacementHints {
            bytes_to_scan: 64 << 10,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 4,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
        // Without the overhead term the same tiny resident scan goes to the
        // GPU (224 GB/s of device bandwidth beats 12 GB/s of CPU bandwidth).
        let no_overhead = PlacementHints { gpu_dispatch_overhead_secs: 0.0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &no_overhead), OlapTarget::Gpu);
    }

    #[test]
    fn per_tuple_cost_pushes_large_host_scans_back_to_gpu() {
        // 64 M rows of 16 bytes streaming from host memory: bandwidth alone
        // favours 24 CPU cores over PCIe, but 93 ns/tuple of column-at-a-time
        // work (the Figure-4 calibration) makes the CPU slower end to end.
        let hints = PlacementHints {
            bytes_to_scan: (64 << 20) * 16,
            available_cpu_cores: 24,
            rows: 64 << 20,
            cpu_per_tuple_ns: 93.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
        let streaming_only = PlacementHints { cpu_per_tuple_ns: 0.0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &streaming_only), OlapTarget::Cpu);
    }
}
