//! OLAP placement: should a query run on the GPU or on the data-parallel
//! archipelago's CPU cores?
//!
//! "The scheduler can combine dynamic run-time information, such as data
//! locality, with static optimizer cost models to decide if a given
//! analytical query should be executed on CPU or GPU cores in the
//! data-parallel archipelago." The heuristic here uses the dominant terms of
//! that decision for scan-heavy queries: how many bytes have to cross the
//! interconnect (scaled by whether they are already GPU-resident) plus a
//! fixed GPU dispatch cost, versus how fast the CPU cores can stream the
//! same bytes from memory plus their per-tuple processing work.

use h2tap_common::HASH_ENTRY_BYTES;
use h2tap_gpu_sim::{GpuSpec, DEVICE_TRANSACTION_BYTES};
use serde::{Deserialize, Serialize};

/// Where an analytical query should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OlapTarget {
    /// Execute on the GPU of the data-parallel archipelago.
    Gpu,
    /// Execute on the CPU cores of the data-parallel archipelago.
    Cpu,
}

/// Fixed per-query cost of dispatching to the GPU (kernel launches, snapshot
/// table registration, result read-back): roughly 30 µs, the right order for
/// a handful of CUDA kernel launches. This is what routes *tiny* scans to the
/// CPU even when their data is device-resident.
pub const DEFAULT_GPU_DISPATCH_OVERHEAD_SECS: f64 = 30e-6;

/// Inputs to the placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementHints {
    /// Bytes the query needs to read.
    pub bytes_to_scan: u64,
    /// Fraction of those bytes already resident in GPU memory, in [0, 1].
    pub gpu_resident_fraction: f64,
    /// CPU cores currently available in the data-parallel archipelago.
    pub available_cpu_cores: u32,
    /// Sustained per-core CPU memory bandwidth in GB/s.
    pub cpu_core_bandwidth_gbps: f64,
    /// Fixed per-query GPU dispatch cost in seconds (kernel launch and
    /// registration overheads the bandwidth terms do not capture).
    pub gpu_dispatch_overhead_secs: f64,
    /// Rows the query scans (0 when unknown; disables the per-tuple term).
    pub rows: u64,
    /// Aggregate per-tuple CPU processing cost in nanoseconds, spread over
    /// the available cores. Column-at-a-time engines are per-tuple bound well
    /// before they are bandwidth bound, so ignoring this term would
    /// systematically over-place queries on the CPU.
    pub cpu_per_tuple_ns: f64,
    /// Bytes the query touches with data-dependent random access (hash-join
    /// probes, group-accumulator updates). Zero for streaming scans. Random
    /// bytes cost far more than their payload on both sites — cache lines on
    /// the CPU, memory/interconnect transactions on the GPU — and the
    /// asymmetry between those penalties is what separates plan placement
    /// from scan placement.
    pub random_access_bytes: u64,
    /// Footprint of the query's hash state (join build side), in bytes. A
    /// plan whose hash table cannot fit in free device memory cannot keep
    /// its probes on the device.
    pub hash_table_bytes: u64,
    /// Free GPU device memory in bytes. `u64::MAX` (the default) means
    /// unknown/unbounded and disables the footprint check; `0` means the
    /// device is genuinely full — which must route joins away from it, so
    /// full and unknown are deliberately distinct values.
    pub gpu_free_bytes: u64,
    /// Multiplier on the spec-derived GPU streaming time (1.0 = trust the
    /// catalogue bandwidths). The online calibrator raises it when the
    /// measured device is slower than its datasheet (extra bitmap writes,
    /// imperfect coalescing) and lowers it when it is faster.
    pub gpu_bandwidth_scale: f64,
}

/// Device-memory headroom a GPU-placed plan needs beyond its hash table: the
/// partial-group arena and per-kernel scratch also live in device memory, so
/// a hash table that *exactly* fills free memory still OOMs at execution
/// time. Placement reserves this margin in the footprint check instead of
/// relying on the (expensive) OOM fallback.
pub const GPU_SCRATCH_HEADROOM_BYTES: u64 = 1 << 20;

/// Closed-form per-site time estimates for one query's placement hints — the
/// reusable predictor behind [`place_olap_query`]. The calibration feedback
/// loop compares these predictions against the times the sites actually
/// report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteEstimate {
    /// Predicted execution time on the GPU site, in seconds.
    pub gpu_secs: f64,
    /// Predicted execution time on the CPU site, in seconds.
    pub cpu_secs: f64,
}

impl SiteEstimate {
    /// The faster target under this estimate (ties go to the GPU, the
    /// Caldera prototype's static choice).
    pub fn faster(&self) -> OlapTarget {
        if self.cpu_secs < self.gpu_secs {
            OlapTarget::Cpu
        } else {
            OlapTarget::Gpu
        }
    }

    /// The predicted time for `target`, in seconds.
    pub fn secs_for(&self, target: OlapTarget) -> f64 {
        match target {
            OlapTarget::Gpu => self.gpu_secs,
            OlapTarget::Cpu => self.cpu_secs,
        }
    }
}

/// Cache-line granularity of CPU random access: every hash probe touches one
/// 64-byte line of the table regardless of entry size.
pub const CPU_CACHE_LINE_BYTES: u64 = 64;

impl Default for PlacementHints {
    fn default() -> Self {
        Self {
            bytes_to_scan: 0,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 0,
            cpu_core_bandwidth_gbps: 3.0,
            gpu_dispatch_overhead_secs: DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
            rows: 0,
            cpu_per_tuple_ns: 0.0,
            random_access_bytes: 0,
            hash_table_bytes: 0,
            gpu_free_bytes: u64::MAX,
            gpu_bandwidth_scale: 1.0,
        }
    }
}

impl PlacementHints {
    /// Returns the hints with every floating-point field forced into its
    /// valid domain, so the closed-form predictor is total: NaN or negative
    /// inputs (a fresh engine's unmeasured residency, a mis-configured cost
    /// constant) must degrade to a deterministic default instead of
    /// poisoning both time estimates and making placement arbitrary.
    #[must_use]
    pub fn sanitized(mut self) -> Self {
        let defaults = Self::default();
        // NaN fails every comparison, so `clamp` alone cannot contain it.
        self.gpu_resident_fraction =
            if self.gpu_resident_fraction.is_finite() { self.gpu_resident_fraction.clamp(0.0, 1.0) } else { 0.0 };
        if !(self.cpu_core_bandwidth_gbps.is_finite() && self.cpu_core_bandwidth_gbps > 0.0) {
            self.cpu_core_bandwidth_gbps = defaults.cpu_core_bandwidth_gbps;
        }
        if !(self.gpu_dispatch_overhead_secs.is_finite() && self.gpu_dispatch_overhead_secs >= 0.0) {
            self.gpu_dispatch_overhead_secs = defaults.gpu_dispatch_overhead_secs;
        }
        if !(self.cpu_per_tuple_ns.is_finite() && self.cpu_per_tuple_ns >= 0.0) {
            self.cpu_per_tuple_ns = 0.0;
        }
        if !(self.gpu_bandwidth_scale.is_finite() && self.gpu_bandwidth_scale > 0.0) {
            self.gpu_bandwidth_scale = 1.0;
        }
        self
    }
}

/// Spec-derived GPU streaming time at `gpu_bandwidth_scale == 1.0`: resident
/// bytes stream at device bandwidth, the rest crosses the interconnect, and
/// random bytes pay the coalescing waste. This is the bandwidth *feature* of
/// the GPU cost model — the calibrator fits an overhead intercept and a
/// bandwidth scale on top of it.
pub fn gpu_streaming_secs(gpu: &GpuSpec, hints: &PlacementHints) -> f64 {
    let resident =
        if hints.gpu_resident_fraction.is_finite() { hints.gpu_resident_fraction.clamp(0.0, 1.0) } else { 0.0 };
    let bytes = hints.bytes_to_scan as f64;
    let random = hints.random_access_bytes as f64;
    // Random access delivers one hash entry per memory transaction: the
    // waste factor is transaction size over entry size — the 128-byte device
    // transaction when the hash state is device-resident, the interconnect
    // MTU when probes cross the bus (the kernel-at-a-time executor keeps
    // intermediates wherever table data lives, so residency is the proxy).
    let gpu_random_device = (DEVICE_TRANSACTION_BYTES / HASH_ENTRY_BYTES) as f64;
    let gpu_random_interconnect = (gpu.interconnect.mtu_bytes.max(HASH_ENTRY_BYTES) / HASH_ENTRY_BYTES) as f64;
    (resident * (bytes + random * gpu_random_device)) / gpu.mem_bytes_per_sec()
        + ((1.0 - resident) * (bytes + random * gpu_random_interconnect))
            / (gpu.interconnect.kind.bandwidth_gbps() * 1e9)
}

/// The CPU model's two linear terms, in seconds: `(streaming, per-tuple)`.
/// All bytes stream from host memory across the available cores (random
/// bytes touch whole cache lines); per-tuple processing work is spread over
/// the same cores. Uses `max(cores, 1)` so forced-CPU runs on an engine with
/// no reserved OLAP cores still get a finite prediction.
pub fn cpu_term_secs(hints: &PlacementHints) -> (f64, f64) {
    let bytes = hints.bytes_to_scan as f64;
    let random = hints.random_access_bytes as f64;
    let cores = f64::from(hints.available_cpu_cores.max(1));
    let cpu_random = (CPU_CACHE_LINE_BYTES / HASH_ENTRY_BYTES) as f64;
    let cpu_bw = cores * hints.cpu_core_bandwidth_gbps * 1e9;
    let stream = (bytes + random * cpu_random) / cpu_bw.max(1.0);
    let tuple = hints.rows as f64 * hints.cpu_per_tuple_ns.max(0.0) * 1e-9 / cores;
    (stream, tuple)
}

/// Combines a streaming term and a compute term the way the CPU site's time
/// model does: the two overlap, so the query costs the larger term plus a
/// quarter of the smaller one. Shared between prediction and execution so the
/// predictor cannot drift from the site it models.
pub fn overlap_secs(stream: f64, compute: f64) -> f64 {
    stream.max(compute) + stream.min(compute) * 0.25
}

/// The closed-form predictor: estimates both sites' execution times from the
/// (sanitized) hints. Total for any input — NaN/negative fields degrade to
/// defaults rather than making both estimates NaN.
pub fn estimate_site_times(gpu: &GpuSpec, hints: &PlacementHints) -> SiteEstimate {
    let hints = hints.sanitized();
    let gpu_secs = hints.gpu_dispatch_overhead_secs + hints.gpu_bandwidth_scale * gpu_streaming_secs(gpu, &hints);
    let (stream, tuple) = cpu_term_secs(&hints);
    SiteEstimate { gpu_secs, cpu_secs: overlap_secs(stream, tuple) }
}

/// Estimates GPU and CPU scan times and picks the faster target. Ties (and
/// the degenerate no-CPU case) go to the GPU, which is the Caldera
/// prototype's static choice.
pub fn place_olap_query(gpu: &GpuSpec, hints: &PlacementHints) -> OlapTarget {
    if hints.available_cpu_cores == 0 || hints.bytes_to_scan == 0 {
        return OlapTarget::Gpu;
    }
    // A hash table that cannot fit in free device memory — including the
    // scratch headroom the plan's group arena needs, and a completely full
    // device (gpu_free_bytes == 0) — forces the GPU to probe across the
    // interconnect on every access or OOM-fall-back mid-query; with CPU
    // cores on hand that is never competitive, so the footprint check
    // short-circuits. `u64::MAX` means headroom is unknown and the check is
    // disabled rather than guessed.
    if hints.hash_table_bytes > 0
        && hints.gpu_free_bytes != u64::MAX
        && hints.hash_table_bytes.saturating_add(GPU_SCRATCH_HEADROOM_BYTES) > hints.gpu_free_bytes
    {
        return OlapTarget::Cpu;
    }
    estimate_site_times(gpu, hints).faster()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_wins_when_data_is_resident() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn many_idle_cpu_cores_win_for_host_resident_data() {
        // 24 cores x 3 GB/s = 72 GB/s of CPU bandwidth beats a 16 GB/s PCIe
        // link when nothing is resident on the GPU.
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
    }

    #[test]
    fn few_cpu_cores_lose_to_the_gpu() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 0.0,
            available_cpu_cores: 2,
            cpu_core_bandwidth_gbps: 3.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn no_cpu_cores_defaults_to_gpu() {
        let hints = PlacementHints { bytes_to_scan: 1 << 20, ..PlacementHints::default() };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
    }

    #[test]
    fn tiny_scans_route_to_cpu_even_when_device_resident() {
        // 64 KiB fully resident: the bandwidth terms are microseconds either
        // way, so the fixed GPU dispatch overhead dominates and the CPU wins.
        let hints = PlacementHints {
            bytes_to_scan: 64 << 10,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 4,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
        // Without the overhead term the same tiny resident scan goes to the
        // GPU (224 GB/s of device bandwidth beats 12 GB/s of CPU bandwidth).
        let no_overhead = PlacementHints { gpu_dispatch_overhead_secs: 0.0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &no_overhead), OlapTarget::Gpu);
    }

    #[test]
    fn random_probes_push_host_resident_joins_to_cpu() {
        // A scan of this size over host-resident data routes to the GPU
        // (per-tuple work makes the CPU slower end to end, see below), but
        // the same bytes with one hash probe per row pay the interconnect
        // MTU per access on the GPU — placement must flip to the CPU.
        let scan = PlacementHints {
            bytes_to_scan: (4 << 20) * 16,
            available_cpu_cores: 24,
            rows: 4 << 20,
            cpu_per_tuple_ns: 93.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &scan), OlapTarget::Gpu);
        let join =
            PlacementHints { random_access_bytes: (4 << 20) * HASH_ENTRY_BYTES, hash_table_bytes: 1 << 20, ..scan };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &join), OlapTarget::Cpu);
        // Fully device-resident, the same probes ride the capped device
        // transaction waste and the GPU stays ahead.
        let resident_join = PlacementHints { gpu_resident_fraction: 1.0, ..join };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &resident_join), OlapTarget::Gpu);
    }

    #[test]
    fn oversized_hash_tables_route_to_cpu() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            hash_table_bytes: 8 << 30,
            gpu_free_bytes: 4 << 30,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
        // The same footprint with room to spare keeps the GPU.
        let fits = PlacementHints { gpu_free_bytes: 16 << 30, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &fits), OlapTarget::Gpu);
        // Unknown headroom (the u64::MAX default) disables the check rather
        // than guessing.
        let unknown = PlacementHints { gpu_free_bytes: u64::MAX, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &unknown), OlapTarget::Gpu);
        // A genuinely full device (0 free bytes) routes joins to the CPU.
        let full = PlacementHints { gpu_free_bytes: 0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &full), OlapTarget::Cpu);
        // With no CPU cores the footprint check cannot help.
        let no_cores = PlacementHints { available_cpu_cores: 0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &no_cores), OlapTarget::Gpu);
    }

    #[test]
    fn hash_table_exactly_filling_free_memory_routes_to_cpu() {
        // The boundary of the footprint check: a hash table that exactly
        // fills free device memory leaves no headroom for the group arena and
        // kernel scratch, so it must route to the CPU instead of OOM-falling
        // back mid-query.
        let hints = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: 1.0,
            available_cpu_cores: 24,
            hash_table_bytes: 4 << 30,
            gpu_free_bytes: 4 << 30,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Cpu);
        // One byte short of the scratch headroom still routes to the CPU …
        let just_short = PlacementHints { gpu_free_bytes: (4 << 30) + GPU_SCRATCH_HEADROOM_BYTES - 1, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &just_short), OlapTarget::Cpu);
        // … and exactly hash table + headroom fits.
        let fits = PlacementHints { gpu_free_bytes: (4 << 30) + GPU_SCRATCH_HEADROOM_BYTES, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &fits), OlapTarget::Gpu);
        // A saturating footprint near u64::MAX must not wrap around the
        // headroom addition, and MAX-as-unknown still disables the check.
        let huge = PlacementHints { hash_table_bytes: u64::MAX - 1, gpu_free_bytes: u64::MAX - 1, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &huge), OlapTarget::Cpu);
        let unknown = PlacementHints { gpu_free_bytes: u64::MAX, ..huge };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &unknown), OlapTarget::Gpu);
    }

    #[test]
    fn nan_hints_are_sanitized_and_the_predictor_stays_total() {
        let poisoned = PlacementHints {
            bytes_to_scan: 1 << 30,
            gpu_resident_fraction: f64::NAN,
            available_cpu_cores: 24,
            cpu_core_bandwidth_gbps: f64::NAN,
            gpu_dispatch_overhead_secs: -1.0,
            rows: 1 << 20,
            cpu_per_tuple_ns: f64::NEG_INFINITY,
            gpu_bandwidth_scale: f64::NAN,
            ..PlacementHints::default()
        };
        let clean = poisoned.sanitized();
        assert_eq!(clean.gpu_resident_fraction, 0.0);
        assert_eq!(clean.cpu_core_bandwidth_gbps, PlacementHints::default().cpu_core_bandwidth_gbps);
        assert_eq!(clean.gpu_dispatch_overhead_secs, DEFAULT_GPU_DISPATCH_OVERHEAD_SECS);
        assert_eq!(clean.cpu_per_tuple_ns, 0.0);
        assert_eq!(clean.gpu_bandwidth_scale, 1.0);
        // The predictor is total: finite estimates even on the raw hints.
        let est = estimate_site_times(&GpuSpec::gtx_980(), &poisoned);
        assert!(est.cpu_secs.is_finite() && est.gpu_secs.is_finite(), "{est:?}");
        assert_eq!(est, estimate_site_times(&GpuSpec::gtx_980(), &clean));
        // NaN resident fraction must not poison the decision: the sanitized
        // hints behave like the explicit-zero-residency hints.
        let zeroed = PlacementHints { gpu_resident_fraction: 0.0, ..clean };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &poisoned), place_olap_query(&GpuSpec::gtx_980(), &zeroed));
        // Negative residency clamps instead of producing negative time.
        let negative = PlacementHints { gpu_resident_fraction: -3.0, ..clean }.sanitized();
        assert_eq!(negative.gpu_resident_fraction, 0.0);
    }

    #[test]
    fn placement_agrees_with_the_reusable_estimator() {
        let hints = PlacementHints {
            bytes_to_scan: 1 << 28,
            gpu_resident_fraction: 0.4,
            available_cpu_cores: 12,
            rows: 1 << 22,
            cpu_per_tuple_ns: 93.0,
            ..PlacementHints::default()
        };
        let est = estimate_site_times(&GpuSpec::gtx_980(), &hints);
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), est.faster());
        assert_eq!(est.secs_for(OlapTarget::Cpu), est.cpu_secs);
        assert_eq!(est.secs_for(OlapTarget::Gpu), est.gpu_secs);
    }

    #[test]
    fn per_tuple_cost_pushes_large_host_scans_back_to_gpu() {
        // 64 M rows of 16 bytes streaming from host memory: bandwidth alone
        // favours 24 CPU cores over PCIe, but 93 ns/tuple of column-at-a-time
        // work (the Figure-4 calibration) makes the CPU slower end to end.
        let hints = PlacementHints {
            bytes_to_scan: (64 << 20) * 16,
            available_cpu_cores: 24,
            rows: 64 << 20,
            cpu_per_tuple_ns: 93.0,
            ..PlacementHints::default()
        };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &hints), OlapTarget::Gpu);
        let streaming_only = PlacementHints { cpu_per_tuple_ns: 0.0, ..hints };
        assert_eq!(place_olap_query(&GpuSpec::gtx_980(), &streaming_only), OlapTarget::Cpu);
    }
}
