//! Archipelago membership and migration.

use h2tap_common::{H2Error, Result};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The two workload-specific resource containers of the H2TAP architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchipelagoKind {
    /// CPU-only container running transactions.
    TaskParallel,
    /// GPU (plus optionally CPU) container running analytical queries.
    DataParallel,
}

/// A resource container: the CPU cores and GPUs assigned to one workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Archipelago {
    /// Which workload this container serves.
    pub kind: ArchipelagoKind,
    /// CPU core ids that belong to the container.
    pub cpu_cores: BTreeSet<u32>,
    /// Names of GPUs that belong to the container (always empty for the
    /// task-parallel archipelago: transactions need fine-grained
    /// synchronisation that data-parallel hardware does not offer).
    pub gpus: Vec<String>,
}

impl Archipelago {
    /// Total CPU cores in the container.
    pub fn core_count(&self) -> usize {
        self.cpu_cores.len()
    }
}

/// Utilisation statistics the scheduler maintains per archipelago.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ArchipelagoStats {
    /// Work items (transactions or queries) dispatched to the archipelago.
    pub dispatched: u64,
    /// Exponentially smoothed utilisation in [0, 1].
    pub utilisation: f64,
}

/// Core–archipelago membership manager.
#[derive(Debug)]
pub struct Scheduler {
    inner: RwLock<SchedulerInner>,
}

#[derive(Debug)]
struct SchedulerInner {
    task: Archipelago,
    data: Archipelago,
    task_stats: ArchipelagoStats,
    data_stats: ArchipelagoStats,
}

impl Scheduler {
    /// Creates a scheduler that assigns `oltp_cores` CPU cores to the
    /// task-parallel archipelago, `olap_cpu_cores` CPU cores plus the named
    /// GPUs to the data-parallel archipelago.
    pub fn new(oltp_cores: usize, olap_cpu_cores: usize, gpus: Vec<String>) -> Self {
        let task = Archipelago {
            kind: ArchipelagoKind::TaskParallel,
            cpu_cores: (0..oltp_cores as u32).collect(),
            gpus: Vec::new(),
        };
        let data = Archipelago {
            kind: ArchipelagoKind::DataParallel,
            cpu_cores: (oltp_cores as u32..(oltp_cores + olap_cpu_cores) as u32).collect(),
            gpus,
        };
        Self {
            inner: RwLock::new(SchedulerInner {
                task,
                data,
                task_stats: ArchipelagoStats::default(),
                data_stats: ArchipelagoStats::default(),
            }),
        }
    }

    /// A copy of the archipelago of the given kind.
    pub fn archipelago(&self, kind: ArchipelagoKind) -> Archipelago {
        let inner = self.inner.read();
        match kind {
            ArchipelagoKind::TaskParallel => inner.task.clone(),
            ArchipelagoKind::DataParallel => inner.data.clone(),
        }
    }

    /// Moves a CPU core from one archipelago to the other ("run-time
    /// elasticity by enabling on-the-fly migration of CPU cores").
    ///
    /// # Errors
    /// Fails if the core is not currently a member of `from`, or if the move
    /// would leave the task-parallel archipelago empty.
    pub fn migrate_core(&self, core: u32, from: ArchipelagoKind, to: ArchipelagoKind) -> Result<()> {
        if from == to {
            return Ok(());
        }
        let mut guard = self.inner.write();
        let inner = &mut *guard;
        let (src, dst) = match from {
            ArchipelagoKind::TaskParallel => (&mut inner.task, &mut inner.data),
            ArchipelagoKind::DataParallel => (&mut inner.data, &mut inner.task),
        };
        if !src.cpu_cores.contains(&core) {
            return Err(H2Error::Placement(format!("core {core} is not in {from:?}")));
        }
        if matches!(from, ArchipelagoKind::TaskParallel) && src.cpu_cores.len() == 1 {
            return Err(H2Error::Placement("cannot empty the task-parallel archipelago".into()));
        }
        src.cpu_cores.remove(&core);
        dst.cpu_cores.insert(core);
        Ok(())
    }

    /// Records that a work item was dispatched to `kind` with the given
    /// instantaneous utilisation sample.
    pub fn record_dispatch(&self, kind: ArchipelagoKind, utilisation_sample: f64) {
        let mut inner = self.inner.write();
        let stats = match kind {
            ArchipelagoKind::TaskParallel => &mut inner.task_stats,
            ArchipelagoKind::DataParallel => &mut inner.data_stats,
        };
        stats.dispatched += 1;
        let sample = utilisation_sample.clamp(0.0, 1.0);
        stats.utilisation = 0.8 * stats.utilisation + 0.2 * sample;
    }

    /// Current statistics of `kind`.
    pub fn stats(&self, kind: ArchipelagoKind) -> ArchipelagoStats {
        let inner = self.inner.read();
        match kind {
            ArchipelagoKind::TaskParallel => inner.task_stats,
            ArchipelagoKind::DataParallel => inner.data_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_membership_is_disjoint() {
        let s = Scheduler::new(4, 2, vec!["GTX 980".into()]);
        let task = s.archipelago(ArchipelagoKind::TaskParallel);
        let data = s.archipelago(ArchipelagoKind::DataParallel);
        assert_eq!(task.core_count(), 4);
        assert_eq!(data.core_count(), 2);
        assert!(task.cpu_cores.is_disjoint(&data.cpu_cores));
        assert!(task.gpus.is_empty());
        assert_eq!(data.gpus, vec!["GTX 980".to_string()]);
    }

    #[test]
    fn migration_moves_cores_between_archipelagos() {
        let s = Scheduler::new(4, 0, vec![]);
        s.migrate_core(3, ArchipelagoKind::TaskParallel, ArchipelagoKind::DataParallel).unwrap();
        assert_eq!(s.archipelago(ArchipelagoKind::TaskParallel).core_count(), 3);
        assert_eq!(s.archipelago(ArchipelagoKind::DataParallel).core_count(), 1);
        // And back.
        s.migrate_core(3, ArchipelagoKind::DataParallel, ArchipelagoKind::TaskParallel).unwrap();
        assert_eq!(s.archipelago(ArchipelagoKind::TaskParallel).core_count(), 4);
    }

    #[test]
    fn migrating_a_foreign_core_fails() {
        let s = Scheduler::new(2, 1, vec![]);
        assert!(s.migrate_core(9, ArchipelagoKind::TaskParallel, ArchipelagoKind::DataParallel).is_err());
    }

    #[test]
    fn task_archipelago_cannot_be_emptied() {
        let s = Scheduler::new(1, 0, vec![]);
        let err = s.migrate_core(0, ArchipelagoKind::TaskParallel, ArchipelagoKind::DataParallel);
        assert!(err.is_err());
    }

    #[test]
    fn self_migration_is_a_noop() {
        let s = Scheduler::new(2, 0, vec![]);
        s.migrate_core(0, ArchipelagoKind::TaskParallel, ArchipelagoKind::TaskParallel).unwrap();
        assert_eq!(s.archipelago(ArchipelagoKind::TaskParallel).core_count(), 2);
    }

    #[test]
    fn dispatch_statistics_smooth_utilisation() {
        let s = Scheduler::new(2, 0, vec![]);
        for _ in 0..10 {
            s.record_dispatch(ArchipelagoKind::DataParallel, 1.0);
        }
        let stats = s.stats(ArchipelagoKind::DataParallel);
        assert_eq!(stats.dispatched, 10);
        assert!(stats.utilisation > 0.5 && stats.utilisation <= 1.0);
        assert_eq!(s.stats(ArchipelagoKind::TaskParallel).dispatched, 0);
    }
}
