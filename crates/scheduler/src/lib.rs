//! The archipelago scheduler.
//!
//! "Archipelagos are resource containers defined by a set of processor cores
//! and a target workload." The scheduler owns core–archipelago membership,
//! supports on-the-fly migration of CPU cores between the task-parallel
//! (OLTP) and data-parallel (OLAP) archipelagos, keeps utilisation
//! statistics, and decides where an analytical query should run (CPU cores of
//! the data-parallel archipelago or the GPU) from a simple locality- and
//! size-aware cost heuristic — the role Figure 2 assigns to the scheduler
//! box.

pub mod archipelago;
pub mod calibration;
pub mod placement;

pub use archipelago::{Archipelago, ArchipelagoKind, Scheduler};
pub use calibration::{
    CalibrationConfig, CalibrationReport, CoreMigration, CoreMigrationPolicy, CostCalibrator, CostModel,
    PlacementExplanation, PlacementObservation, RegretSummary, SaturationMigrationPolicy, SiteCalibration,
    SiteSecsEstimate, RECENT_PLACEMENTS_CAP,
};
pub use placement::{
    cpu_term_secs, estimate_site_secs, estimate_site_times, estimate_target_secs, gpu_footprint_blocks,
    gpu_site_stream_feature, gpu_streaming_secs, min_free_shard_bytes, overlap_secs, place_olap_query,
    place_olap_query_sites, GpuDeviceCapability, OlapTarget, PlacementHints, SiteCapability, SiteEstimate,
    CPU_CACHE_LINE_BYTES, DEFAULT_GPU_DISPATCH_OVERHEAD_SECS, GPU_SCRATCH_HEADROOM_BYTES,
};
