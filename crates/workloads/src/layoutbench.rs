//! The storage-layout microbenchmark (Figures 10 and 11).
//!
//! "We use a main-memory-resident 16 GB table of 270M records. Each record is
//! comprised of 16 integer attributes. ... We then launch five instances of
//! the following query template: `SELECT SUM(col1 + ... + colN) FROM dataset`
//! [where] each instance accesses 1, 2, 4, 8, or 16 attributes."

use h2tap_common::rng::SplitMixRng;
use h2tap_common::{AggExpr, AttrType, PartitionId, Result, ScanAggQuery, Schema, TableId, Value};
use h2tap_storage::{Database, Layout};
use std::sync::Arc;

/// Number of integer attributes in the microbenchmark table.
pub const ATTRIBUTES: usize = 16;

/// The 16-integer-attribute schema.
pub fn layout_schema() -> Schema {
    Schema::homogeneous("col", ATTRIBUTES, AttrType::Int32)
}

/// Builds a single-partition database holding `rows` records of the
/// microbenchmark table in the given layout. Values are small deterministic
/// integers so reference sums are easy to compute.
pub fn build_layout_table(rows: u64, layout: Layout, seed: u64) -> Result<(Arc<Database>, TableId)> {
    let db = Database::new(1);
    let table = db.create_table("dataset", layout_schema(), layout)?;
    let mut rng = SplitMixRng::new(seed);
    for _ in 0..rows {
        let record: Vec<Value> = (0..ATTRIBUTES).map(|_| Value::Int32(rng.next_below(100) as i32)).collect();
        db.insert(PartitionId(0), table, &record)?;
    }
    Ok((db, table))
}

/// The query template instance that accesses the first `n` attributes.
pub fn sum_query(n: usize) -> ScanAggQuery {
    assert!((1..=ATTRIBUTES).contains(&n), "query must access 1..=16 attributes");
    ScanAggQuery::aggregate_only(AggExpr::SumColumns((0..n).collect()))
}

/// Scalar reference result for [`sum_query`] over the table produced by
/// [`build_layout_table`] with the same `rows` and `seed`.
pub fn reference_sum(rows: u64, n: usize, seed: u64) -> f64 {
    let mut rng = SplitMixRng::new(seed);
    let mut sum = 0.0;
    for _ in 0..rows {
        for attr in 0..ATTRIBUTES {
            let v = rng.next_below(100) as f64;
            if attr < n {
                sum += v;
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_sixteen_four_byte_integers() {
        let s = layout_schema();
        assert_eq!(s.arity(), 16);
        assert_eq!(s.record_width(), 64);
    }

    #[test]
    fn built_table_matches_reference_sums() {
        let rows = 2_000;
        let (db, table) = build_layout_table(rows, Layout::Dsm, 11).unwrap();
        assert_eq!(db.row_count(table).unwrap(), rows);
        let snap = db.snapshot();
        let frozen = snap.table(table).unwrap();
        for n in [1usize, 4, 16] {
            let mut sum = 0.0;
            frozen
                .for_each_row(&(0..n).collect::<Vec<_>>(), |cells| {
                    sum += cells.iter().map(|c| *c as u32 as f64).sum::<f64>();
                })
                .unwrap();
            assert_eq!(sum, reference_sum(rows, n, 11), "n = {n}");
        }
    }

    #[test]
    fn pax_layout_uses_paper_page_geometry() {
        let (db, table) = build_layout_table(200, Layout::PAPER_PAX, 1).unwrap();
        let meta = db.table_meta(table).unwrap();
        assert_eq!(meta.layout.pax_rows_per_page(&meta.schema), Some(64));
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn zero_attribute_query_is_rejected() {
        let _ = sum_query(0);
    }

    #[test]
    fn sum_query_touches_requested_attributes() {
        assert_eq!(sum_query(4).columns_accessed(), vec![0, 1, 2, 3]);
    }
}
