//! The update-only YCSB-like OLTP workload of Figures 5-7.
//!
//! "Each transaction performs ten read-modify-update operations on records
//! randomly chosen from the lineitem table. Thus, the OLTP workload is
//! similar to an update-only YCSB workload with a theta value (zipfian
//! distribution) of zero. ... We make the target key range used by the OLTP
//! workload a parameter so that we test sensitivity to skewed OLTP working
//! set sizes."
//!
//! Keys are chosen from the hosting worker's own partition (Caldera's
//! partition-per-worker design makes the update path local; the multisite
//! sensitivity is measured separately by Figure 9's microbenchmark) and are
//! restricted to the first `working_set_pct` percent of the partition.

use h2tap_common::rng::{SplitMixRng, Zipf};
use h2tap_common::{PartitionId, TableId, Value};
use h2tap_oltp::{TxnGenerator, TxnProc};
use std::sync::Arc;

/// Configuration of the YCSB-like read-modify-update workload.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Table the updates target (the lineitem table in the paper).
    pub table: TableId,
    /// Total rows in the table.
    pub total_rows: u64,
    /// Number of partitions the table is spread over (round-robin by key).
    pub partitions: u64,
    /// Read-modify-update operations per transaction.
    pub ops_per_txn: usize,
    /// Percentage (1-100) of the partition's rows the workload touches.
    pub working_set_pct: u32,
    /// Zipfian skew within the working set (0 = uniform, as in the paper).
    pub theta: f64,
    /// Which attribute the transaction increments.
    pub update_column: usize,
}

impl YcsbConfig {
    /// The paper's configuration: ten uniform updates per transaction.
    pub fn paper_default(table: TableId, total_rows: u64, partitions: u64) -> Self {
        Self {
            table,
            total_rows,
            partitions,
            ops_per_txn: 10,
            working_set_pct: 100,
            theta: 0.0,
            update_column: crate::tpch::columns::QUANTITY,
        }
    }

    /// Rows of one partition that are eligible under the working-set knob.
    pub fn working_rows_per_partition(&self) -> u64 {
        let per_partition = (self.total_rows / self.partitions).max(1);
        (per_partition * u64::from(self.working_set_pct.clamp(1, 100)) / 100).max(1)
    }
}

/// Generator producing the read-modify-update transactions.
pub struct YcsbGenerator {
    config: YcsbConfig,
    zipf: Zipf,
}

impl YcsbGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: YcsbConfig) -> Self {
        let zipf = Zipf::new(config.working_rows_per_partition(), config.theta);
        Self { config, zipf }
    }

    /// The configuration in use.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// The global key of the `local_row`-th eligible row of `home`.
    fn key_for(&self, home: PartitionId, local_row: u64) -> i64 {
        (local_row * self.config.partitions + u64::from(home.0)) as i64
    }
}

impl TxnGenerator for YcsbGenerator {
    fn next_txn(&self, home: PartitionId, _seq: u64, rng: &mut SplitMixRng) -> TxnProc {
        let table = self.config.table;
        let update_column = self.config.update_column;
        let keys: Vec<i64> = (0..self.config.ops_per_txn).map(|_| self.key_for(home, self.zipf.sample(rng))).collect();
        Arc::new(move |ctx| {
            for &key in &keys {
                let mut record = ctx.read_for_update(table, key)?;
                let current = record[update_column].as_f64().unwrap_or(0.0);
                record[update_column] = Value::Float64(current + 1.0);
                ctx.update(table, key, record)?;
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(pct: u32) -> YcsbConfig {
        YcsbConfig { working_set_pct: pct, ..YcsbConfig::paper_default(TableId(0), 1000, 4) }
    }

    #[test]
    fn working_set_scales_with_percentage() {
        assert_eq!(config(100).working_rows_per_partition(), 250);
        assert_eq!(config(16).working_rows_per_partition(), 40);
        assert_eq!(config(1).working_rows_per_partition(), 2);
    }

    #[test]
    fn generated_keys_stay_in_the_home_partition_and_working_set() {
        let generator = YcsbGenerator::new(config(10));
        let mut rng = SplitMixRng::new(3);
        for seq in 0..50 {
            // Reach into key_for via the same math the generator uses.
            let _ = generator.next_txn(PartitionId(2), seq, &mut rng);
            let key = generator.key_for(PartitionId(2), generator.zipf.sample(&mut rng));
            assert_eq!(key as u64 % 4, 2, "key {key} not in partition 2");
            assert!((key as u64 / 4) < 25, "key {key} outside 10% working set");
        }
    }

    #[test]
    fn paper_default_matches_description() {
        let c = YcsbConfig::paper_default(TableId(1), 10_000, 8);
        assert_eq!(c.ops_per_txn, 10);
        assert_eq!(c.theta, 0.0);
        assert_eq!(c.working_set_pct, 100);
    }
}
