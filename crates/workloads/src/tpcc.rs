//! TPC-C NewOrder workload (Figure 8).
//!
//! The paper's scalability experiment runs "the NewOrder transaction of the
//! TPC-C benchmark. For both systems, we assign a warehouse to a thread and
//! increase the number of threads (and hence the number of warehouses)". The
//! implementation here follows the TPC-C NewOrder profile — read warehouse,
//! read-modify-write the district's next-order id, read the customer, then
//! for 5-15 order lines read the item and read-modify-write the stock, and
//! finally insert the order, new-order and order-line records — over a
//! deliberately scaled-down population so benches load quickly. Item records
//! are replicated per warehouse (they are read-only), so the only remote
//! accesses are the ~1%-per-line remote stock updates, which makes roughly
//! 10% of transactions multi-warehouse, matching the paper's observation.
//!
//! The same generator logic is provided for Caldera ([`NewOrderGenerator`])
//! and for the Silo baseline ([`SiloNewOrderGenerator`]) so Figure 8 compares
//! identical work.

use caldera::CalderaBuilder;
use h2tap_baselines::{SiloDb, SiloGenerator, SiloTxn};
use h2tap_common::rng::SplitMixRng;
use h2tap_common::{AttrType, PartitionId, Result, Schema, TableId, Value};
use h2tap_oltp::{StridePartitioner, TxnGenerator, TxnProc};
use h2tap_storage::Layout;
use std::sync::Arc;

/// Key-space stride reserved per warehouse.
pub const WAREHOUSE_STRIDE: i64 = 100_000_000;

/// Scaled-down population parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Districts per warehouse (TPC-C: 10).
    pub districts: i64,
    /// Customers per district (TPC-C: 3000; scaled down by default).
    pub customers_per_district: i64,
    /// Items / stock entries per warehouse (TPC-C: 100k; scaled down).
    pub items: i64,
    /// Probability (in percent) that one order line's stock lives in a remote
    /// warehouse (TPC-C: 1%).
    pub remote_line_pct: u32,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self { districts: 10, customers_per_district: 120, items: 2_000, remote_line_pct: 1 }
    }
}

/// Table ids of a loaded TPC-C database.
#[derive(Debug, Clone, Copy)]
pub struct TpccTables {
    /// WAREHOUSE
    pub warehouse: TableId,
    /// DISTRICT
    pub district: TableId,
    /// CUSTOMER
    pub customer: TableId,
    /// ITEM (replicated per warehouse)
    pub item: TableId,
    /// STOCK
    pub stock: TableId,
    /// ORDERS
    pub orders: TableId,
    /// NEW_ORDER
    pub new_order: TableId,
    /// ORDER_LINE
    pub order_line: TableId,
}

/// Key helpers shared by loaders and generators.
pub mod keys {
    use super::WAREHOUSE_STRIDE;

    /// WAREHOUSE key of warehouse `w`.
    pub fn warehouse(w: i64) -> i64 {
        w * WAREHOUSE_STRIDE
    }
    /// DISTRICT key of district `d` of warehouse `w`.
    pub fn district(w: i64, d: i64) -> i64 {
        w * WAREHOUSE_STRIDE + d
    }
    /// CUSTOMER key.
    pub fn customer(w: i64, d: i64, c: i64) -> i64 {
        w * WAREHOUSE_STRIDE + d * 10_000 + c
    }
    /// ITEM key (per-warehouse replica).
    pub fn item(w: i64, i: i64) -> i64 {
        w * WAREHOUSE_STRIDE + 1_000_000 + i
    }
    /// STOCK key.
    pub fn stock(w: i64, i: i64) -> i64 {
        w * WAREHOUSE_STRIDE + 2_000_000 + i
    }
    /// ORDERS key.
    pub fn order(w: i64, d: i64, o: i64) -> i64 {
        w * WAREHOUSE_STRIDE + 4_000_000 + d * 200_000 + o
    }
    /// NEW_ORDER key.
    pub fn new_order(w: i64, d: i64, o: i64) -> i64 {
        w * WAREHOUSE_STRIDE + 8_000_000 + d * 200_000 + o
    }
    /// ORDER_LINE key.
    pub fn order_line(w: i64, d: i64, o: i64, line: i64) -> i64 {
        w * WAREHOUSE_STRIDE + 12_000_000 + (d * 200_000 + o) * 16 + line
    }
}

fn two_col(name: &str) -> Schema {
    Schema::new(vec![
        h2tap_common::Attribute::new(format!("{name}_id"), AttrType::Int64),
        h2tap_common::Attribute::new("payload", AttrType::Float64),
    ])
    .expect("valid")
}

fn four_col(name: &str) -> Schema {
    Schema::new(vec![
        h2tap_common::Attribute::new(format!("{name}_id"), AttrType::Int64),
        h2tap_common::Attribute::new("a", AttrType::Int64),
        h2tap_common::Attribute::new("b", AttrType::Int64),
        h2tap_common::Attribute::new("c", AttrType::Float64),
    ])
    .expect("valid")
}

/// The partitioner TPC-C uses: one warehouse per partition.
pub fn tpcc_partitioner(warehouses: usize) -> StridePartitioner {
    StridePartitioner::new(WAREHOUSE_STRIDE, warehouses)
}

/// Creates and loads the TPC-C tables into a Caldera builder with one
/// warehouse per partition. The builder's partitioner must already be
/// [`tpcc_partitioner`].
pub fn load_tpcc(builder: &mut CalderaBuilder, warehouses: usize, cfg: TpccConfig) -> Result<TpccTables> {
    let layout = Layout::Nsm; // the paper's OLTP comparison uses NSM
    let tables = TpccTables {
        warehouse: builder.create_table("warehouse", two_col("w"), layout)?,
        district: builder.create_table("district", four_col("d"), layout)?,
        customer: builder.create_table("customer", four_col("cst"), layout)?,
        item: builder.create_table("item", two_col("i"), layout)?,
        stock: builder.create_table("stock", four_col("s"), layout)?,
        orders: builder.create_table("orders", four_col("o"), layout)?,
        new_order: builder.create_table("new_order", two_col("no"), layout)?,
        order_line: builder.create_table("order_line", four_col("ol"), layout)?,
    };
    let mut rng = SplitMixRng::new(0x79cc_u64);
    for w in 0..warehouses as i64 {
        builder.load(tables.warehouse, keys::warehouse(w), &[Value::Int64(w), Value::Float64(0.0)])?;
        for d in 1..=cfg.districts {
            builder.load(
                tables.district,
                keys::district(w, d),
                &[Value::Int64(d), Value::Int64(w), Value::Int64(1), Value::Float64(0.0)],
            )?;
            for c in 1..=cfg.customers_per_district {
                builder.load(
                    tables.customer,
                    keys::customer(w, d, c),
                    &[Value::Int64(c), Value::Int64(d), Value::Int64(w), Value::Float64(10.0)],
                )?;
            }
        }
        for i in 1..=cfg.items {
            let price = 1.0 + rng.next_f64() * 100.0;
            builder.load(tables.item, keys::item(w, i), &[Value::Int64(i), Value::Float64(price)])?;
            builder.load(
                tables.stock,
                keys::stock(w, i),
                &[Value::Int64(i), Value::Int64(w), Value::Int64(10_000), Value::Float64(0.0)],
            )?;
        }
    }
    Ok(tables)
}

/// The NewOrder transaction generator for Caldera.
pub struct NewOrderGenerator {
    tables: TpccTables,
    cfg: TpccConfig,
    warehouses: i64,
}

impl NewOrderGenerator {
    /// Creates a generator over a loaded TPC-C database.
    pub fn new(tables: TpccTables, cfg: TpccConfig, warehouses: usize) -> Self {
        Self { tables, cfg, warehouses: warehouses as i64 }
    }

    /// Draws the per-transaction parameters (shared with the Silo variant so
    /// both systems run identical work for a given RNG stream).
    fn draw(&self, home: i64, rng: &mut SplitMixRng) -> NewOrderParams {
        let d = 1 + rng.next_below(self.cfg.districts as u64) as i64;
        let c = 1 + rng.next_below(self.cfg.customers_per_district as u64) as i64;
        let lines = 5 + rng.next_below(11) as usize;
        let mut items = Vec::with_capacity(lines);
        for _ in 0..lines {
            let i = 1 + rng.next_below(self.cfg.items as u64) as i64;
            let remote = self.warehouses > 1 && rng.next_below(100) < u64::from(self.cfg.remote_line_pct);
            let supply_w = if remote {
                let mut w = rng.next_below(self.warehouses as u64) as i64;
                if w == home {
                    w = (w + 1) % self.warehouses;
                }
                w
            } else {
                home
            };
            let qty = 1 + rng.next_below(10) as i64;
            items.push((i, supply_w, qty));
        }
        NewOrderParams { d, c, items }
    }
}

struct NewOrderParams {
    d: i64,
    c: i64,
    /// (item id, supplying warehouse, quantity)
    items: Vec<(i64, i64, i64)>,
}

impl TxnGenerator for NewOrderGenerator {
    fn next_txn(&self, home: PartitionId, _seq: u64, rng: &mut SplitMixRng) -> TxnProc {
        let w = i64::from(home.0);
        let params = self.draw(w, rng);
        let tables = self.tables;
        Arc::new(move |ctx| {
            // 1. Warehouse (read).
            let _warehouse = ctx.read(tables.warehouse, keys::warehouse(w))?;
            // 2. District: allocate the order id.
            let mut district = ctx.read_for_update(tables.district, keys::district(w, params.d))?;
            let o_id = district[2].as_i64().unwrap_or(1);
            district[2] = Value::Int64(o_id + 1);
            ctx.update(tables.district, keys::district(w, params.d), district)?;
            // 3. Customer (read).
            let _customer = ctx.read(tables.customer, keys::customer(w, params.d, params.c))?;
            // 4. Order lines.
            let mut total = 0.0;
            for (line, (i, supply_w, qty)) in params.items.iter().enumerate() {
                let item = ctx.read(tables.item, keys::item(w, *i))?;
                let price = item[1].as_f64().unwrap_or(1.0);
                let mut stock = ctx.read_for_update(tables.stock, keys::stock(*supply_w, *i))?;
                let on_hand = stock[2].as_i64().unwrap_or(0);
                stock[2] = Value::Int64(if on_hand > *qty { on_hand - qty } else { on_hand + 91 - qty });
                ctx.update(tables.stock, keys::stock(*supply_w, *i), stock)?;
                let amount = price * *qty as f64;
                total += amount;
                ctx.insert_local(
                    tables.order_line,
                    keys::order_line(w, params.d, o_id, line as i64),
                    vec![Value::Int64(o_id), Value::Int64(*i), Value::Int64(*qty), Value::Float64(amount)],
                )?;
            }
            // 5. Order + NewOrder inserts.
            ctx.insert_local(
                tables.orders,
                keys::order(w, params.d, o_id),
                vec![
                    Value::Int64(o_id),
                    Value::Int64(params.d),
                    Value::Int64(params.c),
                    Value::Float64(params.items.len() as f64),
                ],
            )?;
            ctx.insert_local(
                tables.new_order,
                keys::new_order(w, params.d, o_id),
                vec![Value::Int64(o_id), Value::Float64(total)],
            )?;
            Ok(())
        })
    }
}

/// Loads the same TPC-C population into a Silo database (single shared
/// instance, as in the paper's default Silo deployment).
pub fn load_tpcc_silo(db: &Arc<SiloDb>, tables: TpccTables, warehouses: usize, cfg: TpccConfig) -> Result<()> {
    for t in [
        tables.warehouse,
        tables.district,
        tables.customer,
        tables.item,
        tables.stock,
        tables.orders,
        tables.new_order,
        tables.order_line,
    ] {
        db.create_table(t);
    }
    let mut rng = SplitMixRng::new(0x79cc_u64);
    for w in 0..warehouses as i64 {
        db.load(tables.warehouse, keys::warehouse(w), vec![Value::Int64(w), Value::Float64(0.0)])?;
        for d in 1..=cfg.districts {
            db.load(
                tables.district,
                keys::district(w, d),
                vec![Value::Int64(d), Value::Int64(w), Value::Int64(1), Value::Float64(0.0)],
            )?;
            for c in 1..=cfg.customers_per_district {
                db.load(
                    tables.customer,
                    keys::customer(w, d, c),
                    vec![Value::Int64(c), Value::Int64(d), Value::Int64(w), Value::Float64(10.0)],
                )?;
            }
        }
        for i in 1..=cfg.items {
            let price = 1.0 + rng.next_f64() * 100.0;
            db.load(tables.item, keys::item(w, i), vec![Value::Int64(i), Value::Float64(price)])?;
            db.load(
                tables.stock,
                keys::stock(w, i),
                vec![Value::Int64(i), Value::Int64(w), Value::Int64(10_000), Value::Float64(0.0)],
            )?;
        }
    }
    Ok(())
}

/// Allocates fresh table ids for a standalone (Silo-only) TPC-C load.
pub fn standalone_tables() -> TpccTables {
    TpccTables {
        warehouse: TableId(0),
        district: TableId(1),
        customer: TableId(2),
        item: TableId(3),
        stock: TableId(4),
        orders: TableId(5),
        new_order: TableId(6),
        order_line: TableId(7),
    }
}

/// NewOrder for the Silo baseline: identical logic, expressed against Silo's
/// OCC transaction API.
pub struct SiloNewOrderGenerator {
    inner: NewOrderGenerator,
}

impl SiloNewOrderGenerator {
    /// Creates the Silo-side generator.
    pub fn new(tables: TpccTables, cfg: TpccConfig, warehouses: usize) -> Self {
        Self { inner: NewOrderGenerator::new(tables, cfg, warehouses) }
    }
}

impl SiloGenerator for SiloNewOrderGenerator {
    fn run_one(&self, db: &Arc<SiloDb>, worker: usize, _seq: u64, rng: &mut SplitMixRng) -> Result<()> {
        let w = worker as i64;
        let params = self.inner.draw(w, rng);
        let tables = self.inner.tables;
        let mut txn = SiloTxn::begin(Arc::clone(db));
        let _warehouse = txn.read(tables.warehouse, keys::warehouse(w))?;
        let mut district = txn.read(tables.district, keys::district(w, params.d))?;
        let o_id = district[2].as_i64().unwrap_or(1);
        district[2] = Value::Int64(o_id + 1);
        txn.write(tables.district, keys::district(w, params.d), district)?;
        let _customer = txn.read(tables.customer, keys::customer(w, params.d, params.c))?;
        let mut total = 0.0;
        for (line, (i, supply_w, qty)) in params.items.iter().enumerate() {
            let item = txn.read(tables.item, keys::item(w, *i))?;
            let price = item[1].as_f64().unwrap_or(1.0);
            let mut stock = txn.read(tables.stock, keys::stock(*supply_w, *i))?;
            let on_hand = stock[2].as_i64().unwrap_or(0);
            stock[2] = Value::Int64(if on_hand > *qty { on_hand - qty } else { on_hand + 91 - qty });
            txn.write(tables.stock, keys::stock(*supply_w, *i), stock)?;
            let amount = price * *qty as f64;
            total += amount;
            txn.insert(
                tables.order_line,
                keys::order_line(w, params.d, o_id, line as i64),
                vec![Value::Int64(o_id), Value::Int64(*i), Value::Int64(*qty), Value::Float64(amount)],
            );
        }
        txn.insert(
            tables.orders,
            keys::order(w, params.d, o_id),
            vec![
                Value::Int64(o_id),
                Value::Int64(params.d),
                Value::Int64(params.c),
                Value::Float64(params.items.len() as f64),
            ],
        );
        txn.insert(
            tables.new_order,
            keys::new_order(w, params.d, o_id),
            vec![Value::Int64(o_id), Value::Float64(total)],
        );
        txn.commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::TableId;

    #[test]
    fn keys_do_not_collide_within_a_table() {
        let mut seen = std::collections::HashSet::new();
        for w in 0..3 {
            for d in 1..=10 {
                assert!(seen.insert(keys::district(w, d)));
            }
        }
        let mut ol = std::collections::HashSet::new();
        for d in 1..=10 {
            for o in 1..1000 {
                for line in 0..16 {
                    assert!(ol.insert(keys::order_line(0, d, o, line)));
                }
            }
        }
    }

    #[test]
    fn all_keys_of_a_warehouse_map_to_its_partition() {
        let p = tpcc_partitioner(8);
        use h2tap_oltp::Partitioner;
        for w in 0..8i64 {
            for key in [
                keys::warehouse(w),
                keys::district(w, 10),
                keys::customer(w, 10, 119),
                keys::item(w, 1999),
                keys::stock(w, 1999),
                keys::order(w, 10, 150_000),
                keys::order_line(w, 10, 150_000, 15),
            ] {
                assert_eq!(p.partition_of(TableId(0), key), PartitionId(w as u32), "key {key}");
                assert!(key < (w + 1) * WAREHOUSE_STRIDE, "key {key} overflows the warehouse stride");
            }
        }
    }

    #[test]
    fn draw_produces_valid_parameters() {
        let generator = NewOrderGenerator::new(standalone_tables(), TpccConfig::default(), 4);
        let mut rng = SplitMixRng::new(5);
        let mut remote_lines = 0usize;
        let mut total_lines = 0usize;
        for _ in 0..2000 {
            let p = generator.draw(2, &mut rng);
            assert!((1..=10).contains(&p.d));
            assert!((5..=15).contains(&p.items.len()));
            for (i, supply_w, qty) in &p.items {
                assert!((1..=2000).contains(i));
                assert!((0..4).contains(supply_w));
                assert!((1..=10).contains(qty));
                total_lines += 1;
                if *supply_w != 2 {
                    remote_lines += 1;
                }
            }
        }
        let remote_fraction = remote_lines as f64 / total_lines as f64;
        assert!((0.002..0.03).contains(&remote_fraction), "remote line fraction {remote_fraction}");
    }
}
