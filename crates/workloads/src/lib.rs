//! Workload generators for the Caldera / H2TAP evaluation.
//!
//! One module per workload of the paper's evaluation section:
//!
//! * [`tpch`] — the `lineitem` generator and TPC-H Q6 (Figures 4-7),
//! * [`ycsb`] — the update-only, working-set-parameterised OLTP workload
//!   that runs concurrently with the OLAP queries (Figures 5-7),
//! * [`tpcc`] — TPC-C NewOrder for Caldera and Silo (Figure 8),
//! * [`multisite`] — the read-only multi-site microbenchmark for Caldera,
//!   Silo and SN-Silo (Figure 9),
//! * [`layoutbench`] — the 16-integer-attribute table and
//!   `SUM(col1+...+colN)` template (Figures 10-11).
//!
//! Every generator is deterministic given a seed, so experiment output is
//! reproducible run to run.

pub mod layoutbench;
pub mod multisite;
pub mod tpcc;
pub mod tpch;
pub mod ycsb;
