//! The multi-site read microbenchmark (Figure 9).
//!
//! "We use a read-only microbenchmark in which each transaction reads ten
//! records from a table of 24M records partitioned across 24 cores.
//! Single-site transactions read all ten records from the local partition.
//! Multi-site transactions read two records from a random remote partition
//! and the remaining eight from the local partition."
//!
//! The same workload is expressed three ways — for Caldera, for Silo (one
//! shared instance) and for SN-Silo (instance per core + 2PC) — so Figure 9
//! compares identical transactions.

use caldera::CalderaBuilder;
use h2tap_baselines::{SiloDb, SiloGenerator, SiloTxn, SnSilo, SnSiloGenerator};
use h2tap_common::rng::SplitMixRng;
use h2tap_common::{AttrType, PartitionId, Result, Schema, TableId, Value};
use h2tap_oltp::{StridePartitioner, TxnGenerator, TxnProc};
use h2tap_storage::Layout;
use std::sync::Arc;

/// Key-space stride per partition.
pub const PARTITION_STRIDE: i64 = 10_000_000;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct MultisiteConfig {
    /// The table holding the records.
    pub table: TableId,
    /// Records per partition.
    pub rows_per_partition: u64,
    /// Number of partitions (cores).
    pub partitions: usize,
    /// Percentage (0-100) of transactions that are multi-site.
    pub multisite_pct: u32,
    /// Records read per transaction.
    pub reads_per_txn: usize,
    /// Of which, reads that go to the remote partition in a multi-site
    /// transaction.
    pub remote_reads: usize,
}

impl MultisiteConfig {
    /// The paper's parameters (10 reads, 2 remote) at a configurable scale.
    pub fn paper(table: TableId, rows_per_partition: u64, partitions: usize, multisite_pct: u32) -> Self {
        Self { table, rows_per_partition, partitions, multisite_pct, reads_per_txn: 10, remote_reads: 2 }
    }

    /// Global key of `row` within `partition`.
    pub fn key(&self, partition: usize, row: u64) -> i64 {
        partition as i64 * PARTITION_STRIDE + row as i64
    }
}

/// The records table schema: (key, payload).
pub fn multisite_schema() -> Schema {
    Schema::new(vec![
        h2tap_common::Attribute::new("key", AttrType::Int64),
        h2tap_common::Attribute::new("payload", AttrType::Int64),
    ])
    .expect("valid schema")
}

/// The partitioner for the multisite key space.
pub fn multisite_partitioner(partitions: usize) -> StridePartitioner {
    StridePartitioner::new(PARTITION_STRIDE, partitions)
}

/// Loads the table into a Caldera builder (partitioner must already be
/// [`multisite_partitioner`]). Returns the table id.
pub fn load_multisite_caldera(
    builder: &mut CalderaBuilder,
    rows_per_partition: u64,
    partitions: usize,
) -> Result<TableId> {
    let table = builder.create_table("records", multisite_schema(), Layout::Nsm)?;
    for p in 0..partitions {
        for row in 0..rows_per_partition {
            let key = p as i64 * PARTITION_STRIDE + row as i64;
            builder.load(table, key, &[Value::Int64(key), Value::Int64(row as i64)])?;
        }
    }
    Ok(table)
}

/// Loads the same records into a single shared Silo instance.
pub fn load_multisite_silo(db: &Arc<SiloDb>, table: TableId, rows_per_partition: u64, partitions: usize) -> Result<()> {
    db.create_table(table);
    for p in 0..partitions {
        for row in 0..rows_per_partition {
            let key = p as i64 * PARTITION_STRIDE + row as i64;
            db.load(table, key, vec![Value::Int64(key), Value::Int64(row as i64)])?;
        }
    }
    Ok(())
}

/// Loads the records into an SN-Silo deployment (one instance per partition).
pub fn load_multisite_sn(sn: &SnSilo, table: TableId, rows_per_partition: u64) -> Result<()> {
    sn.create_table(table);
    for p in 0..sn.partitions() {
        for row in 0..rows_per_partition {
            let key = p as i64 * PARTITION_STRIDE + row as i64;
            sn.load(p, table, key, vec![Value::Int64(key), Value::Int64(row as i64)])?;
        }
    }
    Ok(())
}

/// Draws one transaction's key set: `(local keys, remote keys)`.
fn draw_keys(cfg: &MultisiteConfig, home: usize, rng: &mut SplitMixRng) -> (Vec<i64>, Vec<(usize, i64)>) {
    let multisite = cfg.partitions > 1 && rng.next_below(100) < u64::from(cfg.multisite_pct.min(100));
    let remote_count = if multisite { cfg.remote_reads.min(cfg.reads_per_txn) } else { 0 };
    let local_count = cfg.reads_per_txn - remote_count;
    let local: Vec<i64> = (0..local_count).map(|_| cfg.key(home, rng.next_below(cfg.rows_per_partition))).collect();
    let mut remote = Vec::with_capacity(remote_count);
    if remote_count > 0 {
        let mut target = rng.next_below(cfg.partitions as u64) as usize;
        if target == home {
            target = (target + 1) % cfg.partitions;
        }
        for _ in 0..remote_count {
            remote.push((target, cfg.key(target, rng.next_below(cfg.rows_per_partition))));
        }
    }
    (local, remote)
}

/// Caldera-side generator.
pub struct CalderaMultisiteGenerator {
    cfg: MultisiteConfig,
}

impl CalderaMultisiteGenerator {
    /// Creates the generator.
    pub fn new(cfg: MultisiteConfig) -> Self {
        Self { cfg }
    }
}

impl TxnGenerator for CalderaMultisiteGenerator {
    fn next_txn(&self, home: PartitionId, _seq: u64, rng: &mut SplitMixRng) -> TxnProc {
        let table = self.cfg.table;
        let (local, remote) = draw_keys(&self.cfg, home.0 as usize, rng);
        Arc::new(move |ctx| {
            let mut checksum = 0i64;
            for key in &local {
                checksum = checksum.wrapping_add(ctx.read(table, *key)?[1].as_i64().unwrap_or(0));
            }
            for (_, key) in &remote {
                checksum = checksum.wrapping_add(ctx.read(table, *key)?[1].as_i64().unwrap_or(0));
            }
            std::hint::black_box(checksum);
            Ok(())
        })
    }
}

/// Silo-side generator (single shared instance: "remote" keys are just other
/// parts of the shared key space).
pub struct SiloMultisiteGenerator {
    cfg: MultisiteConfig,
}

impl SiloMultisiteGenerator {
    /// Creates the generator.
    pub fn new(cfg: MultisiteConfig) -> Self {
        Self { cfg }
    }
}

impl SiloGenerator for SiloMultisiteGenerator {
    fn run_one(&self, db: &Arc<SiloDb>, worker: usize, _seq: u64, rng: &mut SplitMixRng) -> Result<()> {
        let (local, remote) = draw_keys(&self.cfg, worker % self.cfg.partitions, rng);
        let mut txn = SiloTxn::begin(Arc::clone(db));
        let mut checksum = 0i64;
        for key in local.iter().chain(remote.iter().map(|(_, k)| k)) {
            checksum = checksum.wrapping_add(txn.read(self.cfg.table, *key)?[1].as_i64().unwrap_or(0));
        }
        std::hint::black_box(checksum);
        txn.commit()
    }
}

/// SN-Silo-side generator (per-core instances coordinated with 2PC).
pub struct SnSiloMultisiteGenerator {
    cfg: MultisiteConfig,
}

impl SnSiloMultisiteGenerator {
    /// Creates the generator.
    pub fn new(cfg: MultisiteConfig) -> Self {
        Self { cfg }
    }
}

impl SnSiloGenerator for SnSiloMultisiteGenerator {
    fn run_one(&self, sn: &SnSilo, coordinator: usize, _seq: u64, rng: &mut SplitMixRng) -> Result<()> {
        let (local, remote) = draw_keys(&self.cfg, coordinator % self.cfg.partitions, rng);
        sn.read_transaction(coordinator, self.cfg.table, &local, &remote).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(multisite_pct: u32) -> MultisiteConfig {
        MultisiteConfig::paper(TableId(0), 1_000, 4, multisite_pct)
    }

    #[test]
    fn zero_percent_never_draws_remote_keys() {
        let c = cfg(0);
        let mut rng = SplitMixRng::new(1);
        for _ in 0..500 {
            let (local, remote) = draw_keys(&c, 1, &mut rng);
            assert_eq!(local.len(), 10);
            assert!(remote.is_empty());
            assert!(local.iter().all(|k| (PARTITION_STRIDE..2 * PARTITION_STRIDE).contains(k)));
        }
    }

    #[test]
    fn hundred_percent_always_draws_two_remote_keys() {
        let c = cfg(100);
        let mut rng = SplitMixRng::new(2);
        for _ in 0..500 {
            let (local, remote) = draw_keys(&c, 1, &mut rng);
            assert_eq!(local.len(), 8);
            assert_eq!(remote.len(), 2);
            let (target, key) = remote[0];
            assert_ne!(target, 1, "remote partition must differ from home");
            assert_eq!(remote[1].0, target, "both remote reads hit the same partition");
            assert_eq!((key / PARTITION_STRIDE) as usize, target);
        }
    }

    #[test]
    fn intermediate_percentages_are_respected_on_average() {
        let c = cfg(40);
        let mut rng = SplitMixRng::new(3);
        let n = 5_000;
        let multisite = (0..n).filter(|_| !draw_keys(&c, 0, &mut rng).1.is_empty()).count();
        let fraction = multisite as f64 / n as f64;
        assert!((0.35..0.45).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn partitioner_matches_key_encoding() {
        use h2tap_oltp::Partitioner;
        let p = multisite_partitioner(8);
        let c = MultisiteConfig::paper(TableId(0), 100, 8, 20);
        assert_eq!(p.partition_of(TableId(0), c.key(5, 99)), PartitionId(5));
    }
}
