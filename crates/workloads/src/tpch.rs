//! TPC-H `lineitem` generator and query 6.
//!
//! The paper's HTAP experiments (Figures 4-7) run over a TPC-H SF-300
//! `lineitem` table, use Q6 as the analytical query, and an update-only
//! YCSB-like workload over the same table as the transactional side. The
//! generator here produces a `lineitem`-shaped table at any scale factor with
//! the value distributions Q6's predicates rely on (uniform quantity 1-50,
//! discount 0-0.10, dates over seven years).

use caldera::CalderaBuilder;
use h2tap_common::rng::SplitMixRng;
use h2tap_common::{AggExpr, AttrType, Attribute, Predicate, Result, ScanAggQuery, Schema, TableId, Value};
use h2tap_storage::Layout;

/// Rows per TPC-H scale factor unit (the spec's 6,000,000 lineitems per SF).
pub const ROWS_PER_SCALE_FACTOR: u64 = 6_000_000;

/// Attribute positions within [`lineitem_schema`]. Kept as constants so query
/// builders and experiments cannot drift from the schema.
pub mod columns {
    /// l_orderkey
    pub const ORDERKEY: usize = 0;
    /// l_partkey
    pub const PARTKEY: usize = 1;
    /// l_suppkey
    pub const SUPPKEY: usize = 2;
    /// l_linenumber
    pub const LINENUMBER: usize = 3;
    /// l_quantity
    pub const QUANTITY: usize = 4;
    /// l_extendedprice
    pub const EXTENDEDPRICE: usize = 5;
    /// l_discount
    pub const DISCOUNT: usize = 6;
    /// l_tax
    pub const TAX: usize = 7;
    /// l_shipdate (days since 1992-01-01)
    pub const SHIPDATE: usize = 8;
    /// l_commitdate
    pub const COMMITDATE: usize = 9;
    /// l_receiptdate
    pub const RECEIPTDATE: usize = 10;
}

/// The subset of `lineitem` Caldera's evaluation needs (11 fixed-width
/// attributes; the three string attributes of the full schema carry no
/// predicate or aggregate in any experiment and are omitted).
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("l_orderkey", AttrType::Int64),
        Attribute::new("l_partkey", AttrType::Int64),
        Attribute::new("l_suppkey", AttrType::Int64),
        Attribute::new("l_linenumber", AttrType::Int32),
        Attribute::new("l_quantity", AttrType::Float64),
        Attribute::new("l_extendedprice", AttrType::Float64),
        Attribute::new("l_discount", AttrType::Float64),
        Attribute::new("l_tax", AttrType::Float64),
        Attribute::new("l_shipdate", AttrType::Date),
        Attribute::new("l_commitdate", AttrType::Date),
        Attribute::new("l_receiptdate", AttrType::Date),
    ])
    .expect("lineitem schema is valid")
}

/// Generates one lineitem row for global row number `key`.
pub fn lineitem_row(key: u64, rng: &mut SplitMixRng) -> Vec<Value> {
    let quantity = 1.0 + rng.next_below(50) as f64;
    let extendedprice = 900.0 + rng.next_f64() * 104_000.0;
    let discount = rng.next_below(11) as f64 / 100.0;
    let tax = rng.next_below(9) as f64 / 100.0;
    let shipdate = rng.next_below(2_526) as i32; // ~7 years of days
    vec![
        Value::Int64((key / 4) as i64),
        Value::Int64(rng.next_below(200_000) as i64),
        Value::Int64(rng.next_below(10_000) as i64),
        Value::Int32((key % 7) as i32 + 1),
        Value::Float64(quantity),
        Value::Float64(extendedprice),
        Value::Float64(discount),
        Value::Float64(tax),
        Value::Date(shipdate),
        Value::Date(shipdate + 30),
        Value::Date(shipdate + 45),
    ]
}

/// TPC-H Q6 over [`lineitem_schema`]:
/// `SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE l_shipdate
/// in [date, date+1y) AND l_discount in [0.05, 0.07] AND l_quantity < 24`.
pub fn q6() -> ScanAggQuery {
    ScanAggQuery {
        predicates: vec![
            Predicate::between(columns::SHIPDATE, 730.0, 1094.0),
            Predicate::between(columns::DISCOUNT, 0.05, 0.07),
            Predicate::between(columns::QUANTITY, 0.0, 23.0),
        ],
        aggregate: AggExpr::SumProduct(columns::EXTENDEDPRICE, columns::DISCOUNT),
    }
}

/// Bytes a columnar engine must read to answer Q6 over `rows` lineitem
/// records — the query's `bytes_to_scan` placement hint, exposed here so
/// experiments can report the footprint the scheduler reasons about.
pub fn q6_scan_bytes(rows: u64) -> u64 {
    q6().scan_bytes(&lineitem_schema(), rows)
}

/// Loads a lineitem table with `rows` records into a Caldera builder,
/// spreading rows round-robin across partitions (key = global row number).
/// Returns the table id.
pub fn load_lineitem(builder: &mut CalderaBuilder, layout: Layout, rows: u64, seed: u64) -> Result<TableId> {
    let table = builder.create_table("lineitem", lineitem_schema(), layout)?;
    let mut rng = SplitMixRng::new(seed);
    for key in 0..rows {
        let row = lineitem_row(key, &mut rng);
        builder.load(table, key as i64, &row)?;
    }
    Ok(table)
}

/// Reference (scalar) evaluation of Q6 over freshly generated rows — used by
/// tests to check that every engine agrees with a straightforward
/// implementation.
pub fn q6_reference(rows: u64, seed: u64) -> f64 {
    let mut rng = SplitMixRng::new(seed);
    let mut sum = 0.0;
    for key in 0..rows {
        let row = lineitem_row(key, &mut rng);
        let quantity = row[columns::QUANTITY].as_f64().unwrap();
        let price = row[columns::EXTENDEDPRICE].as_f64().unwrap();
        let discount = row[columns::DISCOUNT].as_f64().unwrap();
        let shipdate = row[columns::SHIPDATE].as_f64().unwrap();
        if (730.0..=1094.0).contains(&shipdate) && (0.05..=0.07).contains(&discount) && quantity < 24.0 {
            sum += price * discount;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_column_constants_agree() {
        let s = lineitem_schema();
        assert_eq!(s.arity(), 11);
        assert_eq!(s.index_of("l_quantity"), Some(columns::QUANTITY));
        assert_eq!(s.index_of("l_shipdate"), Some(columns::SHIPDATE));
        assert_eq!(s.index_of("l_extendedprice"), Some(columns::EXTENDEDPRICE));
    }

    #[test]
    fn q6_scan_bytes_counts_the_four_accessed_columns() {
        let schema = lineitem_schema();
        let per_row: u64 = q6().columns_accessed().iter().map(|&c| schema.attr(c).unwrap().ty.width() as u64).sum();
        assert_eq!(q6().columns_accessed().len(), 4);
        assert_eq!(q6_scan_bytes(1_000), per_row * 1_000);
        assert_eq!(q6_scan_bytes(0), 0);
    }

    #[test]
    fn rows_have_q6_friendly_distributions() {
        let mut rng = SplitMixRng::new(1);
        let mut qualifying = 0u64;
        let n = 50_000;
        for key in 0..n {
            let row = lineitem_row(key, &mut rng);
            let quantity = row[columns::QUANTITY].as_f64().unwrap();
            assert!((1.0..=50.0).contains(&quantity));
            let discount = row[columns::DISCOUNT].as_f64().unwrap();
            assert!((0.0..=0.10).contains(&discount));
            let shipdate = row[columns::SHIPDATE].as_f64().unwrap();
            if (730.0..=1094.0).contains(&shipdate) && (0.05..=0.07).contains(&discount) && quantity < 24.0 {
                qualifying += 1;
            }
        }
        // Q6 selects roughly 2% of lineitem.
        let fraction = qualifying as f64 / n as f64;
        assert!((0.005..0.05).contains(&fraction), "Q6 selectivity {fraction}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = SplitMixRng::new(9);
        let mut b = SplitMixRng::new(9);
        for key in 0..100 {
            assert_eq!(lineitem_row(key, &mut a), lineitem_row(key, &mut b));
        }
        assert_eq!(q6_reference(1000, 5), q6_reference(1000, 5));
    }

    #[test]
    fn q6_touches_four_columns() {
        assert_eq!(
            q6().columns_accessed(),
            vec![columns::QUANTITY, columns::EXTENDEDPRICE, columns::DISCOUNT, columns::SHIPDATE]
        );
    }
}
