//! TPC-H `lineitem` / `part` generators, query 6, and a join/group-by plan.
//!
//! The paper's HTAP experiments (Figures 4-7) run over a TPC-H SF-300
//! `lineitem` table, use Q6 as the analytical query, and an update-only
//! YCSB-like workload over the same table as the transactional side. The
//! generator here produces a `lineitem`-shaped table at any scale factor with
//! the value distributions Q6's predicates rely on (uniform quantity 1-50,
//! discount 0-0.10, dates over seven years).
//!
//! For the relational operator subsystem there is additionally a `part`
//! dimension table (`l_partkey` references it) and [`brand_revenue_plan`], a
//! TPC-H-style join + group-by: revenue per brand over parts in a size
//! range, in the spirit of Q14/Q19's `lineitem ⋈ part` shapes.

use caldera::CalderaBuilder;
use h2tap_common::rng::SplitMixRng;
use h2tap_common::{
    AggExpr, AttrType, Attribute, GroupRow, JoinSpec, OlapPlan, PlanColumn, Predicate, Result, ScanAggQuery, Schema,
    TableId, Value,
};
use h2tap_storage::Layout;

/// Rows per TPC-H scale factor unit (the spec's 6,000,000 lineitems per SF).
pub const ROWS_PER_SCALE_FACTOR: u64 = 6_000_000;

/// Attribute positions within [`lineitem_schema`]. Kept as constants so query
/// builders and experiments cannot drift from the schema.
pub mod columns {
    /// l_orderkey
    pub const ORDERKEY: usize = 0;
    /// l_partkey
    pub const PARTKEY: usize = 1;
    /// l_suppkey
    pub const SUPPKEY: usize = 2;
    /// l_linenumber
    pub const LINENUMBER: usize = 3;
    /// l_quantity
    pub const QUANTITY: usize = 4;
    /// l_extendedprice
    pub const EXTENDEDPRICE: usize = 5;
    /// l_discount
    pub const DISCOUNT: usize = 6;
    /// l_tax
    pub const TAX: usize = 7;
    /// l_shipdate (days since 1992-01-01)
    pub const SHIPDATE: usize = 8;
    /// l_commitdate
    pub const COMMITDATE: usize = 9;
    /// l_receiptdate
    pub const RECEIPTDATE: usize = 10;
}

/// The subset of `lineitem` Caldera's evaluation needs (11 fixed-width
/// attributes; the three string attributes of the full schema carry no
/// predicate or aggregate in any experiment and are omitted).
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("l_orderkey", AttrType::Int64),
        Attribute::new("l_partkey", AttrType::Int64),
        Attribute::new("l_suppkey", AttrType::Int64),
        Attribute::new("l_linenumber", AttrType::Int32),
        Attribute::new("l_quantity", AttrType::Float64),
        Attribute::new("l_extendedprice", AttrType::Float64),
        Attribute::new("l_discount", AttrType::Float64),
        Attribute::new("l_tax", AttrType::Float64),
        Attribute::new("l_shipdate", AttrType::Date),
        Attribute::new("l_commitdate", AttrType::Date),
        Attribute::new("l_receiptdate", AttrType::Date),
    ])
    .expect("lineitem schema is valid")
}

/// Generates one lineitem row for global row number `key`.
pub fn lineitem_row(key: u64, rng: &mut SplitMixRng) -> Vec<Value> {
    let quantity = 1.0 + rng.next_below(50) as f64;
    let extendedprice = 900.0 + rng.next_f64() * 104_000.0;
    let discount = rng.next_below(11) as f64 / 100.0;
    let tax = rng.next_below(9) as f64 / 100.0;
    let shipdate = rng.next_below(2_526) as i32; // ~7 years of days
    vec![
        Value::Int64((key / 4) as i64),
        Value::Int64(rng.next_below(200_000) as i64),
        Value::Int64(rng.next_below(10_000) as i64),
        Value::Int32((key % 7) as i32 + 1),
        Value::Float64(quantity),
        Value::Float64(extendedprice),
        Value::Float64(discount),
        Value::Float64(tax),
        Value::Date(shipdate),
        Value::Date(shipdate + 30),
        Value::Date(shipdate + 45),
    ]
}

/// TPC-H Q6 over [`lineitem_schema`]:
/// `SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE l_shipdate
/// in [date, date+1y) AND l_discount in [0.05, 0.07] AND l_quantity < 24`.
pub fn q6() -> ScanAggQuery {
    ScanAggQuery {
        predicates: vec![
            Predicate::between(columns::SHIPDATE, 730.0, 1094.0),
            Predicate::between(columns::DISCOUNT, 0.05, 0.07),
            Predicate::between(columns::QUANTITY, 0.0, 23.0),
        ],
        aggregate: AggExpr::SumProduct(columns::EXTENDEDPRICE, columns::DISCOUNT),
    }
}

/// Bytes a columnar engine must read to answer Q6 over `rows` lineitem
/// records — the query's `bytes_to_scan` placement hint, exposed here so
/// experiments can report the footprint the scheduler reasons about.
pub fn q6_scan_bytes(rows: u64) -> u64 {
    q6().scan_bytes(&lineitem_schema(), rows)
}

/// Distinct `l_partkey` values the lineitem generator draws (uniformly).
/// A `part` table smaller than this acts as a join filter: only lineitems
/// whose partkey falls inside the loaded part range find a partner.
pub const LINEITEM_PART_KEYS: u64 = 200_000;

/// Number of distinct `p_brand` values (the TPC-H spec has 25).
pub const PART_BRANDS: u64 = 25;

/// Attribute positions within [`part_schema`].
pub mod part_columns {
    /// p_partkey
    pub const PARTKEY: usize = 0;
    /// p_brand (0..25)
    pub const BRAND: usize = 1;
    /// p_size (1..=50)
    pub const SIZE: usize = 2;
    /// p_container (0..40)
    pub const CONTAINER: usize = 3;
    /// p_retailprice
    pub const RETAILPRICE: usize = 4;
}

/// The fixed-width subset of TPC-H `part` the join experiments need.
pub fn part_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("p_partkey", AttrType::Int64),
        Attribute::new("p_brand", AttrType::Int32),
        Attribute::new("p_size", AttrType::Int32),
        Attribute::new("p_container", AttrType::Int32),
        Attribute::new("p_retailprice", AttrType::Float64),
    ])
    .expect("part schema is valid")
}

/// Generates the part row for `p_partkey = key`. Brand and container are
/// derived from the key (deterministic group structure); size and price are
/// drawn from the generator's distributions (uniform 1..=50 and around the
/// spec's retail-price formula).
pub fn part_row(key: u64, rng: &mut SplitMixRng) -> Vec<Value> {
    let size = 1 + rng.next_below(50) as i32;
    let retailprice = 900.0 + (key % 1_000) as f64 + rng.next_f64() * 100.0;
    vec![
        Value::Int64(key as i64),
        Value::Int32((key % PART_BRANDS) as i32),
        Value::Int32(size),
        Value::Int32((key % 40) as i32),
        Value::Float64(retailprice),
    ]
}

/// Loads a `part` table with keys `0..parts` (keyed so `l_partkey` joins
/// directly). Returns the table id.
pub fn load_part(builder: &mut CalderaBuilder, layout: Layout, parts: u64, seed: u64) -> Result<TableId> {
    let table = builder.create_table("part", part_schema(), layout)?;
    let mut rng = SplitMixRng::new(seed);
    for key in 0..parts {
        let row = part_row(key, &mut rng);
        builder.load(table, key as i64, &row)?;
    }
    Ok(table)
}

/// Revenue per brand over parts in a size range — the TPC-H-style join +
/// group-by plan of the operator subsystem:
///
/// ```sql
/// SELECT p_brand, SUM(l_extendedprice * l_discount), COUNT(*)
/// FROM lineitem JOIN part ON l_partkey = p_partkey
/// WHERE l_shipdate BETWEEN 730 AND 1094 AND p_size <= :max_size
/// GROUP BY p_brand
/// ```
///
/// `max_size` (1..=50) controls build-side selectivity: `max_size/50` of the
/// loaded parts survive the filter and populate the join hash table.
pub fn brand_revenue_plan(max_size: i32) -> OlapPlan {
    OlapPlan {
        predicates: vec![Predicate::between(columns::SHIPDATE, 730.0, 1094.0)],
        join: Some(JoinSpec {
            probe_column: columns::PARTKEY,
            build_key: part_columns::PARTKEY,
            build_predicates: vec![Predicate::between(part_columns::SIZE, 1.0, f64::from(max_size))],
        }),
        group_by: Some(PlanColumn::Build(part_columns::BRAND)),
        aggregates: vec![AggExpr::SumProduct(columns::EXTENDEDPRICE, columns::DISCOUNT), AggExpr::Count],
    }
}

/// Like [`brand_revenue_plan`] but grouped by `p_partkey` itself — the
/// high-cardinality end of the group sweep (one group per surviving part).
pub fn partkey_revenue_plan(max_size: i32) -> OlapPlan {
    OlapPlan { group_by: Some(PlanColumn::Build(part_columns::PARTKEY)), ..brand_revenue_plan(max_size) }
}

/// Reference (scalar) evaluation of [`brand_revenue_plan`] /
/// [`partkey_revenue_plan`] over freshly generated rows: regenerates both
/// tables and evaluates the plan naively, returning `(key, revenue, rows)`
/// per group in ascending key order. Aggregation order differs from the
/// engines' chunked order, so compare revenues with a tolerance.
pub fn brand_revenue_reference(
    lineitem_rows: u64,
    parts: u64,
    max_size: i32,
    lineitem_seed: u64,
    part_seed: u64,
    by_partkey: bool,
) -> Vec<GroupRow> {
    let mut part_rng = SplitMixRng::new(part_seed);
    // partkey -> group key (brand or partkey) for parts in the size range.
    let mut surviving: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for key in 0..parts {
        let row = part_row(key, &mut part_rng);
        let size = row[part_columns::SIZE].as_i64().unwrap();
        if size <= i64::from(max_size) {
            let group = if by_partkey { key } else { key % PART_BRANDS };
            surviving.insert(key, group);
        }
    }
    let mut groups: std::collections::BTreeMap<u64, (f64, u64)> = std::collections::BTreeMap::new();
    let mut rng = SplitMixRng::new(lineitem_seed);
    for key in 0..lineitem_rows {
        let row = lineitem_row(key, &mut rng);
        let shipdate = row[columns::SHIPDATE].as_f64().unwrap();
        if !(730.0..=1094.0).contains(&shipdate) {
            continue;
        }
        let partkey = row[columns::PARTKEY].as_i64().unwrap() as u64;
        let Some(&group) = surviving.get(&partkey) else { continue };
        let revenue = row[columns::EXTENDEDPRICE].as_f64().unwrap() * row[columns::DISCOUNT].as_f64().unwrap();
        let e = groups.entry(group).or_insert((0.0, 0));
        e.0 += revenue;
        e.1 += 1;
    }
    groups
        .into_iter()
        .map(|(key, (revenue, rows))| GroupRow { key, values: vec![revenue, rows as f64], rows })
        .collect()
}

/// Loads a lineitem table with `rows` records into a Caldera builder,
/// spreading rows round-robin across partitions (key = global row number).
/// Returns the table id.
pub fn load_lineitem(builder: &mut CalderaBuilder, layout: Layout, rows: u64, seed: u64) -> Result<TableId> {
    load_lineitem_named(builder, "lineitem", layout, rows, seed)
}

/// Like [`load_lineitem`] but with an explicit table name, so several
/// lineitem instances (e.g. a sweep of sizes straddling the placement
/// crossover) can coexist in one engine.
pub fn load_lineitem_named(
    builder: &mut CalderaBuilder,
    name: &str,
    layout: Layout,
    rows: u64,
    seed: u64,
) -> Result<TableId> {
    let table = builder.create_table(name, lineitem_schema(), layout)?;
    let mut rng = SplitMixRng::new(seed);
    for key in 0..rows {
        let row = lineitem_row(key, &mut rng);
        builder.load(table, key as i64, &row)?;
    }
    Ok(table)
}

/// Like [`load_lineitem_named`] but sized to exactly `chunks` execution
/// chunks ([`h2tap_common::PLAN_CHUNK_ROWS`] rows each) — the boundary case
/// of the chunk-shard contract (a row count that is an exact chunk multiple
/// leaves no partial tail chunk), which the multi-site byte-identity tests
/// pin explicitly.
pub fn load_lineitem_chunks(
    builder: &mut CalderaBuilder,
    name: &str,
    layout: Layout,
    chunks: u64,
    seed: u64,
) -> Result<TableId> {
    load_lineitem_named(builder, name, layout, chunks * h2tap_common::PLAN_CHUNK_ROWS as u64, seed)
}

/// Reference (scalar) evaluation of Q6 over freshly generated rows — used by
/// tests to check that every engine agrees with a straightforward
/// implementation.
pub fn q6_reference(rows: u64, seed: u64) -> f64 {
    let mut rng = SplitMixRng::new(seed);
    let mut sum = 0.0;
    for key in 0..rows {
        let row = lineitem_row(key, &mut rng);
        let quantity = row[columns::QUANTITY].as_f64().unwrap();
        let price = row[columns::EXTENDEDPRICE].as_f64().unwrap();
        let discount = row[columns::DISCOUNT].as_f64().unwrap();
        let shipdate = row[columns::SHIPDATE].as_f64().unwrap();
        if (730.0..=1094.0).contains(&shipdate) && (0.05..=0.07).contains(&discount) && quantity < 24.0 {
            sum += price * discount;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_column_constants_agree() {
        let s = lineitem_schema();
        assert_eq!(s.arity(), 11);
        assert_eq!(s.index_of("l_quantity"), Some(columns::QUANTITY));
        assert_eq!(s.index_of("l_shipdate"), Some(columns::SHIPDATE));
        assert_eq!(s.index_of("l_extendedprice"), Some(columns::EXTENDEDPRICE));
    }

    #[test]
    fn q6_scan_bytes_counts_the_four_accessed_columns() {
        let schema = lineitem_schema();
        let per_row: u64 = q6().columns_accessed().iter().map(|&c| schema.attr(c).unwrap().ty.width() as u64).sum();
        assert_eq!(q6().columns_accessed().len(), 4);
        assert_eq!(q6_scan_bytes(1_000), per_row * 1_000);
        assert_eq!(q6_scan_bytes(0), 0);
    }

    #[test]
    fn rows_have_q6_friendly_distributions() {
        let mut rng = SplitMixRng::new(1);
        let mut qualifying = 0u64;
        let n = 50_000;
        for key in 0..n {
            let row = lineitem_row(key, &mut rng);
            let quantity = row[columns::QUANTITY].as_f64().unwrap();
            assert!((1.0..=50.0).contains(&quantity));
            let discount = row[columns::DISCOUNT].as_f64().unwrap();
            assert!((0.0..=0.10).contains(&discount));
            let shipdate = row[columns::SHIPDATE].as_f64().unwrap();
            if (730.0..=1094.0).contains(&shipdate) && (0.05..=0.07).contains(&discount) && quantity < 24.0 {
                qualifying += 1;
            }
        }
        // Q6 selects roughly 2% of lineitem.
        let fraction = qualifying as f64 / n as f64;
        assert!((0.005..0.05).contains(&fraction), "Q6 selectivity {fraction}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = SplitMixRng::new(9);
        let mut b = SplitMixRng::new(9);
        for key in 0..100 {
            assert_eq!(lineitem_row(key, &mut a), lineitem_row(key, &mut b));
        }
        assert_eq!(q6_reference(1000, 5), q6_reference(1000, 5));
    }

    #[test]
    fn part_schema_and_constants_agree() {
        let s = part_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.index_of("p_partkey"), Some(part_columns::PARTKEY));
        assert_eq!(s.index_of("p_brand"), Some(part_columns::BRAND));
        assert_eq!(s.index_of("p_size"), Some(part_columns::SIZE));
        let mut rng = SplitMixRng::new(3);
        for key in 0..1_000u64 {
            let row = part_row(key, &mut rng);
            assert_eq!(row[part_columns::PARTKEY].as_i64(), Some(key as i64));
            let brand = row[part_columns::BRAND].as_i64().unwrap();
            assert!((0..PART_BRANDS as i64).contains(&brand));
            let size = row[part_columns::SIZE].as_i64().unwrap();
            assert!((1..=50).contains(&size));
        }
    }

    #[test]
    fn brand_revenue_plan_is_valid_and_selective() {
        let plan = brand_revenue_plan(25);
        assert!(plan.validate().is_ok());
        assert_eq!(
            plan.probe_columns_accessed(),
            vec![columns::PARTKEY, columns::EXTENDEDPRICE, columns::DISCOUNT, columns::SHIPDATE]
        );
        assert_eq!(plan.build_columns_accessed(), vec![part_columns::PARTKEY, part_columns::BRAND, part_columns::SIZE]);
        assert!(plan.random_access_bytes(1_000) > 0, "join plans must report random access");
        // Grouping by partkey only changes the group column.
        let by_key = partkey_revenue_plan(25);
        assert_eq!(by_key.build_columns_accessed(), vec![part_columns::PARTKEY, part_columns::SIZE]);
    }

    #[test]
    fn brand_revenue_reference_groups_by_brand_or_partkey() {
        let by_brand = brand_revenue_reference(20_000, 2_000, 25, 7, 11, false);
        assert!(!by_brand.is_empty());
        assert!(by_brand.len() <= PART_BRANDS as usize);
        let by_key = brand_revenue_reference(20_000, 2_000, 25, 7, 11, true);
        assert!(by_key.len() > by_brand.len(), "partkey grouping has higher cardinality");
        // Same total revenue and row count either way.
        let rev = |g: &[GroupRow]| g.iter().map(|r| r.values[0]).sum::<f64>();
        let rows = |g: &[GroupRow]| g.iter().map(|r| r.rows).sum::<u64>();
        assert!((rev(&by_brand) - rev(&by_key)).abs() < 1e-6);
        assert_eq!(rows(&by_brand), rows(&by_key));
        // Halving the size range cannot increase the joined row count.
        let narrow = brand_revenue_reference(20_000, 2_000, 12, 7, 11, false);
        assert!(rows(&narrow) < rows(&by_brand));
    }

    #[test]
    fn q6_touches_four_columns() {
        assert_eq!(
            q6().columns_accessed(),
            vec![columns::QUANTITY, columns::EXTENDEDPRICE, columns::DISCOUNT, columns::SHIPDATE]
        );
    }
}
