//! Explicit SIMD lane kernels for the host data path.
//!
//! The repository pins a **stable** toolchain, so `std::simd` (nightly-only)
//! is not available; the vectors here are hand-unrolled lane structs — fixed
//! `[f64; N]` arrays behind the common [`SimdF64`] trait — whose elementwise
//! operations are fixed-trip loops the backend turns into the target's
//! vector instructions. The hot loops of [`crate::operators`] were
//! previously at the mercy of the auto-vectorizer (a scalar loop that
//! happens to vectorise today can silently stop vectorising after an
//! innocuous refactor); routing them through these kernels makes the lane
//! structure explicit and testable.
//!
//! # Bit-identity
//!
//! The plan IR requires f64 answers to be byte-identical across execution
//! sites, and f64 addition is not associative — so these kernels vectorise
//! only the **elementwise** work (cell decode, predicate compare, per-row
//! multiply/sum staging) and leave every *accumulation* sequential in
//! ascending row order. A lane never holds a partial sum that spans rows;
//! it only ever holds per-row values that the caller then folds in exactly
//! the reference order. The zonemap min/max kernel is the one deliberate
//! exception: its lane-split fold can pick a different `-0.0`/`+0.0` tie
//! representative than the sequential reference, which is safe because
//! zonemap bounds are only ever *compared* numerically (where the two zeros
//! are equal) and never enter an answer.

/// The common trait of the hand-unrolled lane structs: elementwise f64
/// operations over a fixed number of lanes. Kernels are generic over this
/// trait, so the lane width is a per-call-site choice — 8 lanes for
/// streaming loops over contiguous cells, 4 for gather-based loops over a
/// selection vector (shorter tails, and gathers defeat wider unrolls
/// anyway).
pub(crate) trait SimdF64: Copy {
    /// Number of f64 lanes.
    const LANES: usize;

    /// All lanes set to `v`.
    fn splat(v: f64) -> Self;

    /// Decodes `Self::LANES` consecutive raw cells.
    fn decode<D: Fn(u64) -> f64>(decode: &D, cells: &[u64]) -> Self;

    /// Decodes the cells of `col` at the `Self::LANES` row indexes `idx`.
    fn gather<D: Fn(u64) -> f64>(decode: &D, col: &[u64], idx: &[u32]) -> Self;

    /// Value of lane `i`.
    fn lane(self, i: usize) -> f64;

    /// Lanewise multiplication.
    fn mul(self, other: Self) -> Self;

    /// Bit `i` set iff `lo <= lane i <= hi` (false for NaN lanes, exactly
    /// like [`h2tap_common::Predicate::matches`]).
    fn between_mask(self, lo: f64, hi: f64) -> u32;

    /// Lanewise minimum using a plain `<` comparison (NaN lanes of `other`
    /// are ignored, NaN lanes of `self` are replaced).
    fn min_lanes(self, other: Self) -> Self;

    /// Lanewise maximum using a plain `>` comparison.
    fn max_lanes(self, other: Self) -> Self;

    /// Folds the lanes into running `(lo, hi)` bounds, visiting lanes in
    /// ascending order with the same plain comparisons as the scalar
    /// reference (NaN lanes are ignored).
    fn fold_min_max(self, lo: f64, hi: f64) -> (f64, f64);
}

/// A hand-unrolled vector of `N` f64 lanes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Lanes<const N: usize>([f64; N]);

/// 4-lane vector for gather-based kernels.
pub(crate) type F64x4 = Lanes<4>;
/// 8-lane (one cache line) vector for streaming kernels.
pub(crate) type F64x8 = Lanes<8>;

impl<const N: usize> SimdF64 for Lanes<N> {
    const LANES: usize = N;

    #[inline(always)]
    fn splat(v: f64) -> Self {
        Self([v; N])
    }

    #[inline(always)]
    fn decode<D: Fn(u64) -> f64>(decode: &D, cells: &[u64]) -> Self {
        debug_assert_eq!(cells.len(), N);
        Self(std::array::from_fn(|i| decode(cells[i])))
    }

    #[inline(always)]
    fn gather<D: Fn(u64) -> f64>(decode: &D, col: &[u64], idx: &[u32]) -> Self {
        debug_assert_eq!(idx.len(), N);
        Self(std::array::from_fn(|i| decode(col[idx[i] as usize])))
    }

    #[inline(always)]
    fn lane(self, i: usize) -> f64 {
        self.0[i]
    }

    #[inline(always)]
    fn mul(self, other: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] * other.0[i]))
    }

    #[inline(always)]
    fn between_mask(self, lo: f64, hi: f64) -> u32 {
        let mut mask = 0u32;
        for (i, &v) in self.0.iter().enumerate() {
            mask |= u32::from(v >= lo && v <= hi) << i;
        }
        mask
    }

    #[inline(always)]
    fn min_lanes(self, other: Self) -> Self {
        Self(std::array::from_fn(|i| if other.0[i] < self.0[i] { other.0[i] } else { self.0[i] }))
    }

    #[inline(always)]
    fn max_lanes(self, other: Self) -> Self {
        Self(std::array::from_fn(|i| if other.0[i] > self.0[i] { other.0[i] } else { self.0[i] }))
    }

    #[inline(always)]
    fn fold_min_max(self, lo: f64, hi: f64) -> (f64, f64) {
        let (mut lo, mut hi) = (lo, hi);
        for &v in &self.0 {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        (lo, hi)
    }
}

/// Min/max of `cells` under `decode` with plain comparisons (NaN cells are
/// ignored; `(+inf, -inf)` for an empty slice) — the lane-parallel zonemap
/// kernel. Lanewise bounds run over 8-lane groups, the lane bounds fold in
/// ascending lane order, and the tail finishes scalar; the result equals
/// the sequential reference everywhere except possibly the `-0.0`/`+0.0`
/// tie representative (see the module doc for why that is safe).
#[inline]
pub(crate) fn min_max_lanes<D: Fn(u64) -> f64>(decode: D, cells: &[u64]) -> (f64, f64) {
    let mut vlo = F64x8::splat(f64::INFINITY);
    let mut vhi = F64x8::splat(f64::NEG_INFINITY);
    let mut i = 0usize;
    while i + F64x8::LANES <= cells.len() {
        let v = F64x8::decode(&decode, &cells[i..i + F64x8::LANES]);
        vlo = vlo.min_lanes(v);
        vhi = vhi.max_lanes(v);
        i += F64x8::LANES;
    }
    let (mut lo, _) = vlo.fold_min_max(f64::INFINITY, f64::NEG_INFINITY);
    let (_, mut hi) = vhi.fold_min_max(f64::INFINITY, f64::NEG_INFINITY);
    for &cell in &cells[i..] {
        let v = decode(cell);
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    (lo, hi)
}

/// Stages the bit patterns of the decoded values of `col` at the selected
/// rows into `out` (`out[i] = decode(col[sel[i]]).to_bits()`), gathering
/// 4 lanes at a time — the vectorisable half of the hash-probe loop. The
/// hash-map lookups themselves stay scalar in the caller; only the decode
/// is lane-parallel.
#[inline]
pub(crate) fn stage_key_bits<D: Fn(u64) -> f64>(decode: D, col: &[u64], sel: &[u32], out: &mut Vec<u64>) {
    out.clear();
    out.reserve(sel.len());
    let mut i = 0usize;
    while i + F64x4::LANES <= sel.len() {
        let v = F64x4::gather(&decode, col, &sel[i..i + F64x4::LANES]);
        for lane in 0..F64x4::LANES {
            out.push(v.lane(lane).to_bits());
        }
        i += F64x4::LANES;
    }
    for &row in &sel[i..] {
        out.push(decode(col[row as usize]).to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(cell: u64) -> f64 {
        f64::from_bits(cell)
    }

    #[test]
    fn between_mask_matches_scalar_including_nan() {
        let cells: Vec<u64> =
            [1.0, f64::NAN, 3.0, -0.0, 5.0, f64::INFINITY, -7.0, 2.5].iter().map(|v| v.to_bits()).collect();
        let v = F64x8::decode(&dec, &cells);
        let mask = v.between_mask(0.0, 4.0);
        for (lane, &cell) in cells.iter().enumerate() {
            let x = dec(cell);
            assert_eq!((mask >> lane) & 1 == 1, (0.0..=4.0).contains(&x), "lane {lane} ({x})");
        }
    }

    #[test]
    fn min_max_lanes_matches_sequential_reference() {
        // NaN-salted, negative-zero-salted, and oddly sized inputs.
        let salted: Vec<f64> = (0..67)
            .map(|i| match i % 9 {
                0 => f64::NAN,
                1 => -0.0,
                _ => (i as f64 - 30.0) * 1.25,
            })
            .collect();
        for len in [0, 1, 7, 8, 9, 16, 23, 67] {
            let cells: Vec<u64> = salted[..len].iter().map(|v| v.to_bits()).collect();
            let (lo, hi) = min_max_lanes(dec, &cells);
            let (mut rlo, mut rhi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &c in &cells {
                let v = dec(c);
                if v < rlo {
                    rlo = v;
                }
                if v > rhi {
                    rhi = v;
                }
            }
            // Numeric equality: -0.0/+0.0 tie representatives may differ.
            assert_eq!(lo, rlo, "len {len}");
            assert_eq!(hi, rhi, "len {len}");
        }
    }

    #[test]
    fn all_nan_input_yields_the_empty_bounds() {
        let cells: Vec<u64> = std::iter::repeat_n(f64::NAN.to_bits(), 13).collect();
        let (lo, hi) = min_max_lanes(dec, &cells);
        assert_eq!(lo, f64::INFINITY);
        assert_eq!(hi, f64::NEG_INFINITY);
    }

    #[test]
    fn stage_key_bits_matches_scalar_gather() {
        let col: Vec<u64> = (0..40).map(|i| (i as f64 * 0.5).to_bits()).collect();
        for sel_len in [0usize, 1, 3, 4, 5, 11] {
            let sel: Vec<u32> = (0..sel_len as u32).map(|i| (i * 3) % 40).collect();
            let mut out = Vec::new();
            stage_key_bits(dec, &col, &sel, &mut out);
            let want: Vec<u64> = sel.iter().map(|&r| dec(col[r as usize]).to_bits()).collect();
            assert_eq!(out, want, "sel_len {sel_len}");
        }
    }

    #[test]
    fn lane_arithmetic_is_elementwise() {
        let a = F64x4::decode(&dec, &[1.0, 2.0, 3.0, 4.0].map(f64::to_bits));
        let b = F64x4::splat(2.0);
        let prod = a.mul(b);
        for lane in 0..4 {
            assert_eq!(prod.lane(lane), a.lane(lane) * 2.0);
        }
    }
}
