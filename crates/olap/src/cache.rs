//! The snapshot-keyed plan-data cache: one shared store of derived
//! analytical state — materialised columns (with their zonemap statistics)
//! and join hash tables — keyed by the identity of the frozen table image
//! they were derived from.
//!
//! Every execution site funnels through the same host data path
//! ([`crate::operators`]), and before this cache existed every dispatch
//! re-materialised the accessed columns, re-derived the per-chunk zonemap
//! min/max and re-built the join hash table — even when the next query hit
//! the *same snapshot* of the *same table*. Analytical engines amortise that
//! work over consistent snapshots (columnar scan caching is table stakes in
//! the HTAP literature), and because our sites compute bit-identical answers
//! from the shared data path, they can also share the derived state itself:
//! a hash table built for the GPU site's dispatch is byte-for-byte the one
//! the CPU site would build for the same snapshot.
//!
//! # Keying and invalidation
//!
//! Entries are keyed by [`h2tap_storage::SnapshotTableId`] — database
//! instance + table + **snapshot epoch** — plus the derivation parameters
//! (accessed column set, or join spec + group column). The epoch is bumped
//! on every snapshot and copy-on-write keeps a frozen epoch's pages
//! immutable, so two requests with equal keys are provably over identical
//! data and a *stale* snapshot can never be served: a fresh snapshot has a
//! fresh epoch and therefore a fresh key. Superseded epochs are evicted
//! lazily (a request at epoch `e` drops entries of the same table at
//! epochs `< e`) and eagerly on [`PlanDataCache::invalidate`], which the
//! engine calls on every snapshot refresh.
//!
//! # Byte budget and LRU eviction
//!
//! An unbounded cache OOMs under many-table workloads, so the cache takes an
//! optional **byte budget** ([`PlanDataCache::with_budget`], wired to
//! `CalderaConfig::olap_plan_cache_budget_bytes`). On every miss the derived
//! entry is *admitted* only if it fits: least-recently-used entries are
//! evicted (across both maps, by a shared access tick) until it does, an
//! entry larger than the whole budget is simply not cached (derive, return,
//! forget — never flush the cache for an entry that cannot fit), and a
//! budget of zero disables caching outright. Entries **pinned by in-flight
//! queries** — anything whose `Arc` a caller still holds — are never
//! evicted; if only pinned entries remain, admission fails and the new
//! entry goes uncached. Occupancy therefore never exceeds the budget.
//! Budget evictions count separately from epoch/refresh `invalidations`
//! (policy vs correctness) and both, plus the occupancy gauge, surface
//! through [`PlanCacheStats`].
//!
//! # Shared scans: attaching to an in-flight derivation
//!
//! Under concurrent serving, two queries hitting the same key used to race:
//! both would miss and both would pay the materialisation. The cache now
//! keeps an **in-flight marker** per key while a builder derives (the
//! derivation itself runs *outside* the cache lock), and a concurrent
//! request for the same key *attaches* — it waits on the builder's result
//! slot instead of duplicating the work, counted in
//! `PlanCacheStats::shared_scan_attaches`. The builder hands its `Arc`
//! directly to the waiters through the slot, so sharing works even when the
//! byte budget declines to cache the entry. A builder that fails (error or
//! panic) publishes a `None` slot and removes its marker, and one of the
//! waiters becomes the next builder — waiters can never hang on a dead
//! build.

use crate::operators::{self, JoinHashTable, MaterializedColumns, PlanData};
use h2tap_common::{JoinSpec, OlapPlan, PlanCacheStats, Result};
use h2tap_obs::{SpanEvent, SpanKind, Tracer};
use h2tap_storage::{SnapshotTable, SnapshotTableId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, MutexGuard, OnceLock, PoisonError};

/// Cache key of one materialised column set: the frozen image it came from
/// plus the (sorted, deduplicated) accessed columns.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ColumnsKey {
    id: SnapshotTableId,
    cols: Vec<usize>,
}

/// Cache key of one join hash table: the frozen build image plus every
/// parameter of the build — the join key, the carried group column and the
/// build predicates (bounds keyed by bit pattern: f64 is not `Eq`, but two
/// predicates with bit-equal bounds filter identically).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct HashKey {
    id: SnapshotTableId,
    build_key: usize,
    group_col: Option<usize>,
    predicates: Vec<(usize, u64, u64)>,
}

impl HashKey {
    fn new(id: SnapshotTableId, join: &JoinSpec, group_col: Option<usize>) -> Self {
        Self {
            id,
            build_key: join.build_key,
            group_col,
            predicates: join.build_predicates.iter().map(|p| (p.column, p.lo.to_bits(), p.hi.to_bits())).collect(),
        }
    }
}

/// One cached derivation: the shared value, its byte footprint (fixed at
/// admission) and the access tick of its most recent use.
#[derive(Debug)]
struct Entry<T> {
    value: Arc<T>,
    bytes: u64,
    last_used: u64,
}

/// The published result of one in-flight derivation: `Some` on success,
/// `None` when the builder failed (its waiters retry, and the first to
/// re-probe becomes the next builder). Set exactly once, always before the
/// in-flight marker is removed, so a woken waiter observes the outcome.
type BuildSlot<T> = OnceLock<Option<Arc<T>>>;

#[derive(Debug, Default)]
struct CacheInner {
    columns: BTreeMap<ColumnsKey, Entry<MaterializedColumns>>,
    hashes: BTreeMap<HashKey, Entry<JoinHashTable>>,
    /// In-flight column materialisations: a marker lives here from the
    /// moment a builder claims the key until its result slot is published,
    /// and concurrent requests for the key attach to it (shared scan).
    building_columns: BTreeMap<ColumnsKey, Arc<BuildSlot<MaterializedColumns>>>,
    /// In-flight hash-table builds, same protocol as `building_columns`.
    building_hashes: BTreeMap<HashKey, Arc<BuildSlot<JoinHashTable>>>,
    /// Highest epoch observed per (database instance, table) — lazy
    /// eviction only runs when this *advances*, so a pure hit stream costs
    /// O(1) per access and a request at an older (still-live) epoch is
    /// served, never punished.
    latest_epoch: BTreeMap<(u64, h2tap_common::TableId), h2tap_common::Epoch>,
    stats: PlanCacheStats,
    /// Byte budget (`None` = unbounded, `Some(0)` = caching disabled).
    budget: Option<u64>,
    /// Monotonic access counter ordering uses across both maps for LRU.
    tick: u64,
    /// Shared trace handle: probes emit `cache_lookup` spans, misses emit
    /// the `materialise` / `hash_build` span of the derivation they paid.
    /// Disabled (one relaxed load per probe) until the engine installs one.
    tracer: Tracer,
}

impl CacheInner {
    /// Bumps and returns the access tick.
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Bytes currently held across both maps.
    fn occupancy(&self) -> u64 {
        self.columns.values().map(|e| e.bytes).sum::<u64>() + self.hashes.values().map(|e| e.bytes).sum::<u64>()
    }

    /// Decides whether an entry of `bytes` may be cached, evicting
    /// least-recently-used **unpinned** entries until it fits. An entry is
    /// pinned exactly while some caller still holds its `Arc`
    /// (`strong_count > 1` — the cache holds the other reference), which is
    /// what protects the currently-executing query's data: a prepared
    /// plan's hash table stays resident while its columns are admitted, and
    /// no eviction can free memory a query is still reading. Returns
    /// `false` — derive but don't cache — when the entry can never fit or
    /// only pinned entries remain.
    fn admit(&mut self, bytes: u64) -> bool {
        let Some(budget) = self.budget else { return true };
        if bytes > budget {
            // Evicting everything still wouldn't make room: don't flush a
            // working set for an entry that cannot be cached anyway.
            return false;
        }
        while self.occupancy() + bytes > budget {
            let col_victim = self
                .columns
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.value) == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (k.clone(), e.last_used));
            let hash_victim = self
                .hashes
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.value) == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (k.clone(), e.last_used));
            match (col_victim, hash_victim) {
                (Some((ck, ct)), Some((_, ht))) if ct <= ht => drop(self.columns.remove(&ck)),
                (_, Some((hk, _))) => drop(self.hashes.remove(&hk)),
                (Some((ck, _)), None) => drop(self.columns.remove(&ck)),
                (None, None) => return false,
            }
            self.stats.evictions += 1;
        }
        true
    }
    /// Notes an access at `id`'s epoch. The first time a *newer* epoch of a
    /// table is seen, entries of that table's older epochs are evicted —
    /// they are usually superseded snapshots. Entries of *other* tables
    /// (and other databases) are untouched, and an older-epoch request
    /// after the advance simply re-derives and is cached again (a caller
    /// legitimately alternating between two live snapshots converges to
    /// both being cached, since eviction fires only on the advance itself).
    fn note_epoch(&mut self, id: SnapshotTableId) {
        let latest = self.latest_epoch.entry((id.source, id.table)).or_insert(id.epoch);
        if *latest >= id.epoch {
            return;
        }
        *latest = id.epoch;
        let stale =
            |entry: &SnapshotTableId| entry.source == id.source && entry.table == id.table && entry.epoch < id.epoch;
        let before = self.columns.len() + self.hashes.len();
        self.columns.retain(|key, _| !stale(&key.id));
        self.hashes.retain(|key, _| !stale(&key.id));
        self.stats.invalidations += (before - self.columns.len() - self.hashes.len()) as u64;
    }
}

/// The state behind the cache handle: the entry maps under one mutex plus
/// the condvar shared-scan waiters park on until a builder publishes.
#[derive(Debug, Default)]
struct Shared {
    inner: Mutex<CacheInner>,
    /// Notified (all) whenever an in-flight derivation completes — with a
    /// value or with a failure — so attached waiters re-check their slot.
    ready: Condvar,
}

/// `Condvar::wait` with the workspace poison-recovery convention (the
/// vendored `parking_lot` guards are std guards underneath).
fn wait_ready<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Which in-flight marker a [`FinishBuild`] guard owns.
enum BuildKey {
    Columns(ColumnsKey),
    Hashes(HashKey),
}

/// Builder-side completion guard: when the builder finishes — by returning
/// a value, returning an error, or panicking — this publishes the slot
/// (`None` if the builder never set it), removes the in-flight marker and
/// wakes every attached waiter. Drop-driven so waiters can never hang on a
/// build that died.
struct FinishBuild<'a, T> {
    shared: &'a Shared,
    slot: &'a BuildSlot<T>,
    key: BuildKey,
}

impl<T> Drop for FinishBuild<'_, T> {
    fn drop(&mut self) {
        self.slot.get_or_init(|| None);
        let mut inner = self.shared.inner.lock();
        match &self.key {
            BuildKey::Columns(k) => drop(inner.building_columns.remove(k)),
            BuildKey::Hashes(k) => drop(inner.building_hashes.remove(k)),
        }
        drop(inner);
        self.shared.ready.notify_all();
    }
}

/// The shared plan-data cache. Cheap to clone (`Arc` inside); the engine
/// builder hands one instance to all execution sites so queries share
/// derived state across sites as well as across time.
#[derive(Debug, Clone, Default)]
pub struct PlanDataCache {
    shared: Arc<Shared>,
}

impl PlanDataCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with a byte budget: `None` is unbounded, `Some(0)`
    /// disables caching (every request re-derives), any other value bounds
    /// occupancy by LRU eviction (see the module doc).
    pub fn with_budget(budget: Option<u64>) -> Self {
        let cache = Self::default();
        cache.shared.inner.lock().budget = budget;
        cache
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        self.shared.inner.lock().budget
    }

    /// Installs the engine's shared trace handle (all clones of this cache
    /// share it — the tracer lives behind the same `Arc` as the entries).
    pub fn set_tracer(&self, tracer: Tracer) {
        self.shared.inner.lock().tracer = tracer;
    }

    /// A span event stamped with a frozen table's identity.
    fn span(kind: SpanKind, id: SnapshotTableId) -> SpanEvent {
        SpanEvent::new(kind).table(u64::from(id.table.0)).epoch(id.epoch.0)
    }

    /// The materialised columns (with zonemap statistics) of `cols` of the
    /// frozen `table`, shared if a query — on any site — already derived
    /// them for this snapshot epoch; materialised, and cached if the budget
    /// admits it, otherwise.
    pub fn materialized(&self, table: &SnapshotTable, mut cols: Vec<usize>) -> Result<Arc<MaterializedColumns>> {
        cols.sort_unstable();
        cols.dedup();
        let key = ColumnsKey { id: table.identity, cols };
        let mut attached = false;
        loop {
            let mut inner = self.shared.inner.lock();
            let state = &mut *inner; // split the guard borrow across fields
            let tracer = state.tracer.clone();
            let lookup = tracer.start();
            state.note_epoch(table.identity);
            let now = state.touch();
            if let Some(hit) = state.columns.get_mut(&key) {
                hit.last_used = now;
                state.stats.column_hits += 1;
                tracer.record_wall(Self::span(SpanKind::CacheLookup, table.identity).hit(true), lookup);
                return Ok(Arc::clone(&hit.value));
            }
            if let Some(slot) = state.building_columns.get(&key).map(Arc::clone) {
                // Shared scan: the same derivation is already in flight on
                // another thread — attach and wait for its result instead
                // of racing to build a duplicate.
                if !attached {
                    attached = true;
                    state.stats.shared_scan_attaches += 1;
                }
                while slot.get().is_none() {
                    inner = wait_ready(&self.shared.ready, inner);
                }
                drop(inner);
                if let Some(mat) = slot.get().and_then(Clone::clone) {
                    return Ok(mat);
                }
                continue; // the builder failed; re-probe (maybe as builder)
            }
            // Become the builder: claim the key, then derive OUTSIDE the
            // lock so concurrent requests on other keys keep flowing.
            state.stats.column_misses += 1;
            tracer.record_wall(Self::span(SpanKind::CacheLookup, table.identity).hit(false), lookup);
            let slot: Arc<BuildSlot<MaterializedColumns>> = Arc::new(OnceLock::new());
            state.building_columns.insert(key.clone(), Arc::clone(&slot));
            drop(inner);
            let finish = FinishBuild { shared: &self.shared, slot: &slot, key: BuildKey::Columns(key.clone()) };
            let derive = tracer.start();
            let mat = Arc::new(MaterializedColumns::new(table, key.cols.clone())?);
            let bytes = mat.cell_bytes();
            tracer.record_wall(Self::span(SpanKind::Materialise, table.identity).bytes(bytes), derive);
            // h2tap: allow(error_swallow) — single-flight slot: set only fails if a racing builder already published the identical build, which is the value we want.
            let _ = slot.set(Some(Arc::clone(&mat)));
            let mut inner = self.shared.inner.lock();
            if inner.admit(bytes) {
                inner.columns.insert(key, Entry { value: Arc::clone(&mat), bytes, last_used: now });
            }
            drop(inner);
            drop(finish);
            return Ok(mat);
        }
    }

    /// The join hash table of `join` (carrying `group_col` payloads) over
    /// the frozen `build` table, shared across queries and sites for this
    /// snapshot epoch; built, and cached if the budget admits it,
    /// otherwise. Build errors (duplicate PK-join keys) are never cached.
    pub fn hash_table(
        &self,
        build: &SnapshotTable,
        join: &JoinSpec,
        group_col: Option<usize>,
    ) -> Result<Arc<JoinHashTable>> {
        let key = HashKey::new(build.identity, join, group_col);
        let mut attached = false;
        loop {
            let mut inner = self.shared.inner.lock();
            let state = &mut *inner; // split the guard borrow across fields
            let tracer = state.tracer.clone();
            let lookup = tracer.start();
            state.note_epoch(build.identity);
            let now = state.touch();
            if let Some(hit) = state.hashes.get_mut(&key) {
                hit.last_used = now;
                state.stats.hash_hits += 1;
                tracer.record_wall(Self::span(SpanKind::CacheLookup, build.identity).hit(true), lookup);
                return Ok(Arc::clone(&hit.value));
            }
            if let Some(slot) = state.building_hashes.get(&key).map(Arc::clone) {
                // Shared scan: attach to the in-flight build (see
                // `materialized` — same protocol).
                if !attached {
                    attached = true;
                    state.stats.shared_scan_attaches += 1;
                }
                while slot.get().is_none() {
                    inner = wait_ready(&self.shared.ready, inner);
                }
                drop(inner);
                if let Some(hash) = slot.get().and_then(Clone::clone) {
                    return Ok(hash);
                }
                continue; // the builder failed; re-probe (maybe as builder)
            }
            state.stats.hash_misses += 1;
            tracer.record_wall(Self::span(SpanKind::CacheLookup, build.identity).hit(false), lookup);
            let slot: Arc<BuildSlot<JoinHashTable>> = Arc::new(OnceLock::new());
            state.building_hashes.insert(key.clone(), Arc::clone(&slot));
            drop(inner);
            let finish = FinishBuild { shared: &self.shared, slot: &slot, key: BuildKey::Hashes(key.clone()) };
            let derive = tracer.start();
            let hash = Arc::new(operators::build_hash_table(build, join, group_col)?);
            let bytes = hash.footprint_bytes();
            tracer.record_wall(Self::span(SpanKind::HashBuild, build.identity).bytes(bytes), derive);
            // h2tap: allow(error_swallow) — single-flight slot: set only fails if a racing builder already published the identical build, which is the value we want.
            let _ = slot.set(Some(Arc::clone(&hash)));
            let mut inner = self.shared.inner.lock();
            if inner.admit(bytes) {
                inner.hashes.insert(key, Entry { value: Arc::clone(&hash), bytes, last_used: now });
            }
            drop(inner);
            drop(finish);
            return Ok(hash);
        }
    }

    /// The cached counterpart of [`operators::prepare_plan`]: identical
    /// validation and identical `PlanData`, but the materialised probe
    /// columns and the join hash table are shared through the cache.
    pub fn prepare_plan(
        &self,
        probe_table: &SnapshotTable,
        build_table: Option<&SnapshotTable>,
        plan: &OlapPlan,
    ) -> Result<PlanData> {
        let build_group_col = operators::check_plan_tables(probe_table, build_table, plan)?;
        let hash = match (&plan.join, build_table) {
            (Some(join), Some(build)) => Some(self.hash_table(build, join, build_group_col)?),
            _ => None,
        };
        let mat = self.materialized(probe_table, plan.probe_columns_accessed())?;
        Ok(PlanData { mat, hash })
    }

    /// Drops every entry (called on snapshot refresh, and usable as a
    /// manual reset). Counts the dropped entries as invalidations.
    pub fn invalidate(&self) {
        let mut inner = self.shared.inner.lock();
        let dropped = (inner.columns.len() + inner.hashes.len()) as u64;
        inner.stats.invalidations += dropped;
        inner.columns.clear();
        inner.hashes.clear();
        inner.latest_epoch.clear();
        // In-flight markers stay: their builders own them and will remove
        // them (the derived entry lands keyed by its — possibly now
        // superseded — epoch, and lazy epoch eviction reclaims it).
    }

    /// Current hit/miss/invalidation/eviction counters, with the occupancy
    /// gauge and the configured budget sampled at call time.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.shared.inner.lock();
        let mut stats = inner.stats;
        stats.occupancy_bytes = inner.occupancy();
        stats.budget_bytes = inner.budget;
        stats
    }

    /// Live entries (materialised column sets + hash tables).
    pub fn entries(&self) -> usize {
        let inner = self.shared.inner.lock();
        inner.columns.len() + inner.hashes.len()
    }

    /// Bytes held by the cached entries — how much host memory the cache
    /// trades for the re-derivation work. Never exceeds the budget.
    pub fn cached_bytes(&self) -> u64 {
        self.shared.inner.lock().occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{AggExpr, AttrType, PartitionId, Predicate, Schema, Value};
    use h2tap_storage::{Database, Layout};
    use std::sync::Arc as StdArc;

    fn db_with_rows(rows: i64) -> (StdArc<Database>, h2tap_common::TableId) {
        let db = Database::new(1);
        let t = db.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        for i in 0..rows {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(2 * i)]).unwrap();
        }
        (db, t)
    }

    #[test]
    fn repeated_materialisations_hit() {
        let (db, t) = db_with_rows(1_000);
        let snap = db.snapshot();
        let frozen = snap.table(t).unwrap();
        let cache = PlanDataCache::new();
        let a = cache.materialized(frozen, vec![0, 1]).unwrap();
        let b = cache.materialized(frozen, vec![1, 0, 1]).unwrap();
        assert!(StdArc::ptr_eq(&a, &b), "same snapshot, same (normalised) columns: same instance");
        let stats = cache.stats();
        assert_eq!((stats.column_hits, stats.column_misses), (1, 1));
        assert_eq!(stats.hit_rate(), Some(0.5));
        // A different column set is a different derivation.
        let c = cache.materialized(frozen, vec![0]).unwrap();
        assert!(!StdArc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().column_misses, 2);
        assert!(cache.cached_bytes() > 0);
    }

    #[test]
    fn a_new_epoch_is_never_served_stale_data() {
        let (db, t) = db_with_rows(100);
        let s1 = db.snapshot();
        let cache = PlanDataCache::new();
        let old = cache.materialized(s1.table(t).unwrap(), vec![1]).unwrap();
        // Update a row, take a new snapshot: same table id, new epoch.
        let rid = h2tap_common::RecordId::new(PartitionId(0), t, 0);
        db.update(rid, &[Value::Int64(0), Value::Int64(999)]).unwrap();
        let s2 = db.snapshot();
        let fresh = cache.materialized(s2.table(t).unwrap(), vec![1]).unwrap();
        assert!(!StdArc::ptr_eq(&old, &fresh), "the stale materialisation must not be served");
        let sum = |mat: &MaterializedColumns, query: &h2tap_common::ScanAggQuery| {
            operators::merge_scan_partials(
                (0..mat.chunk_count()).map(|i| operators::scan_chunk(mat, query, mat.chunk_range(i))),
            )
            .0
        };
        let q = h2tap_common::ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        assert_eq!(sum(&old, &q), (0..100).map(|i| 2.0 * i as f64).sum::<f64>());
        assert_eq!(sum(&fresh, &q), sum(&old, &q) - 0.0 + 999.0, "fresh epoch sees the update");
        // The superseded epoch was evicted, not retained alongside.
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn hash_tables_are_shared_and_keyed_by_spec() {
        let (db, t) = db_with_rows(50);
        let snap = db.snapshot();
        let frozen = snap.table(t).unwrap();
        let cache = PlanDataCache::new();
        let join = JoinSpec { probe_column: 1, build_key: 0, build_predicates: vec![Predicate::between(1, 0.0, 40.0)] };
        let a = cache.hash_table(frozen, &join, None).unwrap();
        let b = cache.hash_table(frozen, &join, None).unwrap();
        assert!(StdArc::ptr_eq(&a, &b));
        // A different predicate bound (or group column) is a different build.
        let narrower = JoinSpec { build_predicates: vec![Predicate::between(1, 0.0, 10.0)], ..join.clone() };
        let c = cache.hash_table(frozen, &narrower, None).unwrap();
        assert!(!StdArc::ptr_eq(&a, &c));
        let d = cache.hash_table(frozen, &join, Some(1)).unwrap();
        assert!(!StdArc::ptr_eq(&a, &d));
        let stats = cache.stats();
        assert_eq!((stats.hash_hits, stats.hash_misses), (1, 3));
    }

    #[test]
    fn alternating_live_snapshots_converge_to_both_cached() {
        // Two snapshots of the same table can be live at once; a caller
        // alternating between them must not thrash the cache. The first
        // access at the newer epoch evicts the older generation once;
        // after the older snapshot re-derives, both stay cached (epoch
        // observation only fires eviction on an *advance*).
        let (db, t) = db_with_rows(200);
        let s1 = db.snapshot();
        let s2 = db.snapshot();
        let cache = PlanDataCache::new();
        cache.materialized(s1.table(t).unwrap(), vec![0]).unwrap(); // miss (e1)
        cache.materialized(s2.table(t).unwrap(), vec![0]).unwrap(); // miss (e2), evicts e1
        let again_old = cache.materialized(s1.table(t).unwrap(), vec![0]).unwrap(); // miss, re-derives e1
        let stats = cache.stats();
        assert_eq!(stats.column_misses, 3);
        assert_eq!(stats.invalidations, 1, "the epoch advance evicted e1 exactly once");
        // From here on both generations hit.
        let old_hit = cache.materialized(s1.table(t).unwrap(), vec![0]).unwrap();
        let new_hit = cache.materialized(s2.table(t).unwrap(), vec![0]).unwrap();
        assert!(StdArc::ptr_eq(&again_old, &old_hit));
        assert!(!StdArc::ptr_eq(&old_hit, &new_hit));
        let stats = cache.stats();
        assert_eq!(stats.column_hits, 2);
        assert_eq!(stats.invalidations, 1, "no further eviction without an epoch advance");
        assert_eq!(cache.entries(), 2, "both live generations stay cached");
    }

    /// `n` single-column Int64 tables of `rows` rows each in one database:
    /// every `materialized(_, vec![0])` entry is exactly `rows * 8` bytes.
    fn tables_in_one_db(n: usize, rows: i64) -> (StdArc<Database>, Vec<h2tap_common::TableId>) {
        let db = Database::new(1);
        let ids: Vec<_> = (0..n)
            .map(|i| {
                db.create_table(format!("t{i}"), Schema::homogeneous("c", 1, AttrType::Int64), Layout::Dsm).unwrap()
            })
            .collect();
        for &t in &ids {
            for i in 0..rows {
                db.insert(PartitionId(0), t, &[Value::Int64(i)]).unwrap();
            }
        }
        (db, ids)
    }

    #[test]
    fn permuted_column_sets_share_one_entry() {
        let (db, t) = db_with_rows(64);
        let snap = db.snapshot();
        let frozen = snap.table(t).unwrap();
        let cache = PlanDataCache::new();
        let a = cache.materialized(frozen, vec![0, 1]).unwrap();
        let b = cache.materialized(frozen, vec![1, 0]).unwrap();
        let c = cache.materialized(frozen, vec![1, 0, 0, 1]).unwrap();
        assert!(StdArc::ptr_eq(&a, &b) && StdArc::ptr_eq(&a, &c), "permutations and repeats normalise to one key");
        let stats = cache.stats();
        assert_eq!((stats.column_misses, stats.column_hits), (1, 2));
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let (db, t) = db_with_rows(100);
        let snap = db.snapshot();
        let frozen = snap.table(t).unwrap();
        let cache = PlanDataCache::with_budget(Some(0));
        let a = cache.materialized(frozen, vec![0]).unwrap();
        let b = cache.materialized(frozen, vec![0]).unwrap();
        assert!(!StdArc::ptr_eq(&a, &b), "every request re-derives");
        let stats = cache.stats();
        assert_eq!((stats.column_misses, stats.column_hits), (2, 0));
        assert_eq!(stats.evictions, 0, "nothing was cached, so nothing was evicted");
        assert_eq!(stats.budget_bytes, Some(0));
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.cached_bytes(), 0);
    }

    #[test]
    fn an_entry_larger_than_the_budget_never_flushes_the_cache() {
        let (db, ids) = tables_in_one_db(1, 10); // 80-byte entry
        let wide = db.create_table("wide", Schema::homogeneous("w", 2, AttrType::Int64), Layout::Dsm).unwrap();
        for i in 0..1_000i64 {
            db.insert(PartitionId(0), wide, &[Value::Int64(i), Value::Int64(i)]).unwrap();
        }
        let snap = db.snapshot();
        let cache = PlanDataCache::with_budget(Some(1_000));
        let small = cache.materialized(snap.table(ids[0]).unwrap(), vec![0]).unwrap();
        // 16_000 bytes can never fit in 1_000: derive, return, don't cache —
        // and don't evict the working set trying.
        let big = cache.materialized(snap.table(wide).unwrap(), vec![0, 1]).unwrap();
        assert_eq!(big.rows(), 1_000);
        assert_eq!(cache.stats().evictions, 0, "an unfittable entry must not flush the cache");
        assert_eq!(cache.cached_bytes(), 80, "only the small entry is resident");
        let again = cache.materialized(snap.table(ids[0]).unwrap(), vec![0]).unwrap();
        assert!(StdArc::ptr_eq(&small, &again), "the small entry survived");
    }

    #[test]
    fn eviction_follows_least_recent_use() {
        let (db, ids) = tables_in_one_db(3, 100); // 800 bytes per entry
        let snap = db.snapshot();
        let cache = PlanDataCache::with_budget(Some(1_600)); // room for two
        let _ = cache.materialized(snap.table(ids[0]).unwrap(), vec![0]).unwrap();
        let _ = cache.materialized(snap.table(ids[1]).unwrap(), vec![0]).unwrap();
        let _ = cache.materialized(snap.table(ids[0]).unwrap(), vec![0]).unwrap(); // t0 now most recent
        let _ = cache.materialized(snap.table(ids[2]).unwrap(), vec![0]).unwrap(); // evicts t1 (LRU), not t0
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.column_hits, 1);
        let _ = cache.materialized(snap.table(ids[0]).unwrap(), vec![0]).unwrap(); // hit: t0 survived
        assert_eq!(cache.stats().column_hits, 2);
        let _ = cache.materialized(snap.table(ids[1]).unwrap(), vec![0]).unwrap(); // miss: t1 was the victim
        let s = cache.stats();
        assert_eq!(s.column_misses, 4);
        assert_eq!(s.evictions, 2);
        assert!(cache.cached_bytes() <= 1_600);
    }

    #[test]
    fn pinned_entries_are_never_evicted() {
        let (db, ids) = tables_in_one_db(5, 100); // 800 bytes per entry
        let snap = db.snapshot();
        let cache = PlanDataCache::with_budget(Some(1_600)); // room for two
                                                             // Pin t0 the way an in-flight query does: hold the Arc.
        let pinned = cache.materialized(snap.table(ids[0]).unwrap(), vec![0]).unwrap();
        for &t in &ids[1..4] {
            let _ = cache.materialized(snap.table(t).unwrap(), vec![0]).unwrap();
            assert!(cache.cached_bytes() <= 1_600, "occupancy must never exceed the budget");
        }
        // Despite being the least recently used entry throughout, t0 was
        // never the victim — the stream evicted around it.
        let again = cache.materialized(snap.table(ids[0]).unwrap(), vec![0]).unwrap();
        assert!(StdArc::ptr_eq(&pinned, &again), "the pinned entry still hits");
        assert_eq!(cache.stats().evictions, 2, "t1 and t2 were evicted instead");
        // Once the query lets go, the entry is ordinary LRU prey again:
        // stream two fresh tables without touching t0.
        drop(again);
        drop(pinned);
        let _ = cache.materialized(snap.table(ids[4]).unwrap(), vec![0]).unwrap();
        let _ = cache.materialized(snap.table(ids[1]).unwrap(), vec![0]).unwrap();
        assert!(cache.stats().evictions >= 4, "unpinned t0 became evictable");
        assert!(cache.cached_bytes() <= 1_600);
    }

    #[test]
    fn occupancy_never_exceeds_the_budget_under_a_many_table_stream() {
        let (db, ids) = tables_in_one_db(8, 100); // 800 bytes per entry
        let snap = db.snapshot();
        let cache = PlanDataCache::with_budget(Some(2_000)); // room for two
        for _ in 0..2 {
            for &t in &ids {
                let _ = cache.materialized(snap.table(t).unwrap(), vec![0]).unwrap();
                assert!(cache.cached_bytes() <= 2_000);
                let s = cache.stats();
                assert!(s.occupancy_bytes <= 2_000);
                assert_eq!(s.budget_bytes, Some(2_000));
            }
        }
        assert!(cache.stats().evictions > 0, "the stream must have exercised eviction");
        assert!(cache.entries() <= 2);
    }

    #[test]
    fn invalidate_clears_everything() {
        let (db, t) = db_with_rows(10);
        let snap = db.snapshot();
        let cache = PlanDataCache::new();
        cache.materialized(snap.table(t).unwrap(), vec![0]).unwrap();
        assert_eq!(cache.entries(), 1);
        cache.invalidate();
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.stats().invalidations, 1);
        // The next request is a miss again.
        cache.materialized(snap.table(t).unwrap(), vec![0]).unwrap();
        assert_eq!(cache.stats().column_misses, 2);
    }

    #[test]
    fn prepare_plan_matches_the_uncached_preamble() {
        let (db, fact) = db_with_rows(500);
        let dim = db.create_table("dim", Schema::homogeneous("d", 2, AttrType::Int64), Layout::Dsm).unwrap();
        for i in 0..20i64 {
            db.insert(PartitionId(0), dim, &[Value::Int64(2 * i), Value::Int64(i % 3)]).unwrap();
        }
        let snap = db.snapshot();
        let probe = snap.table(fact).unwrap();
        let build = snap.table(dim).unwrap();
        let plan = OlapPlan {
            predicates: vec![],
            join: Some(JoinSpec { probe_column: 1, build_key: 0, build_predicates: vec![] }),
            group_by: Some(h2tap_common::PlanColumn::Build(1)),
            aggregates: vec![AggExpr::SumColumns(vec![0]), AggExpr::Count],
        };
        let cache = PlanDataCache::new();
        let cached = cache.prepare_plan(probe, Some(build), &plan).unwrap();
        let uncached = operators::prepare_plan(probe, Some(build), &plan).unwrap();
        let run = |data: &PlanData| {
            let partials: Vec<_> = (0..data.mat.chunk_count())
                .map(|i| operators::process_chunk(&data.mat, &plan, data.hash.as_deref(), data.mat.chunk_range(i)))
                .collect();
            operators::merge_partials(&plan, partials)
        };
        let (a, ta) = run(&cached);
        let (b, tb) = run(&uncached);
        assert_eq!(a, b);
        assert_eq!(ta.joined, tb.joined);
        // Error behaviour is shared too: a join plan without a build table
        // is rejected identically.
        assert!(cache.prepare_plan(probe, None, &plan).is_err());
        assert!(operators::prepare_plan(probe, None, &plan).is_err());
    }

    /// Polls `cond` for up to ~2s of 1ms naps.
    fn eventually(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..2_000 {
            if cond() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn waiters_attach_to_an_in_flight_build_and_share_its_result() {
        let (db, t) = db_with_rows(256);
        let snap = db.snapshot();
        let frozen = snap.table(t).unwrap();
        let cache = PlanDataCache::new();
        // Claim the key by hand, playing a builder mid-derivation.
        let key = ColumnsKey { id: frozen.identity, cols: vec![0] };
        let slot: StdArc<BuildSlot<MaterializedColumns>> = StdArc::new(OnceLock::new());
        cache.shared.inner.lock().building_columns.insert(key.clone(), StdArc::clone(&slot));
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.materialized(frozen, vec![0]).unwrap());
            assert!(eventually(|| cache.stats().shared_scan_attaches == 1), "the request must attach, not build");
            // Publish the builder's result and retire the marker.
            let mat = StdArc::new(MaterializedColumns::new(frozen, vec![0]).unwrap());
            slot.set(Some(StdArc::clone(&mat))).unwrap();
            cache.shared.inner.lock().building_columns.remove(&key);
            cache.shared.ready.notify_all();
            let got = waiter.join().unwrap();
            assert!(StdArc::ptr_eq(&got, &mat), "the waiter got the builder's instance");
            got
        });
        let stats = cache.stats();
        assert_eq!(stats.shared_scan_attaches, 1);
        assert_eq!((stats.column_hits, stats.column_misses), (0, 0), "an attach is neither a hit nor a miss");
        assert_eq!(got.rows(), 256);
    }

    #[test]
    fn a_failed_build_hands_off_to_a_waiter() {
        let (db, t) = db_with_rows(64);
        let snap = db.snapshot();
        let frozen = snap.table(t).unwrap();
        let cache = PlanDataCache::new();
        let key = ColumnsKey { id: frozen.identity, cols: vec![0] };
        let slot: StdArc<BuildSlot<MaterializedColumns>> = StdArc::new(OnceLock::new());
        cache.shared.inner.lock().building_columns.insert(key.clone(), StdArc::clone(&slot));
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.materialized(frozen, vec![0]).unwrap());
            assert!(eventually(|| cache.stats().shared_scan_attaches == 1));
            // The builder dies: publish a failure slot, retire the marker.
            slot.set(None).unwrap();
            cache.shared.inner.lock().building_columns.remove(&key);
            cache.shared.ready.notify_all();
            waiter.join().unwrap()
        });
        // The waiter re-probed, became the builder itself and derived.
        let stats = cache.stats();
        assert_eq!(stats.shared_scan_attaches, 1, "the retry does not re-count the attach");
        assert_eq!((stats.column_hits, stats.column_misses), (0, 1));
        assert_eq!(got.rows(), 64);
    }

    #[test]
    fn concurrent_requests_never_duplicate_a_derivation() {
        let (db, t) = db_with_rows(50_000);
        let snap = db.snapshot();
        let frozen = snap.table(t).unwrap();
        let cache = PlanDataCache::new();
        let threads = 8;
        let barrier = std::sync::Barrier::new(threads);
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        cache.materialized(frozen, vec![0, 1]).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &results[1..] {
            assert!(StdArc::ptr_eq(&results[0], other), "every concurrent request shares one instance");
        }
        let stats = cache.stats();
        assert_eq!(stats.column_misses, 1, "exactly one thread built; nobody raced a duplicate");
        assert_eq!(
            stats.column_hits + stats.shared_scan_attaches,
            threads as u64 - 1,
            "everyone else either attached to the in-flight build or hit the finished entry"
        );
    }
}
