//! The CPU execution site: a zonemap-skipping vectorised scan engine running
//! on the CPU cores of the data-parallel archipelago.
//!
//! This engine started life as the Figure-4 "MonetDB-like" baseline in
//! `h2tap-baselines` and was promoted here so that placement decisions have a
//! real CPU target: `Caldera::run_olap` dispatches to it through
//! [`crate::ExecutionSite`] whenever [`h2tap_scheduler::place_olap_query`]
//! picks the CPU, and the Figure-4 baselines are now thin wrappers over the
//! same code path. Like the GPU engine, it computes **exact** answers over
//! the real data while charging time to the same simulated-hardware frame of
//! reference (the paper's dual-socket 24-core server by default).
//!
//! Execution model: accessed columns are materialised into fixed
//! [`h2tap_common::PLAN_CHUNK_ROWS`] chunks (column-at-a-time vectorised
//! execution) that both the scan and the plan pipeline evaluate **on a scoped
//! thread pool sized by the archipelago's current core count**; per-chunk
//! min/max zonemaps skip chunks that cannot satisfy the predicates, and the
//! analytical time model treats the work as memory-bandwidth bound with
//! per-tuple work spread over the cores the archipelago currently owns — so
//! core migration changes both the simulated and the wall-clock query times.
//! Chunk boundaries and the ascending merge order are part of the IR
//! contract ([`h2tap_common::plan`]), which is why the thread schedule cannot
//! perturb a single bit of the f64 results.

use crate::cache::PlanDataCache;
use crate::engine::{OlapOutcome, PlanOutcome, RegisteredTable};
use crate::operators::{self, ChunkPartial, ScanChunkPartial};
use crate::pool::{run_chunked, MAX_PLAN_THREADS};
use crate::site::{emit_execution_spans, ExecutionSite};
use h2tap_common::{ExecBreakdown, GroupRow, H2Error, OlapPlan, Result, ScanAggQuery, SimDuration};
use h2tap_obs::Tracer;
use h2tap_scheduler::{overlap_secs, OlapTarget, SiteCapability, CPU_CACHE_LINE_BYTES};
use h2tap_storage::SnapshotTable;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-tuple cost of one hash-table probe (hash, compare, branch) on top of
/// the base scan work, in nanoseconds.
const HASH_PROBE_NS: f64 = 24.0;

/// Per-tuple cost of one group-accumulator update (hash the key, load/store
/// the accumulators) in nanoseconds.
const GROUP_UPDATE_NS: f64 = 12.0;

/// How the engine executes a scan: per-tuple cost and whether zonemaps are
/// consulted before each chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuScanProfile {
    /// Aggregate per-tuple processing cost in nanoseconds (column-at-a-time
    /// execution materialises intermediates per operator, which is why this
    /// is far above a single fused-loop pass).
    pub per_tuple_ns: f64,
    /// Whether per-chunk min/max zonemaps ("secondary indexes") are consulted
    /// to skip chunks that cannot qualify.
    pub use_zonemaps: bool,
}

impl CpuScanProfile {
    /// Zonemap-skipping vectorised execution — the Caldera CPU site and the
    /// MonetDB-like Figure-4 baseline. Calibrated against the paper: MonetDB
    /// answers Q6 over SF-300 (1.8 B rows) in about 7 s on 24 cores, i.e.
    /// roughly 93 ns of aggregate per-tuple work.
    pub fn vectorized() -> Self {
        Self { per_tuple_ns: 93.0, use_zonemaps: true }
    }

    /// Plain parallel scan without skipping — the "DBMS-C"-like Figure-4
    /// baseline, 1.27x slower than MonetDB in the paper.
    pub fn materializing() -> Self {
        Self { per_tuple_ns: 118.0, use_zonemaps: false }
    }
}

/// The CPU socket configuration of the paper's evaluation server: two
/// 12-core Xeon E5-2650L v3 with about 2 x 34 GB/s of sustained memory
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Cores used for the scan.
    pub cores: u32,
    /// Sustained aggregate memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
}

impl Default for CpuSpec {
    fn default() -> Self {
        Self { cores: 24, mem_bandwidth_gbps: 68.0 }
    }
}

impl CpuSpec {
    /// Sustained per-core bandwidth, the figure the placement heuristic
    /// scales by the archipelago's current core count.
    pub fn per_core_bandwidth_gbps(&self) -> f64 {
        self.mem_bandwidth_gbps / f64::from(self.cores.max(1))
    }
}

/// Result of running a query on the CPU engine, with scan-level detail the
/// compact [`OlapOutcome`] does not carry.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuOlapResult {
    /// The aggregate value.
    pub value: f64,
    /// Number of qualifying records.
    pub qualifying_rows: u64,
    /// Records actually scanned (after zonemap skipping).
    pub rows_scanned: u64,
    /// Chunks skipped thanks to zonemaps.
    pub chunks_skipped: u64,
    /// Worker threads the chunked scan actually used.
    pub threads_used: usize,
    /// Modelled execution time on the configured server spec.
    pub sim_time: SimDuration,
    /// How the modelled time splits into the cost model's terms.
    pub breakdown: ExecBreakdown,
    /// Wall-clock time of the real computation in this process.
    pub wall_time: std::time::Duration,
}

/// Result of running a relational plan on the CPU engine, with pipeline
/// detail the compact [`PlanOutcome`] does not carry.
#[derive(Debug, Clone)]
pub struct CpuPlanResult {
    /// Result groups in ascending raw-key order (byte-identical to the GPU
    /// site's for the same snapshot).
    pub groups: Vec<GroupRow>,
    /// Rows that reached the aggregation (post filter and join).
    pub qualifying_rows: u64,
    /// Worker threads the chunk pipeline actually used.
    pub threads_used: usize,
    /// Modelled execution time on the configured server spec.
    pub sim_time: SimDuration,
    /// How the modelled time splits into the cost model's terms.
    pub breakdown: ExecBreakdown,
    /// Wall-clock time of the real computation in this process.
    pub wall_time: std::time::Duration,
}

/// A CPU columnar scan engine: vectorised chunk-at-a-time execution with
/// optional zonemap skipping, usable directly or as an [`ExecutionSite`].
///
/// Concurrent: the mutable pieces — the migratable core count and the vended
/// registration handles — sit behind their own short-lived locks, and the
/// scan/pipeline hot paths only *copy the spec out* before computing, so
/// simultaneous `execute` calls from many client threads never serialise on
/// the site.
#[derive(Debug)]
pub struct CpuOlapEngine {
    profile: CpuScanProfile,
    /// Current hardware spec; mutated by core migration while queries run.
    spec: Mutex<CpuSpec>,
    /// Per-core bandwidth fixed at construction so [`CpuOlapEngine::set_cores`]
    /// scales aggregate bandwidth with the core count.
    per_core_bandwidth_gbps: f64,
    /// Handles this site has vended for the current snapshot.
    registered: Mutex<HashSet<usize>>,
    next_tag: AtomicUsize,
    /// Snapshot-keyed plan-data cache (shared across all sites when built
    /// into an engine, private otherwise).
    cache: PlanDataCache,
    /// Trace handle; disabled (no-op) until the engine installs one.
    tracer: Tracer,
}

impl Clone for CpuOlapEngine {
    fn clone(&self) -> Self {
        Self {
            profile: self.profile,
            spec: Mutex::new(self.spec()),
            per_core_bandwidth_gbps: self.per_core_bandwidth_gbps,
            registered: Mutex::new(self.registered.lock().clone()),
            next_tag: AtomicUsize::new(self.next_tag.load(Ordering::Relaxed)),
            cache: self.cache.clone(),
            tracer: self.tracer.clone(),
        }
    }
}

impl CpuOlapEngine {
    /// Creates an engine with the given profile on the default server spec.
    pub fn new(profile: CpuScanProfile) -> Self {
        Self::with_spec_and_profile(CpuSpec::default(), profile)
    }

    /// Creates the data-parallel archipelago's CPU site: vectorised profile,
    /// paper per-core bandwidth, and `cores` CPU cores (the archipelago's
    /// current allotment; updated on migration via [`ExecutionSite::set_cores`]).
    pub fn archipelago_default(cores: u32) -> Self {
        let paper = CpuSpec::default();
        Self::with_spec_and_profile(
            CpuSpec {
                cores: cores.max(1),
                mem_bandwidth_gbps: paper.per_core_bandwidth_gbps() * f64::from(cores.max(1)),
            },
            CpuScanProfile::vectorized(),
        )
    }

    /// Creates an engine with an explicit hardware spec (used by ablations).
    pub fn with_spec_and_profile(spec: CpuSpec, profile: CpuScanProfile) -> Self {
        Self {
            profile,
            spec: Mutex::new(spec),
            per_core_bandwidth_gbps: spec.per_core_bandwidth_gbps(),
            registered: Mutex::new(HashSet::new()),
            next_tag: AtomicUsize::new(0),
            cache: PlanDataCache::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Overrides the hardware spec (used by ablation benches).
    #[must_use]
    pub fn with_spec(mut self, spec: CpuSpec) -> Self {
        *self.spec.get_mut() = spec;
        self.per_core_bandwidth_gbps = spec.per_core_bandwidth_gbps();
        self
    }

    /// The execution profile.
    pub fn profile(&self) -> CpuScanProfile {
        self.profile
    }

    /// The current hardware spec (a copy — migration may change it).
    pub fn spec(&self) -> CpuSpec {
        *self.spec.lock()
    }

    /// Executes `query` over a frozen table, returning the exact result and
    /// modelled/measured costs. This is the shared scan kernel behind both
    /// the [`ExecutionSite`] impl and the Figure-4 CPU baselines.
    ///
    /// The scan runs on the same scoped thread pool as the plan pipeline:
    /// fixed [`h2tap_common::PLAN_CHUNK_ROWS`] chunks are evaluated by up to
    /// `cores` workers (per-chunk min/max zonemaps skip chunks that cannot
    /// qualify first) and the per-chunk partials merge in ascending chunk
    /// order. Because the chunk evaluation and merge order come from the
    /// shared [`operators`] data path, `ScanAggQuery` f64 answers are
    /// byte-identical to the GPU site's, for any thread count.
    pub fn execute_scan(&self, table: &SnapshotTable, query: &ScanAggQuery) -> Result<CpuOlapResult> {
        let started = Instant::now();
        // Copy the spec out: core migration may change it mid-scan, and the
        // whole scan must be costed against one consistent spec.
        let spec = self.spec();
        let cols = query.columns_accessed();
        let total_rows = table.row_count();
        let mat = self.cache.materialized(table, cols.clone())?;
        let chunks = mat.chunk_count();
        let threads = (spec.cores as usize).clamp(1, MAX_PLAN_THREADS).min(chunks);
        let use_zonemaps = self.profile.use_zonemaps && !query.predicates.is_empty();
        let evaluated: Vec<Option<ScanChunkPartial>> = run_chunked(chunks, threads, |i| {
            if use_zonemaps && !operators::scan_chunk_can_qualify(&mat, &query.predicates, i) {
                // Zonemap skip: the chunk provably holds no qualifying row
                // (judged in O(#predicates) from the stats built at
                // materialisation time), so its partial is exactly zero and
                // omitting it from the merge cannot change the f64 answer.
                return None;
            }
            Some(operators::scan_chunk(&mat, query, mat.chunk_range(i)))
        });
        let mut rows_scanned = 0u64;
        let mut chunks_skipped = 0u64;
        let mut kept: Vec<ScanChunkPartial> = Vec::with_capacity(chunks);
        for (i, partial) in evaluated.into_iter().enumerate() {
            match partial {
                Some(p) => {
                    rows_scanned += mat.chunk_range(i).len() as u64;
                    kept.push(p);
                }
                None => chunks_skipped += 1,
            }
        }
        let (value, qualifying) = operators::merge_scan_partials(kept);

        // Analytical time model: the scan is memory-bandwidth bound; zonemap
        // skipping reduces the bytes moved (predicate columns of skipped
        // chunks are still summarised by the index, charged at 1% of their
        // size), and per-tuple work is spread over all cores.
        let accessed_width: u64 =
            cols.iter().map(|&c| table.schema.attr(c).map(|a| a.ty.width() as u64).unwrap_or(8)).sum();
        let scanned_bytes = rows_scanned * accessed_width;
        let skipped_bytes = (total_rows - rows_scanned.min(total_rows)) * accessed_width;
        let bytes_moved = scanned_bytes + skipped_bytes / 100;
        let bandwidth_time = bytes_moved as f64 / (spec.mem_bandwidth_gbps * 1e9);
        let cpu_time = rows_scanned as f64 * self.profile.per_tuple_ns * 1e-9 / f64::from(spec.cores.max(1));
        let breakdown = ExecBreakdown::new(bandwidth_time, cpu_time, 0.0);
        let sim_time = SimDuration::from_secs_f64(overlap_secs(bandwidth_time, cpu_time));

        Ok(CpuOlapResult {
            value,
            qualifying_rows: qualifying,
            rows_scanned,
            chunks_skipped,
            threads_used: threads,
            sim_time,
            breakdown,
            wall_time: started.elapsed(),
        })
    }

    /// Executes a relational plan over frozen tables: builds the join hash
    /// table from the filtered build side, then runs the probe/aggregate
    /// pipeline chunk-by-chunk **on a scoped thread pool sized by the
    /// engine's current core count**, so wall-clock time scales with
    /// migrated cores and not only the simulated cost. Chunk boundaries and
    /// the merge order are fixed by the plan IR (see
    /// [`h2tap_common::plan`]), which is why the parallel schedule cannot
    /// perturb the f64 aggregates: every chunk's partial is deterministic
    /// and partials merge in ascending chunk order regardless of which
    /// thread produced them.
    pub fn execute_plan_pipeline(
        &self,
        probe_table: &SnapshotTable,
        build_table: Option<&SnapshotTable>,
        plan: &OlapPlan,
    ) -> Result<CpuPlanResult> {
        let started = Instant::now();
        let spec = self.spec();
        let rows = probe_table.row_count();
        let operators::PlanData { mat, hash } = self.cache.prepare_plan(probe_table, build_table, plan)?;
        let chunks = mat.chunk_count();
        let threads = (spec.cores as usize).clamp(1, MAX_PLAN_THREADS).min(chunks);

        let partials: Vec<ChunkPartial> =
            run_chunked(chunks, threads, |i| operators::process_chunk(&mat, plan, hash.as_deref(), mat.chunk_range(i)));
        let (groups, totals) = operators::merge_partials(plan, partials);

        // Analytical time model, same frame of reference as the scan path:
        // streamed column bytes plus cache-line-granular random traffic for
        // hash probes and group updates, overlapped with per-tuple work
        // spread across the cores.
        let mut bytes_moved = plan.probe_scan_bytes(&probe_table.schema, rows);
        let mut tuple_ns = rows as f64 * self.profile.per_tuple_ns;
        if let (Some(hash), Some(build)) = (hash.as_ref(), build_table) {
            bytes_moved += plan.build_scan_bytes(&build.schema, build.row_count());
            tuple_ns += hash.build_rows_in as f64 * self.profile.per_tuple_ns;
            bytes_moved += totals.selected * CPU_CACHE_LINE_BYTES;
            tuple_ns += totals.selected as f64 * HASH_PROBE_NS;
        }
        if plan.group_by.is_some() {
            bytes_moved += totals.joined * CPU_CACHE_LINE_BYTES;
            tuple_ns += totals.joined as f64 * GROUP_UPDATE_NS;
        }
        let bandwidth_time = bytes_moved as f64 / (spec.mem_bandwidth_gbps * 1e9);
        let cpu_time = tuple_ns * 1e-9 / f64::from(spec.cores.max(1));
        let breakdown = ExecBreakdown::new(bandwidth_time, cpu_time, 0.0);
        let sim_time = SimDuration::from_secs_f64(overlap_secs(bandwidth_time, cpu_time));

        Ok(CpuPlanResult {
            groups,
            qualifying_rows: totals.joined,
            threads_used: threads,
            sim_time,
            breakdown,
            wall_time: started.elapsed(),
        })
    }
}

impl ExecutionSite for CpuOlapEngine {
    fn target(&self) -> OlapTarget {
        OlapTarget::Cpu
    }

    fn label(&self) -> &'static str {
        "cpu"
    }

    fn register_table(&self, _table: &SnapshotTable, _label: &str) -> Result<RegisteredTable> {
        // The CPU streams straight out of the shared-memory snapshot, so
        // registration only vends a handle for lifecycle symmetry with the
        // GPU site.
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        self.registered.lock().insert(tag);
        Ok(RegisteredTable::cpu(tag))
    }

    fn reset_tables(&self) {
        self.registered.lock().clear();
    }

    fn unregister_table(&self, handle: RegisteredTable) {
        self.registered.lock().remove(&handle.tag());
    }

    fn execute(&self, handle: RegisteredTable, table: &SnapshotTable, query: &ScanAggQuery) -> Result<OlapOutcome> {
        if !self.registered.lock().contains(&handle.tag()) {
            return Err(H2Error::InvalidKernel("table not registered with the CPU site".into()));
        }
        if table.row_count() == 0 {
            return Err(H2Error::InvalidKernel("cannot execute a query over an empty table".into()));
        }
        let result = self.execute_scan(table, query)?;
        let out = OlapOutcome {
            value: result.value,
            qualifying_rows: result.qualifying_rows,
            time: result.sim_time,
            kernels: Vec::new(),
            interconnect_bytes: 0,
            breakdown: result.breakdown,
            site: OlapTarget::Cpu,
        };
        emit_execution_spans(&self.tracer, out.site, &out.kernels, &out.breakdown, out.time, out.interconnect_bytes);
        Ok(out)
    }

    fn execute_plan(
        &self,
        probe: RegisteredTable,
        probe_table: &SnapshotTable,
        build: Option<(RegisteredTable, &SnapshotTable)>,
        plan: &OlapPlan,
    ) -> Result<PlanOutcome> {
        {
            let registered = self.registered.lock();
            if !registered.contains(&probe.tag()) {
                return Err(H2Error::InvalidKernel("probe table not registered with the CPU site".into()));
            }
            if let Some((handle, _)) = build {
                if !registered.contains(&handle.tag()) {
                    return Err(H2Error::InvalidKernel("build table not registered with the CPU site".into()));
                }
            }
        }
        let result = self.execute_plan_pipeline(probe_table, build.map(|(_, t)| t), plan)?;
        let out = PlanOutcome {
            groups: result.groups,
            qualifying_rows: result.qualifying_rows,
            grouped: plan.group_by.is_some(),
            time: result.sim_time,
            kernels: Vec::new(),
            interconnect_bytes: 0,
            breakdown: result.breakdown,
            site: OlapTarget::Cpu,
        };
        emit_execution_spans(&self.tracer, out.site, &out.kernels, &out.breakdown, out.time, out.interconnect_bytes);
        Ok(out)
    }

    fn resident_fraction(&self) -> f64 {
        // The CPU's "device memory" is host DRAM, where every snapshot
        // already lives.
        1.0
    }

    fn capability(&self) -> SiteCapability {
        SiteCapability::Cpu { cores: self.spec().cores }
    }

    fn set_cores(&self, cores: u32) {
        let cores = cores.max(1);
        let mut spec = self.spec.lock();
        spec.cores = cores;
        spec.mem_bandwidth_gbps = self.per_core_bandwidth_gbps * f64::from(cores);
    }

    fn set_plan_cache(&mut self, cache: PlanDataCache) {
        self.cache = cache;
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.cache.set_tracer(tracer.clone());
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{AggExpr, AttrType, PartitionId, Predicate, Schema, Value};
    use h2tap_storage::{Database, Layout};

    /// Builds a 2-column table: col0 = 0..n (sorted), col1 = col0 * 2.
    fn table(n: i64) -> SnapshotTable {
        let db = Database::new(1);
        let schema = Schema::homogeneous("c", 2, AttrType::Int64);
        let t = db.create_table("t", schema, Layout::Dsm).unwrap();
        for i in 0..n {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(i * 2)]).unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    #[test]
    fn both_profiles_compute_the_same_exact_answer() {
        let t = table(10_000);
        let query =
            ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 999.0)], aggregate: AggExpr::SumProduct(0, 1) };
        let vectorized = CpuOlapEngine::new(CpuScanProfile::vectorized()).execute_scan(&t, &query).unwrap();
        let materializing = CpuOlapEngine::new(CpuScanProfile::materializing()).execute_scan(&t, &query).unwrap();
        let expected: f64 = (0..1000).map(|i| (i * i * 2) as f64).sum();
        assert_eq!(vectorized.value, expected);
        assert_eq!(materializing.value, expected);
        assert_eq!(vectorized.qualifying_rows, 1000);
    }

    #[test]
    fn zonemaps_skip_chunks_on_clustered_predicates() {
        // col0 is inserted in sorted order, so zonemaps can skip chunks.
        let t = table(300_000);
        let query = ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 9_999.0)], aggregate: AggExpr::Count };
        let skipping = CpuOlapEngine::new(CpuScanProfile::vectorized()).execute_scan(&t, &query).unwrap();
        let full = CpuOlapEngine::new(CpuScanProfile::materializing()).execute_scan(&t, &query).unwrap();
        assert_eq!(skipping.value, 10_000.0);
        assert!(skipping.chunks_skipped > 0, "zonemaps should skip chunks on sorted data");
        assert_eq!(full.chunks_skipped, 0);
        assert!(skipping.rows_scanned < full.rows_scanned);
        assert!(skipping.sim_time < full.sim_time);
    }

    #[test]
    fn count_without_predicates_needs_no_columns() {
        let t = table(1_234);
        let r = CpuOlapEngine::new(CpuScanProfile::vectorized())
            .execute_scan(&t, &ScanAggQuery::aggregate_only(AggExpr::Count))
            .unwrap();
        assert_eq!(r.value, 1_234.0);
        assert_eq!(r.qualifying_rows, 1_234);
    }

    #[test]
    fn sim_time_scales_with_data_size() {
        let small = table(10_000);
        let big = table(100_000);
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let engine = CpuOlapEngine::new(CpuScanProfile::materializing());
        let ts = engine.execute_scan(&small, &query).unwrap().sim_time;
        let tb = engine.execute_scan(&big, &query).unwrap().sim_time;
        let ratio = tb.as_secs_f64() / ts.as_secs_f64();
        assert!((8.0..12.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn core_migration_speeds_up_the_cpu_site() {
        let t = table(500_000);
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let site = CpuOlapEngine::archipelago_default(2);
        let handle = site.register_table(&t, "t").unwrap();
        let slow = ExecutionSite::execute(&site, handle, &t, &query).unwrap().time;
        site.set_cores(16);
        let fast = ExecutionSite::execute(&site, handle, &t, &query).unwrap().time;
        assert!(fast < slow, "16 cores {fast} should beat 2 cores {slow}");
    }

    #[test]
    fn unregistered_handles_are_rejected() {
        let t = table(10);
        let site = CpuOlapEngine::archipelago_default(4);
        let handle = site.register_table(&t, "t").unwrap();
        site.reset_tables();
        let query = ScanAggQuery::aggregate_only(AggExpr::Count);
        assert!(ExecutionSite::execute(&site, handle, &t, &query).is_err());
    }

    /// Dimension table: key = i, size = i % 7, class = i % 4.
    fn dim_table(keys: i64) -> SnapshotTable {
        let db = Database::new(1);
        let schema = Schema::new(vec![
            h2tap_common::Attribute::new("key", AttrType::Int64),
            h2tap_common::Attribute::new("size", AttrType::Int32),
            h2tap_common::Attribute::new("class", AttrType::Int32),
        ])
        .unwrap();
        let t = db.create_table("dim", schema, Layout::Dsm).unwrap();
        for i in 0..keys {
            db.insert(
                PartitionId(0),
                t,
                &[Value::Int64(i), Value::Int32((i % 7) as i32), Value::Int32((i % 4) as i32)],
            )
            .unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    /// Fact table: col0 = i, col1 = i % 50 (the foreign key into the
    /// dimension table).
    fn fact_table(n: i64) -> SnapshotTable {
        let db = Database::new(1);
        let t = db.create_table("fact", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        for i in 0..n {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(i % 50)]).unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    fn class_plan() -> h2tap_common::OlapPlan {
        h2tap_common::OlapPlan {
            predicates: vec![],
            join: Some(h2tap_common::JoinSpec {
                probe_column: 1,
                build_key: 0,
                build_predicates: vec![Predicate::between(1, 0.0, 3.0)],
            }),
            group_by: Some(h2tap_common::PlanColumn::Build(2)),
            aggregates: vec![AggExpr::SumColumns(vec![0]), AggExpr::Count],
        }
    }

    #[test]
    fn plan_pipeline_is_byte_identical_across_thread_counts() {
        let fact = fact_table(300_000); // several PLAN_CHUNK_ROWS chunks
        let dim = dim_table(50);
        let plan = class_plan();
        let sequential = CpuOlapEngine::archipelago_default(1).execute_plan_pipeline(&fact, Some(&dim), &plan).unwrap();
        let parallel = CpuOlapEngine::archipelago_default(8).execute_plan_pipeline(&fact, Some(&dim), &plan).unwrap();
        assert_eq!(sequential.threads_used, 1);
        assert!(parallel.threads_used > 1, "8 cores over several chunks must use the pool");
        // The IR's chunk-order contract: the schedule cannot change a bit.
        assert_eq!(sequential.groups, parallel.groups);
        assert_eq!(sequential.qualifying_rows, parallel.qualifying_rows);
    }

    #[test]
    fn plan_pipeline_matches_a_scalar_reference() {
        let fact = fact_table(10_000);
        let dim = dim_table(50);
        let result =
            CpuOlapEngine::archipelago_default(4).execute_plan_pipeline(&fact, Some(&dim), &class_plan()).unwrap();
        // Reference: keys with key % 7 <= 3 survive the build filter.
        let mut expect: std::collections::BTreeMap<u64, (f64, u64)> = std::collections::BTreeMap::new();
        for i in 0..10_000i64 {
            let fk = i % 50;
            if fk % 7 <= 3 {
                let class = (fk % 4) as u64;
                let e = expect.entry(class).or_default();
                e.0 += i as f64;
                e.1 += 1;
            }
        }
        assert_eq!(result.groups.len(), expect.len());
        for g in &result.groups {
            let (sum, rows) = expect[&g.key];
            assert_eq!(g.rows, rows);
            assert!((g.values[0] - sum).abs() < 1e-9, "class {}: {} vs {sum}", g.key, g.values[0]);
            assert_eq!(g.values[1], rows as f64);
        }
    }

    #[test]
    fn join_and_group_charge_more_than_the_plain_scan_plan() {
        let fact = fact_table(200_000);
        let dim = dim_table(50);
        let engine = CpuOlapEngine::archipelago_default(8);
        let join = engine.execute_plan_pipeline(&fact, Some(&dim), &class_plan()).unwrap();
        let scan_plan = h2tap_common::OlapPlan {
            predicates: vec![],
            join: None,
            group_by: None,
            aggregates: vec![AggExpr::SumColumns(vec![0]), AggExpr::Count],
        };
        let scan = engine.execute_plan_pipeline(&fact, None, &scan_plan).unwrap();
        assert!(join.sim_time > scan.sim_time, "join {} scan {}", join.sim_time, scan.sim_time);
    }

    #[test]
    fn plan_wall_clock_benefits_from_more_threads() {
        // Not a timing assertion (CI noise): just check the pool is sized by
        // set_cores through the ExecutionSite surface.
        let fact = fact_table(400_000);
        let dim = dim_table(50);
        let site = CpuOlapEngine::archipelago_default(2);
        let ph = site.register_table(&fact, "fact").unwrap();
        let bh = site.register_table(&dim, "dim").unwrap();
        let plan = class_plan();
        let two = site.execute_plan_pipeline(&fact, Some(&dim), &plan).unwrap();
        site.set_cores(16);
        let sixteen = site.execute_plan_pipeline(&fact, Some(&dim), &plan).unwrap();
        assert_eq!(two.threads_used, 2);
        assert!(sixteen.threads_used > two.threads_used);
        assert_eq!(two.groups, sixteen.groups);
        assert!(sixteen.sim_time < two.sim_time, "more cores must lower the simulated time");
        // The ExecutionSite wrapper enforces registration.
        site.reset_tables();
        assert!(ExecutionSite::execute_plan(&site, ph, &fact, Some((bh, &dim)), &plan).is_err());
    }
}
