//! Snapshot policies: the freshness / performance trade-off.
//!
//! "Users can trade off data freshness for performance by having several OLAP
//! queries share a snapshot, or maximize freshness by taking a snapshot
//! before running each OLAP query." A [`SnapshotPolicy`] says how many
//! queries may share one snapshot; the engine consults it before each query.

use serde::{Deserialize, Serialize};

/// How often the engine refreshes the snapshot OLAP queries run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotPolicy {
    /// Take a fresh snapshot before every query (maximum freshness, maximum
    /// copy-on-write pressure) — the "q1-10" series of Figure 5.
    PerQuery,
    /// Share one snapshot across every `queries` consecutive queries — the
    /// "q1,5" / "q1,3,5,7" series of Figure 5 and the sweep of Figure 7.
    EveryN {
        /// Queries per snapshot (must be at least 1).
        queries: u32,
    },
    /// Never refresh automatically; the caller snapshots explicitly.
    Manual,
}

impl SnapshotPolicy {
    /// Whether a new snapshot should be taken before running query number
    /// `query_index` (0-based since the engine started or since the last
    /// manual refresh).
    pub fn should_refresh(self, query_index: u64) -> bool {
        match self {
            SnapshotPolicy::PerQuery => true,
            SnapshotPolicy::EveryN { queries } => query_index.is_multiple_of(u64::from(queries.max(1))),
            SnapshotPolicy::Manual => false,
        }
    }

    /// Number of queries that share each snapshot (`None` for manual).
    pub fn sharing_degree(self) -> Option<u32> {
        match self {
            SnapshotPolicy::PerQuery => Some(1),
            SnapshotPolicy::EveryN { queries } => Some(queries.max(1)),
            SnapshotPolicy::Manual => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_query_always_refreshes() {
        for i in 0..5 {
            assert!(SnapshotPolicy::PerQuery.should_refresh(i));
        }
        assert_eq!(SnapshotPolicy::PerQuery.sharing_degree(), Some(1));
    }

    #[test]
    fn every_n_refreshes_on_boundaries() {
        let p = SnapshotPolicy::EveryN { queries: 5 };
        assert!(p.should_refresh(0));
        assert!(!p.should_refresh(1));
        assert!(!p.should_refresh(4));
        assert!(p.should_refresh(5));
        assert_eq!(p.sharing_degree(), Some(5));
    }

    #[test]
    fn manual_never_refreshes() {
        let p = SnapshotPolicy::Manual;
        assert!(!p.should_refresh(0));
        assert!(!p.should_refresh(100));
        assert_eq!(p.sharing_degree(), None);
    }

    #[test]
    fn zero_query_sharing_is_clamped() {
        let p = SnapshotPolicy::EveryN { queries: 0 };
        assert!(p.should_refresh(0));
        assert!(p.should_refresh(1));
        assert_eq!(p.sharing_degree(), Some(1));
    }
}
