//! The multi-GPU OLAP executor: one execution site that shards every
//! registered table's chunks across several — possibly heterogeneous —
//! simulated GPUs and runs them in parallel.
//!
//! Table 1 of the paper catalogues five GPU generations precisely because
//! real deployments mix them: cards are added over the years, so a
//! data-parallel archipelago rarely owns `n` identical devices. This site
//! makes that mix a first-class placement target. The sharding contract is
//! the same fixed-chunk contract every other site already obeys:
//!
//! * tables are split into [`h2tap_common::PLAN_CHUNK_ROWS`]-row chunks in
//!   storage order,
//! * chunk `i` is assigned to device [`h2tap_common::chunk_shard`]`(i, n)` —
//!   a round-robin **partition** (every chunk on exactly one device, shards
//!   disjoint, union covers the table),
//! * per-chunk partials always merge in **ascending chunk order** no matter
//!   which device produced them or when it finished.
//!
//! Because the host-side data path is the shared [`operators`] pipeline over
//! all chunks in ascending order, `ScanAggQuery` f64 answers and plan group
//! rows are **byte-identical** to the CPU and single-GPU sites for any
//! device mix and shard count. What differs is the simulated cost: each
//! device is charged its own kernels over its own shard, the devices run
//! concurrently, and the site reports the **critical path** — the slowest
//! device's time — which is why a fast+slow generation mix is bound by its
//! slow card rather than its aggregate bandwidth.
//!
//! Joins follow the replicated-build pattern real multi-GPU engines use:
//! every device builds a partial hash table from its *local* build-side
//! shard, the partials are all-gathered so each device holds a full replica
//! (charged as interconnect traffic for the remote fraction), and each
//! device probes its own probe-side shard with data-dependent random reads
//! against its replica. The replica is why the placement footprint check is
//! against the **minimum per-device** free memory, not the sum.

use crate::cache::PlanDataCache;
use crate::engine::{DataPlacement, OlapOutcome, PlanOutcome, RegisteredTable};
use crate::operators::{self, ChunkPartial};
use crate::site::{emit_execution_spans, ExecutionSite};
use h2tap_common::{
    chunk_shard, ExecBreakdown, H2Error, OlapPlan, PlanColumn, Result, ScanAggQuery, SimDuration, HASH_ENTRY_BYTES,
    PLAN_CHUNK_ROWS,
};
use h2tap_gpu_sim::{AccessMode, AccessPattern, BufferId, GpuDevice, KernelDesc, KernelMetrics, TransferDirection};
use h2tap_obs::Tracer;
use h2tap_scheduler::{GpuDeviceCapability, OlapTarget, SiteCapability};
use h2tap_storage::{Layout, SnapshotTable};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows of a `rows`-row table that land on each of `devices` devices under
/// the round-robin chunk shard, in device order. The boundary cases matter:
/// an empty table shards to all-zero, a one-chunk table lands entirely on
/// device 0, and a table whose row count is an exact chunk multiple splits
/// into full chunks only.
pub fn shard_rows(rows: u64, devices: usize) -> Vec<u64> {
    let devices = devices.max(1);
    let mut per = vec![0u64; devices];
    let rows = rows as usize;
    let chunks = rows.div_ceil(PLAN_CHUNK_ROWS);
    for chunk in 0..chunks {
        let lo = chunk * PLAN_CHUNK_ROWS;
        let hi = ((chunk + 1) * PLAN_CHUNK_ROWS).min(rows);
        per[chunk_shard(chunk, devices)] += (hi - lo) as u64;
    }
    per
}

/// Chunk indexes each of `devices` devices executes, in device order — the
/// partition the property tests verify: every chunk appears exactly once,
/// shards are disjoint, and their union covers `0..chunk_count`.
pub fn shard_chunk_indexes(chunk_count: usize, devices: usize) -> Vec<Vec<usize>> {
    let devices = devices.max(1);
    let mut shards = vec![Vec::new(); devices];
    for chunk in 0..chunk_count {
        shards[chunk_shard(chunk, devices)].push(chunk);
    }
    shards
}

/// Per-device accumulator for one query execution: the device's simulated
/// time and its contribution to the cost-model terms.
#[derive(Debug, Clone, Default)]
struct DeviceRun {
    time: SimDuration,
    breakdown: ExecBreakdown,
}

/// The device mix plus the registration maps it owns — everything a kernel
/// charge or buffer (de)allocation mutates, behind one short-lived lock.
/// Execution holds this lock only while *charging* simulated kernels; the
/// host-side data path — the real wall-clock work — runs between lock
/// sessions so concurrent queries overlap.
struct MultiGpuSiteState {
    devices: Vec<GpuDevice>,
    /// Registered column buffers: (table tag, device, attr) -> buffer.
    buffers: BTreeMap<(usize, usize, usize), BufferId>,
    /// Registered whole-shard buffers for NSM tables: (tag, device) -> buffer.
    nsm_buffers: BTreeMap<(usize, usize), BufferId>,
    /// Rows each device holds of a registered table: tag -> per-device rows.
    shard_rows: BTreeMap<usize, Vec<u64>>,
}

impl MultiGpuSiteState {
    fn register_bytes(&mut self, d: usize, placement: DataPlacement, label: &str, bytes: u64) -> Result<BufferId> {
        let device = &mut self.devices[d];
        match placement {
            DataPlacement::Host(mode) => device.register_buffer(label, bytes, mode),
            DataPlacement::DeviceResident => device.register_device_buffer(label, bytes),
        }
    }

    /// Frees every buffer one table registered, across all devices.
    fn free_tag(&mut self, tag: usize) {
        let cols: Vec<(usize, usize, usize)> = self.buffers.keys().filter(|(t, _, _)| *t == tag).copied().collect();
        for key in cols {
            if let Some(id) = self.buffers.remove(&key) {
                // h2tap: allow(error_swallow) — unregister is best-effort: the id was minted at registration and a failed free has no caller-visible remedy.
                let _ = self.devices[key.1].memory_mut().free(id);
            }
        }
        let nsm: Vec<(usize, usize)> = self.nsm_buffers.keys().filter(|(t, _)| *t == tag).copied().collect();
        for key in nsm {
            if let Some(id) = self.nsm_buffers.remove(&key) {
                // h2tap: allow(error_swallow) — unregister is best-effort: the id was minted at registration and a failed free has no caller-visible remedy.
                let _ = self.devices[key.1].memory_mut().free(id);
            }
        }
        self.shard_rows.remove(&tag);
    }

    fn device_shard_rows(&self, handle: RegisteredTable) -> Result<&Vec<u64>> {
        self.shard_rows
            .get(&handle.tag())
            .ok_or_else(|| H2Error::InvalidKernel("table not registered with the multi-GPU site".into()))
    }

    /// The buffer and access pattern device `d`'s kernels use to read `attr`
    /// of its shard of the table.
    fn read_plan(
        &self,
        handle: RegisteredTable,
        table: &SnapshotTable,
        device: usize,
        attr: usize,
    ) -> Result<(BufferId, u64, AccessPattern)> {
        let rows = *self
            .device_shard_rows(handle)?
            .get(device)
            .ok_or_else(|| H2Error::InvalidKernel("device index out of range".into()))?;
        let width = table.schema.attr(attr)?.ty.width() as u64;
        match table.layout {
            Layout::Nsm => {
                let buffer = *self
                    .nsm_buffers
                    .get(&(handle.tag(), device))
                    .ok_or_else(|| H2Error::InvalidKernel("shard not registered".into()))?;
                let pattern = AccessPattern::Strided {
                    stride_bytes: table.schema.record_width() as u32,
                    elem_bytes: width as u32,
                };
                Ok((buffer, rows * width, pattern))
            }
            Layout::Dsm => {
                let buffer = *self
                    .buffers
                    .get(&(handle.tag(), device, attr))
                    .ok_or_else(|| H2Error::InvalidKernel("shard column not registered".into()))?;
                Ok((buffer, rows * width, AccessPattern::Sequential))
            }
            Layout::Pax { .. } => {
                let buffer = *self
                    .buffers
                    .get(&(handle.tag(), device, attr))
                    .ok_or_else(|| H2Error::InvalidKernel("shard column not registered".into()))?;
                // Minipages coalesce like DSM but pay the 3% page-interleave
                // overhead — same model as the single-GPU site.
                Ok((buffer, rows * width * 103 / 100, AccessPattern::Sequential))
            }
        }
    }
}

/// Kernel-at-a-time OLAP executor over several sharded simulated GPUs.
///
/// Concurrent: the device mix and registration maps live behind one mutex
/// ([`MultiGpuSiteState`]), held only across kernel-charge bookkeeping; the
/// host-side data path runs between lock sessions.
pub struct MultiGpuOlapEngine {
    placement: DataPlacement,
    /// Number of devices (= shards per table); fixed at construction.
    device_count: usize,
    devs: Mutex<MultiGpuSiteState>,
    /// Monotonic tag generator for registered tables.
    next_tag: AtomicUsize,
    /// Snapshot-keyed plan-data cache for the host-side data path (shared
    /// across all sites when built into an engine, private otherwise).
    cache: PlanDataCache,
    /// Trace handle; disabled (no-op) until the engine installs one.
    tracer: Tracer,
}

impl MultiGpuOlapEngine {
    /// Creates an executor over `devices` with the given (shared) data
    /// placement. At least one device is required.
    pub fn new(devices: Vec<GpuDevice>, placement: DataPlacement) -> Result<Self> {
        if devices.is_empty() {
            return Err(H2Error::Config("a multi-GPU site needs at least one device".into()));
        }
        Ok(Self {
            placement,
            device_count: devices.len(),
            devs: Mutex::new(MultiGpuSiteState {
                devices,
                buffers: BTreeMap::new(),
                nsm_buffers: BTreeMap::new(),
                shard_rows: BTreeMap::new(),
            }),
            next_tag: AtomicUsize::new(0),
            cache: PlanDataCache::new(),
            tracer: Tracer::disabled(),
        })
    }

    /// Creates an executor from catalogue specs (e.g. a Table 1 mix).
    pub fn from_specs(specs: Vec<h2tap_gpu_sim::GpuSpec>, placement: DataPlacement) -> Result<Self> {
        Self::new(specs.into_iter().map(GpuDevice::new).collect(), placement)
    }

    /// Bytes currently allocated on each device, in shard order.
    pub fn device_used_bytes(&self) -> Vec<u64> {
        self.devs.lock().devices.iter().map(|d| d.memory().used_bytes()).collect()
    }

    /// Number of devices (= shards per table).
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// The configured placement.
    pub fn placement(&self) -> DataPlacement {
        self.placement
    }

    /// The smallest free device memory across the mix — the headroom any
    /// *replicated* per-device structure (the join hash table) must fit.
    /// Deliberately a minimum, never a sum: device capacities do not pool,
    /// and summing would let one unknown device saturate the aggregate.
    pub fn min_free_device_bytes(&self) -> u64 {
        self.devs.lock().devices.iter().map(|d| d.memory().free_bytes()).min().unwrap_or(0)
    }

    /// Registers the columns of `table`, sharded chunk-wise across the
    /// devices. Registration is all-or-nothing across the whole mix: if any
    /// device rejects its shard (out of memory), everything registered so
    /// far — on every device — is freed again, so an OOM fallback cannot
    /// strand device memory until the next snapshot refresh.
    pub fn register_table(&self, table: &SnapshotTable, label: &str) -> Result<RegisteredTable> {
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let per_device = shard_rows(table.row_count(), self.device_count);
        let explicit_copy = matches!(self.placement, DataPlacement::Host(AccessMode::Memcpy));
        let arity = table.schema.arity();
        let placement = self.placement;
        let mut state = self.devs.lock();
        let registered = (|| -> Result<()> {
            for (d, &rows) in per_device.iter().enumerate() {
                if rows == 0 {
                    continue;
                }
                match table.layout {
                    Layout::Nsm => {
                        let bytes = rows * table.schema.record_width() as u64;
                        let id = state.register_bytes(d, placement, &format!("{label}.d{d}.rows"), bytes)?;
                        state.nsm_buffers.insert((tag, d), id);
                    }
                    Layout::Dsm | Layout::Pax { .. } => {
                        for attr in 0..arity {
                            let width = table.schema.attr(attr)?.ty.width() as u64;
                            let id =
                                state.register_bytes(d, placement, &format!("{label}.d{d}.col{attr}"), rows * width)?;
                            state.buffers.insert((tag, d, attr), id);
                        }
                    }
                }
            }
            Ok(())
        })();
        match registered {
            Ok(()) => {
                state.shard_rows.insert(tag, per_device);
                Ok(RegisteredTable::site(tag, explicit_copy))
            }
            Err(err) => {
                state.free_tag(tag);
                Err(err)
            }
        }
    }

    /// Frees every registration on every device (snapshot refresh).
    pub fn reset_tables(&self) {
        let mut state = self.devs.lock();
        let tags: Vec<usize> = state.shard_rows.keys().copied().collect();
        for tag in tags {
            state.free_tag(tag);
        }
    }

    /// Frees one table's buffers across the mix (failed-attempt rollback).
    pub fn unregister_table(&self, handle: RegisteredTable) {
        self.devs.lock().free_tag(handle.tag());
    }

    /// Charges one kernel to device `d`'s running totals.
    fn charge(
        device: &mut GpuDevice,
        desc: &KernelDesc,
        run: &mut DeviceRun,
        kernels: &mut Vec<KernelMetrics>,
        interconnect_bytes: &mut u64,
    ) -> Result<()> {
        let metrics = device.account(desc)?;
        run.time += metrics.time;
        *interconnect_bytes += metrics.interconnect_bytes;
        run.breakdown.overhead_secs += metrics.launch_overhead.as_secs_f64();
        run.breakdown.stream_secs += metrics.time.saturating_sub(metrics.launch_overhead).as_secs_f64();
        run.breakdown.compute_secs += metrics.compute_time.as_secs_f64();
        kernels.push(metrics);
        Ok(())
    }

    /// Charges an explicit host↔device transfer to device `d`'s totals.
    fn charge_transfer(
        device: &mut GpuDevice,
        bytes: u64,
        direction: TransferDirection,
        run: &mut DeviceRun,
        interconnect_bytes: &mut u64,
    ) {
        let copy = device.memcpy(bytes, direction);
        run.time += copy;
        run.breakdown.stream_secs += copy.as_secs_f64();
        *interconnect_bytes += bytes;
    }

    /// Executes `query`: each device runs the selection and aggregation
    /// kernels over its own shard concurrently, the site charges the slowest
    /// device, and the exact answer is computed on the host through the
    /// shared chunked scan path over **all** chunks in ascending order — so
    /// the f64 answer is byte-identical to the CPU and single-GPU sites.
    pub fn execute(&self, handle: RegisteredTable, table: &SnapshotTable, query: &ScanAggQuery) -> Result<OlapOutcome> {
        if table.row_count() == 0 {
            return Err(H2Error::InvalidKernel("cannot execute a query over an empty table".into()));
        }
        let mut kernels = Vec::new();
        let mut interconnect_bytes = 0u64;
        let mut critical = DeviceRun::default();

        // Scan charges depend only on shard row counts: one lock session
        // covers every device, then the host-side answer computes unlocked.
        let mut state = self.devs.lock();
        let per_device = state.device_shard_rows(handle)?.clone();

        for (d, &rows_d) in per_device.iter().enumerate() {
            if rows_d == 0 {
                continue;
            }
            let mut run = DeviceRun::default();

            // Explicit-copy placement pays each device's shard transfer
            // up front (the devices copy over their own links, in parallel).
            if handle.explicit_copy() {
                let mut bytes = 0u64;
                for &attr in &query.columns_accessed() {
                    let width = table.schema.attr(attr)?.ty.width() as u64;
                    bytes += match table.layout {
                        Layout::Nsm => {
                            rows_d * table.schema.record_width() as u64 / query.columns_accessed().len() as u64
                        }
                        _ => rows_d * width,
                    };
                }
                Self::charge_transfer(
                    &mut state.devices[d],
                    bytes,
                    TransferDirection::HostToDevice,
                    &mut run,
                    &mut interconnect_bytes,
                );
            }

            // Selection kernels over the shard: one per predicate.
            for (i, pred) in query.predicates.iter().enumerate() {
                let (buffer, useful, pattern) = state.read_plan(handle, table, d, pred.column)?;
                let desc = KernelDesc::new(format!("select_{i}.d{d}"), rows_d)
                    .flops_per_element(2.0)
                    .read(buffer, useful, pattern)
                    .write(rows_d.div_ceil(8));
                Self::charge(&mut state.devices[d], &desc, &mut run, &mut kernels, &mut interconnect_bytes)?;
            }

            // Aggregation kernel over the shard.
            let agg_cols = query.aggregate.columns();
            let mut desc =
                KernelDesc::new(format!("aggregate.d{d}"), rows_d).flops_per_element(1.0 + agg_cols.len() as f64);
            for &attr in &agg_cols {
                let (buffer, useful, pattern) = state.read_plan(handle, table, d, attr)?;
                desc = desc.read(buffer, useful, pattern);
            }
            if !query.predicates.is_empty() {
                desc = desc.flops_per_element(2.0 + agg_cols.len() as f64);
            }
            desc = desc.write(8);
            Self::charge(&mut state.devices[d], &desc, &mut run, &mut kernels, &mut interconnect_bytes)?;

            if handle.explicit_copy() {
                Self::charge_transfer(
                    &mut state.devices[d],
                    8,
                    TransferDirection::DeviceToHost,
                    &mut run,
                    &mut interconnect_bytes,
                );
            }

            if run.time > critical.time {
                critical = run;
            }
        }
        drop(state);

        // Host-side data path shared with every other site: same chunking,
        // same per-chunk row order, same ascending merge — bit-equal answers
        // regardless of device mix or completion order. The materialisation
        // comes from the shared plan-data cache.
        let mat = self.cache.materialized(table, query.columns_accessed())?;
        let partials = (0..mat.chunk_count()).map(|i| operators::scan_chunk(&mat, query, mat.chunk_range(i)));
        let (value, qualifying_rows) = operators::merge_scan_partials(partials);

        Ok(OlapOutcome {
            value,
            qualifying_rows,
            time: critical.time,
            kernels,
            interconnect_bytes,
            breakdown: critical.breakdown,
            site: OlapTarget::MultiGpu,
        })
    }

    /// Executes a relational plan with the replicated-build multi-GPU join:
    /// per-device selection over the probe shard, local hash build over the
    /// build shard, an all-gather that replicates the hash table on every
    /// device (interconnect traffic for the remote fraction), per-device
    /// random-access probes and partial aggregation, and a chunk-ordered
    /// merge. The group rows are byte-identical to the other sites because
    /// the real answer comes from the shared [`operators`] pipeline over all
    /// chunks in ascending order.
    pub fn execute_plan(
        &self,
        probe: RegisteredTable,
        probe_table: &SnapshotTable,
        build: Option<(RegisteredTable, &SnapshotTable)>,
        plan: &OlapPlan,
    ) -> Result<PlanOutcome> {
        let mut scratch: Vec<(usize, BufferId)> = Vec::new();
        let result = self.execute_plan_inner(probe, probe_table, build, plan, &mut scratch);
        // Scratch (hash replicas, partial-group arenas) lives only for the
        // query; free it even on error so an OOM mid-plan does not leak.
        let mut state = self.devs.lock();
        for (d, id) in scratch {
            // h2tap: allow(error_swallow) — scratch cleanup must not mask the query result (including a mid-plan OOM) with a secondary free failure.
            let _ = state.devices[d].memory_mut().free(id);
        }
        drop(state);
        result
    }

    fn execute_plan_inner(
        &self,
        probe: RegisteredTable,
        probe_table: &SnapshotTable,
        build: Option<(RegisteredTable, &SnapshotTable)>,
        plan: &OlapPlan,
        scratch: &mut Vec<(usize, BufferId)>,
    ) -> Result<PlanOutcome> {
        operators::check_plan(plan, build.is_some())?;
        let n = self.device_count;

        // ---- Device-lock session 1: the up-front reservations. ----
        let mut state = self.devs.lock();
        let per_probe = state.device_shard_rows(probe)?.clone();
        let per_build = match build {
            Some((handle, _)) => Some(state.device_shard_rows(handle)?.clone()),
            None => None,
        };

        // Reserve every *probing* device's hash replica up front at the
        // worst-case size (same bound the placement footprint check uses):
        // an out-of-memory mix fails here, before the host-side join is
        // computed, so the dispatch-level CPU fallback pays once. Devices
        // whose probe shard is empty never read the replica, so they neither
        // reserve it nor join the all-gather — an idle low-memory card must
        // not be able to OOM a plan it does no work for.
        let hash_bytes = match (&plan.join, build) {
            (Some(_), Some((_, build_table))) => {
                Some(plan.hash_table_bytes(build_table.row_count()).max(HASH_ENTRY_BYTES))
            }
            _ => None,
        };
        let mut hash_bufs: Vec<Option<BufferId>> = vec![None; n];
        if let Some(bytes) = hash_bytes {
            let placement = self.placement;
            for (d, slot) in hash_bufs.iter_mut().enumerate() {
                if per_probe[d] == 0 {
                    continue;
                }
                let id = state.register_bytes(d, placement, &format!("plan.hash.d{d}"), bytes)?;
                scratch.push((d, id));
                *slot = Some(id);
            }
        }
        drop(state);

        // Host-side data path, shared with the other sites so results are
        // byte-identical: materialise, build the hash table, evaluate the
        // fixed chunks in ascending order, merge in chunk order. Per-device
        // row counters fall out of the same chunk partials via the shard
        // assignment, so the kernels below charge exactly the rows each
        // device would process. Runs with the device lock *released*: this
        // is the real wall-clock work, and concurrent queries must overlap
        // here.
        let operators::PlanData { mat, hash } = self.cache.prepare_plan(probe_table, build.map(|(_, t)| t), plan)?;
        let chunk_partials: Vec<ChunkPartial> = (0..mat.chunk_count())
            .map(|i| operators::process_chunk(&mat, plan, hash.as_deref(), mat.chunk_range(i)))
            .collect();
        let mut selected_d = vec![0u64; n];
        let mut joined_d = vec![0u64; n];
        let mut chunks_d = vec![0u64; n];
        for (i, partial) in chunk_partials.iter().enumerate() {
            let d = chunk_shard(i, n);
            selected_d[d] += partial.selected;
            joined_d[d] += partial.joined;
            chunks_d[d] += 1;
        }
        let (groups, totals) = operators::merge_partials(plan, chunk_partials);
        let n_groups = groups.len().max(1) as u64;
        let group_entry_bytes = (2 + plan.aggregates.len() as u64) * 8;
        let build_rows_total: u64 = per_build.as_ref().map_or(0, |p| p.iter().sum());

        let mut kernels = Vec::new();
        let mut interconnect_bytes = 0u64;
        let mut critical = DeviceRun::default();
        let probe_rows_total = probe_table.row_count();

        // ---- Device-lock session 2: the selectivity-dependent charges. ----
        let mut state = self.devs.lock();
        for d in 0..n {
            let rows_d = per_probe[d];
            let build_rows_d = per_build.as_ref().map_or(0, |p| p[d]);
            if rows_d == 0 && build_rows_d == 0 {
                continue;
            }
            let mut run = DeviceRun::default();

            // Explicit-copy placement pays each device's shard transfers.
            if probe.explicit_copy() && rows_d > 0 {
                let bytes = plan.probe_scan_bytes(&probe_table.schema, rows_d);
                Self::charge_transfer(
                    &mut state.devices[d],
                    bytes,
                    TransferDirection::HostToDevice,
                    &mut run,
                    &mut interconnect_bytes,
                );
            }
            if let Some((build_handle, build_table)) = build {
                if build_handle.explicit_copy() && build_rows_d > 0 {
                    let bytes = plan.build_scan_bytes(&build_table.schema, build_rows_d);
                    Self::charge_transfer(
                        &mut state.devices[d],
                        bytes,
                        TransferDirection::HostToDevice,
                        &mut run,
                        &mut interconnect_bytes,
                    );
                }
            }

            // Selection kernels over the probe shard.
            if rows_d > 0 {
                for (i, pred) in plan.predicates.iter().enumerate() {
                    let (buffer, useful, pattern) = state.read_plan(probe, probe_table, d, pred.column)?;
                    let desc = KernelDesc::new(format!("select_{i}.d{d}"), rows_d)
                        .flops_per_element(2.0)
                        .read(buffer, useful, pattern)
                        .write(rows_d.div_ceil(8));
                    Self::charge(&mut state.devices[d], &desc, &mut run, &mut kernels, &mut interconnect_bytes)?;
                }
            }

            // Join kernels: local hash build over the device's build shard,
            // all-gather of the remote partials into a full replica, then
            // data-dependent probes of the replica over the probe shard.
            if let (Some(join), Some((build_handle, build_table)), Some(bytes)) = (&plan.join, build, hash_bytes) {
                // The device's proportional share of the replica; the u128
                // intermediate keeps `bytes * rows` from overflowing for
                // billion-row build sides (bytes is itself O(build rows)).
                let local_hash = (u128::from(bytes) * u128::from(build_rows_d))
                    .checked_div(u128::from(build_rows_total))
                    .unwrap_or(0) as u64;
                if build_rows_d > 0 {
                    let mut desc = KernelDesc::new(format!("hash_build.d{d}"), build_rows_d)
                        .flops_per_element(4.0)
                        .write(local_hash.max(HASH_ENTRY_BYTES));
                    for &attr in &plan.build_columns_accessed() {
                        let (buffer, useful, pattern) = state.read_plan(build_handle, build_table, d, attr)?;
                        desc = desc.read(buffer, useful, pattern);
                    }
                    Self::charge(&mut state.devices[d], &desc, &mut run, &mut kernels, &mut interconnect_bytes)?;
                }
                // All-gather: the fraction of the replica this *probing*
                // device did not build locally crosses its interconnect.
                // Build-only devices just contribute their partial; the
                // receive cost lands on the probing side.
                let gathered = bytes.saturating_sub(local_hash);
                if rows_d > 0 && n > 1 && gathered > 0 {
                    Self::charge_transfer(
                        &mut state.devices[d],
                        gathered,
                        TransferDirection::HostToDevice,
                        &mut run,
                        &mut interconnect_bytes,
                    );
                }
                if rows_d > 0 {
                    let hash_buf = hash_bufs[d].ok_or_else(|| {
                        H2Error::InvalidKernel(format!("hash replica missing on device {d} for a join plan"))
                    })?;
                    let (key_buf, key_useful, key_pattern) =
                        state.read_plan(probe, probe_table, d, join.probe_column)?;
                    let probe_desc = KernelDesc::new(format!("hash_probe.d{d}"), rows_d)
                        .flops_per_element(6.0)
                        .read(key_buf, key_useful, key_pattern)
                        .read(
                            hash_buf,
                            selected_d[d].max(1) * HASH_ENTRY_BYTES,
                            AccessPattern::Random { elem_bytes: HASH_ENTRY_BYTES as u32 },
                        )
                        .write(rows_d.div_ceil(8));
                    Self::charge(&mut state.devices[d], &probe_desc, &mut run, &mut kernels, &mut interconnect_bytes)?;
                }
            }

            // Partial aggregation over the probe shard into a per-device
            // arena, then a per-device merge of its chunk partials. The
            // (tiny) per-device group tables merge on the host in ascending
            // chunk order.
            if rows_d > 0 {
                let arena_bytes = chunks_d[d].max(1) * n_groups * group_entry_bytes;
                let arena_buf = {
                    let id = state.register_bytes(d, self.placement, &format!("plan.groups.d{d}"), arena_bytes)?;
                    scratch.push((d, id));
                    id
                };
                let mut agg_desc = KernelDesc::new(format!("partial_aggregate.d{d}"), rows_d)
                    .flops_per_element(2.0 + plan.aggregates.len() as f64)
                    .write(arena_bytes);
                let mut agg_cols: Vec<usize> = plan.aggregates.iter().flat_map(|a| a.columns()).collect();
                if let Some(PlanColumn::Probe(c)) = plan.group_by {
                    agg_cols.push(c);
                }
                agg_cols.sort_unstable();
                agg_cols.dedup();
                for &attr in &agg_cols {
                    let (buffer, useful, pattern) = state.read_plan(probe, probe_table, d, attr)?;
                    agg_desc = agg_desc.read(buffer, useful, pattern);
                }
                if plan.group_by.is_some() {
                    agg_desc = agg_desc.read(
                        arena_buf,
                        joined_d[d].max(1) * group_entry_bytes,
                        AccessPattern::Random { elem_bytes: group_entry_bytes as u32 },
                    );
                }
                Self::charge(&mut state.devices[d], &agg_desc, &mut run, &mut kernels, &mut interconnect_bytes)?;

                let merge_desc = KernelDesc::new(format!("merge_groups.d{d}"), (chunks_d[d] * n_groups).max(1))
                    .flops_per_element(1.0 + plan.aggregates.len() as f64)
                    .read(arena_buf, arena_bytes, AccessPattern::Sequential)
                    .write(n_groups * group_entry_bytes);
                Self::charge(&mut state.devices[d], &merge_desc, &mut run, &mut kernels, &mut interconnect_bytes)?;

                if probe.explicit_copy() {
                    Self::charge_transfer(
                        &mut state.devices[d],
                        n_groups * group_entry_bytes,
                        TransferDirection::DeviceToHost,
                        &mut run,
                        &mut interconnect_bytes,
                    );
                }
            }

            if run.time > critical.time {
                critical = run;
            }
        }
        drop(state);

        debug_assert_eq!(per_probe.iter().sum::<u64>(), probe_rows_total, "the shard is a partition of the rows");

        Ok(PlanOutcome {
            groups,
            qualifying_rows: totals.joined,
            grouped: plan.group_by.is_some(),
            time: critical.time,
            kernels,
            interconnect_bytes,
            breakdown: critical.breakdown,
            site: OlapTarget::MultiGpu,
        })
    }

    /// Fraction of registered bytes resident next to the devices' compute —
    /// weighted across the whole mix for Unified Memory placements.
    pub fn resident_fraction(&self) -> f64 {
        match self.placement {
            DataPlacement::DeviceResident => 1.0,
            DataPlacement::Host(AccessMode::Memcpy) | DataPlacement::Host(AccessMode::Uva) => 0.0,
            DataPlacement::Host(AccessMode::UnifiedMemory) => {
                let state = self.devs.lock();
                let mut total = 0u64;
                let mut resident = 0u64;
                let ids = state
                    .buffers
                    .iter()
                    .map(|((_, d, _), id)| (*d, *id))
                    .chain(state.nsm_buffers.iter().map(|((_, d), id)| (*d, *id)));
                for (d, id) in ids {
                    crate::engine::accumulate_residency(state.devices[d].memory(), id, &mut total, &mut resident);
                }
                if total == 0 {
                    0.0
                } else {
                    resident as f64 / total as f64
                }
            }
        }
    }
}

impl ExecutionSite for MultiGpuOlapEngine {
    fn target(&self) -> OlapTarget {
        OlapTarget::MultiGpu
    }

    fn label(&self) -> &'static str {
        "multi-gpu"
    }

    fn register_table(&self, table: &SnapshotTable, label: &str) -> Result<RegisteredTable> {
        MultiGpuOlapEngine::register_table(self, table, label)
    }

    fn reset_tables(&self) {
        MultiGpuOlapEngine::reset_tables(self);
    }

    fn unregister_table(&self, handle: RegisteredTable) {
        MultiGpuOlapEngine::unregister_table(self, handle);
    }

    fn execute(&self, handle: RegisteredTable, table: &SnapshotTable, query: &ScanAggQuery) -> Result<OlapOutcome> {
        let out = MultiGpuOlapEngine::execute(self, handle, table, query)?;
        emit_execution_spans(&self.tracer, out.site, &out.kernels, &out.breakdown, out.time, out.interconnect_bytes);
        Ok(out)
    }

    fn execute_plan(
        &self,
        probe: RegisteredTable,
        probe_table: &SnapshotTable,
        build: Option<(RegisteredTable, &SnapshotTable)>,
        plan: &OlapPlan,
    ) -> Result<PlanOutcome> {
        let out = MultiGpuOlapEngine::execute_plan(self, probe, probe_table, build, plan)?;
        emit_execution_spans(&self.tracer, out.site, &out.kernels, &out.breakdown, out.time, out.interconnect_bytes);
        Ok(out)
    }

    /// The *minimum* per-device free memory — never a sum, so one device
    /// reporting "unknown" can never saturate the figure (the satellite
    /// semantics of multi-device `gpu_free_bytes`).
    fn free_device_bytes(&self) -> Option<u64> {
        Some(self.min_free_device_bytes())
    }

    fn resident_fraction(&self) -> f64 {
        MultiGpuOlapEngine::resident_fraction(self)
    }

    fn capability(&self) -> SiteCapability {
        let n = self.device_count as f64;
        let resident = MultiGpuOlapEngine::resident_fraction(self);
        let state = self.devs.lock();
        SiteCapability::Gpu {
            target: OlapTarget::MultiGpu,
            devices: state
                .devices
                .iter()
                .map(|dev| GpuDeviceCapability {
                    spec: dev.spec().clone(),
                    // Steady-state round-robin share; tiny tables (fewer
                    // chunks than devices) skew toward device 0, but those
                    // are overhead-dominated and route to the CPU anyway.
                    shard_fraction: 1.0 / n,
                    resident_fraction: resident,
                    free_bytes: Some(dev.memory().free_bytes()),
                })
                .collect(),
        }
    }

    fn set_plan_cache(&mut self, cache: PlanDataCache) {
        self.cache = cache;
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.cache.set_tracer(tracer.clone());
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GpuOlapEngine;
    use h2tap_common::{AggExpr, AttrType, PartitionId, Predicate, Schema, Value};
    use h2tap_gpu_sim::GpuSpec;
    use h2tap_storage::{Database, Layout};

    fn snapshot_table(layout: Layout, rows: i64) -> SnapshotTable {
        let db = Database::new(1);
        let schema = Schema::new(vec![
            h2tap_common::Attribute::new("k", AttrType::Int64),
            h2tap_common::Attribute::new("bucket", AttrType::Int32),
            h2tap_common::Attribute::new("price", AttrType::Float64),
        ])
        .unwrap();
        let t = db.create_table("t", schema, layout).unwrap();
        for i in 0..rows {
            db.insert(
                PartitionId(0),
                t,
                &[Value::Int64(i), Value::Int32((i % 10) as i32), Value::Float64(i as f64 * 0.1)],
            )
            .unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    fn bucket_query() -> ScanAggQuery {
        ScanAggQuery { predicates: vec![Predicate::between(1, 0.0, 4.0)], aggregate: AggExpr::SumProduct(1, 2) }
    }

    fn mix(n: usize) -> Vec<GpuDevice> {
        h2tap_gpu_sim::table1_mix(n).into_iter().map(GpuDevice::new).collect()
    }

    #[test]
    fn shard_rows_is_a_partition_with_exact_boundaries() {
        // Empty table: all-zero shards.
        assert_eq!(shard_rows(0, 3), vec![0, 0, 0]);
        // One-chunk table: everything on device 0.
        assert_eq!(shard_rows(1_000, 3), vec![1_000, 0, 0]);
        // Exact chunk multiple: full chunks only, round-robin.
        let rows = (PLAN_CHUNK_ROWS * 4) as u64;
        assert_eq!(shard_rows(rows, 2), vec![rows / 2, rows / 2]);
        // Partial tail chunk lands where the round-robin says.
        let rows = (PLAN_CHUNK_ROWS * 2 + 17) as u64;
        let per = shard_rows(rows, 2);
        assert_eq!(per.iter().sum::<u64>(), rows);
        assert_eq!(per[0], (PLAN_CHUNK_ROWS + 17) as u64);
    }

    #[test]
    fn answers_are_byte_identical_to_the_single_gpu_site() {
        let table = snapshot_table(Layout::Dsm, 200_000);
        let query = bucket_query();
        let single = GpuOlapEngine::new(GpuDevice::new(GpuSpec::gtx_980()), DataPlacement::Host(AccessMode::Uva));
        let h = single.register_table(&table, "t").unwrap();
        let reference = single.execute(h, &table, &query).unwrap();
        for n in 1..=5 {
            let multi = MultiGpuOlapEngine::new(mix(n), DataPlacement::Host(AccessMode::Uva)).unwrap();
            let mh = multi.register_table(&table, "t").unwrap();
            let out = multi.execute(mh, &table, &query).unwrap();
            assert_eq!(out.value.to_bits(), reference.value.to_bits(), "{n} devices");
            assert_eq!(out.qualifying_rows, reference.qualifying_rows);
            assert_eq!(out.site, OlapTarget::MultiGpu);
        }
    }

    #[test]
    fn more_devices_cut_the_critical_path() {
        let table = snapshot_table(Layout::Dsm, 500_000);
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 2]));
        let time = |n: usize| {
            let devices = (0..n).map(|_| GpuDevice::new(GpuSpec::gtx_980())).collect();
            let eng = MultiGpuOlapEngine::new(devices, DataPlacement::DeviceResident).unwrap();
            let h = eng.register_table(&table, "t").unwrap();
            eng.execute(h, &table, &query).unwrap().time.as_secs_f64()
        };
        let one = time(1);
        let four = time(4);
        assert!(four < one * 0.6, "4 devices {four} should substantially beat 1 device {one}");
    }

    #[test]
    fn a_slow_generation_bounds_the_mix() {
        let table = snapshot_table(Layout::Dsm, 500_000);
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 2]));
        let time = |specs: Vec<GpuSpec>| {
            let eng = MultiGpuOlapEngine::from_specs(specs, DataPlacement::DeviceResident).unwrap();
            let h = eng.register_table(&table, "t").unwrap();
            eng.execute(h, &table, &query).unwrap().time.as_secs_f64()
        };
        let fast_pair = time(vec![GpuSpec::gtx_980_ti(), GpuSpec::gtx_980_ti()]);
        let mixed_pair = time(vec![GpuSpec::gtx_980_ti(), GpuSpec::gtx_580()]);
        assert!(mixed_pair > fast_pair, "the GTX 580 shard must bound the mix: {mixed_pair} vs {fast_pair}");
    }

    #[test]
    fn failed_registration_frees_partial_allocations_on_every_device() {
        let table = snapshot_table(Layout::Dsm, 400_000); // > 2 chunks, ~8 MB
        let mut small = GpuSpec::gtx_980();
        small.mem_capacity_mib = 1; // second device cannot hold its shard
        let devices = vec![GpuDevice::new(GpuSpec::gtx_980()), GpuDevice::new(small)];
        let eng = MultiGpuOlapEngine::new(devices, DataPlacement::DeviceResident).unwrap();
        assert!(eng.register_table(&table, "t").is_err());
        for (d, used) in eng.device_used_bytes().iter().enumerate() {
            assert_eq!(*used, 0, "device {d} must not strand shard buffers");
        }
    }

    #[test]
    fn free_device_bytes_is_the_min_across_the_mix() {
        let mut small = GpuSpec::gtx_980();
        small.mem_capacity_mib = 64;
        let devices = vec![GpuDevice::new(GpuSpec::gtx_980()), GpuDevice::new(small)];
        let eng = MultiGpuOlapEngine::new(devices, DataPlacement::DeviceResident).unwrap();
        assert_eq!(ExecutionSite::free_device_bytes(&eng), Some(64 * 1024 * 1024));
        match ExecutionSite::capability(&eng) {
            SiteCapability::Gpu { target, devices } => {
                assert_eq!(target, OlapTarget::MultiGpu);
                assert_eq!(devices.len(), 2);
                assert!(devices.iter().all(|d| (d.shard_fraction - 0.5).abs() < 1e-12));
                assert_eq!(devices[1].free_bytes, Some(64 * 1024 * 1024));
            }
            other => panic!("multi-GPU capability must be a GPU site: {other:?}"),
        }
    }

    #[test]
    fn join_plans_match_the_single_gpu_site_byte_for_byte() {
        let probe = snapshot_table(Layout::Dsm, 150_000);
        let db = Database::new(1);
        let schema = Schema::new(vec![
            h2tap_common::Attribute::new("key", AttrType::Int64),
            h2tap_common::Attribute::new("size", AttrType::Int32),
            h2tap_common::Attribute::new("brand", AttrType::Int32),
        ])
        .unwrap();
        let t = db.create_table("dim", schema, Layout::Dsm).unwrap();
        for i in 0..10i64 {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int32(i as i32), Value::Int32((i % 3) as i32)])
                .unwrap();
        }
        let build = db.snapshot().table(t).unwrap().clone();
        let plan = OlapPlan {
            predicates: vec![],
            join: Some(h2tap_common::JoinSpec {
                probe_column: 1,
                build_key: 0,
                build_predicates: vec![Predicate::between(1, 0.0, 4.0)],
            }),
            group_by: Some(PlanColumn::Build(2)),
            aggregates: vec![AggExpr::SumProduct(1, 2), AggExpr::Count],
        };
        let single = GpuOlapEngine::new(GpuDevice::new(GpuSpec::gtx_980()), DataPlacement::Host(AccessMode::Uva));
        let ph = single.register_table(&probe, "fact").unwrap();
        let bh = single.register_table(&build, "dim").unwrap();
        let reference = single.execute_plan(ph, &probe, Some((bh, &build)), &plan).unwrap();
        for n in [2usize, 3, 5] {
            let multi = MultiGpuOlapEngine::new(mix(n), DataPlacement::Host(AccessMode::Uva)).unwrap();
            let mph = multi.register_table(&probe, "fact").unwrap();
            let mbh = multi.register_table(&build, "dim").unwrap();
            let out = multi.execute_plan(mph, &probe, Some((mbh, &build)), &plan).unwrap();
            assert_eq!(out.groups, reference.groups, "{n} devices");
            assert_eq!(out.qualifying_rows, reference.qualifying_rows);
        }
    }

    #[test]
    fn idle_devices_do_not_reserve_hash_replicas() {
        // All probe work lands on device 0 (one-chunk probe table); device 1
        // only holds a build shard and is too small for the full hash
        // replica (70k entries x 16 B > 1 MiB). The plan must still run: a
        // device that never probes the replica must not reserve it — an
        // idle low-memory card cannot OOM a plan it does no work for.
        let probe = snapshot_table(Layout::Dsm, 1_000);
        let db = Database::new(1);
        let schema = Schema::new(vec![
            h2tap_common::Attribute::new("key", AttrType::Int64),
            h2tap_common::Attribute::new("size", AttrType::Int32),
            h2tap_common::Attribute::new("brand", AttrType::Int32),
        ])
        .unwrap();
        let t = db.create_table("dim", schema, Layout::Dsm).unwrap();
        for i in 0..70_000i64 {
            db.insert(
                PartitionId(0),
                t,
                &[Value::Int64(i), Value::Int32((i % 5) as i32), Value::Int32((i % 3) as i32)],
            )
            .unwrap();
        }
        let build = db.snapshot().table(t).unwrap().clone();
        let mut tiny = GpuSpec::gtx_980();
        tiny.mem_capacity_mib = 1;
        let eng = MultiGpuOlapEngine::new(
            vec![GpuDevice::new(GpuSpec::gtx_980()), GpuDevice::new(tiny)],
            DataPlacement::DeviceResident,
        )
        .unwrap();
        let ph = eng.register_table(&probe, "fact").unwrap();
        let bh = eng.register_table(&build, "dim").unwrap();
        let plan = OlapPlan {
            predicates: vec![],
            join: Some(h2tap_common::JoinSpec { probe_column: 1, build_key: 0, build_predicates: vec![] }),
            group_by: Some(PlanColumn::Build(2)),
            aggregates: vec![AggExpr::Count],
        };
        let out = eng.execute_plan(ph, &probe, Some((bh, &build)), &plan).unwrap();
        assert_eq!(out.qualifying_rows, 1_000, "every probe row joins a unique build key");
    }

    #[test]
    fn plan_scratch_is_freed_on_every_device() {
        let probe = snapshot_table(Layout::Dsm, 150_000);
        let eng = MultiGpuOlapEngine::new(
            vec![GpuDevice::new(GpuSpec::gtx_980()), GpuDevice::new(GpuSpec::gtx_980())],
            DataPlacement::DeviceResident,
        )
        .unwrap();
        let h = eng.register_table(&probe, "t").unwrap();
        let before = eng.device_used_bytes();
        let plan = OlapPlan {
            predicates: vec![Predicate::between(1, 0.0, 4.0)],
            join: None,
            group_by: Some(PlanColumn::Probe(1)),
            aggregates: vec![AggExpr::SumColumns(vec![2])],
        };
        eng.execute_plan(h, &probe, None, &plan).unwrap();
        let after = eng.device_used_bytes();
        assert_eq!(before, after, "group arenas must be freed on every device");
        eng.unregister_table(h);
        assert!(eng.device_used_bytes().iter().all(|&used| used == 0));
    }

    #[test]
    fn empty_tables_are_rejected_like_every_other_site() {
        let table = snapshot_table(Layout::Dsm, 0);
        let eng = MultiGpuOlapEngine::new(mix(2), DataPlacement::Host(AccessMode::Uva)).unwrap();
        let h = eng.register_table(&table, "t").unwrap();
        assert!(eng.execute(h, &table, &bucket_query()).is_err());
    }

    #[test]
    fn a_site_needs_at_least_one_device() {
        assert!(MultiGpuOlapEngine::new(Vec::new(), DataPlacement::DeviceResident).is_err());
    }
}
