//! Caldera's OLAP runtime: analytical queries on the data-parallel
//! archipelago.
//!
//! Analytical queries always run against an immutable [`h2tap_storage::Snapshot`]
//! on one of the [`site::ExecutionSite`]s: kernel-at-a-time on the simulated
//! GPU ([`engine::GpuOlapEngine`]), vectorised-scan on the archipelago's
//! CPU cores ([`cpu::CpuOlapEngine`]), or chunk-sharded across a device mix
//! ([`multi_gpu::MultiGpuOlapEngine`]). The engine picks the site per query
//! with [`h2tap_scheduler::place_olap_query_sites`] from live placement
//! hints and the capabilities the sites enumerate.
//! Users trade freshness for performance by choosing how many queries share
//! one snapshot ([`policy::SnapshotPolicy`]), which is the knob behind
//! Figures 5-7 of the paper.

pub mod cache;
pub mod cpu;
pub mod engine;
pub mod multi_gpu;
pub mod operators;
pub mod policy;
mod pool;
mod simd;
pub mod site;

pub use cache::PlanDataCache;
pub use cpu::{CpuOlapEngine, CpuOlapResult, CpuPlanResult, CpuScanProfile, CpuSpec};
pub use engine::{DataPlacement, GpuOlapEngine, OlapOutcome, PlanOutcome, RegisteredTable};
pub use multi_gpu::{shard_chunk_indexes, shard_rows, MultiGpuOlapEngine};
pub use operators::{merge_scan_partials, JoinHashTable, MaterializedColumns, ScanChunkPartial, VECTOR_BATCH_ROWS};
pub use policy::SnapshotPolicy;
pub use site::ExecutionSite;
