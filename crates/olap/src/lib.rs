//! Caldera's OLAP runtime: analytical queries on the data-parallel
//! archipelago.
//!
//! Analytical queries always run against an immutable [`h2tap_storage::Snapshot`]
//! and are executed kernel-at-a-time on the simulated GPU
//! ([`engine::GpuOlapEngine`]). Users trade freshness for performance by
//! choosing how many queries share one snapshot ([`policy::SnapshotPolicy`]),
//! which is the knob behind Figures 5-7 of the paper.

pub mod engine;
pub mod policy;

pub use engine::{DataPlacement, GpuOlapEngine, OlapOutcome, RegisteredTable};
pub use policy::SnapshotPolicy;
