//! Caldera's OLAP runtime: analytical queries on the data-parallel
//! archipelago.
//!
//! Analytical queries always run against an immutable [`h2tap_storage::Snapshot`]
//! on one of two [`site::ExecutionSite`]s: kernel-at-a-time on the simulated
//! GPU ([`engine::GpuOlapEngine`]) or vectorised-scan on the archipelago's
//! CPU cores ([`cpu::CpuOlapEngine`]). The engine picks the site per query
//! with [`h2tap_scheduler::place_olap_query`] from live placement hints.
//! Users trade freshness for performance by choosing how many queries share
//! one snapshot ([`policy::SnapshotPolicy`]), which is the knob behind
//! Figures 5-7 of the paper.

pub mod cpu;
pub mod engine;
pub mod operators;
pub mod policy;
pub mod site;

pub use cpu::{CpuOlapEngine, CpuOlapResult, CpuPlanResult, CpuScanProfile, CpuSpec};
pub use engine::{DataPlacement, GpuOlapEngine, OlapOutcome, PlanOutcome, RegisteredTable};
pub use operators::{JoinHashTable, MaterializedColumns};
pub use policy::SnapshotPolicy;
pub use site::ExecutionSite;
