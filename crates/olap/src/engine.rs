//! The GPU OLAP executor: kernel-at-a-time query execution over snapshots.
//!
//! "Each database operator is implemented as a collection of data-parallel
//! primitives, where each primitive is an individual CUDA kernel. OLAP
//! queries are executed by a dedicated CPU thread that executes each database
//! operator by executing the corresponding CUDA kernels one at a time while
//! using UVA to store all input, intermediate, and output data."
//!
//! [`GpuOlapEngine`] follows that model: a [`ScanAggQuery`] becomes one
//! selection kernel per predicate (each producing/consuming a selection
//! bitmap) followed by one aggregation kernel. Every kernel computes its real
//! answer on the host while its cost is charged to the [`GpuDevice`] model
//! according to the table's layout (coalesced for DSM/PAX, strided for NSM)
//! and the configured access mode (memcpy / UVA / UM / device-resident).

use crate::cache::PlanDataCache;
use crate::operators::{self, ChunkPartial};
use crate::site::{emit_execution_spans, ExecutionSite};
use h2tap_common::{
    ExecBreakdown, GroupRow, H2Error, OlapPlan, PlanColumn, Result, ScanAggQuery, SimDuration, HASH_ENTRY_BYTES,
};
use h2tap_gpu_sim::{
    AccessMode, AccessPattern, BufferId, GpuDevice, KernelDesc, KernelMetrics, MemoryManager, Residency,
    TransferDirection,
};
use h2tap_obs::Tracer;
use h2tap_scheduler::{GpuDeviceCapability, OlapTarget, SiteCapability};
use h2tap_storage::{Layout, SnapshotTable};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Where the engine keeps table data relative to the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlacement {
    /// Data stays in host shared memory and is accessed with the given mode
    /// (the H2TAP design point; UVA is what the Caldera prototype uses).
    Host(AccessMode),
    /// Data is copied into device memory ahead of time (the Figure 11
    /// configuration).
    DeviceResident,
}

/// Result of one analytical query execution.
#[derive(Debug, Clone)]
pub struct OlapOutcome {
    /// The aggregate value (exact, computed over the real data).
    pub value: f64,
    /// Number of records satisfying all predicates.
    pub qualifying_rows: u64,
    /// Simulated execution time (kernels plus any explicit transfers).
    pub time: SimDuration,
    /// Per-kernel metrics, in launch order (empty for sites that do not
    /// launch kernels, such as the CPU scan engine).
    pub kernels: Vec<KernelMetrics>,
    /// Bytes moved over the host-device interconnect.
    pub interconnect_bytes: u64,
    /// How the simulated time splits into the cost model's terms (streaming,
    /// compute, fixed overhead) — the signal the placement calibrator fits
    /// its per-term constants against.
    pub breakdown: ExecBreakdown,
    /// The execution site that answered the query.
    pub site: OlapTarget,
}

/// Result of one relational-plan execution: per-group aggregates plus the
/// site's simulated cost.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// Result groups in ascending raw-key order (one global group with key 0
    /// for plans without `group_by`). Byte-identical across sites.
    pub groups: Vec<GroupRow>,
    /// Rows that reached the aggregation (post filter and join).
    pub qualifying_rows: u64,
    /// Whether the plan had a `group_by` (a grouped result with one group
    /// whose key happens to be 0 is otherwise indistinguishable from the
    /// global group of a scan-style plan).
    pub grouped: bool,
    /// Simulated execution time (kernels plus any explicit transfers).
    pub time: SimDuration,
    /// Per-kernel metrics in launch order (empty for the CPU site).
    pub kernels: Vec<KernelMetrics>,
    /// Bytes moved over the host-device interconnect.
    pub interconnect_bytes: u64,
    /// How the simulated time splits into the cost model's terms.
    pub breakdown: ExecBreakdown,
    /// The execution site that answered the plan.
    pub site: OlapTarget,
}

impl PlanOutcome {
    /// The group with the given raw key cell, if present.
    pub fn group(&self, key: u64) -> Option<&GroupRow> {
        self.groups.iter().find(|g| g.key == key)
    }

    /// First aggregate of the single global group — the scan-plan
    /// equivalent of [`OlapOutcome::value`]. Plans without `group_by` always
    /// produce exactly one global group (zeroed when nothing qualified), so
    /// this is `Some` for them; `None` when the plan grouped (including a
    /// grouped result that happens to be empty).
    pub fn single_value(&self) -> Option<f64> {
        if self.grouped {
            return None;
        }
        match self.groups.as_slice() {
            [g] if g.key == 0 => g.values.first().copied(),
            _ => None,
        }
    }
}

/// Accumulates one registered buffer's `(total, device-resident)` bytes —
/// the residency arithmetic every GPU-family site shares for its
/// UnifiedMemory accounting, factored out so the sites' residency hints
/// cannot silently diverge.
pub(crate) fn accumulate_residency(mem: &MemoryManager, id: BufferId, total: &mut u64, resident: &mut u64) {
    let Ok(info) = mem.info(id) else { return };
    *total += info.bytes;
    *resident += match info.residency {
        Residency::Device => info.bytes,
        Residency::HostUm { resident_pages, .. } => (resident_pages * mem.page_bytes()).min(info.bytes),
        Residency::HostUva => 0,
    };
}

/// The device model plus the registration maps it owns — everything one
/// kernel charge or buffer (de)allocation mutates, behind one short-lived
/// lock. Execution holds this lock only while *charging* simulated kernels
/// (microseconds of bookkeeping); the host-side data path — the real
/// wall-clock work — runs between lock sessions so concurrent queries
/// overlap.
struct GpuSiteState {
    device: GpuDevice,
    /// Registered column buffers: (table tag, attr) -> buffer.
    buffers: BTreeMap<(usize, usize), BufferId>,
    /// Registered whole-table buffers for NSM tables: table tag -> buffer.
    nsm_buffers: BTreeMap<usize, BufferId>,
}

impl GpuSiteState {
    fn register_bytes(&mut self, placement: DataPlacement, label: &str, bytes: u64) -> Result<BufferId> {
        match placement {
            DataPlacement::Host(mode) => self.device.register_buffer(label, bytes, mode),
            DataPlacement::DeviceResident => self.device.register_device_buffer(label, bytes),
        }
    }

    /// The buffer and access pattern a kernel uses to read `attr` of `table`.
    fn read_plan(
        &self,
        handle: RegisteredTable,
        table: &SnapshotTable,
        attr: usize,
    ) -> Result<(BufferId, u64, AccessPattern)> {
        let rows = table.row_count();
        let width = table.schema.attr(attr)?.ty.width() as u64;
        match table.layout {
            Layout::Nsm => {
                let buffer = *self
                    .nsm_buffers
                    .get(&handle.tag)
                    .ok_or_else(|| H2Error::InvalidKernel("table not registered".into()))?;
                let pattern = AccessPattern::Strided {
                    stride_bytes: table.schema.record_width() as u32,
                    elem_bytes: width as u32,
                };
                Ok((buffer, rows * width, pattern))
            }
            Layout::Dsm => {
                let buffer = *self
                    .buffers
                    .get(&(handle.tag, attr))
                    .ok_or_else(|| H2Error::InvalidKernel("column not registered".into()))?;
                Ok((buffer, rows * width, AccessPattern::Sequential))
            }
            Layout::Pax { .. } => {
                let buffer = *self
                    .buffers
                    .get(&(handle.tag, attr))
                    .ok_or_else(|| H2Error::InvalidKernel("column not registered".into()))?;
                // Minipages coalesce like DSM but pay a small page-interleave
                // overhead, modelled as 3% extra traffic.
                Ok((buffer, rows * width * 103 / 100, AccessPattern::Sequential))
            }
        }
    }
}

/// Kernel-at-a-time OLAP executor bound to one simulated GPU.
///
/// Concurrent: the device model and registration maps live behind one
/// mutex ([`GpuSiteState`]), held only across kernel-charge bookkeeping;
/// the host-side data path runs between lock sessions (see
/// [`GpuOlapEngine::execute_plan`]).
pub struct GpuOlapEngine {
    placement: DataPlacement,
    dev: Mutex<GpuSiteState>,
    /// Monotonic tag generator for registered tables.
    next_tag: AtomicUsize,
    /// Snapshot-keyed plan-data cache for the host-side data path (shared
    /// across all sites when built into an engine, private otherwise).
    cache: PlanDataCache,
    /// Shared trace handle (disabled no-op until the engine installs one).
    tracer: Tracer,
}

/// Handle to a table registered with an execution site. Opaque to callers;
/// handles are only meaningful to the site that vended them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisteredTable {
    tag: usize,
    /// Whether the data had to be copied to the device explicitly (memcpy
    /// placement); the copy cost is charged per query batch by `execute`.
    explicit_copy: bool,
}

impl RegisteredTable {
    /// Handle vended by the CPU site (which never copies explicitly).
    pub(crate) fn cpu(tag: usize) -> Self {
        Self { tag, explicit_copy: false }
    }

    /// Handle vended by a GPU-family site with the given copy policy.
    pub(crate) fn site(tag: usize, explicit_copy: bool) -> Self {
        Self { tag, explicit_copy }
    }

    /// The site-local registration tag.
    pub(crate) fn tag(&self) -> usize {
        self.tag
    }

    /// Whether the vending site pays an explicit host-to-device copy per
    /// query batch (memcpy placement).
    pub(crate) fn explicit_copy(&self) -> bool {
        self.explicit_copy
    }
}

impl GpuOlapEngine {
    /// Creates an executor on `device` with the given data placement.
    pub fn new(device: GpuDevice, placement: DataPlacement) -> Self {
        Self {
            placement,
            dev: Mutex::new(GpuSiteState { device, buffers: BTreeMap::new(), nsm_buffers: BTreeMap::new() }),
            next_tag: AtomicUsize::new(0),
            cache: PlanDataCache::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// The configured placement.
    pub fn placement(&self) -> DataPlacement {
        self.placement
    }

    /// Bytes currently allocated on the simulated device (registered tables
    /// plus any live scratch).
    pub fn device_used_bytes(&self) -> u64 {
        self.dev.lock().device.memory().used_bytes()
    }

    /// Registers the columns of `table` with the device according to the
    /// placement policy. Must be called once per snapshot table before
    /// queries run against it. Registration is all-or-nothing: if any column
    /// fails (device out of memory), the columns registered so far are freed
    /// again — callers retry on every OOM fallback, so a partial
    /// registration must not keep eating capacity until the next snapshot
    /// refresh.
    pub fn register_table(&self, table: &SnapshotTable, label: &str) -> Result<RegisteredTable> {
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let rows = table.row_count();
        let arity = table.schema.arity();
        let explicit_copy = matches!(self.placement, DataPlacement::Host(AccessMode::Memcpy));
        let mut state = self.dev.lock();
        match table.layout {
            Layout::Nsm => {
                // Row-major storage is one big buffer; kernels stride over it.
                let bytes = rows * table.schema.record_width() as u64;
                let id = state.register_bytes(self.placement, &format!("{label}.rows"), bytes)?;
                state.nsm_buffers.insert(tag, id);
            }
            Layout::Dsm | Layout::Pax { .. } => {
                for attr in 0..arity {
                    let registered = table.schema.attr(attr).map(|a| a.ty.width() as u64).and_then(|width| {
                        state.register_bytes(self.placement, &format!("{label}.col{attr}"), rows * width)
                    });
                    match registered {
                        Ok(id) => {
                            state.buffers.insert((tag, attr), id);
                        }
                        Err(err) => {
                            for a in 0..attr {
                                if let Some(id) = state.buffers.remove(&(tag, a)) {
                                    // h2tap: allow(error_swallow) — rollback of a failed registration: the original allocation error is the one to surface, not a secondary free failure.
                                    let _ = state.device.memory_mut().free(id);
                                }
                            }
                            return Err(err);
                        }
                    }
                }
            }
        }
        Ok(RegisteredTable { tag, explicit_copy })
    }

    /// Frees every registered buffer (device memory and UM residency) so a
    /// new snapshot's tables can be registered without leaking the old ones.
    pub fn reset_tables(&self) {
        let mut state = self.dev.lock();
        for (_, id) in std::mem::take(&mut state.buffers) {
            // h2tap: allow(error_swallow) — teardown: every id comes from the live registration map and a failed free is unactionable mid-reset.
            let _ = state.device.memory_mut().free(id);
        }
        for (_, id) in std::mem::take(&mut state.nsm_buffers) {
            // h2tap: allow(error_swallow) — teardown: every id comes from the live registration map and a failed free is unactionable mid-reset.
            let _ = state.device.memory_mut().free(id);
        }
    }

    /// Frees the buffers of one registered table (see
    /// [`ExecutionSite::unregister_table`]).
    pub fn unregister_table(&self, handle: RegisteredTable) {
        let mut state = self.dev.lock();
        if let Some(id) = state.nsm_buffers.remove(&handle.tag) {
            // h2tap: allow(error_swallow) — unregister is best-effort: the id was minted by register_table and a failed free has no caller-visible remedy.
            let _ = state.device.memory_mut().free(id);
        }
        let cols: Vec<(usize, usize)> = state.buffers.keys().filter(|(tag, _)| *tag == handle.tag).copied().collect();
        for key in cols {
            if let Some(id) = state.buffers.remove(&key) {
                // h2tap: allow(error_swallow) — unregister is best-effort: the id was minted by register_table and a failed free has no caller-visible remedy.
                let _ = state.device.memory_mut().free(id);
            }
        }
    }

    /// Executes `query` against a registered snapshot table: one selection
    /// kernel per predicate (each producing a selection bitmap) followed by
    /// one aggregation kernel, each charged to the device model. The real
    /// answer is computed on the host through the shared chunked scan path
    /// ([`operators::scan_chunk`] over fixed [`h2tap_common::PLAN_CHUNK_ROWS`]
    /// chunks, merged in ascending chunk order), so `ScanAggQuery` f64
    /// answers are **byte-identical** to the CPU site's for the same
    /// snapshot — the same contract relational plans already have.
    pub fn execute(&self, handle: RegisteredTable, table: &SnapshotTable, query: &ScanAggQuery) -> Result<OlapOutcome> {
        let rows = table.row_count();
        if rows == 0 {
            return Err(H2Error::InvalidKernel("cannot execute a query over an empty table".into()));
        }
        let mut kernels = Vec::new();
        let mut total = SimDuration::ZERO;
        let mut interconnect_bytes = 0u64;
        let mut breakdown = ExecBreakdown::default();

        // Every kernel of a scan is row-count-dependent, so the whole charge
        // pass runs in one device-lock session, *before* the host compute.
        let mut state = self.dev.lock();

        // Explicit-copy placement pays the host-to-device transfer of every
        // accessed column before the first kernel (the "memcpy" bars of
        // Figure 1).
        if handle.explicit_copy {
            let mut bytes = 0u64;
            for &attr in &query.columns_accessed() {
                let width = table.schema.attr(attr)?.ty.width() as u64;
                bytes += match table.layout {
                    Layout::Nsm => rows * table.schema.record_width() as u64 / query.columns_accessed().len() as u64,
                    _ => rows * width,
                };
            }
            let copy = state.device.memcpy(bytes, TransferDirection::HostToDevice);
            total += copy;
            breakdown.stream_secs += copy.as_secs_f64();
            interconnect_bytes += bytes;
        }

        let mut charge = |device: &mut GpuDevice, desc: &KernelDesc| -> Result<()> {
            let metrics = device.account(desc)?;
            total += metrics.time;
            interconnect_bytes += metrics.interconnect_bytes;
            // Launch latency is the fixed dispatch cost; everything else in
            // the launch is data movement (or compute hidden behind it).
            breakdown.overhead_secs += metrics.launch_overhead.as_secs_f64();
            breakdown.stream_secs += metrics.time.saturating_sub(metrics.launch_overhead).as_secs_f64();
            breakdown.compute_secs += metrics.compute_time.as_secs_f64();
            kernels.push(metrics);
            Ok(())
        };

        // Selection kernels: one per predicate, producing a selection bitmap.
        for (i, pred) in query.predicates.iter().enumerate() {
            let (buffer, useful, pattern) = state.read_plan(handle, table, pred.column)?;
            let desc = KernelDesc::new(format!("select_{i}"), rows)
                .flops_per_element(2.0)
                .read(buffer, useful, pattern)
                // The bitmap write (1 bit per row, byte-packed here).
                .write(rows.div_ceil(8));
            charge(&mut state.device, &desc)?;
        }

        // Aggregation kernel.
        let agg_cols = query.aggregate.columns();
        let mut desc = KernelDesc::new("aggregate", rows).flops_per_element(1.0 + agg_cols.len() as f64);
        for &attr in &agg_cols {
            let (buffer, useful, pattern) = state.read_plan(handle, table, attr)?;
            desc = desc.read(buffer, useful, pattern);
        }
        if !query.predicates.is_empty() {
            // The aggregation kernel also streams the selection bitmap.
            desc = desc.flops_per_element(2.0 + agg_cols.len() as f64);
        }
        desc = desc.write(8);
        charge(&mut state.device, &desc)?;
        drop(state);

        // Host-side data path, shared with the CPU site: same chunking, same
        // per-chunk row order, same merge order — bit-equal answers. The
        // materialised columns come from the shared plan-data cache, so a
        // repeat of this query (on any site) skips the re-materialisation.
        // Runs with the device lock *released*: this is the real wall-clock
        // work, and concurrent queries must overlap here.
        let mat = self.cache.materialized(table, query.columns_accessed())?;
        let partials = (0..mat.chunk_count()).map(|i| operators::scan_chunk(&mat, query, mat.chunk_range(i)));
        let (value, qualifying_rows) = operators::merge_scan_partials(partials);

        // Explicit-copy placement copies the (tiny) result back.
        if handle.explicit_copy {
            let copy = self.dev.lock().device.memcpy(8, TransferDirection::DeviceToHost);
            total += copy;
            breakdown.stream_secs += copy.as_secs_f64();
        }

        Ok(OlapOutcome {
            value,
            qualifying_rows,
            time: total,
            kernels,
            interconnect_bytes,
            breakdown,
            site: OlapTarget::Gpu,
        })
    }

    /// Executes a relational plan kernel-at-a-time: selection kernels over
    /// the probe predicates, a hash-build kernel over the (filtered) build
    /// table, a hash-probe kernel whose table lookups are data-dependent
    /// [`AccessPattern::Random`] reads — the pattern whose coalescing penalty
    /// separates plan placement from scan placement — and per-chunk partial
    /// aggregation plus a merge kernel. The hash table and the partial-group
    /// arena are registered as scratch buffers under the engine's data
    /// placement (the Caldera prototype keeps "all input, intermediate, and
    /// output data" in UVA), so under host placement every probe crosses the
    /// interconnect while device-resident placement pays only the capped
    /// device-transaction waste.
    ///
    /// The real answer is computed on the host through the shared
    /// [`operators`] data path (fixed chunking, chunk-ordered merge), so the
    /// groups are byte-identical to the CPU site's.
    pub fn execute_plan(
        &self,
        probe: RegisteredTable,
        probe_table: &SnapshotTable,
        build: Option<(RegisteredTable, &SnapshotTable)>,
        plan: &OlapPlan,
    ) -> Result<PlanOutcome> {
        let mut scratch: Vec<BufferId> = Vec::new();
        let result = self.execute_plan_inner(probe, probe_table, build, plan, &mut scratch);
        // Scratch (hash table, partial-group arena) lives only for the query;
        // free it even on error so an OOM mid-plan does not leak capacity.
        let mut state = self.dev.lock();
        for id in scratch {
            // h2tap: allow(error_swallow) — scratch cleanup must not mask the query result (including a mid-plan OOM) with a secondary free failure.
            let _ = state.device.memory_mut().free(id);
        }
        drop(state);
        result
    }

    fn execute_plan_inner(
        &self,
        probe: RegisteredTable,
        probe_table: &SnapshotTable,
        build: Option<(RegisteredTable, &SnapshotTable)>,
        plan: &OlapPlan,
        scratch: &mut Vec<BufferId>,
    ) -> Result<PlanOutcome> {
        operators::check_plan(plan, build.is_some())?;
        let rows = probe_table.row_count();

        let mut kernels = Vec::new();
        let mut total = SimDuration::ZERO;
        let mut interconnect_bytes = 0u64;
        let mut breakdown = ExecBreakdown::default();

        // ---- Device-lock session 1: everything row-count-dependent. ----
        let mut state = self.dev.lock();

        // Reserve the join's hash scratch up front at its worst-case size
        // (one entry per build row — the same bound the placement heuristic
        // uses): an out-of-memory device fails here, *before* the host-side
        // join is computed, so the dispatch-level CPU fallback does not pay
        // for the work twice.
        let hash_buf = match build {
            Some((_, build_table)) if plan.join.is_some() => {
                let bytes = plan.hash_table_bytes(build_table.row_count()).max(HASH_ENTRY_BYTES);
                let id = state.register_bytes(self.placement, "plan.hash", bytes)?;
                scratch.push(id);
                Some((id, bytes))
            }
            _ => None,
        };

        // Explicit-copy placement pays the host-to-device transfer of every
        // accessed column of both tables before the first kernel.
        if probe.explicit_copy {
            let bytes = plan.probe_scan_bytes(&probe_table.schema, rows);
            let copy = state.device.memcpy(bytes, TransferDirection::HostToDevice);
            total += copy;
            breakdown.stream_secs += copy.as_secs_f64();
            interconnect_bytes += bytes;
        }
        if let Some((build_handle, build_table)) = build {
            if build_handle.explicit_copy {
                let bytes = plan.build_scan_bytes(&build_table.schema, build_table.row_count());
                let copy = state.device.memcpy(bytes, TransferDirection::HostToDevice);
                total += copy;
                breakdown.stream_secs += copy.as_secs_f64();
                interconnect_bytes += bytes;
            }
        }

        let mut charge = |device: &mut GpuDevice, desc: &KernelDesc| -> Result<()> {
            let metrics = device.account(desc)?;
            total += metrics.time;
            interconnect_bytes += metrics.interconnect_bytes;
            breakdown.overhead_secs += metrics.launch_overhead.as_secs_f64();
            breakdown.stream_secs += metrics.time.saturating_sub(metrics.launch_overhead).as_secs_f64();
            breakdown.compute_secs += metrics.compute_time.as_secs_f64();
            kernels.push(metrics);
            Ok(())
        };

        // Selection kernels: one per probe predicate, producing a bitmap.
        for (i, pred) in plan.predicates.iter().enumerate() {
            let (buffer, useful, pattern) = state.read_plan(probe, probe_table, pred.column)?;
            let desc = KernelDesc::new(format!("select_{i}"), rows)
                .flops_per_element(2.0)
                .read(buffer, useful, pattern)
                .write(rows.div_ceil(8));
            charge(&mut state.device, &desc)?;
        }

        // Hash build: its cost depends only on the build side's row count,
        // so it charges before the host compute too.
        if let (Some(_), Some((build_handle, build_table)), Some((_, hash_bytes))) = (&plan.join, build, hash_buf) {
            let build_rows = build_table.row_count();
            let mut desc = KernelDesc::new("hash_build", build_rows).flops_per_element(4.0).write(hash_bytes);
            for &attr in &plan.build_columns_accessed() {
                let (buffer, useful, pattern) = state.read_plan(build_handle, build_table, attr)?;
                desc = desc.read(buffer, useful, pattern);
            }
            charge(&mut state.device, &desc)?;
        }
        drop(state);

        // Host-side data path, shared with the CPU site so results are
        // byte-identical: materialise, build the hash table, evaluate the
        // fixed-size chunks in ascending order, merge in chunk order. The
        // kernels around it charge the simulated cost of this same pipeline.
        // Runs with the device lock *released*: this is the real wall-clock
        // work, and concurrent queries must overlap here.
        let operators::PlanData { mat, hash } = self.cache.prepare_plan(probe_table, build.map(|(_, t)| t), plan)?;
        let partials: Vec<ChunkPartial> = (0..mat.chunk_count())
            .map(|i| operators::process_chunk(&mat, plan, hash.as_deref(), mat.chunk_range(i)))
            .collect();
        let (groups, totals) = operators::merge_partials(plan, partials);
        let n_chunks = mat.chunk_count() as u64;
        let n_groups = groups.len().max(1) as u64;
        // One group slot holds the key, one f64 per aggregate, and the count.
        let group_entry_bytes = (2 + plan.aggregates.len() as u64) * 8;

        // ---- Device-lock session 2: everything selectivity-dependent. ----
        let mut state = self.dev.lock();

        // Hash probe: one data-dependent gather per *selected* row.
        if let (Some(join), Some(_), Some((hash_buf, _))) = (&plan.join, build, hash_buf) {
            let (key_buf, key_useful, key_pattern) = state.read_plan(probe, probe_table, join.probe_column)?;
            let probe_desc = KernelDesc::new("hash_probe", rows)
                .flops_per_element(6.0)
                .read(key_buf, key_useful, key_pattern)
                .read(
                    hash_buf,
                    totals.selected * HASH_ENTRY_BYTES,
                    AccessPattern::Random { elem_bytes: HASH_ENTRY_BYTES as u32 },
                )
                .write(rows.div_ceil(8));
            charge(&mut state.device, &probe_desc)?;
        }

        // Partial aggregation: every surviving row updates its group's
        // accumulators. With a real group-by the accumulator slot is
        // data-dependent (random); the global aggregate of a plain scan stays
        // in registers. Partials land in a per-chunk arena that the merge
        // kernel folds in chunk order.
        let arena_buf = state.register_bytes(self.placement, "plan.groups", n_chunks * n_groups * group_entry_bytes)?;
        scratch.push(arena_buf);
        let mut agg_desc = KernelDesc::new("partial_aggregate", rows)
            .flops_per_element(2.0 + plan.aggregates.len() as f64)
            .write(n_chunks * n_groups * group_entry_bytes);
        let mut agg_cols: Vec<usize> = plan.aggregates.iter().flat_map(|a| a.columns()).collect();
        if let Some(PlanColumn::Probe(c)) = plan.group_by {
            agg_cols.push(c);
        }
        agg_cols.sort_unstable();
        agg_cols.dedup();
        for &attr in &agg_cols {
            let (buffer, useful, pattern) = state.read_plan(probe, probe_table, attr)?;
            agg_desc = agg_desc.read(buffer, useful, pattern);
        }
        if plan.group_by.is_some() {
            agg_desc = agg_desc.read(
                arena_buf,
                totals.joined * group_entry_bytes,
                AccessPattern::Random { elem_bytes: group_entry_bytes as u32 },
            );
        }
        charge(&mut state.device, &agg_desc)?;

        let merge_desc = KernelDesc::new("merge_groups", (n_chunks * n_groups).max(1))
            .flops_per_element(1.0 + plan.aggregates.len() as f64)
            .read(arena_buf, n_chunks * n_groups * group_entry_bytes, AccessPattern::Sequential)
            .write(n_groups * group_entry_bytes);
        charge(&mut state.device, &merge_desc)?;

        // Explicit-copy placement copies the (small) group table back.
        if probe.explicit_copy {
            let copy = state.device.memcpy(n_groups * group_entry_bytes, TransferDirection::DeviceToHost);
            total += copy;
            breakdown.stream_secs += copy.as_secs_f64();
        }
        drop(state);

        Ok(PlanOutcome {
            groups,
            qualifying_rows: totals.joined,
            grouped: plan.group_by.is_some(),
            time: total,
            kernels,
            interconnect_bytes,
            breakdown,
            site: OlapTarget::Gpu,
        })
    }

    /// Fraction of this engine's registered bytes already resident in device
    /// memory — the data-locality term of the placement heuristic. Explicit
    /// copies re-pay the transfer every query batch, so memcpy placement
    /// counts as non-resident.
    pub fn resident_fraction(&self) -> f64 {
        match self.placement {
            DataPlacement::DeviceResident => 1.0,
            DataPlacement::Host(AccessMode::Memcpy) | DataPlacement::Host(AccessMode::Uva) => 0.0,
            DataPlacement::Host(AccessMode::UnifiedMemory) => {
                let state = self.dev.lock();
                let mem = state.device.memory();
                let mut total = 0u64;
                let mut resident = 0u64;
                for id in state.buffers.values().chain(state.nsm_buffers.values()) {
                    accumulate_residency(mem, *id, &mut total, &mut resident);
                }
                if total == 0 {
                    0.0
                } else {
                    resident as f64 / total as f64
                }
            }
        }
    }
}

impl ExecutionSite for GpuOlapEngine {
    fn target(&self) -> OlapTarget {
        OlapTarget::Gpu
    }

    fn label(&self) -> &'static str {
        "gpu"
    }

    fn register_table(&self, table: &SnapshotTable, label: &str) -> Result<RegisteredTable> {
        GpuOlapEngine::register_table(self, table, label)
    }

    fn reset_tables(&self) {
        GpuOlapEngine::reset_tables(self);
    }

    fn unregister_table(&self, handle: RegisteredTable) {
        GpuOlapEngine::unregister_table(self, handle);
    }

    fn execute(&self, handle: RegisteredTable, table: &SnapshotTable, query: &ScanAggQuery) -> Result<OlapOutcome> {
        let out = GpuOlapEngine::execute(self, handle, table, query)?;
        emit_execution_spans(&self.tracer, out.site, &out.kernels, &out.breakdown, out.time, out.interconnect_bytes);
        Ok(out)
    }

    fn execute_plan(
        &self,
        probe: RegisteredTable,
        probe_table: &SnapshotTable,
        build: Option<(RegisteredTable, &SnapshotTable)>,
        plan: &OlapPlan,
    ) -> Result<PlanOutcome> {
        let out = GpuOlapEngine::execute_plan(self, probe, probe_table, build, plan)?;
        emit_execution_spans(&self.tracer, out.site, &out.kernels, &out.breakdown, out.time, out.interconnect_bytes);
        Ok(out)
    }

    fn free_device_bytes(&self) -> Option<u64> {
        Some(self.dev.lock().device.memory().free_bytes())
    }

    fn resident_fraction(&self) -> f64 {
        GpuOlapEngine::resident_fraction(self)
    }

    fn capability(&self) -> SiteCapability {
        let state = self.dev.lock();
        let spec = state.device.spec().clone();
        let free_bytes = state.device.memory().free_bytes();
        drop(state);
        SiteCapability::Gpu {
            target: OlapTarget::Gpu,
            devices: vec![GpuDeviceCapability {
                spec,
                shard_fraction: 1.0,
                resident_fraction: GpuOlapEngine::resident_fraction(self),
                free_bytes: Some(free_bytes),
            }],
        }
    }

    fn set_plan_cache(&mut self, cache: PlanDataCache) {
        self.cache = cache;
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.cache.set_tracer(tracer.clone());
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{AggExpr, AttrType, PartitionId, Predicate, Schema, Value};
    use h2tap_gpu_sim::GpuSpec;
    use h2tap_storage::{Database, Layout};

    /// A small table: col0 = i, col1 = i % 10, col2 = 2.5 (float), 16 cols total
    /// only for the first three used.
    fn snapshot_table(layout: Layout, rows: i64) -> SnapshotTable {
        let db = Database::new(1);
        let schema = h2tap_common::Schema::new(vec![
            h2tap_common::Attribute::new("k", AttrType::Int64),
            h2tap_common::Attribute::new("bucket", AttrType::Int32),
            h2tap_common::Attribute::new("price", AttrType::Float64),
        ])
        .unwrap();
        let t = db.create_table("t", schema, layout).unwrap();
        for i in 0..rows {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int32((i % 10) as i32), Value::Float64(2.5)])
                .unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    fn engine(placement: DataPlacement) -> GpuOlapEngine {
        GpuOlapEngine::new(GpuDevice::new(GpuSpec::gtx_980()), placement)
    }

    fn bucket_query() -> ScanAggQuery {
        ScanAggQuery { predicates: vec![Predicate::between(1, 0.0, 4.0)], aggregate: AggExpr::SumProduct(1, 2) }
    }

    #[test]
    fn exact_answer_matches_a_scalar_computation() {
        let table = snapshot_table(Layout::Dsm, 1000);
        let eng = engine(DataPlacement::Host(AccessMode::Uva));
        let handle = eng.register_table(&table, "t").unwrap();
        let out = eng.execute(handle, &table, &bucket_query()).unwrap();
        let expected: f64 = (0..1000).map(|i| i % 10).filter(|b| *b <= 4).map(|b| b as f64 * 2.5).sum();
        assert_eq!(out.value, expected);
        assert_eq!(out.qualifying_rows, 500);
        assert_eq!(out.kernels.len(), 2, "one selection kernel + one aggregation kernel");
        assert!(out.time > SimDuration::ZERO);
    }

    #[test]
    fn all_layouts_agree_on_the_answer() {
        let query = bucket_query();
        let mut answers = Vec::new();
        for layout in [Layout::Nsm, Layout::Dsm, Layout::PAPER_PAX] {
            let table = snapshot_table(layout, 500);
            let eng = engine(DataPlacement::Host(AccessMode::Uva));
            let handle = eng.register_table(&table, "t").unwrap();
            answers.push(eng.execute(handle, &table, &query).unwrap().value);
        }
        assert!(answers.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9), "{answers:?}");
    }

    #[test]
    fn nsm_is_slower_than_dsm_over_uva() {
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0]));
        let mut times = Vec::new();
        for layout in [Layout::Dsm, Layout::Nsm] {
            let table = snapshot_table(layout, 200_000);
            let eng = engine(DataPlacement::Host(AccessMode::Uva));
            let handle = eng.register_table(&table, "t").unwrap();
            times.push(eng.execute(handle, &table, &query).unwrap().time.as_secs_f64());
        }
        assert!(times[1] > 1.5 * times[0], "NSM {} DSM {}", times[1], times[0]);
    }

    #[test]
    fn pax_is_close_to_dsm() {
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let mut times = Vec::new();
        for layout in [Layout::Dsm, Layout::PAPER_PAX] {
            let table = snapshot_table(layout, 200_000);
            let eng = engine(DataPlacement::Host(AccessMode::Uva));
            let handle = eng.register_table(&table, "t").unwrap();
            times.push(eng.execute(handle, &table, &query).unwrap().time.as_secs_f64());
        }
        let ratio = times[1] / times[0];
        assert!((0.95..1.2).contains(&ratio), "PAX/DSM ratio {ratio}");
    }

    #[test]
    fn unified_memory_queries_get_faster_after_first_touch() {
        let table = snapshot_table(Layout::Dsm, 500_000);
        let eng = engine(DataPlacement::Host(AccessMode::UnifiedMemory));
        let handle = eng.register_table(&table, "t").unwrap();
        let q = bucket_query();
        let first = eng.execute(handle, &table, &q).unwrap();
        let second = eng.execute(handle, &table, &q).unwrap();
        assert_eq!(first.value, second.value);
        assert!(first.time > second.time, "first {} second {}", first.time, second.time);
        assert_eq!(second.interconnect_bytes, 0);
    }

    #[test]
    fn device_resident_execution_is_fastest() {
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let table = snapshot_table(Layout::Dsm, 500_000);
        let uva = engine(DataPlacement::Host(AccessMode::Uva));
        let h1 = uva.register_table(&table, "t").unwrap();
        let t_uva = uva.execute(h1, &table, &q).unwrap().time;
        let dev = engine(DataPlacement::DeviceResident);
        let h2 = dev.register_table(&table, "t").unwrap();
        let t_dev = dev.execute(h2, &table, &q).unwrap().time;
        assert!(t_dev < t_uva, "device {} uva {}", t_dev, t_uva);
    }

    #[test]
    fn memcpy_placement_charges_transfers() {
        let table = snapshot_table(Layout::Dsm, 100_000);
        let eng = engine(DataPlacement::Host(AccessMode::Memcpy));
        let handle = eng.register_table(&table, "t").unwrap();
        let out = eng.execute(handle, &table, &bucket_query()).unwrap();
        assert!(out.interconnect_bytes > 0);
    }

    #[test]
    fn empty_table_is_rejected() {
        let db = Database::new(1);
        let t = db.create_table("t", Schema::homogeneous("c", 2, AttrType::Int32), Layout::Dsm).unwrap();
        let snap = db.snapshot();
        let table = snap.table(t).unwrap().clone();
        let eng = engine(DataPlacement::Host(AccessMode::Uva));
        let handle = eng.register_table(&table, "t").unwrap();
        assert!(eng.execute(handle, &table, &bucket_query()).is_err());
    }

    /// Build table keyed 0..10: key = i, size = i, brand = i % 3.
    fn build_table(keys: i64) -> SnapshotTable {
        let db = Database::new(1);
        let schema = h2tap_common::Schema::new(vec![
            h2tap_common::Attribute::new("key", AttrType::Int64),
            h2tap_common::Attribute::new("size", AttrType::Int32),
            h2tap_common::Attribute::new("brand", AttrType::Int32),
        ])
        .unwrap();
        let t = db.create_table("dim", schema, Layout::Dsm).unwrap();
        for i in 0..keys {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int32(i as i32), Value::Int32((i % 3) as i32)])
                .unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    /// Join the fact table's bucket column (i % 10) against the dimension
    /// keys with size <= 4, group by brand, SUM(bucket * price) + COUNT.
    fn join_plan() -> OlapPlan {
        OlapPlan {
            predicates: vec![],
            join: Some(h2tap_common::JoinSpec {
                probe_column: 1,
                build_key: 0,
                build_predicates: vec![Predicate::between(1, 0.0, 4.0)],
            }),
            group_by: Some(PlanColumn::Build(2)),
            aggregates: vec![AggExpr::SumProduct(1, 2), AggExpr::Count],
        }
    }

    #[test]
    fn failed_registration_frees_its_partial_allocations() {
        // A device that fits the first columns but not the whole table: the
        // failed registration must not consume capacity (OOM fallback
        // retries registration on every query).
        let table = snapshot_table(Layout::Dsm, 100_000); // 8 + 4 + 8 bytes/row
        let mut spec = GpuSpec::gtx_980();
        spec.mem_capacity_mib = 1;
        let eng = GpuOlapEngine::new(GpuDevice::new(spec), DataPlacement::DeviceResident);
        assert!(eng.register_table(&table, "t").is_err());
        assert_eq!(eng.device_used_bytes(), 0, "partial column buffers must be freed");
    }

    #[test]
    fn unregister_table_frees_only_that_tables_buffers() {
        let t1 = snapshot_table(Layout::Dsm, 10_000);
        let t2 = snapshot_table(Layout::Dsm, 20_000);
        let eng = engine(DataPlacement::DeviceResident);
        let h1 = eng.register_table(&t1, "a").unwrap();
        let after_first = eng.device_used_bytes();
        let h2 = eng.register_table(&t2, "b").unwrap();
        assert!(eng.device_used_bytes() > after_first);
        eng.unregister_table(h2);
        assert_eq!(eng.device_used_bytes(), after_first, "only t2's buffers are freed");
        // t1 stays fully queryable.
        let out = eng.execute(h1, &t1, &bucket_query()).unwrap();
        assert_eq!(out.qualifying_rows, 5_000);
    }

    #[test]
    fn join_group_by_plan_computes_exact_groups() {
        let probe = snapshot_table(Layout::Dsm, 1_000);
        let build = build_table(10);
        let eng = engine(DataPlacement::Host(AccessMode::Uva));
        let ph = eng.register_table(&probe, "fact").unwrap();
        let bh = eng.register_table(&build, "dim").unwrap();
        let out = eng.execute_plan(ph, &probe, Some((bh, &build)), &join_plan()).unwrap();
        // Buckets 0..=4 join (size <= 4); brands of keys 0..=4 are
        // 0 -> {0,3}, 1 -> {1,4}, 2 -> {2}; 100 rows per bucket.
        assert_eq!(out.qualifying_rows, 500);
        assert_eq!(out.groups.len(), 3);
        let sums: Vec<(u64, f64, u64)> = out.groups.iter().map(|g| (g.key, g.values[0], g.rows)).collect();
        assert_eq!(sums, vec![(0, 750.0, 200), (1, 1250.0, 200), (2, 500.0, 100)]);
        for g in &out.groups {
            assert_eq!(g.values[1], g.rows as f64, "COUNT aggregate tracks rows");
        }
        let names: Vec<&str> = out.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, vec!["hash_build", "hash_probe", "partial_aggregate", "merge_groups"]);
        assert!(out.time > SimDuration::ZERO);
    }

    #[test]
    fn random_probes_dominate_join_cost_over_uva() {
        let probe = snapshot_table(Layout::Dsm, 200_000);
        let build = build_table(10);
        let plan = join_plan();
        let scan_equivalent = OlapPlan { join: None, group_by: None, ..plan.clone() };
        let eng = engine(DataPlacement::Host(AccessMode::Uva));
        let ph = eng.register_table(&probe, "fact").unwrap();
        let bh = eng.register_table(&build, "dim").unwrap();
        let join_time = eng.execute_plan(ph, &probe, Some((bh, &build)), &plan).unwrap().time.as_secs_f64();
        let scan_time = eng.execute_plan(ph, &probe, None, &scan_equivalent).unwrap().time.as_secs_f64();
        // Every probe gathers a full interconnect transaction: the join costs
        // far more than streaming the same probe columns.
        assert!(join_time > 3.0 * scan_time, "join {join_time} scan {scan_time}");

        // Device-resident hash state caps the waste at the 128-byte device
        // transaction, collapsing the penalty.
        let dev = engine(DataPlacement::DeviceResident);
        let ph = dev.register_table(&probe, "fact").unwrap();
        let bh = dev.register_table(&build, "dim").unwrap();
        let dev_join = dev.execute_plan(ph, &probe, Some((bh, &build)), &plan).unwrap().time.as_secs_f64();
        assert!(dev_join < join_time / 3.0, "device {dev_join} uva {join_time}");
    }

    #[test]
    fn plan_scratch_buffers_do_not_leak_device_memory() {
        let probe = snapshot_table(Layout::Dsm, 10_000);
        let build = build_table(10);
        let eng = engine(DataPlacement::DeviceResident);
        let ph = eng.register_table(&probe, "fact").unwrap();
        let bh = eng.register_table(&build, "dim").unwrap();
        let before = eng.device_used_bytes();
        eng.execute_plan(ph, &probe, Some((bh, &build)), &join_plan()).unwrap();
        assert_eq!(eng.device_used_bytes(), before, "hash/group scratch must be freed");
    }

    #[test]
    fn plan_rejects_mismatched_join_and_build() {
        let probe = snapshot_table(Layout::Dsm, 100);
        let build = build_table(10);
        let eng = engine(DataPlacement::Host(AccessMode::Uva));
        let ph = eng.register_table(&probe, "fact").unwrap();
        let bh = eng.register_table(&build, "dim").unwrap();
        // Join without a build table.
        assert!(eng.execute_plan(ph, &probe, None, &join_plan()).is_err());
        // Build table without a join.
        let scan = OlapPlan { predicates: vec![], join: None, group_by: None, aggregates: vec![AggExpr::Count] };
        assert!(eng.execute_plan(ph, &probe, Some((bh, &build)), &scan).is_err());
    }

    #[test]
    fn scan_plan_matches_the_scan_query_answer() {
        let probe = snapshot_table(Layout::Dsm, 5_000);
        let query = bucket_query();
        let plan = OlapPlan::scan(&query);
        let eng = engine(DataPlacement::Host(AccessMode::Uva));
        let handle = eng.register_table(&probe, "t").unwrap();
        let scan = eng.execute(handle, &probe, &query).unwrap();
        let planned = eng.execute_plan(handle, &probe, None, &plan).unwrap();
        assert_eq!(planned.qualifying_rows, scan.qualifying_rows);
        let value = planned.single_value().expect("global group");
        assert!((value - scan.value).abs() < 1e-9, "plan {value} scan {}", scan.value);
    }
}
