//! The GPU OLAP executor: kernel-at-a-time query execution over snapshots.
//!
//! "Each database operator is implemented as a collection of data-parallel
//! primitives, where each primitive is an individual CUDA kernel. OLAP
//! queries are executed by a dedicated CPU thread that executes each database
//! operator by executing the corresponding CUDA kernels one at a time while
//! using UVA to store all input, intermediate, and output data."
//!
//! [`GpuOlapEngine`] follows that model: a [`ScanAggQuery`] becomes one
//! selection kernel per predicate (each producing/consuming a selection
//! bitmap) followed by one aggregation kernel. Every kernel computes its real
//! answer on the host while its cost is charged to the [`GpuDevice`] model
//! according to the table's layout (coalesced for DSM/PAX, strided for NSM)
//! and the configured access mode (memcpy / UVA / UM / device-resident).

use crate::site::ExecutionSite;
use h2tap_common::{AggExpr, H2Error, Result, ScanAggQuery, SimDuration};
use h2tap_gpu_sim::{
    AccessMode, AccessPattern, BufferId, GpuDevice, KernelDesc, KernelMetrics, Residency, TransferDirection,
};
use h2tap_scheduler::OlapTarget;
use h2tap_storage::{decode_cell_f64, Layout, SnapshotTable};
use std::collections::HashMap;

/// Where the engine keeps table data relative to the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlacement {
    /// Data stays in host shared memory and is accessed with the given mode
    /// (the H2TAP design point; UVA is what the Caldera prototype uses).
    Host(AccessMode),
    /// Data is copied into device memory ahead of time (the Figure 11
    /// configuration).
    DeviceResident,
}

/// Result of one analytical query execution.
#[derive(Debug, Clone)]
pub struct OlapOutcome {
    /// The aggregate value (exact, computed over the real data).
    pub value: f64,
    /// Number of records satisfying all predicates.
    pub qualifying_rows: u64,
    /// Simulated execution time (kernels plus any explicit transfers).
    pub time: SimDuration,
    /// Per-kernel metrics, in launch order (empty for sites that do not
    /// launch kernels, such as the CPU scan engine).
    pub kernels: Vec<KernelMetrics>,
    /// Bytes moved over the host-device interconnect.
    pub interconnect_bytes: u64,
    /// The execution site that answered the query.
    pub site: OlapTarget,
}

/// Kernel-at-a-time OLAP executor bound to one simulated GPU.
pub struct GpuOlapEngine {
    device: GpuDevice,
    placement: DataPlacement,
    /// Registered column buffers: (table tag, attr) -> buffer.
    buffers: HashMap<(usize, usize), BufferId>,
    /// Registered whole-table buffers for NSM tables: table tag -> buffer.
    nsm_buffers: HashMap<usize, BufferId>,
    /// Monotonic tag generator for registered tables.
    next_tag: usize,
}

/// Handle to a table registered with an execution site. Opaque to callers;
/// handles are only meaningful to the site that vended them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisteredTable {
    tag: usize,
    /// Whether the data had to be copied to the device explicitly (memcpy
    /// placement); the copy cost is charged per query batch by `execute`.
    explicit_copy: bool,
}

impl RegisteredTable {
    /// Handle vended by the CPU site (which never copies explicitly).
    pub(crate) fn cpu(tag: usize) -> Self {
        Self { tag, explicit_copy: false }
    }

    /// The site-local registration tag.
    pub(crate) fn tag(&self) -> usize {
        self.tag
    }
}

impl GpuOlapEngine {
    /// Creates an executor on `device` with the given data placement.
    pub fn new(device: GpuDevice, placement: DataPlacement) -> Self {
        Self { device, placement, buffers: HashMap::new(), nsm_buffers: HashMap::new(), next_tag: 0 }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// The configured placement.
    pub fn placement(&self) -> DataPlacement {
        self.placement
    }

    /// Registers the columns of `table` with the device according to the
    /// placement policy. Must be called once per snapshot table before
    /// queries run against it.
    pub fn register_table(&mut self, table: &SnapshotTable, label: &str) -> Result<RegisteredTable> {
        let tag = self.next_tag;
        self.next_tag += 1;
        let rows = table.row_count();
        let arity = table.schema.arity();
        let explicit_copy = matches!(self.placement, DataPlacement::Host(AccessMode::Memcpy));
        match table.layout {
            Layout::Nsm => {
                // Row-major storage is one big buffer; kernels stride over it.
                let bytes = rows * table.schema.record_width() as u64;
                let id = self.register_bytes(&format!("{label}.rows"), bytes)?;
                self.nsm_buffers.insert(tag, id);
            }
            Layout::Dsm | Layout::Pax { .. } => {
                for attr in 0..arity {
                    let width = table.schema.attr(attr)?.ty.width() as u64;
                    let bytes = rows * width;
                    let id = self.register_bytes(&format!("{label}.col{attr}"), bytes)?;
                    self.buffers.insert((tag, attr), id);
                }
            }
        }
        Ok(RegisteredTable { tag, explicit_copy })
    }

    /// Frees every registered buffer (device memory and UM residency) so a
    /// new snapshot's tables can be registered without leaking the old ones.
    pub fn reset_tables(&mut self) {
        for (_, id) in self.buffers.drain() {
            let _ = self.device.memory_mut().free(id);
        }
        for (_, id) in self.nsm_buffers.drain() {
            let _ = self.device.memory_mut().free(id);
        }
    }

    fn register_bytes(&mut self, label: &str, bytes: u64) -> Result<BufferId> {
        match self.placement {
            DataPlacement::Host(mode) => self.device.register_buffer(label, bytes, mode),
            DataPlacement::DeviceResident => self.device.register_device_buffer(label, bytes),
        }
    }

    /// The buffer and access pattern a kernel uses to read `attr` of `table`.
    fn read_plan(
        &self,
        handle: RegisteredTable,
        table: &SnapshotTable,
        attr: usize,
    ) -> Result<(BufferId, u64, AccessPattern)> {
        let rows = table.row_count();
        let width = table.schema.attr(attr)?.ty.width() as u64;
        match table.layout {
            Layout::Nsm => {
                let buffer = *self
                    .nsm_buffers
                    .get(&handle.tag)
                    .ok_or_else(|| H2Error::InvalidKernel("table not registered".into()))?;
                let pattern = AccessPattern::Strided {
                    stride_bytes: table.schema.record_width() as u32,
                    elem_bytes: width as u32,
                };
                Ok((buffer, rows * width, pattern))
            }
            Layout::Dsm => {
                let buffer = *self
                    .buffers
                    .get(&(handle.tag, attr))
                    .ok_or_else(|| H2Error::InvalidKernel("column not registered".into()))?;
                Ok((buffer, rows * width, AccessPattern::Sequential))
            }
            Layout::Pax { .. } => {
                let buffer = *self
                    .buffers
                    .get(&(handle.tag, attr))
                    .ok_or_else(|| H2Error::InvalidKernel("column not registered".into()))?;
                // Minipages coalesce like DSM but pay a small page-interleave
                // overhead, modelled as 3% extra traffic.
                Ok((buffer, rows * width * 103 / 100, AccessPattern::Sequential))
            }
        }
    }

    /// Executes `query` against a registered snapshot table.
    pub fn execute(
        &mut self,
        handle: RegisteredTable,
        table: &SnapshotTable,
        query: &ScanAggQuery,
    ) -> Result<OlapOutcome> {
        let rows = table.row_count();
        if rows == 0 {
            return Err(H2Error::InvalidKernel("cannot execute a query over an empty table".into()));
        }
        let mut kernels = Vec::new();
        let mut total = SimDuration::ZERO;
        let mut interconnect_bytes = 0u64;

        // Explicit-copy placement pays the host-to-device transfer of every
        // accessed column before the first kernel (the "memcpy" bars of
        // Figure 1).
        if handle.explicit_copy {
            let mut bytes = 0u64;
            for &attr in &query.columns_accessed() {
                let width = table.schema.attr(attr)?.ty.width() as u64;
                bytes += match table.layout {
                    Layout::Nsm => rows * table.schema.record_width() as u64 / query.columns_accessed().len() as u64,
                    _ => rows * width,
                };
            }
            total += self.device.memcpy(bytes, TransferDirection::HostToDevice);
            interconnect_bytes += bytes;
        }

        // Selection kernels: one per predicate, producing a selection bitmap.
        let mut selection: Vec<bool> = vec![true; rows as usize];
        for (i, pred) in query.predicates.iter().enumerate() {
            let (buffer, useful, pattern) = self.read_plan(handle, table, pred.column)?;
            let ty = table.schema.attr(pred.column)?.ty;
            let desc = KernelDesc::new(format!("select_{i}"), rows)
                .flops_per_element(2.0)
                .read(buffer, useful, pattern)
                // The bitmap write (1 bit per row, byte-packed here).
                .write(rows.div_ceil(8));
            let run = self.device.launch(&desc, || {
                let mut qualified = 0u64;
                for (idx, cell) in table.iter_attr(pred.column).enumerate() {
                    let keep = selection[idx] && pred.matches(decode_cell_f64(ty, cell));
                    selection[idx] = keep;
                    qualified += u64::from(keep);
                }
                qualified
            })?;
            total += run.metrics.time;
            interconnect_bytes += run.metrics.interconnect_bytes;
            kernels.push(run.metrics);
        }

        // Aggregation kernel.
        let agg_cols = query.aggregate.columns();
        let mut desc = KernelDesc::new("aggregate", rows).flops_per_element(1.0 + agg_cols.len() as f64);
        for &attr in &agg_cols {
            let (buffer, useful, pattern) = self.read_plan(handle, table, attr)?;
            desc = desc.read(buffer, useful, pattern);
        }
        if !query.predicates.is_empty() {
            // The aggregation kernel also streams the selection bitmap.
            desc = desc.flops_per_element(2.0 + agg_cols.len() as f64);
        }
        desc = desc.write(8);
        let aggregate = &query.aggregate;
        let schema = &table.schema;
        let run = self.device.launch(&desc, || {
            let mut value = 0.0f64;
            let mut qualifying = 0u64;
            match aggregate {
                AggExpr::Count => {
                    for keep in &selection {
                        qualifying += u64::from(*keep);
                    }
                    value = qualifying as f64;
                }
                AggExpr::SumProduct(a, b) => {
                    let ta = schema.attr(*a).map(|x| x.ty).unwrap_or(h2tap_common::AttrType::Float64);
                    let tb = schema.attr(*b).map(|x| x.ty).unwrap_or(h2tap_common::AttrType::Float64);
                    let col_b: Vec<u64> = table.iter_attr(*b).collect();
                    for (idx, cell_a) in table.iter_attr(*a).enumerate() {
                        if selection[idx] {
                            value += decode_cell_f64(ta, cell_a) * decode_cell_f64(tb, col_b[idx]);
                            qualifying += 1;
                        }
                    }
                }
                AggExpr::SumColumns(cols) => {
                    let mut counted = false;
                    for &c in cols {
                        let ty = schema.attr(c).map(|x| x.ty).unwrap_or(h2tap_common::AttrType::Int64);
                        for (idx, cell) in table.iter_attr(c).enumerate() {
                            if selection[idx] {
                                value += decode_cell_f64(ty, cell);
                                if !counted {
                                    qualifying += 1;
                                }
                            }
                        }
                        counted = true;
                    }
                    if cols.is_empty() {
                        qualifying = selection.iter().map(|k| u64::from(*k)).sum();
                    }
                }
            }
            (value, qualifying)
        })?;
        total += run.metrics.time;
        interconnect_bytes += run.metrics.interconnect_bytes;
        kernels.push(run.metrics);
        let (value, qualifying_rows) = run.result;

        // Explicit-copy placement copies the (tiny) result back.
        if handle.explicit_copy {
            total += self.device.memcpy(8, TransferDirection::DeviceToHost);
        }

        Ok(OlapOutcome { value, qualifying_rows, time: total, kernels, interconnect_bytes, site: OlapTarget::Gpu })
    }

    /// Fraction of this engine's registered bytes already resident in device
    /// memory — the data-locality term of the placement heuristic. Explicit
    /// copies re-pay the transfer every query batch, so memcpy placement
    /// counts as non-resident.
    pub fn resident_fraction(&self) -> f64 {
        match self.placement {
            DataPlacement::DeviceResident => 1.0,
            DataPlacement::Host(AccessMode::Memcpy) | DataPlacement::Host(AccessMode::Uva) => 0.0,
            DataPlacement::Host(AccessMode::UnifiedMemory) => {
                let mem = self.device.memory();
                let mut total = 0u64;
                let mut resident = 0u64;
                for id in self.buffers.values().chain(self.nsm_buffers.values()) {
                    let Ok(info) = mem.info(*id) else { continue };
                    total += info.bytes;
                    resident += match info.residency {
                        Residency::Device => info.bytes,
                        Residency::HostUm { resident_pages, .. } => (resident_pages * mem.page_bytes()).min(info.bytes),
                        Residency::HostUva => 0,
                    };
                }
                if total == 0 {
                    0.0
                } else {
                    resident as f64 / total as f64
                }
            }
        }
    }
}

impl ExecutionSite for GpuOlapEngine {
    fn target(&self) -> OlapTarget {
        OlapTarget::Gpu
    }

    fn label(&self) -> &'static str {
        "gpu"
    }

    fn register_table(&mut self, table: &SnapshotTable, label: &str) -> Result<RegisteredTable> {
        GpuOlapEngine::register_table(self, table, label)
    }

    fn reset_tables(&mut self) {
        GpuOlapEngine::reset_tables(self);
    }

    fn execute(&mut self, handle: RegisteredTable, table: &SnapshotTable, query: &ScanAggQuery) -> Result<OlapOutcome> {
        GpuOlapEngine::execute(self, handle, table, query)
    }

    fn resident_fraction(&self) -> f64 {
        GpuOlapEngine::resident_fraction(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{AttrType, PartitionId, Predicate, Schema, Value};
    use h2tap_gpu_sim::GpuSpec;
    use h2tap_storage::{Database, Layout};

    /// A small table: col0 = i, col1 = i % 10, col2 = 2.5 (float), 16 cols total
    /// only for the first three used.
    fn snapshot_table(layout: Layout, rows: i64) -> SnapshotTable {
        let db = Database::new(1);
        let schema = h2tap_common::Schema::new(vec![
            h2tap_common::Attribute::new("k", AttrType::Int64),
            h2tap_common::Attribute::new("bucket", AttrType::Int32),
            h2tap_common::Attribute::new("price", AttrType::Float64),
        ])
        .unwrap();
        let t = db.create_table("t", schema, layout).unwrap();
        for i in 0..rows {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int32((i % 10) as i32), Value::Float64(2.5)])
                .unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    fn engine(placement: DataPlacement) -> GpuOlapEngine {
        GpuOlapEngine::new(GpuDevice::new(GpuSpec::gtx_980()), placement)
    }

    fn bucket_query() -> ScanAggQuery {
        ScanAggQuery { predicates: vec![Predicate::between(1, 0.0, 4.0)], aggregate: AggExpr::SumProduct(1, 2) }
    }

    #[test]
    fn exact_answer_matches_a_scalar_computation() {
        let table = snapshot_table(Layout::Dsm, 1000);
        let mut eng = engine(DataPlacement::Host(AccessMode::Uva));
        let handle = eng.register_table(&table, "t").unwrap();
        let out = eng.execute(handle, &table, &bucket_query()).unwrap();
        let expected: f64 = (0..1000).map(|i| i % 10).filter(|b| *b <= 4).map(|b| b as f64 * 2.5).sum();
        assert_eq!(out.value, expected);
        assert_eq!(out.qualifying_rows, 500);
        assert_eq!(out.kernels.len(), 2, "one selection kernel + one aggregation kernel");
        assert!(out.time > SimDuration::ZERO);
    }

    #[test]
    fn all_layouts_agree_on_the_answer() {
        let query = bucket_query();
        let mut answers = Vec::new();
        for layout in [Layout::Nsm, Layout::Dsm, Layout::PAPER_PAX] {
            let table = snapshot_table(layout, 500);
            let mut eng = engine(DataPlacement::Host(AccessMode::Uva));
            let handle = eng.register_table(&table, "t").unwrap();
            answers.push(eng.execute(handle, &table, &query).unwrap().value);
        }
        assert!(answers.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9), "{answers:?}");
    }

    #[test]
    fn nsm_is_slower_than_dsm_over_uva() {
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0]));
        let mut times = Vec::new();
        for layout in [Layout::Dsm, Layout::Nsm] {
            let table = snapshot_table(layout, 200_000);
            let mut eng = engine(DataPlacement::Host(AccessMode::Uva));
            let handle = eng.register_table(&table, "t").unwrap();
            times.push(eng.execute(handle, &table, &query).unwrap().time.as_secs_f64());
        }
        assert!(times[1] > 1.5 * times[0], "NSM {} DSM {}", times[1], times[0]);
    }

    #[test]
    fn pax_is_close_to_dsm() {
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let mut times = Vec::new();
        for layout in [Layout::Dsm, Layout::PAPER_PAX] {
            let table = snapshot_table(layout, 200_000);
            let mut eng = engine(DataPlacement::Host(AccessMode::Uva));
            let handle = eng.register_table(&table, "t").unwrap();
            times.push(eng.execute(handle, &table, &query).unwrap().time.as_secs_f64());
        }
        let ratio = times[1] / times[0];
        assert!((0.95..1.2).contains(&ratio), "PAX/DSM ratio {ratio}");
    }

    #[test]
    fn unified_memory_queries_get_faster_after_first_touch() {
        let table = snapshot_table(Layout::Dsm, 500_000);
        let mut eng = engine(DataPlacement::Host(AccessMode::UnifiedMemory));
        let handle = eng.register_table(&table, "t").unwrap();
        let q = bucket_query();
        let first = eng.execute(handle, &table, &q).unwrap();
        let second = eng.execute(handle, &table, &q).unwrap();
        assert_eq!(first.value, second.value);
        assert!(first.time > second.time, "first {} second {}", first.time, second.time);
        assert_eq!(second.interconnect_bytes, 0);
    }

    #[test]
    fn device_resident_execution_is_fastest() {
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let table = snapshot_table(Layout::Dsm, 500_000);
        let mut uva = engine(DataPlacement::Host(AccessMode::Uva));
        let h1 = uva.register_table(&table, "t").unwrap();
        let t_uva = uva.execute(h1, &table, &q).unwrap().time;
        let mut dev = engine(DataPlacement::DeviceResident);
        let h2 = dev.register_table(&table, "t").unwrap();
        let t_dev = dev.execute(h2, &table, &q).unwrap().time;
        assert!(t_dev < t_uva, "device {} uva {}", t_dev, t_uva);
    }

    #[test]
    fn memcpy_placement_charges_transfers() {
        let table = snapshot_table(Layout::Dsm, 100_000);
        let mut eng = engine(DataPlacement::Host(AccessMode::Memcpy));
        let handle = eng.register_table(&table, "t").unwrap();
        let out = eng.execute(handle, &table, &bucket_query()).unwrap();
        assert!(out.interconnect_bytes > 0);
    }

    #[test]
    fn empty_table_is_rejected() {
        let db = Database::new(1);
        let t = db.create_table("t", Schema::homogeneous("c", 2, AttrType::Int32), Layout::Dsm).unwrap();
        let snap = db.snapshot();
        let table = snap.table(t).unwrap().clone();
        let mut eng = engine(DataPlacement::Host(AccessMode::Uva));
        let handle = eng.register_table(&table, "t").unwrap();
        assert!(eng.execute(handle, &table, &bucket_query()).is_err());
    }
}
