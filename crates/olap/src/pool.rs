//! The shared scoped thread pool of the OLAP host data path.
//!
//! Both the chunked query pipelines ([`crate::cpu::CpuOlapEngine`]) and the
//! parallel column materialisation ([`crate::operators::MaterializedColumns`])
//! run on the same harness: plain `std::thread::scope` workers over a fixed
//! work list, with results returned **in work-item order**. There is no
//! persistent pool to manage — a scope is cheap at chunk granularity — and
//! because every work item is deterministic and the caller consumes results
//! in index order, the thread schedule cannot perturb a single bit of the
//! f64 answers.

/// Upper bound on worker threads per query or materialisation; simulated
/// core counts above this stop translating into real threads (the host
/// machine has its own limits).
pub(crate) const MAX_PLAN_THREADS: usize = 32;

/// Worker threads to use for host-side materialisation work of `tasks`
/// independent items: the machine's available parallelism, capped by
/// [`MAX_PLAN_THREADS`] and by the task count. Unlike the query pipelines —
/// whose thread count tracks the archipelago's simulated core allotment —
/// materialisation is a pure host-side data copy, so it may use whatever the
/// host actually has.
pub(crate) fn host_threads(tasks: usize) -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(MAX_PLAN_THREADS).min(tasks.max(1))
}

/// Runs `eval` over chunk indexes `0..chunks` on a scoped pool of `threads`
/// workers (strided chunk assignment) and returns the results in ascending
/// chunk order — the execution harness the scan and plan pipelines share.
pub(crate) fn run_chunked<T: Send>(chunks: usize, threads: usize, eval: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if threads <= 1 {
        return (0..chunks).map(eval).collect();
    }
    let mut slots: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let eval = &eval;
        let workers: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || (t..chunks).step_by(threads).map(|i| (i, eval(i))).collect::<Vec<_>>()))
            .collect();
        for worker in workers {
            // h2tap: allow(panic) — join() only fails when the worker itself panicked; re-raising the panic on the coordinating thread is the intended propagation.
            for (i, result) in worker.join().expect("chunk worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    // h2tap: allow(panic) — the strided worker partition covers 0..chunks exactly once, so every slot was filled above.
    slots.into_iter().map(|p| p.expect("every chunk evaluated")).collect()
}

/// Runs `work` over an owned task list on a scoped pool of `threads` workers
/// and returns the results **in task order**. Tasks are handed out as
/// contiguous runs (materialisation tasks of adjacent chunks walk adjacent
/// storage pages, so contiguity keeps each worker's page walk local), and
/// ownership moves into the worker — which is what lets a task carry an
/// exclusive `&mut` sub-slice of a shared output buffer.
pub(crate) fn run_tasks<T: Send, R: Send>(mut tasks: Vec<T>, threads: usize, work: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = threads.min(tasks.len().max(1));
    if threads <= 1 {
        return tasks.into_iter().map(work).collect();
    }
    let per_worker = tasks.len().div_ceil(threads);
    let mut groups: Vec<Vec<T>> = Vec::with_capacity(threads);
    while !tasks.is_empty() {
        let rest = tasks.split_off(per_worker.min(tasks.len()));
        groups.push(std::mem::replace(&mut tasks, rest));
    }
    std::thread::scope(|scope| {
        let work = &work;
        let workers: Vec<_> = groups
            .into_iter()
            .map(|group| scope.spawn(move || group.into_iter().map(work).collect::<Vec<R>>()))
            .collect();
        // h2tap: allow(panic) — join() only fails when the worker itself panicked; re-raising the panic on the coordinating thread is the intended propagation.
        workers.into_iter().flat_map(|w| w.join().expect("materialisation worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_chunked_preserves_chunk_order() {
        for threads in [1, 2, 5] {
            let out = run_chunked(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn run_tasks_preserves_task_order() {
        for threads in [1, 2, 7, 64] {
            let tasks: Vec<usize> = (0..37).collect();
            let out = run_tasks(tasks, threads, |t| t + 100);
            assert_eq!(out, (100..137).collect::<Vec<_>>(), "{threads} threads");
        }
        assert!(run_tasks(Vec::<usize>::new(), 4, |t| t).is_empty());
    }

    #[test]
    fn run_tasks_can_own_mutable_slices() {
        let mut buf = vec![0u32; 40];
        let tasks: Vec<(usize, &mut [u32])> = buf.chunks_mut(10).enumerate().collect();
        run_tasks(tasks, 4, |(i, slice)| {
            for (j, v) in slice.iter_mut().enumerate() {
                *v = (i * 10 + j) as u32;
            }
        });
        assert_eq!(buf, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn host_threads_respects_bounds() {
        assert_eq!(host_threads(0), 1);
        assert!(host_threads(1_000) <= MAX_PLAN_THREADS);
        assert!(host_threads(2) <= 2);
        assert!(host_threads(1_000) >= 1);
    }
}
