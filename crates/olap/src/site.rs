//! The `ExecutionSite` abstraction: one interface over every place an
//! analytical query can run in the data-parallel archipelago.
//!
//! "The scheduler can combine dynamic run-time information, such as data
//! locality, with static optimizer cost models to decide if a given
//! analytical query should be executed on CPU or GPU cores in the
//! data-parallel archipelago." For that decision to be *real* the engine
//! needs both targets behind one dispatchable interface: the GPU
//! kernel-at-a-time executor ([`crate::GpuOlapEngine`]) and the CPU
//! vectorised scan engine ([`crate::CpuOlapEngine`]) both implement
//! [`ExecutionSite`], and `Caldera::run_olap` picks between them per query
//! with [`h2tap_scheduler::place_olap_query`].
//!
//! Besides execution, a site exposes the *cost and capability hints* the
//! placement heuristic consumes: which [`OlapTarget`] it serves, what
//! fraction of registered bytes already lives next to its compute
//! ([`ExecutionSite::resident_fraction`]), and how it reacts to core
//! migration ([`ExecutionSite::set_cores`]).

use crate::cache::PlanDataCache;
use crate::engine::{OlapOutcome, PlanOutcome, RegisteredTable};
use h2tap_common::{ExecBreakdown, OlapPlan, Result, ScanAggQuery, SimDuration};
use h2tap_gpu_sim::KernelMetrics;
use h2tap_obs::{SpanEvent, SpanKind, Tracer};
use h2tap_scheduler::{OlapTarget, SiteCapability};
use h2tap_storage::SnapshotTable;

/// A place where analytical queries execute: the simulated GPU or the CPU
/// cores of the data-parallel archipelago.
///
/// The lifecycle mirrors snapshot-based OLAP: tables of the current snapshot
/// are registered once ([`ExecutionSite::register_table`]), queried any
/// number of times ([`ExecutionSite::execute`]), and dropped together when
/// the snapshot is refreshed ([`ExecutionSite::reset_tables`]).
///
/// Every method takes `&self`: sites are **concurrent** — the engine serves
/// analytical queries from many client threads at once, so each impl owns
/// its mutable state behind interior mutability and must keep `execute` /
/// `execute_plan` safe (and, for throughput, actually parallel — don't hold
/// a site-wide lock across host compute) under simultaneous calls.
pub trait ExecutionSite: Send + Sync {
    /// Which placement target this site serves.
    fn target(&self) -> OlapTarget;

    /// Human-readable site name for stats and experiment output.
    fn label(&self) -> &'static str;

    /// Registers a snapshot table with the site. Must be called once per
    /// snapshot table before queries run against it.
    fn register_table(&self, table: &SnapshotTable, label: &str) -> Result<RegisteredTable>;

    /// Releases every registration (called on snapshot refresh).
    fn reset_tables(&self);

    /// Releases one table registration, freeing whatever site-local
    /// resources (device buffers) it holds. Used to roll back the tables a
    /// *failed* multi-table attempt registered, so an OOM fallback does not
    /// strand device memory until the next snapshot refresh.
    fn unregister_table(&self, handle: RegisteredTable);

    /// Executes `query` against a registered snapshot table, returning the
    /// exact answer and the site's simulated cost.
    fn execute(&self, handle: RegisteredTable, table: &SnapshotTable, query: &ScanAggQuery) -> Result<OlapOutcome>;

    /// Executes a relational plan (filter → optional hash join → optional
    /// group-by) against a registered probe table and, for join plans, a
    /// registered build table. Sites must return **byte-identical**
    /// [`h2tap_common::GroupRow`]s for the same plan over the same snapshot
    /// (see [`h2tap_common::plan`] for the evaluation-order contract); only
    /// the simulated cost differs.
    fn execute_plan(
        &self,
        probe: RegisteredTable,
        probe_table: &SnapshotTable,
        build: Option<(RegisteredTable, &SnapshotTable)>,
        plan: &OlapPlan,
    ) -> Result<PlanOutcome>;

    /// Capacity hint: free device-local memory in bytes, for sites whose
    /// compute sits next to a bounded memory (the GPU). `None` for sites
    /// that stream from host DRAM — the placement heuristic then skips its
    /// hash-table footprint check.
    fn free_device_bytes(&self) -> Option<u64> {
        None
    }

    /// Cost hint: the fraction of registered bytes already resident next to
    /// this site's compute (device memory for the GPU, host DRAM for the
    /// CPU), in `[0, 1]`. The placement heuristic charges non-resident bytes
    /// to the interconnect.
    fn resident_fraction(&self) -> f64;

    /// The site's self-description for placement: CPU core count, or the
    /// per-device specs / shard fractions / residency / free memory of a
    /// GPU-backed site. Sites *enumerate* their capabilities so the
    /// scheduler's decision is an N-way argmin over whatever sites the
    /// engine actually runs, not a hardcoded CPU-vs-GPU pair.
    fn capability(&self) -> SiteCapability;

    /// Capability hint: reacts to archipelago core migration. Sites that do
    /// not execute on CPU cores ignore it.
    fn set_cores(&self, _cores: u32) {}

    /// Installs the shared snapshot-keyed plan-data cache. Every site built
    /// into one engine receives the *same* cache, so materialised columns,
    /// zonemap statistics and join hash tables derived by one site's
    /// dispatch are reused by every other site for the same snapshot. Sites
    /// default to a private cache, so standalone engines (tests, benches)
    /// still amortise repeated queries.
    fn set_plan_cache(&mut self, _cache: PlanDataCache) {}

    /// Installs the engine's shared trace handle. Like the plan cache, every
    /// site built into one engine receives the same [`Tracer`], so one
    /// query's spans — whichever site ran it — land in one ring. Sites
    /// default to ignoring it (a disabled tracer), so standalone engines pay
    /// nothing.
    fn set_tracer(&mut self, _tracer: Tracer) {}
}

/// Emits a site execution's kernel/merge spans: one span per launched kernel
/// (simulated durations — the same frame of reference as the site's
/// [`ExecBreakdown`], so per-query span sums are comparable with the
/// query's breakdown), with the full breakdown attached to the *last* span.
/// A site without per-kernel metrics (the CPU pipeline) gets one `Kernel`
/// span covering its whole execution. Shared by all three sites so their
/// traces cannot drift apart in shape.
pub(crate) fn emit_execution_spans(
    tracer: &Tracer,
    site: OlapTarget,
    kernels: &[KernelMetrics],
    breakdown: &ExecBreakdown,
    total: SimDuration,
    interconnect_bytes: u64,
) {
    if !tracer.enabled() {
        return;
    }
    if kernels.is_empty() {
        tracer.record(
            SpanEvent::new(SpanKind::Kernel)
                .site(site)
                .dur_secs(total.as_secs_f64())
                .bytes(interconnect_bytes)
                .breakdown(*breakdown),
        );
        return;
    }
    for (i, k) in kernels.iter().enumerate() {
        let kind = if k.name.starts_with("merge") { SpanKind::Merge } else { SpanKind::Kernel };
        let mut event = SpanEvent::new(kind).site(site).dur_secs(k.time.as_secs_f64()).bytes(k.interconnect_bytes);
        if i + 1 == kernels.len() {
            event = event.breakdown(*breakdown);
        }
        tracer.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuOlapEngine;
    use crate::engine::{DataPlacement, GpuOlapEngine};
    use h2tap_common::{AggExpr, AttrType, PartitionId, Schema, Value};
    use h2tap_gpu_sim::{GpuDevice, GpuSpec};
    use h2tap_storage::{Database, Layout};

    fn snapshot_table(rows: i64) -> SnapshotTable {
        let db = Database::new(1);
        let t = db.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        for i in 0..rows {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(2 * i)]).unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    fn sites() -> Vec<Box<dyn ExecutionSite>> {
        vec![
            Box::new(GpuOlapEngine::new(GpuDevice::new(GpuSpec::gtx_980()), DataPlacement::DeviceResident)),
            Box::new(CpuOlapEngine::archipelago_default(4)),
            Box::new(
                crate::multi_gpu::MultiGpuOlapEngine::new(
                    vec![GpuDevice::new(GpuSpec::gtx_980_ti()), GpuDevice::new(GpuSpec::gtx_580())],
                    DataPlacement::DeviceResident,
                )
                .unwrap(),
            ),
        ]
    }

    #[test]
    fn all_sites_agree_through_the_trait() {
        let table = snapshot_table(1_000);
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let mut answers = Vec::new();
        for site in sites() {
            let handle = site.register_table(&table, "t").unwrap();
            let out = site.execute(handle, &table, &query).unwrap();
            assert_eq!(out.site, site.target());
            answers.push(out.value);
            site.reset_tables();
        }
        assert!(answers.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()), "{answers:?}");
        assert_eq!(answers[0], (0..1_000).map(|i| 2.0 * i as f64).sum::<f64>());
    }

    #[test]
    fn both_sites_agree_on_a_join_group_by_plan() {
        // Probe: c0 = i, c1 = 2i; the build table is keyed on the even
        // values c1 takes, classed modulo 3.
        let probe = snapshot_table(500);
        let db = Database::new(1);
        let t = db
            .create_table(
                "dim",
                Schema::new(vec![
                    h2tap_common::Attribute::new("key", h2tap_common::AttrType::Int64),
                    h2tap_common::Attribute::new("class", h2tap_common::AttrType::Int32),
                ])
                .unwrap(),
                Layout::Dsm,
            )
            .unwrap();
        for i in 0..300i64 {
            db.insert(PartitionId(0), t, &[Value::Int64(2 * i), Value::Int32((i % 3) as i32)]).unwrap();
        }
        let build = db.snapshot().table(t).unwrap().clone();
        let plan = h2tap_common::OlapPlan {
            predicates: vec![h2tap_common::Predicate::between(0, 0.0, 399.0)],
            join: Some(h2tap_common::JoinSpec { probe_column: 1, build_key: 0, build_predicates: vec![] }),
            group_by: Some(h2tap_common::PlanColumn::Build(1)),
            aggregates: vec![AggExpr::SumColumns(vec![1]), AggExpr::Count],
        };
        let mut results = Vec::new();
        for site in sites() {
            let ph = site.register_table(&probe, "fact").unwrap();
            let bh = site.register_table(&build, "dim").unwrap();
            let out = site.execute_plan(ph, &probe, Some((bh, &build)), &plan).unwrap();
            assert_eq!(out.site, site.target());
            results.push(out);
            site.reset_tables();
        }
        // Byte-identical groups through the trait, on every site.
        for pair in results.windows(2) {
            assert_eq!(pair[0].groups, pair[1].groups);
            assert_eq!(pair[0].qualifying_rows, pair[1].qualifying_rows);
        }
        // Probe rows 0..=399 have c1 = 2i in 0..=798; build keys reach 598,
        // so rows with c1 <= 598 (i <= 299) survive the join.
        assert_eq!(results[0].qualifying_rows, 300);
        assert_eq!(results[0].groups.len(), 3);
    }

    #[test]
    fn free_device_bytes_distinguishes_bounded_sites() {
        let all = sites();
        assert!(all[0].free_device_bytes().is_some(), "the GPU site has bounded device memory");
        assert!(all[1].free_device_bytes().is_none(), "the CPU streams from host DRAM");
        assert!(all[2].free_device_bytes().is_some(), "the multi-GPU site reports its min per-device headroom");
    }

    #[test]
    fn targets_and_labels_identify_the_sites() {
        let all = sites();
        assert_eq!(all[0].target(), OlapTarget::Gpu);
        assert_eq!(all[1].target(), OlapTarget::Cpu);
        assert_eq!(all[2].target(), OlapTarget::MultiGpu);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn capabilities_enumerate_the_sites_for_placement() {
        let all = sites();
        for site in &all {
            assert_eq!(site.capability().target(), site.target());
        }
        match all[2].capability() {
            h2tap_scheduler::SiteCapability::Gpu { devices, .. } => {
                assert_eq!(devices.len(), 2);
                let total: f64 = devices.iter().map(|d| d.shard_fraction).sum();
                assert!((total - 1.0).abs() < 1e-12, "shard fractions cover the table");
            }
            other => panic!("multi-GPU capability must enumerate devices: {other:?}"),
        }
    }

    #[test]
    fn resident_fraction_reflects_placement() {
        let device_resident = sites().remove(0);
        assert_eq!(device_resident.resident_fraction(), 1.0);
        let uva: Box<dyn ExecutionSite> = Box::new(GpuOlapEngine::new(
            GpuDevice::new(GpuSpec::gtx_980()),
            DataPlacement::Host(h2tap_gpu_sim::AccessMode::Uva),
        ));
        assert_eq!(uva.resident_fraction(), 0.0);
        // The CPU always streams from host DRAM: everything is "resident".
        let cpu: Box<dyn ExecutionSite> = Box::new(CpuOlapEngine::archipelago_default(8));
        assert_eq!(cpu.resident_fraction(), 1.0);
    }
}
