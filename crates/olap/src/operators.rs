//! The shared data path of the relational operator subsystem.
//!
//! Both execution sites answer an [`OlapPlan`] with the same logical
//! pipeline — filter the probe table, probe a hash table built from the
//! filtered build table, accumulate per-group aggregates — and the plan IR
//! requires their results to be **byte-identical**. Floating-point addition
//! is not associative, so this module pins the evaluation order once for
//! everyone: rows are processed in storage order within fixed chunks of
//! [`PLAN_CHUNK_ROWS`] rows ([`process_chunk`]), and per-chunk partials are
//! merged in ascending chunk order ([`merge_partials`]). The CPU site runs
//! the chunks on a thread pool and the GPU site maps them onto simulated
//! thread blocks, but because every site uses these functions over the same
//! materialised columns, the numbers that come out are bit-equal.
//!
//! # Vectorized batch execution and explicit SIMD kernels
//!
//! Within a chunk, the hot functions ([`scan_chunk`], [`process_chunk`])
//! execute **vectorized**: rows are processed in fixed
//! [`VECTOR_BATCH_ROWS`]-row batches, predicate evaluation fills a
//! *selection vector*, hash probes compact it, and aggregate accumulation
//! runs one specialised loop per [`AggExpr`] variant instead of a per-row
//! `match`. The inner loops are **explicit SIMD kernels** ([`crate::simd`]):
//! hand-unrolled 4/8-lane structs (the toolchain is stable Rust, so no
//! `std::simd`) monomorphised per column type through [`with_decoder!`] —
//! predicate masks, probe-key decodes and per-row aggregate staging are
//! lane-parallel, while every f64 *accumulation* stays sequential in
//! ascending row order. None of this changes a single bit of the results:
//! a selection vector only *skips* rows a predicate rejected (exactly the
//! rows the row-at-a-time loop `continue`d past), staged per-row values are
//! computed by the very expressions the reference evaluates, and each
//! accumulator receives the same additions in the same order. Two oracles
//! are retained and property-tested bit-identical: the row-at-a-time
//! references ([`scan_chunk_reference`], [`process_chunk_reference`]) and
//! the pre-SIMD scalar batch path ([`scan_chunk_scalar`],
//! [`process_chunk_scalar`]), which the `hostperf` benchmark also times as
//! the prior-PR baseline.
//!
//! # Zonemap statistics and parallel materialisation
//!
//! [`MaterializedColumns::new`] copies each accessed column and computes
//! its per-chunk min/max *zonemap statistics* in one fused pass per chunk —
//! the zonemap reads the chunk while it is still cache-resident from the
//! copy — and runs those per-(column, chunk) tasks on the shared scoped
//! pool ([`crate::pool`]), preserving chunk order in the output.
//! [`scan_chunk_can_qualify`] then answers in O(#predicates) per chunk
//! instead of re-scanning the chunk's values per predicate per query (the
//! old behaviour is retained as [`scan_chunk_can_qualify_reference`], and
//! the prior single-threaded two-pass build as
//! [`MaterializedColumns::new_serial`]). Because the stats live on the
//! materialised columns, the snapshot-keyed plan-data cache
//! ([`crate::cache::PlanDataCache`]) shares them across queries and across
//! execution sites for free.
//!
//! What the sites do *not* share is the cost model: the CPU charges cache-
//! line-granular random access against host memory bandwidth, the GPU
//! charges build/probe/aggregate kernels (with [`h2tap_gpu_sim::AccessPattern::Random`]
//! probes) through the gpu-sim memory model.

use crate::pool;
use crate::simd::{min_max_lanes, stage_key_bits, F64x4, F64x8, SimdF64};
use h2tap_common::{
    AggExpr, AttrType, GroupRow, H2Error, JoinSpec, OlapPlan, PlanColumn, Predicate, Result, ScanAggQuery,
    PLAN_CHUNK_ROWS,
};
use h2tap_storage::{decode_cell_f64, SnapshotTable};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;
use std::sync::Arc;

/// Rows per vectorized execution batch. Unlike [`PLAN_CHUNK_ROWS`] this is
/// **not** part of the IR contract: batches only bound how many rows a
/// selection vector covers at a time, and since rows are visited in
/// ascending order within and across batches, any batch size produces
/// bit-identical results. 1024 keeps a batch's selection vector and the
/// touched column slices comfortably inside the L1/L2 caches.
pub const VECTOR_BATCH_ROWS: usize = 1024;

#[inline(always)]
fn dec_f64(cell: u64) -> f64 {
    f64::from_bits(cell)
}

#[inline(always)]
fn dec_i64(cell: u64) -> f64 {
    cell as i64 as f64
}

#[inline(always)]
fn dec_i32(cell: u64) -> f64 {
    f64::from(cell as u32 as i32)
}

/// Calls `$f(decoder, args...)` with the cell decoder matching `$ty`, so the
/// generic `$f` monomorphises into one tight loop per column type instead of
/// re-dispatching [`decode_cell_f64`]'s type `match` on every row. The
/// decoder arms mirror `decode_cell_f64` exactly — the numeric
/// interpretation is identical, only the dispatch point moves out of the
/// loop.
macro_rules! with_decoder {
    ($ty:expr, $f:ident ( $($args:expr),* $(,)? )) => {
        match $ty {
            AttrType::Float64 => $f(dec_f64, $($args),*),
            AttrType::Int64 | AttrType::Str => $f(dec_i64, $($args),*),
            AttrType::Int32 | AttrType::Date => $f(dec_i32, $($args),*),
        }
    };
}

/// Per-chunk min/max of one materialised column — the zonemap ("secondary
/// index") statistics, computed once at materialisation time.
#[derive(Debug, Clone, Default)]
struct ColumnZonemap {
    /// Minimum value per chunk (`+inf` for an empty chunk).
    mins: Vec<f64>,
    /// Maximum value per chunk (`-inf` for an empty chunk).
    maxs: Vec<f64>,
}

#[inline(always)]
fn zonemap_min_max<D: Fn(u64) -> f64>(decode: D, cells: &[u64]) -> (f64, f64) {
    // Plain comparisons, not `f64::min`/`max`: NaN fails both (so NaN cells
    // are ignored, exactly like the `min`/`max` fold the O(chunk) reference
    // check uses), the rarely-taken branches predict perfectly, and the
    // loop auto-vectorises. `-0.0` vs `0.0` ties may resolve differently
    // than `f64::min`, but the bounds are only ever *compared* numerically,
    // where the two zeros are equal.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &cell in cells {
        let v = decode(cell);
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    (lo, hi)
}

/// Accessed columns of a table, materialised as raw 64-bit cells in storage
/// order, with per-chunk zonemap statistics built in the same pass. Chunked
/// operators index rows directly, which an iterator over pages cannot do.
#[derive(Debug, Clone)]
pub struct MaterializedColumns {
    cols: Vec<usize>,
    types: Vec<AttrType>,
    data: Vec<Vec<u64>>,
    zonemaps: Vec<ColumnZonemap>,
    rows: usize,
}

impl MaterializedColumns {
    /// Validates `cols` against the table and resolves their types.
    /// Selection vectors index rows as u32; tables beyond that bound are
    /// rejected here, where it is an error, rather than wrapping silently in
    /// a release-build hot loop.
    fn check_dims(table: &SnapshotTable, cols: &[usize]) -> Result<Vec<AttrType>> {
        if table.row_count() > u64::from(u32::MAX) {
            return Err(H2Error::InvalidKernel(format!(
                "table has {} rows — the vectorized data path indexes rows as u32",
                table.row_count()
            )));
        }
        cols.iter().map(|&c| table.schema.attr(c).map(|a| a.ty)).collect()
    }

    /// Materialises `cols` (attribute indexes) of `table` and builds their
    /// per-chunk zonemap statistics — the cold-path critical path of plan
    /// preparation. Column copy and zonemap min/max run **fused** (the
    /// lane-parallel min/max reads each chunk while it is still
    /// cache-resident from the copy, instead of re-streaming the whole
    /// column from memory) and the per-(column, chunk) tasks run on the
    /// shared scoped pool, preserving chunk order in the output.
    pub fn new(table: &SnapshotTable, cols: Vec<usize>) -> Result<Self> {
        let types = Self::check_dims(table, &cols)?;
        let rows = table.row_count() as usize;
        let chunks = rows.div_ceil(PLAN_CHUNK_ROWS).max(1);
        let mut data: Vec<Vec<u64>> = cols.iter().map(|_| vec![0u64; rows]).collect();
        // One task per (column, chunk): an exclusive slice of that column's
        // output buffer plus the indexes to scatter the bounds back with.
        let mut tasks: Vec<(usize, usize, &mut [u64])> = Vec::with_capacity(cols.len() * chunks);
        for (pos, col) in data.iter_mut().enumerate() {
            for (chunk, out) in col.chunks_mut(PLAN_CHUNK_ROWS).enumerate() {
                tasks.push((pos, chunk, out));
            }
        }
        let threads = pool::host_threads(tasks.len());
        let bounds = pool::run_tasks(tasks, threads, |(pos, chunk, out)| {
            let lo = chunk * PLAN_CHUNK_ROWS;
            table.column_into(cols[pos], lo..lo + out.len(), out);
            let (min, max) = with_decoder!(types[pos], min_max_lanes(out));
            (pos, chunk, min, max)
        });
        // `(+inf, -inf)` is both the empty-chunk zonemap and the identity
        // the bounds fold from, so a zero-row table (which produces no
        // tasks but still has `chunk_count() == 1`) needs no special case.
        let mut zonemaps: Vec<ColumnZonemap> = cols
            .iter()
            .map(|_| ColumnZonemap { mins: vec![f64::INFINITY; chunks], maxs: vec![f64::NEG_INFINITY; chunks] })
            .collect();
        for (pos, chunk, min, max) in bounds {
            zonemaps[pos].mins[chunk] = min;
            zonemaps[pos].maxs[chunk] = max;
        }
        Ok(Self { cols, types, data, zonemaps, rows })
    }

    /// The prior single-threaded two-pass build — copy every column, then
    /// re-scan each column per chunk for the zonemap — retained as the
    /// equivalence oracle for [`MaterializedColumns::new`] and as the
    /// prior-PR cold path the `hostperf` benchmark prices the fused
    /// parallel build against.
    pub fn new_serial(table: &SnapshotTable, cols: Vec<usize>) -> Result<Self> {
        let mut mat = Self::new_without_zonemaps(table, cols)?;
        let rows = mat.rows;
        let chunks = mat.chunk_count();
        mat.zonemaps = mat
            .types
            .iter()
            .zip(&mat.data)
            .map(|(&ty, col)| {
                let mut zm = ColumnZonemap { mins: Vec::with_capacity(chunks), maxs: Vec::with_capacity(chunks) };
                for chunk in 0..chunks {
                    let lo = chunk * PLAN_CHUNK_ROWS;
                    let hi = ((chunk + 1) * PLAN_CHUNK_ROWS).min(rows);
                    let (min, max) = with_decoder!(ty, zonemap_min_max(&col[lo.min(rows)..hi]));
                    zm.mins.push(min);
                    zm.maxs.push(max);
                }
                zm
            })
            .collect();
        Ok(mat)
    }

    /// Materialises without building zonemap statistics, single-threaded —
    /// used where the statistics would be pure waste (the build side of a
    /// hash join is consumed exactly once, at build time) and as the
    /// `hostperf` reference baseline, which pays exactly what the
    /// row-at-a-time path used to pay. [`scan_chunk_can_qualify`]
    /// transparently falls back to the O(chunk) recomputation on such an
    /// instance.
    pub fn new_without_zonemaps(table: &SnapshotTable, cols: Vec<usize>) -> Result<Self> {
        let types = Self::check_dims(table, &cols)?;
        let data: Vec<Vec<u64>> = cols.iter().map(|&c| table.column(c)).collect();
        let rows = table.row_count() as usize;
        Ok(Self { cols, types, data, zonemaps: Vec::new(), rows })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes of raw cells this materialisation holds (the figure the
    /// plan-data cache reports for sizing).
    pub fn cell_bytes(&self) -> u64 {
        self.data.iter().map(|col| (col.len() * 8) as u64).sum()
    }

    /// Number of [`PLAN_CHUNK_ROWS`]-sized chunks covering the rows.
    pub fn chunk_count(&self) -> usize {
        self.rows.div_ceil(PLAN_CHUNK_ROWS).max(1)
    }

    /// Row range of chunk `idx`.
    pub fn chunk_range(&self, idx: usize) -> Range<usize> {
        let lo = idx * PLAN_CHUNK_ROWS;
        lo..((idx + 1) * PLAN_CHUNK_ROWS).min(self.rows)
    }

    fn pos(&self, col: usize) -> usize {
        // h2tap: allow(panic) — every accessed column is validated by check_plan_tables / MaterializedColumns::new before chunk work starts; a miss here is a caller bug on the per-cell hot path, not a runtime condition.
        self.cols.iter().position(|&c| c == col).expect("column was materialised")
    }

    /// Raw cell of attribute `col` at `row`.
    fn raw(&self, col_pos: usize, row: usize) -> u64 {
        self.data[col_pos][row]
    }

    /// Numeric interpretation of attribute `col` at `row`.
    fn value(&self, col_pos: usize, row: usize) -> f64 {
        decode_cell_f64(self.types[col_pos], self.data[col_pos][row])
    }
}

/// A deterministic multiply-shift (splitmix-style) finaliser for 64-bit hash
/// keys. [`JoinHashTable`] keys are f64 bit patterns, already uniformly
/// spread by the multiply/xor-shift mix, so the std `HashMap`'s SipHash —
/// designed to resist adversarial keys that cannot occur here — only slows
/// probes down. The hasher is deterministic across processes and
/// independent of insertion order, so results stay build-order independent.
#[derive(Debug, Clone, Copy, Default)]
pub struct MulShiftHasher(u64);

impl Hasher for MulShiftHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, key: u64) {
        // splitmix64 finaliser: two multiply-shifts with full avalanche, so
        // both the low bits (bucket index) and the high bits (control byte)
        // of the output are well mixed.
        let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are hashed in practice; fold arbitrary bytes into
        // 8-byte words for completeness.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(self.0 ^ u64::from_le_bytes(word));
        }
    }
}

type JoinKeyMap = HashMap<u64, u64, BuildHasherDefault<MulShiftHasher>>;

/// The hash table of a primary-key equi-join: filtered build rows keyed by
/// the bit pattern of the numeric join key, carrying the raw group-key cell
/// as payload. Probes hash with the deterministic [`MulShiftHasher`].
#[derive(Debug, Clone)]
pub struct JoinHashTable {
    map: JoinKeyMap,
    /// Build rows considered (before build predicates).
    pub build_rows_in: u64,
}

impl JoinHashTable {
    /// Entries surviving the build predicates.
    pub fn entries(&self) -> u64 {
        self.map.len() as u64
    }

    /// Simulated footprint of the table.
    pub fn footprint_bytes(&self) -> u64 {
        self.entries().max(1) * h2tap_common::HASH_ENTRY_BYTES
    }

    /// Payload for `key` (the bit pattern of the numeric join key value).
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }
}

/// Builds the join hash table: one pass over the build table that filters by
/// `join.build_predicates` and inserts `join.build_key` with the raw cell of
/// `group_col` (when the plan groups by a build attribute) as payload.
/// Duplicate keys among surviving rows violate the PK-join contract and are
/// rejected.
pub fn build_hash_table(build: &SnapshotTable, join: &JoinSpec, group_col: Option<usize>) -> Result<JoinHashTable> {
    let mut cols: Vec<usize> = std::iter::once(join.build_key)
        .chain(join.build_predicates.iter().map(|p| p.column))
        .chain(group_col)
        .collect();
    cols.sort_unstable();
    cols.dedup();
    // No zonemaps: the build side is consumed exactly once, right here —
    // per-chunk statistics would be computed and never read.
    let mat = MaterializedColumns::new_without_zonemaps(build, cols)?;
    let key_pos = mat.pos(join.build_key);
    let pred_pos: Vec<usize> = join.build_predicates.iter().map(|p| mat.pos(p.column)).collect();
    let group_pos = group_col.map(|c| mat.pos(c));
    let mut map = JoinKeyMap::default();
    for row in 0..mat.rows() {
        if join.build_predicates.iter().zip(&pred_pos).any(|(p, &pos)| !p.matches(mat.value(pos, row))) {
            continue;
        }
        let key = mat.value(key_pos, row).to_bits();
        let payload = group_pos.map_or(0, |pos| mat.raw(pos, row));
        if map.insert(key, payload).is_some() {
            return Err(H2Error::InvalidKernel(format!(
                "duplicate build key {} — hash joins require a unique build key",
                f64::from_bits(key)
            )));
        }
    }
    Ok(JoinHashTable { map, build_rows_in: mat.rows() as u64 })
}

/// Per-group accumulator: one f64 per aggregate plus the contributing row
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAcc {
    /// Aggregate values in plan order.
    pub values: Vec<f64>,
    /// Rows accumulated into the group.
    pub rows: u64,
}

/// The result of evaluating one chunk of the probe table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkPartial {
    /// Per-group partial aggregates, keyed by the raw group-key cell.
    pub groups: BTreeMap<u64, GroupAcc>,
    /// Rows that satisfied the probe predicates.
    pub selected: u64,
    /// Rows that additionally found a join partner (equals `selected` for
    /// plans without a join).
    pub joined: u64,
}

/// Plan-wide row counters, summed over all chunks.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanTotals {
    /// Rows that satisfied the probe predicates.
    pub selected: u64,
    /// Rows that reached the aggregation (post join).
    pub joined: u64,
}

#[inline(always)]
fn fill_selection<D: Fn(u64) -> f64>(decode: D, col: &[u64], pred: &Predicate, base: usize, sel: &mut Vec<u32>) {
    // Branchless compaction: write the candidate index unconditionally and
    // advance the cursor by the predicate's boolean — no data-dependent
    // branch for the predictor to miss on selective data.
    sel.resize(col.len(), 0);
    let mut k = 0usize;
    for (i, &cell) in col.iter().enumerate() {
        sel[k] = (base + i) as u32;
        k += usize::from(pred.matches(decode(cell)));
    }
    sel.truncate(k);
}

#[inline(always)]
fn refine_selection<D: Fn(u64) -> f64>(decode: D, col: &[u64], pred: &Predicate, sel: &mut Vec<u32>) {
    let mut kept = 0usize;
    for k in 0..sel.len() {
        let row = sel[k];
        sel[kept] = row;
        kept += usize::from(pred.matches(decode(col[row as usize])));
    }
    sel.truncate(kept);
}

/// Fills `sel` with the chunk-relative indexes of the rows of
/// `batch` (a subrange of the chunk, both relative to the start of the
/// materialised columns) that satisfy every predicate, in ascending order.
/// One tight monomorphised loop per predicate: the first fills, the rest
/// compact in place.
#[inline]
fn select_batch(
    mat: &MaterializedColumns,
    predicates: &[Predicate],
    pred_pos: &[usize],
    batch: Range<usize>,
    sel: &mut Vec<u32>,
) {
    sel.clear();
    let mut first = true;
    for (pred, &pos) in predicates.iter().zip(pred_pos) {
        let ty = mat.types[pos];
        let col = &mat.data[pos];
        if first {
            with_decoder!(ty, fill_selection(&col[batch.clone()], pred, batch.start, sel));
            first = false;
        } else {
            with_decoder!(ty, refine_selection(col, pred, sel));
        }
        if sel.is_empty() {
            return;
        }
    }
}

/// Which inner-loop kernels a chunk evaluation uses. The public entry
/// points pin the flavour: [`scan_chunk`]/[`process_chunk`] run `Simd`,
/// [`scan_chunk_scalar`]/[`process_chunk_scalar`] the retained pre-SIMD
/// scalar batch loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernels {
    /// Explicit lane kernels ([`crate::simd`]).
    Simd,
    /// The retained scalar batch loops (the prior-PR vectorized path).
    Scalar,
}

#[inline(always)]
fn group_between_mask<D: Fn(u64) -> f64>(decode: D, cells: &[u64], pred: &Predicate) -> u32 {
    F64x8::decode(&decode, cells).between_mask(pred.lo, pred.hi)
}

/// SIMD flavour of [`select_batch`]: per 8-lane group, AND together every
/// predicate's lane mask (with an early out once a group's mask is empty),
/// then compact the surviving lanes branchlessly. The result is exactly the
/// fill+refine cascade's — the ascending set of rows every predicate
/// accepts — the per-predicate intermediate selections simply never
/// materialise, which also spares re-gathering rows per refine pass.
#[inline]
fn select_batch_simd(
    mat: &MaterializedColumns,
    predicates: &[Predicate],
    pred_pos: &[usize],
    batch: Range<usize>,
    sel: &mut Vec<u32>,
) {
    sel.clear();
    sel.resize(batch.len(), 0);
    let mut k = 0usize;
    let mut i = batch.start;
    while i + F64x8::LANES <= batch.end {
        let mut mask = (1u32 << F64x8::LANES) - 1;
        for (pred, &pos) in predicates.iter().zip(pred_pos) {
            let cells = &mat.data[pos][i..i + F64x8::LANES];
            mask &= with_decoder!(mat.types[pos], group_between_mask(cells, pred));
            if mask == 0 {
                break;
            }
        }
        for lane in 0..F64x8::LANES {
            sel[k] = (i + lane) as u32;
            k += ((mask >> lane) & 1) as usize;
        }
        i += F64x8::LANES;
    }
    for row in i..batch.end {
        sel[k] = row as u32;
        let keep = predicates.iter().zip(pred_pos).all(|(p, &pos)| p.matches(mat.value(pos, row)));
        k += usize::from(keep);
    }
    sel.truncate(k);
}

#[inline(always)]
fn stage_product_outer<D0: Fn(u64) -> f64>(
    d0: D0,
    ty1: AttrType,
    c0: &[u64],
    c1: &[u64],
    sel: &[u32],
    out: &mut [f64],
) {
    with_decoder!(ty1, stage_product_inner(d0, c0, c1, sel, out));
}

#[inline(always)]
fn stage_product_inner<D1: Fn(u64) -> f64, D0: Fn(u64) -> f64>(
    d1: D1,
    d0: D0,
    c0: &[u64],
    c1: &[u64],
    sel: &[u32],
    out: &mut [f64],
) {
    let mut i = 0usize;
    while i + F64x4::LANES <= sel.len() {
        let idx = &sel[i..i + F64x4::LANES];
        let prod = F64x4::gather(&d0, c0, idx).mul(F64x4::gather(&d1, c1, idx));
        for lane in 0..F64x4::LANES {
            out[i + lane] = prod.lane(lane);
        }
        i += F64x4::LANES;
    }
    for k in i..sel.len() {
        out[k] = d0(c0[sel[k] as usize]) * d1(c1[sel[k] as usize]);
    }
}

#[inline(always)]
fn stage_add_column<D: Fn(u64) -> f64>(decode: D, col: &[u64], sel: &[u32], out: &mut [f64]) {
    let mut i = 0usize;
    while i + F64x4::LANES <= sel.len() {
        let v = F64x4::gather(&decode, col, &sel[i..i + F64x4::LANES]);
        for lane in 0..F64x4::LANES {
            out[i + lane] += v.lane(lane);
        }
        i += F64x4::LANES;
    }
    for k in i..sel.len() {
        out[k] += decode(col[sel[k] as usize]);
    }
}

/// Stages each selected row's per-row aggregate input into `out[i]` (one
/// slot per selected row, in selection order) with lane kernels. The staged
/// value is computed by the very expression the scalar loops evaluate —
/// `SumProduct` is the two-column product, `SumColumns` folds from `0.0`
/// through the columns in column order exactly like the per-row
/// `sum::<f64>()` (so `0.0 + -0.0` stays `+0.0`) — which is what lets the
/// caller's sequential fold over `out` reproduce the reference bit for bit.
#[inline]
fn stage_rows_simd(mat: &MaterializedColumns, agg: &AggExpr, pos: &[usize], sel: &[u32], out: &mut Vec<f64>) {
    out.clear();
    out.resize(sel.len(), 0.0);
    match agg {
        AggExpr::SumProduct(..) => {
            let (c0, c1) = (&mat.data[pos[0]], &mat.data[pos[1]]);
            with_decoder!(mat.types[pos[0]], stage_product_outer(mat.types[pos[1]], c0, c1, sel, out));
        }
        AggExpr::SumColumns(_) => {
            for &p in pos {
                with_decoder!(mat.types[p], stage_add_column(&mat.data[p], sel, out));
            }
        }
        AggExpr::Count => unreachable!("Count accumulates without staging"),
    }
}

/// SIMD flavour of [`accumulate_selected`]: lane kernels stage the per-row
/// inputs, then one sequential fold adds them in ascending row order — the
/// same additions in the same order as the scalar loop, bit for bit.
#[inline]
fn accumulate_selected_simd(
    mat: &MaterializedColumns,
    agg: &AggExpr,
    pos: &[usize],
    sel: &[u32],
    scratch: &mut Vec<f64>,
    acc: &mut f64,
) {
    if matches!(agg, AggExpr::Count) {
        *acc += sel.len() as f64;
        return;
    }
    stage_rows_simd(mat, agg, pos, sel, scratch);
    for &v in scratch.iter() {
        *acc += v;
    }
}

#[inline(always)]
fn stage_product_dense_outer<D0: Fn(u64) -> f64>(d0: D0, ty1: AttrType, c0: &[u64], c1: &[u64], out: &mut [f64]) {
    with_decoder!(ty1, stage_product_dense_inner(d0, c0, c1, out));
}

#[inline(always)]
fn stage_product_dense_inner<D1: Fn(u64) -> f64, D0: Fn(u64) -> f64>(
    d1: D1,
    d0: D0,
    c0: &[u64],
    c1: &[u64],
    out: &mut [f64],
) {
    let mut i = 0usize;
    while i + F64x8::LANES <= out.len() {
        let prod = F64x8::decode(&d0, &c0[i..i + F64x8::LANES]).mul(F64x8::decode(&d1, &c1[i..i + F64x8::LANES]));
        for lane in 0..F64x8::LANES {
            out[i + lane] = prod.lane(lane);
        }
        i += F64x8::LANES;
    }
    for k in i..out.len() {
        out[k] = d0(c0[k]) * d1(c1[k]);
    }
}

#[inline(always)]
fn stage_add_column_dense<D: Fn(u64) -> f64>(decode: D, col: &[u64], out: &mut [f64]) {
    let mut i = 0usize;
    while i + F64x8::LANES <= out.len() {
        let v = F64x8::decode(&decode, &col[i..i + F64x8::LANES]);
        for lane in 0..F64x8::LANES {
            out[i + lane] += v.lane(lane);
        }
        i += F64x8::LANES;
    }
    for k in i..out.len() {
        out[k] += decode(col[k]);
    }
}

/// SIMD flavour of [`accumulate_dense`] (no predicates): streams the
/// columns 8 lanes at a time in [`VECTOR_BATCH_ROWS`] batches (bounding the
/// staging scratch), folding each batch sequentially in ascending row
/// order.
#[inline]
fn accumulate_dense_simd(
    mat: &MaterializedColumns,
    agg: &AggExpr,
    pos: &[usize],
    rows: Range<usize>,
    scratch: &mut Vec<f64>,
    acc: &mut f64,
) {
    if matches!(agg, AggExpr::Count) {
        *acc += rows.len() as f64;
        return;
    }
    let mut lo = rows.start;
    while lo < rows.end {
        let hi = (lo + VECTOR_BATCH_ROWS).min(rows.end);
        scratch.clear();
        scratch.resize(hi - lo, 0.0);
        match agg {
            AggExpr::SumProduct(..) => {
                let c0 = &mat.data[pos[0]][lo..hi];
                let c1 = &mat.data[pos[1]][lo..hi];
                with_decoder!(mat.types[pos[0]], stage_product_dense_outer(mat.types[pos[1]], c0, c1, scratch));
            }
            AggExpr::SumColumns(_) => {
                for &p in pos {
                    with_decoder!(mat.types[p], stage_add_column_dense(&mat.data[p][lo..hi], scratch));
                }
            }
            AggExpr::Count => unreachable!(),
        }
        for &v in scratch.iter() {
            *acc += v;
        }
        lo = hi;
    }
}

/// Accumulates one aggregate over the selected rows into `acc`, visiting
/// rows in ascending order. The per-row expressions are verbatim those of
/// the row-at-a-time reference, so each accumulator receives bit-identical
/// additions in the same order — only the per-row `match` on the aggregate
/// variant is hoisted out of the loop.
#[inline]
fn accumulate_selected(mat: &MaterializedColumns, agg: &AggExpr, pos: &[usize], sel: &[u32], acc: &mut f64) {
    match agg {
        AggExpr::SumProduct(..) => {
            for &row in sel {
                *acc += mat.value(pos[0], row as usize) * mat.value(pos[1], row as usize);
            }
        }
        AggExpr::SumColumns(_) => {
            for &row in sel {
                *acc += pos.iter().map(|&p| mat.value(p, row as usize)).sum::<f64>();
            }
        }
        AggExpr::Count => {
            // Counting sums exact small integers: adding 1.0 per row and
            // adding the (exactly representable) batch total are the same
            // f64, bit for bit.
            *acc += sel.len() as f64;
        }
    }
}

/// Like [`accumulate_selected`] for a dense row range (no predicates).
#[inline]
fn accumulate_dense(mat: &MaterializedColumns, agg: &AggExpr, pos: &[usize], rows: Range<usize>, acc: &mut f64) {
    match agg {
        AggExpr::SumProduct(..) => {
            for row in rows {
                *acc += mat.value(pos[0], row) * mat.value(pos[1], row);
            }
        }
        AggExpr::SumColumns(_) => {
            for row in rows {
                *acc += pos.iter().map(|&p| mat.value(p, row)).sum::<f64>();
            }
        }
        AggExpr::Count => {
            *acc += rows.len() as f64;
        }
    }
}

/// How the rows of a batch map onto group accumulators.
enum GroupMode {
    /// No `group_by`: one global accumulator (key 0).
    Global,
    /// `group_by` on a probe column: key is the raw cell at that position.
    Probe(usize),
    /// `group_by` on a build column: key is the join payload.
    Build,
}

/// Grouped accumulation state for one chunk: an insertion-ordered arena of
/// accumulators plus a fast key → slot index. Per-group, per-aggregate
/// addition order is the ascending row order of the rows that landed in the
/// group — exactly the order the row-at-a-time reference uses — so arena
/// bookkeeping cannot perturb a bit.
struct GroupArena {
    slot_of: HashMap<u64, u32, BuildHasherDefault<MulShiftHasher>>,
    keys: Vec<u64>,
    accs: Vec<GroupAcc>,
    aggregates: usize,
}

impl GroupArena {
    fn new(aggregates: usize) -> Self {
        Self { slot_of: HashMap::default(), keys: Vec::new(), accs: Vec::new(), aggregates }
    }

    #[inline]
    fn slot(&mut self, key: u64) -> u32 {
        *self.slot_of.entry(key).or_insert_with(|| {
            self.keys.push(key);
            self.accs.push(GroupAcc { values: vec![0.0; self.aggregates], rows: 0 });
            (self.keys.len() - 1) as u32
        })
    }

    fn into_groups(self) -> BTreeMap<u64, GroupAcc> {
        self.keys.into_iter().zip(self.accs).collect()
    }
}

/// Evaluates `plan` over `rows` of the materialised probe columns —
/// vectorized with explicit SIMD kernels: per [`VECTOR_BATCH_ROWS`] batch,
/// lane-parallel predicate masks fill a selection vector, the optional hash
/// probe stages its key decodes lanewise and compacts, and per-aggregate
/// staging kernels feed sequential accumulation into the group arena. Rows
/// are processed in ascending storage order; this function is
/// deterministic, side-effect free and bit-identical to
/// [`process_chunk_reference`] and [`process_chunk_scalar`], so chunks can
/// be evaluated on any thread in any order.
pub fn process_chunk(
    probe: &MaterializedColumns,
    plan: &OlapPlan,
    hash: Option<&JoinHashTable>,
    rows: Range<usize>,
) -> ChunkPartial {
    process_chunk_with(probe, plan, hash, rows, Kernels::Simd)
}

/// The retained pre-SIMD scalar batch path of [`process_chunk`] — the
/// prior-PR vectorized implementation, kept as a second oracle and as the
/// baseline the `hostperf` benchmark prices the SIMD kernels against.
pub fn process_chunk_scalar(
    probe: &MaterializedColumns,
    plan: &OlapPlan,
    hash: Option<&JoinHashTable>,
    rows: Range<usize>,
) -> ChunkPartial {
    process_chunk_with(probe, plan, hash, rows, Kernels::Scalar)
}

fn process_chunk_with(
    probe: &MaterializedColumns,
    plan: &OlapPlan,
    hash: Option<&JoinHashTable>,
    rows: Range<usize>,
    kernels: Kernels,
) -> ChunkPartial {
    let pred_pos: Vec<usize> = plan.predicates.iter().map(|p| probe.pos(p.column)).collect();
    let probe_key_pos = plan.join.as_ref().map(|j| probe.pos(j.probe_column));
    let mode = match plan.group_by {
        None => GroupMode::Global,
        Some(PlanColumn::Probe(c)) => GroupMode::Probe(probe.pos(c)),
        Some(PlanColumn::Build(_)) => GroupMode::Build,
    };
    // Aggregate inputs resolved to materialised positions once per chunk.
    let agg_pos: Vec<Vec<usize>> =
        plan.aggregates.iter().map(|a| a.columns().iter().map(|&c| probe.pos(c)).collect()).collect();

    let mut partial = ChunkPartial::default();
    let mut arena = GroupArena::new(plan.aggregates.len());
    // The global group's accumulators live outside the arena: no per-row
    // key lookup, and the accumulation order is unchanged (same additions,
    // same order, one accumulator).
    let mut global = GroupAcc { values: vec![0.0; plan.aggregates.len()], rows: 0 };

    let mut sel: Vec<u32> = Vec::with_capacity(VECTOR_BATCH_ROWS);
    let mut payloads: Vec<u64> = Vec::new();
    let mut slots: Vec<u32> = Vec::new();
    let mut key_bits: Vec<u64> = Vec::new();
    let mut scratch: Vec<f64> = Vec::new();

    let mut lo = rows.start;
    while lo < rows.end {
        let hi = (lo + VECTOR_BATCH_ROWS).min(rows.end);

        // 1. Predicate selection.
        if plan.predicates.is_empty() {
            sel.clear();
            sel.extend((lo..hi).map(|r| r as u32));
        } else {
            match kernels {
                Kernels::Simd => select_batch_simd(probe, &plan.predicates, &pred_pos, lo..hi, &mut sel),
                Kernels::Scalar => select_batch(probe, &plan.predicates, &pred_pos, lo..hi, &mut sel),
            }
        }
        partial.selected += sel.len() as u64;
        lo = hi;
        if sel.is_empty() {
            continue;
        }

        // 2. Hash probe: compact the selection vector to the rows that
        //    found a partner, collecting payloads for build-side grouping.
        //    The SIMD flavour stages the key decodes lanewise first; the
        //    map lookups themselves are scalar either way, over the same
        //    key bit patterns in the same order.
        if let Some(key_pos) = probe_key_pos {
            // h2tap: allow(panic) — prepare_plan populates `hash` exactly when the plan has a join, and probe_key_pos is derived from that same join; the two cannot disagree.
            let table = hash.expect("join plans carry a hash table");
            payloads.clear();
            let mut kept = 0usize;
            match kernels {
                Kernels::Simd => {
                    let col = &probe.data[key_pos];
                    with_decoder!(probe.types[key_pos], stage_key_bits(col, &sel, &mut key_bits));
                    for k in 0..sel.len() {
                        let Some(payload) = table.get(key_bits[k]) else { continue };
                        sel[kept] = sel[k];
                        kept += 1;
                        payloads.push(payload);
                    }
                }
                Kernels::Scalar => {
                    for k in 0..sel.len() {
                        let row = sel[k];
                        let Some(payload) = table.get(probe.value(key_pos, row as usize).to_bits()) else {
                            continue;
                        };
                        sel[kept] = row;
                        kept += 1;
                        payloads.push(payload);
                    }
                }
            }
            sel.truncate(kept);
        }
        partial.joined += sel.len() as u64;
        if sel.is_empty() {
            continue;
        }

        // 3. Group accumulation: resolve each surviving row's accumulator,
        //    bump row counts, then run one specialised loop per aggregate.
        match mode {
            GroupMode::Global => {
                global.rows += sel.len() as u64;
                for (slot, (agg, pos)) in plan.aggregates.iter().zip(&agg_pos).enumerate() {
                    match kernels {
                        Kernels::Simd => {
                            accumulate_selected_simd(probe, agg, pos, &sel, &mut scratch, &mut global.values[slot])
                        }
                        Kernels::Scalar => accumulate_selected(probe, agg, pos, &sel, &mut global.values[slot]),
                    }
                }
            }
            GroupMode::Probe(group_pos) => {
                slots.clear();
                for &row in &sel {
                    let slot = arena.slot(probe.raw(group_pos, row as usize));
                    arena.accs[slot as usize].rows += 1;
                    slots.push(slot);
                }
                match kernels {
                    Kernels::Simd => {
                        accumulate_grouped_simd(probe, plan, &agg_pos, &sel, &slots, &mut scratch, &mut arena)
                    }
                    Kernels::Scalar => accumulate_grouped(probe, plan, &agg_pos, &sel, &slots, &mut arena),
                }
            }
            GroupMode::Build => {
                slots.clear();
                for &payload in &payloads {
                    let slot = arena.slot(payload);
                    arena.accs[slot as usize].rows += 1;
                    slots.push(slot);
                }
                match kernels {
                    Kernels::Simd => {
                        accumulate_grouped_simd(probe, plan, &agg_pos, &sel, &slots, &mut scratch, &mut arena)
                    }
                    Kernels::Scalar => accumulate_grouped(probe, plan, &agg_pos, &sel, &slots, &mut arena),
                }
            }
        }
    }

    partial.groups = arena.into_groups();
    if matches!(mode, GroupMode::Global) && global.rows > 0 {
        partial.groups.insert(0, global);
    }
    partial
}

/// Runs one specialised accumulation loop per aggregate over the selected
/// rows, each adding into its row's arena slot. Rows are visited in
/// ascending order per loop, so every `(group, aggregate)` accumulator sees
/// the same addition sequence as the row-at-a-time reference.
#[inline]
fn accumulate_grouped(
    probe: &MaterializedColumns,
    plan: &OlapPlan,
    agg_pos: &[Vec<usize>],
    sel: &[u32],
    slots: &[u32],
    arena: &mut GroupArena,
) {
    for (agg_slot, (agg, pos)) in plan.aggregates.iter().zip(agg_pos).enumerate() {
        match agg {
            AggExpr::SumProduct(..) => {
                for (&row, &slot) in sel.iter().zip(slots) {
                    arena.accs[slot as usize].values[agg_slot] +=
                        probe.value(pos[0], row as usize) * probe.value(pos[1], row as usize);
                }
            }
            AggExpr::SumColumns(_) => {
                for (&row, &slot) in sel.iter().zip(slots) {
                    arena.accs[slot as usize].values[agg_slot] +=
                        pos.iter().map(|&p| probe.value(p, row as usize)).sum::<f64>();
                }
            }
            AggExpr::Count => {
                for &slot in slots {
                    arena.accs[slot as usize].values[agg_slot] += 1.0;
                }
            }
        }
    }
}

/// SIMD flavour of [`accumulate_grouped`]: per aggregate, lane kernels
/// stage the per-row inputs, then a sequential scatter adds each staged
/// value into its row's arena slot. Every `(group, aggregate)` accumulator
/// sees the same addition sequence as the scalar loop — staging changes
/// where the per-row value is computed, not what is added or in what order.
#[inline]
fn accumulate_grouped_simd(
    probe: &MaterializedColumns,
    plan: &OlapPlan,
    agg_pos: &[Vec<usize>],
    sel: &[u32],
    slots: &[u32],
    scratch: &mut Vec<f64>,
    arena: &mut GroupArena,
) {
    for (agg_slot, (agg, pos)) in plan.aggregates.iter().zip(agg_pos).enumerate() {
        if matches!(agg, AggExpr::Count) {
            for &slot in slots {
                arena.accs[slot as usize].values[agg_slot] += 1.0;
            }
            continue;
        }
        stage_rows_simd(probe, agg, pos, sel, scratch);
        for (&slot, &v) in slots.iter().zip(scratch.iter()) {
            arena.accs[slot as usize].values[agg_slot] += v;
        }
    }
}

/// The retained row-at-a-time implementation of [`process_chunk`] — the
/// reference oracle the vectorized path is property-tested bit-identical
/// against, and the "pre-vectorization" code path of the `hostperf`
/// benchmark.
pub fn process_chunk_reference(
    probe: &MaterializedColumns,
    plan: &OlapPlan,
    hash: Option<&JoinHashTable>,
    rows: Range<usize>,
) -> ChunkPartial {
    let pred_pos: Vec<usize> = plan.predicates.iter().map(|p| probe.pos(p.column)).collect();
    let probe_key_pos = plan.join.as_ref().map(|j| probe.pos(j.probe_column));
    let group_probe_pos = match plan.group_by {
        Some(PlanColumn::Probe(c)) => Some(probe.pos(c)),
        _ => None,
    };
    let agg_pos: Vec<Vec<usize>> =
        plan.aggregates.iter().map(|a| a.columns().iter().map(|&c| probe.pos(c)).collect()).collect();

    let mut partial = ChunkPartial::default();
    for row in rows {
        if plan.predicates.iter().zip(&pred_pos).any(|(p, &pos)| !p.matches(probe.value(pos, row))) {
            continue;
        }
        partial.selected += 1;
        let mut group_key = group_probe_pos.map_or(0, |pos| probe.raw(pos, row));
        if let Some(key_pos) = probe_key_pos {
            // h2tap: allow(panic) — prepare_plan populates `hash` exactly when the plan has a join (same invariant as the batch path above).
            let table = hash.expect("join plans carry a hash table");
            let Some(payload) = table.get(probe.value(key_pos, row).to_bits()) else { continue };
            if matches!(plan.group_by, Some(PlanColumn::Build(_))) {
                group_key = payload;
            }
        }
        partial.joined += 1;
        let acc = partial
            .groups
            .entry(group_key)
            .or_insert_with(|| GroupAcc { values: vec![0.0; plan.aggregates.len()], rows: 0 });
        acc.rows += 1;
        for (slot, (agg, pos)) in plan.aggregates.iter().zip(&agg_pos).enumerate() {
            acc.values[slot] += match agg {
                AggExpr::SumProduct(..) => probe.value(pos[0], row) * probe.value(pos[1], row),
                AggExpr::SumColumns(_) => pos.iter().map(|&p| probe.value(p, row)).sum(),
                AggExpr::Count => 1.0,
            };
        }
    }
    partial
}

/// Merges per-chunk partials **in the order given** (callers pass ascending
/// chunk order — this is what keeps f64 aggregates byte-identical across
/// sites) and emits groups in ascending raw-key order. A plan without
/// `group_by` always yields exactly one global group (key 0, zeroed when no
/// row qualified), so scan-style plans have a scalar answer even on empty
/// selections; grouped plans yield one group per key that actually occurred.
pub fn merge_partials(plan: &OlapPlan, partials: Vec<ChunkPartial>) -> (Vec<GroupRow>, PlanTotals) {
    let mut totals = PlanTotals::default();
    let mut merged: BTreeMap<u64, GroupAcc> = BTreeMap::new();
    for partial in partials {
        totals.selected += partial.selected;
        totals.joined += partial.joined;
        for (key, acc) in partial.groups {
            match merged.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(acc);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let g = slot.get_mut();
                    g.rows += acc.rows;
                    for (v, add) in g.values.iter_mut().zip(&acc.values) {
                        *v += add;
                    }
                }
            }
        }
    }
    if plan.group_by.is_none() && merged.is_empty() {
        merged.insert(0, GroupAcc { values: vec![0.0; plan.aggregates.len()], rows: 0 });
    }
    let groups = merged.into_iter().map(|(key, acc)| GroupRow { key, values: acc.values, rows: acc.rows }).collect();
    (groups, totals)
}

/// The result of evaluating one scan chunk of a [`ScanAggQuery`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScanChunkPartial {
    /// Partial aggregate over the chunk's qualifying rows.
    pub value: f64,
    /// Rows in the chunk that satisfied every predicate.
    pub qualifying: u64,
}

/// Whether any row of chunk `chunk` *could* satisfy the predicates, judged
/// from the zonemap statistics [`MaterializedColumns::new`] built at
/// materialisation time — O(#predicates), no data scan. `true` is always
/// safe; `false` guarantees the chunk holds no qualifying row, so skipping
/// it cannot change the aggregate (the chunk's partial would be exactly
/// zero).
pub fn scan_chunk_can_qualify(mat: &MaterializedColumns, predicates: &[Predicate], chunk: usize) -> bool {
    if mat.zonemaps.len() != mat.cols.len() {
        // Materialised without statistics (the retained pre-PR baseline):
        // fall back to recomputing from the data.
        return scan_chunk_can_qualify_reference(mat, predicates, mat.chunk_range(chunk));
    }
    for pred in predicates {
        let pos = mat.pos(pred.column);
        let zm = &mat.zonemaps[pos];
        if zm.maxs[chunk] < pred.lo || zm.mins[chunk] > pred.hi {
            return false;
        }
    }
    true
}

/// The retained pre-zonemap-statistics implementation: recomputes each
/// predicate column's min/max with a full O(chunk) scan on every call. Kept
/// as the oracle for [`scan_chunk_can_qualify`] and as the
/// "pre-optimisation" code path of the `hostperf` benchmark.
pub fn scan_chunk_can_qualify_reference(
    mat: &MaterializedColumns,
    predicates: &[Predicate],
    rows: Range<usize>,
) -> bool {
    for pred in predicates {
        let pos = mat.pos(pred.column);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for row in rows.clone() {
            let v = mat.value(pos, row);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi < pred.lo || lo > pred.hi {
            return false;
        }
    }
    true
}

/// Evaluates a [`ScanAggQuery`] over one chunk of the materialised columns —
/// the scan-side counterpart of [`process_chunk`], vectorized the same way:
/// per-batch lane-parallel predicate selection into a selection vector,
/// then SIMD staging + sequential accumulation per aggregate variant. Rows
/// are visited in ascending storage order, so a chunk's partial is
/// deterministic (and bit-identical to [`scan_chunk_reference`] and
/// [`scan_chunk_scalar`]) regardless of which thread or simulated thread
/// block evaluates it; [`merge_scan_partials`] then pins the merge order,
/// which together makes `ScanAggQuery` f64 answers **byte-identical across
/// execution sites**.
pub fn scan_chunk(mat: &MaterializedColumns, query: &ScanAggQuery, rows: Range<usize>) -> ScanChunkPartial {
    scan_chunk_with(mat, query, rows, Kernels::Simd)
}

/// The retained pre-SIMD scalar batch path of [`scan_chunk`] — the prior-PR
/// vectorized implementation, kept as a second oracle and as the baseline
/// the `hostperf` benchmark prices the SIMD kernels against.
pub fn scan_chunk_scalar(mat: &MaterializedColumns, query: &ScanAggQuery, rows: Range<usize>) -> ScanChunkPartial {
    scan_chunk_with(mat, query, rows, Kernels::Scalar)
}

fn scan_chunk_with(
    mat: &MaterializedColumns,
    query: &ScanAggQuery,
    rows: Range<usize>,
    kernels: Kernels,
) -> ScanChunkPartial {
    let pred_pos: Vec<usize> = query.predicates.iter().map(|p| mat.pos(p.column)).collect();
    let agg_pos: Vec<usize> = query.aggregate.columns().iter().map(|&c| mat.pos(c)).collect();
    let mut partial = ScanChunkPartial::default();
    let mut scratch: Vec<f64> = Vec::new();
    if query.predicates.is_empty() {
        partial.qualifying = rows.len() as u64;
        match kernels {
            Kernels::Simd => {
                accumulate_dense_simd(mat, &query.aggregate, &agg_pos, rows, &mut scratch, &mut partial.value)
            }
            Kernels::Scalar => accumulate_dense(mat, &query.aggregate, &agg_pos, rows, &mut partial.value),
        }
        return partial;
    }
    let mut sel: Vec<u32> = Vec::with_capacity(VECTOR_BATCH_ROWS);
    let mut lo = rows.start;
    while lo < rows.end {
        let hi = (lo + VECTOR_BATCH_ROWS).min(rows.end);
        match kernels {
            Kernels::Simd => {
                select_batch_simd(mat, &query.predicates, &pred_pos, lo..hi, &mut sel);
                partial.qualifying += sel.len() as u64;
                accumulate_selected_simd(mat, &query.aggregate, &agg_pos, &sel, &mut scratch, &mut partial.value);
            }
            Kernels::Scalar => {
                select_batch(mat, &query.predicates, &pred_pos, lo..hi, &mut sel);
                partial.qualifying += sel.len() as u64;
                accumulate_selected(mat, &query.aggregate, &agg_pos, &sel, &mut partial.value);
            }
        }
        lo = hi;
    }
    partial
}

/// The retained row-at-a-time implementation of [`scan_chunk`] — the
/// reference oracle for the vectorized path and the "pre-vectorization"
/// code path of the `hostperf` benchmark.
pub fn scan_chunk_reference(mat: &MaterializedColumns, query: &ScanAggQuery, rows: Range<usize>) -> ScanChunkPartial {
    let pred_pos: Vec<usize> = query.predicates.iter().map(|p| mat.pos(p.column)).collect();
    let agg_pos: Vec<usize> = query.aggregate.columns().iter().map(|&c| mat.pos(c)).collect();
    let mut partial = ScanChunkPartial::default();
    for row in rows {
        if query.predicates.iter().zip(&pred_pos).any(|(p, &pos)| !p.matches(mat.value(pos, row))) {
            continue;
        }
        partial.qualifying += 1;
        partial.value += match &query.aggregate {
            AggExpr::SumProduct(..) => mat.value(agg_pos[0], row) * mat.value(agg_pos[1], row),
            AggExpr::SumColumns(_) => agg_pos.iter().map(|&p| mat.value(p, row)).sum(),
            AggExpr::Count => 1.0,
        };
    }
    partial
}

/// Merges scan-chunk partials **in the order given** (callers pass ascending
/// chunk order) into the query's `(value, qualifying_rows)` answer. Chunks a
/// zonemap proved empty may simply be omitted: their partial is exactly
/// `0.0`, and `x + 0.0` is the f64 identity, so skipping preserves
/// bit-equality with a site that evaluated every chunk.
pub fn merge_scan_partials(partials: impl IntoIterator<Item = ScanChunkPartial>) -> (f64, u64) {
    let mut value = 0.0f64;
    let mut qualifying = 0u64;
    for p in partials {
        value += p.value;
        qualifying += p.qualifying;
    }
    (value, qualifying)
}

/// Everything both sites need before they can evaluate a plan's chunks: the
/// materialised probe columns and the (optional) join hash table. Both are
/// shared (`Arc`) so the snapshot-keyed plan-data cache can hand the same
/// instances to every site and every query of a snapshot.
#[derive(Debug, Clone)]
pub struct PlanData {
    /// Accessed probe columns, materialised in storage order.
    pub mat: Arc<MaterializedColumns>,
    /// The join hash table (present exactly when the plan joins).
    pub hash: Option<Arc<JoinHashTable>>,
}

/// The shared preamble of plan execution: validates the plan against the
/// presence of a build table, rejects empty tables, builds the join hash
/// table from the filtered build side and materialises the accessed probe
/// columns. Both sites call this so their data paths — and their error
/// behaviour on malformed or empty inputs — cannot drift apart; what remains
/// site-specific is how the chunks are scheduled and what the pipeline is
/// charged. (Sites that hold a [`crate::cache::PlanDataCache`] go through
/// [`crate::cache::PlanDataCache::prepare_plan`] instead, which produces the
/// same `PlanData` but shares it across queries and sites.)
pub fn prepare_plan(
    probe_table: &SnapshotTable,
    build_table: Option<&SnapshotTable>,
    plan: &OlapPlan,
) -> Result<PlanData> {
    let build_group_col = check_plan_tables(probe_table, build_table, plan)?;
    let hash = match (&plan.join, build_table) {
        (Some(join), Some(build)) => Some(Arc::new(build_hash_table(build, join, build_group_col)?)),
        _ => None,
    };
    let mat = Arc::new(MaterializedColumns::new(probe_table, plan.probe_columns_accessed())?);
    Ok(PlanData { mat, hash })
}

/// The validation half of [`prepare_plan`]: checks the plan/table pairing
/// and rejects empty tables, returning the build-side group column (if
/// any). Shared with the cached preparation path so cached and uncached
/// execution reject malformed inputs identically.
pub fn check_plan_tables(
    probe_table: &SnapshotTable,
    build_table: Option<&SnapshotTable>,
    plan: &OlapPlan,
) -> Result<Option<usize>> {
    let build_group_col = check_plan(plan, build_table.is_some())?;
    if probe_table.row_count() == 0 {
        return Err(H2Error::InvalidKernel("cannot execute a plan over an empty probe table".into()));
    }
    if let Some(build) = build_table {
        if build.row_count() == 0 {
            return Err(H2Error::InvalidKernel("cannot execute a join plan over an empty build table".into()));
        }
    }
    Ok(build_group_col)
}

/// Validates `plan` against the presence of a build table and returns the
/// group column on the build side (if any). Shared by both sites so they
/// reject malformed plans identically.
pub fn check_plan(plan: &OlapPlan, has_build: bool) -> Result<Option<usize>> {
    plan.validate().map_err(H2Error::Config)?;
    match (&plan.join, has_build) {
        (Some(_), false) => return Err(H2Error::Config("join plan executed without a build table".into())),
        (None, true) => return Err(H2Error::Config("build table supplied but the plan has no join".into())),
        _ => {}
    }
    Ok(match plan.group_by {
        Some(PlanColumn::Build(c)) => Some(c),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{PartitionId, Predicate, Schema, Value};
    use h2tap_storage::{Database, Layout};

    /// probe: key = i, fk = i % 100, val = i as f64; build: key = 0..50,
    /// size = key % 10, brand = key % 5.
    fn tables(probe_rows: i64) -> (SnapshotTable, SnapshotTable) {
        let db = Database::new(1);
        let probe_schema = Schema::new(vec![
            h2tap_common::Attribute::new("k", AttrType::Int64),
            h2tap_common::Attribute::new("fk", AttrType::Int64),
            h2tap_common::Attribute::new("val", AttrType::Float64),
        ])
        .unwrap();
        let p = db.create_table("probe", probe_schema, Layout::Dsm).unwrap();
        for i in 0..probe_rows {
            db.insert(PartitionId(0), p, &[Value::Int64(i), Value::Int64(i % 100), Value::Float64(i as f64)]).unwrap();
        }
        let build_schema = Schema::new(vec![
            h2tap_common::Attribute::new("key", AttrType::Int64),
            h2tap_common::Attribute::new("size", AttrType::Int32),
            h2tap_common::Attribute::new("brand", AttrType::Int32),
        ])
        .unwrap();
        let b = db.create_table("build", build_schema, Layout::Dsm).unwrap();
        for i in 0..50i64 {
            db.insert(
                PartitionId(0),
                b,
                &[Value::Int64(i), Value::Int32((i % 10) as i32), Value::Int32((i % 5) as i32)],
            )
            .unwrap();
        }
        let snap = db.snapshot();
        (snap.table(p).unwrap().clone(), snap.table(b).unwrap().clone())
    }

    fn join_plan() -> OlapPlan {
        OlapPlan {
            predicates: vec![],
            join: Some(JoinSpec {
                probe_column: 1,
                build_key: 0,
                build_predicates: vec![Predicate::between(1, 0.0, 4.0)],
            }),
            group_by: Some(PlanColumn::Build(2)),
            aggregates: vec![AggExpr::SumColumns(vec![2]), AggExpr::Count],
        }
    }

    #[test]
    fn hash_build_filters_and_carries_group_payload() {
        let (_, build) = tables(10);
        let plan = join_plan();
        let table = build_hash_table(&build, plan.join.as_ref().unwrap(), Some(2)).unwrap();
        // size <= 4 keeps keys with key % 10 in 0..=4: 25 of 50.
        assert_eq!(table.entries(), 25);
        assert_eq!(table.build_rows_in, 50);
        // Key 3 survives, payload is brand 3 % 5 = 3 (raw Int32 cell).
        assert_eq!(table.get(3.0f64.to_bits()), Some(3));
        assert_eq!(table.get(5.0f64.to_bits()), None);
    }

    #[test]
    fn duplicate_build_keys_are_rejected() {
        // A build table keyed on a column with repeats (i % 2) violates the
        // PK-join contract.
        let join = JoinSpec { probe_column: 0, build_key: 1, build_predicates: vec![] };
        let db = Database::new(1);
        let t = db.create_table("b", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        for i in 0..4i64 {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(i % 2)]).unwrap();
        }
        let snap = db.snapshot();
        let dup = snap.table(t).unwrap().clone();
        assert!(build_hash_table(&dup, &join, None).is_err());
    }

    #[test]
    fn mulshift_hasher_is_deterministic_and_spreads_bits() {
        let hash = |key: u64| {
            let mut h = MulShiftHasher::default();
            h.write_u64(key);
            h.finish()
        };
        assert_eq!(hash(42), hash(42), "same key, same hash, every time");
        // f64 bit patterns of consecutive integers differ only in a few
        // high mantissa bits; the finaliser must spread them across the low
        // bits the hash map buckets on.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            low_bits.insert(hash((i as f64).to_bits()) & 0x3f);
        }
        assert!(low_bits.len() > 32, "low 6 bits should be well spread, got {} distinct", low_bits.len());
    }

    #[test]
    fn chunked_evaluation_matches_a_scalar_reference() {
        let (probe, build) = tables(1_000);
        let plan = join_plan();
        let hash = build_hash_table(&build, plan.join.as_ref().unwrap(), Some(2)).unwrap();
        let mat = MaterializedColumns::new(&probe, plan.probe_columns_accessed()).unwrap();
        let partials: Vec<ChunkPartial> =
            (0..mat.chunk_count()).map(|i| process_chunk(&mat, &plan, Some(&hash), mat.chunk_range(i))).collect();
        let (groups, totals) = merge_partials(&plan, partials);
        // fk = i % 100 joins when it hits one of the 25 surviving build keys
        // (fk < 50 and fk % 10 <= 4), each fk value occurring 10 times.
        assert_eq!(totals.selected, 1_000);
        assert_eq!(totals.joined, 250);
        // Groups are brands 0..5 of surviving keys.
        assert_eq!(groups.len(), 5);
        let total_rows: u64 = groups.iter().map(|g| g.rows).sum();
        assert_eq!(total_rows, 250);
        // SumColumns([2]) over probe col2 = i as f64; reference per brand.
        let mut expect: BTreeMap<u64, f64> = BTreeMap::new();
        for i in 0..1_000u64 {
            let fk = i % 100;
            if fk % 10 <= 4 && fk < 50 {
                let brand = (fk % 5) as u32 as u64;
                *expect.entry(brand).or_default() += i as f64;
            }
        }
        for g in &groups {
            let want = expect[&g.key];
            assert!((g.values[0] - want).abs() < 1e-9, "brand {} got {} want {want}", g.key, g.values[0]);
            assert_eq!(g.values[1], g.rows as f64, "count aggregate tracks rows");
        }
    }

    #[test]
    fn vectorized_plan_chunks_are_bit_identical_to_the_reference() {
        // Several chunks, every group mode, predicates + join.
        let (probe, build) = tables(200_000);
        let base = join_plan();
        let plans = [
            base.clone(),
            OlapPlan { predicates: vec![Predicate::between(0, 100.0, 150_000.0)], ..base.clone() },
            OlapPlan { group_by: Some(PlanColumn::Probe(1)), ..base.clone() },
            OlapPlan { group_by: None, ..base.clone() },
            OlapPlan {
                predicates: vec![Predicate::between(1, 10.0, 59.0)],
                join: None,
                group_by: Some(PlanColumn::Probe(1)),
                aggregates: vec![AggExpr::SumProduct(1, 2), AggExpr::Count, AggExpr::SumColumns(vec![0, 2])],
            },
        ];
        for plan in plans {
            let hash = match &plan.join {
                Some(join) => {
                    let group_col = check_plan(&plan, true).unwrap();
                    Some(build_hash_table(&build, join, group_col).unwrap())
                }
                None => None,
            };
            let mat = MaterializedColumns::new(&probe, plan.probe_columns_accessed()).unwrap();
            for i in 0..mat.chunk_count() {
                let simd = process_chunk(&mat, &plan, hash.as_ref(), mat.chunk_range(i));
                let scalar = process_chunk_scalar(&mat, &plan, hash.as_ref(), mat.chunk_range(i));
                let slow = process_chunk_reference(&mat, &plan, hash.as_ref(), mat.chunk_range(i));
                for fast in [&simd, &scalar] {
                    assert_eq!(fast.selected, slow.selected);
                    assert_eq!(fast.joined, slow.joined);
                    assert_eq!(fast.groups.len(), slow.groups.len());
                    for ((fk, fa), (sk, sa)) in fast.groups.iter().zip(&slow.groups) {
                        assert_eq!(fk, sk);
                        assert_eq!(fa.rows, sa.rows);
                        for (x, y) in fa.values.iter().zip(&sa.values) {
                            assert_eq!(x.to_bits(), y.to_bits(), "chunk {i} group {fk}: {x} vs {y}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn merge_order_is_chunk_order() {
        let (probe, _) = tables(200_000);
        let plan =
            OlapPlan { predicates: vec![], join: None, group_by: None, aggregates: vec![AggExpr::SumColumns(vec![2])] };
        let mat = MaterializedColumns::new(&probe, plan.probe_columns_accessed()).unwrap();
        assert!(mat.chunk_count() > 1, "test needs several chunks");
        let partials: Vec<ChunkPartial> =
            (0..mat.chunk_count()).map(|i| process_chunk(&mat, &plan, None, mat.chunk_range(i))).collect();
        let (a, _) = merge_partials(&plan, partials.clone());
        let (b, _) = merge_partials(&plan, partials);
        // Bit-equal on repeat evaluation: the contract the sites rely on.
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].key, 0);
    }

    #[test]
    fn ungrouped_plans_always_emit_the_global_group() {
        let (probe, _) = tables(100);
        // A predicate nothing satisfies: the selection is empty.
        let plan = OlapPlan {
            predicates: vec![Predicate::between(0, 1e9, 2e9)],
            join: None,
            group_by: None,
            aggregates: vec![AggExpr::SumColumns(vec![2]), AggExpr::Count],
        };
        let mat = MaterializedColumns::new(&probe, plan.probe_columns_accessed()).unwrap();
        let partials = vec![process_chunk(&mat, &plan, None, mat.chunk_range(0))];
        let (groups, totals) = merge_partials(&plan, partials);
        assert_eq!(totals.joined, 0);
        assert_eq!(groups, vec![GroupRow { key: 0, values: vec![0.0, 0.0], rows: 0 }]);
        // A grouped plan with an empty selection stays empty: no phantom
        // groups.
        let grouped = OlapPlan { group_by: Some(PlanColumn::Probe(0)), ..plan.clone() };
        let mat = MaterializedColumns::new(&probe, grouped.probe_columns_accessed()).unwrap();
        let partials = vec![process_chunk(&mat, &grouped, None, mat.chunk_range(0))];
        let (groups, _) = merge_partials(&grouped, partials);
        assert!(groups.is_empty());
    }

    #[test]
    fn scan_chunks_match_a_scalar_reference_and_merge_bit_equal() {
        let (probe, _) = tables(200_000);
        let query =
            ScanAggQuery { predicates: vec![Predicate::between(1, 10.0, 59.0)], aggregate: AggExpr::SumProduct(1, 2) };
        let mat = MaterializedColumns::new(&probe, query.columns_accessed()).unwrap();
        assert!(mat.chunk_count() > 1, "test needs several chunks");
        let partials: Vec<ScanChunkPartial> =
            (0..mat.chunk_count()).map(|i| scan_chunk(&mat, &query, mat.chunk_range(i))).collect();
        let (value, qualifying) = merge_scan_partials(partials.clone());
        let (again, _) = merge_scan_partials(partials);
        assert_eq!(value, again, "same partials in the same order are bit-equal");
        // Scalar reference: fk = i % 100 in 10..=59, aggregate fk * i.
        let mut expect = 0.0f64;
        let mut rows = 0u64;
        for i in 0..200_000u64 {
            let fk = i % 100;
            if (10..=59).contains(&fk) {
                expect += fk as f64 * i as f64;
                rows += 1;
            }
        }
        assert_eq!(qualifying, rows);
        assert!((value - expect).abs() < expect.abs() * 1e-12, "{value} vs {expect}");
    }

    #[test]
    fn vectorized_scan_chunks_are_bit_identical_to_the_reference() {
        let (probe, _) = tables(200_000);
        let queries = [
            ScanAggQuery { predicates: vec![Predicate::between(1, 10.0, 59.0)], aggregate: AggExpr::SumProduct(1, 2) },
            ScanAggQuery {
                predicates: vec![Predicate::between(1, 10.0, 59.0), Predicate::between(0, 1_000.0, 180_000.0)],
                aggregate: AggExpr::SumColumns(vec![0, 2]),
            },
            ScanAggQuery { predicates: vec![], aggregate: AggExpr::SumColumns(vec![2]) },
            ScanAggQuery { predicates: vec![Predicate::between(2, 0.0, 5_000.5)], aggregate: AggExpr::Count },
            ScanAggQuery { predicates: vec![Predicate::between(0, 1e9, 2e9)], aggregate: AggExpr::SumProduct(0, 2) },
        ];
        for query in queries {
            let mat = MaterializedColumns::new(&probe, query.columns_accessed()).unwrap();
            for i in 0..mat.chunk_count() {
                let simd = scan_chunk(&mat, &query, mat.chunk_range(i));
                let scalar = scan_chunk_scalar(&mat, &query, mat.chunk_range(i));
                let slow = scan_chunk_reference(&mat, &query, mat.chunk_range(i));
                for fast in [simd, scalar] {
                    assert_eq!(fast.qualifying, slow.qualifying, "chunk {i}");
                    assert_eq!(
                        fast.value.to_bits(),
                        slow.value.to_bits(),
                        "chunk {i}: {} vs {}",
                        fast.value,
                        slow.value
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_materialisation_matches_the_serial_two_pass_build() {
        // Cell data must be byte-identical (it is a pure copy); zonemap
        // bounds must be numerically equal (the lane-split min/max may pick
        // a different -0.0/+0.0 tie representative, which numeric equality
        // deliberately admits). Row counts cross chunk and lane boundaries.
        for rows in [1i64, 7, 1024, PLAN_CHUNK_ROWS as i64, PLAN_CHUNK_ROWS as i64 + 9, 200_000] {
            let (probe, _) = tables(rows);
            let cols = vec![0usize, 1, 2];
            let par = MaterializedColumns::new(&probe, cols.clone()).unwrap();
            let ser = MaterializedColumns::new_serial(&probe, cols).unwrap();
            assert_eq!(par.rows, ser.rows);
            assert_eq!(par.data, ser.data, "{rows} rows: copied cells must be byte-identical");
            assert_eq!(par.zonemaps.len(), ser.zonemaps.len());
            for (pz, sz) in par.zonemaps.iter().zip(&ser.zonemaps) {
                assert_eq!(pz.mins, sz.mins, "{rows} rows");
                assert_eq!(pz.maxs, sz.maxs, "{rows} rows");
            }
        }
    }

    #[test]
    fn zonemap_check_is_safe_and_skipping_preserves_the_answer() {
        // col0 = i is inserted sorted, so chunk min/max bound it tightly.
        let (probe, _) = tables(200_000);
        let query = ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 999.0)], aggregate: AggExpr::Count };
        let mat = MaterializedColumns::new(&probe, query.columns_accessed()).unwrap();
        let mut skipped = 0usize;
        let mut kept = Vec::new();
        for i in 0..mat.chunk_count() {
            let range = mat.chunk_range(i);
            let can = scan_chunk_can_qualify(&mat, &query.predicates, i);
            // The O(#preds) stats answer must agree with the O(chunk)
            // recomputation it replaced.
            assert_eq!(can, scan_chunk_can_qualify_reference(&mat, &query.predicates, range.clone()));
            if can {
                kept.push(scan_chunk(&mat, &query, range));
            } else {
                // Safety: a skipped chunk must truly have an all-zero partial.
                assert_eq!(scan_chunk(&mat, &query, range), ScanChunkPartial::default());
                skipped += 1;
            }
        }
        assert!(skipped > 0, "sorted data must allow skipping");
        let (value, qualifying) = merge_scan_partials(kept);
        assert_eq!(value, 1_000.0);
        assert_eq!(qualifying, 1_000);
    }

    #[test]
    fn check_plan_enforces_join_build_pairing() {
        let plan = join_plan();
        assert_eq!(check_plan(&plan, true).unwrap(), Some(2));
        assert!(check_plan(&plan, false).is_err());
        let scan = OlapPlan { predicates: vec![], join: None, group_by: None, aggregates: vec![AggExpr::Count] };
        assert_eq!(check_plan(&scan, false).unwrap(), None);
        assert!(check_plan(&scan, true).is_err());
    }
}
