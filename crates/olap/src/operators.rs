//! The shared data path of the relational operator subsystem.
//!
//! Both execution sites answer an [`OlapPlan`] with the same logical
//! pipeline — filter the probe table, probe a hash table built from the
//! filtered build table, accumulate per-group aggregates — and the plan IR
//! requires their results to be **byte-identical**. Floating-point addition
//! is not associative, so this module pins the evaluation order once for
//! everyone: rows are processed in storage order within fixed chunks of
//! [`PLAN_CHUNK_ROWS`] rows ([`process_chunk`]), and per-chunk partials are
//! merged in ascending chunk order ([`merge_partials`]). The CPU site runs
//! the chunks on a thread pool and the GPU site maps them onto simulated
//! thread blocks, but because every site uses these functions over the same
//! materialised columns, the numbers that come out are bit-equal.
//!
//! What the sites do *not* share is the cost model: the CPU charges cache-
//! line-granular random access against host memory bandwidth, the GPU
//! charges build/probe/aggregate kernels (with [`h2tap_gpu_sim::AccessPattern::Random`]
//! probes) through the gpu-sim memory model.

use h2tap_common::{
    AggExpr, AttrType, GroupRow, H2Error, JoinSpec, OlapPlan, PlanColumn, Predicate, Result, ScanAggQuery,
    PLAN_CHUNK_ROWS,
};
use h2tap_storage::{decode_cell_f64, SnapshotTable};
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

/// Accessed columns of a table, materialised as raw 64-bit cells in storage
/// order. Chunked operators index rows directly, which an iterator over
/// pages cannot do.
#[derive(Debug, Clone)]
pub struct MaterializedColumns {
    cols: Vec<usize>,
    types: Vec<AttrType>,
    data: Vec<Vec<u64>>,
    rows: usize,
}

impl MaterializedColumns {
    /// Materialises `cols` (attribute indexes) of `table`.
    pub fn new(table: &SnapshotTable, cols: Vec<usize>) -> Result<Self> {
        let types: Vec<AttrType> = cols.iter().map(|&c| table.schema.attr(c).map(|a| a.ty)).collect::<Result<_>>()?;
        let data: Vec<Vec<u64>> = cols.iter().map(|&c| table.column(c)).collect();
        Ok(Self { cols, types, data, rows: table.row_count() as usize })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of [`PLAN_CHUNK_ROWS`]-sized chunks covering the rows.
    pub fn chunk_count(&self) -> usize {
        self.rows.div_ceil(PLAN_CHUNK_ROWS).max(1)
    }

    /// Row range of chunk `idx`.
    pub fn chunk_range(&self, idx: usize) -> Range<usize> {
        let lo = idx * PLAN_CHUNK_ROWS;
        lo..((idx + 1) * PLAN_CHUNK_ROWS).min(self.rows)
    }

    fn pos(&self, col: usize) -> usize {
        self.cols.iter().position(|&c| c == col).expect("column was materialised")
    }

    /// Raw cell of attribute `col` at `row`.
    fn raw(&self, col_pos: usize, row: usize) -> u64 {
        self.data[col_pos][row]
    }

    /// Numeric interpretation of attribute `col` at `row`.
    fn value(&self, col_pos: usize, row: usize) -> f64 {
        decode_cell_f64(self.types[col_pos], self.data[col_pos][row])
    }
}

/// The hash table of a primary-key equi-join: filtered build rows keyed by
/// the bit pattern of the numeric join key, carrying the raw group-key cell
/// as payload.
#[derive(Debug, Clone)]
pub struct JoinHashTable {
    map: HashMap<u64, u64>,
    /// Build rows considered (before build predicates).
    pub build_rows_in: u64,
}

impl JoinHashTable {
    /// Entries surviving the build predicates.
    pub fn entries(&self) -> u64 {
        self.map.len() as u64
    }

    /// Simulated footprint of the table.
    pub fn footprint_bytes(&self) -> u64 {
        self.entries().max(1) * h2tap_common::HASH_ENTRY_BYTES
    }

    /// Payload for `key` (the bit pattern of the numeric join key value).
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }
}

/// Builds the join hash table: one pass over the build table that filters by
/// `join.build_predicates` and inserts `join.build_key` with the raw cell of
/// `group_col` (when the plan groups by a build attribute) as payload.
/// Duplicate keys among surviving rows violate the PK-join contract and are
/// rejected.
pub fn build_hash_table(build: &SnapshotTable, join: &JoinSpec, group_col: Option<usize>) -> Result<JoinHashTable> {
    let mut cols: Vec<usize> = std::iter::once(join.build_key)
        .chain(join.build_predicates.iter().map(|p| p.column))
        .chain(group_col)
        .collect();
    cols.sort_unstable();
    cols.dedup();
    let mat = MaterializedColumns::new(build, cols)?;
    let key_pos = mat.pos(join.build_key);
    let pred_pos: Vec<usize> = join.build_predicates.iter().map(|p| mat.pos(p.column)).collect();
    let group_pos = group_col.map(|c| mat.pos(c));
    let mut map = HashMap::new();
    for row in 0..mat.rows() {
        if join.build_predicates.iter().zip(&pred_pos).any(|(p, &pos)| !p.matches(mat.value(pos, row))) {
            continue;
        }
        let key = mat.value(key_pos, row).to_bits();
        let payload = group_pos.map_or(0, |pos| mat.raw(pos, row));
        if map.insert(key, payload).is_some() {
            return Err(H2Error::InvalidKernel(format!(
                "duplicate build key {} — hash joins require a unique build key",
                f64::from_bits(key)
            )));
        }
    }
    Ok(JoinHashTable { map, build_rows_in: mat.rows() as u64 })
}

/// Per-group accumulator: one f64 per aggregate plus the contributing row
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAcc {
    /// Aggregate values in plan order.
    pub values: Vec<f64>,
    /// Rows accumulated into the group.
    pub rows: u64,
}

/// The result of evaluating one chunk of the probe table.
#[derive(Debug, Clone, Default)]
pub struct ChunkPartial {
    /// Per-group partial aggregates, keyed by the raw group-key cell.
    pub groups: BTreeMap<u64, GroupAcc>,
    /// Rows that satisfied the probe predicates.
    pub selected: u64,
    /// Rows that additionally found a join partner (equals `selected` for
    /// plans without a join).
    pub joined: u64,
}

/// Plan-wide row counters, summed over all chunks.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanTotals {
    /// Rows that satisfied the probe predicates.
    pub selected: u64,
    /// Rows that reached the aggregation (post join).
    pub joined: u64,
}

/// Evaluates `plan` over `rows` of the materialised probe columns: predicate
/// filter, optional hash-table probe, per-group aggregation. Rows are
/// processed in ascending storage order; this function is deterministic and
/// side-effect free, so chunks can be evaluated on any thread in any order.
pub fn process_chunk(
    probe: &MaterializedColumns,
    plan: &OlapPlan,
    hash: Option<&JoinHashTable>,
    rows: Range<usize>,
) -> ChunkPartial {
    let pred_pos: Vec<usize> = plan.predicates.iter().map(|p| probe.pos(p.column)).collect();
    let probe_key_pos = plan.join.as_ref().map(|j| probe.pos(j.probe_column));
    let group_probe_pos = match plan.group_by {
        Some(PlanColumn::Probe(c)) => Some(probe.pos(c)),
        _ => None,
    };
    // Aggregate inputs resolved to materialised positions once per chunk.
    let agg_pos: Vec<Vec<usize>> =
        plan.aggregates.iter().map(|a| a.columns().iter().map(|&c| probe.pos(c)).collect()).collect();

    let mut partial = ChunkPartial::default();
    for row in rows {
        if plan.predicates.iter().zip(&pred_pos).any(|(p, &pos)| !p.matches(probe.value(pos, row))) {
            continue;
        }
        partial.selected += 1;
        let mut group_key = group_probe_pos.map_or(0, |pos| probe.raw(pos, row));
        if let Some(key_pos) = probe_key_pos {
            let table = hash.expect("join plans carry a hash table");
            let Some(payload) = table.get(probe.value(key_pos, row).to_bits()) else { continue };
            if matches!(plan.group_by, Some(PlanColumn::Build(_))) {
                group_key = payload;
            }
        }
        partial.joined += 1;
        let acc = partial
            .groups
            .entry(group_key)
            .or_insert_with(|| GroupAcc { values: vec![0.0; plan.aggregates.len()], rows: 0 });
        acc.rows += 1;
        for (slot, (agg, pos)) in plan.aggregates.iter().zip(&agg_pos).enumerate() {
            acc.values[slot] += match agg {
                AggExpr::SumProduct(..) => probe.value(pos[0], row) * probe.value(pos[1], row),
                AggExpr::SumColumns(_) => pos.iter().map(|&p| probe.value(p, row)).sum(),
                AggExpr::Count => 1.0,
            };
        }
    }
    partial
}

/// Merges per-chunk partials **in the order given** (callers pass ascending
/// chunk order — this is what keeps f64 aggregates byte-identical across
/// sites) and emits groups in ascending raw-key order. A plan without
/// `group_by` always yields exactly one global group (key 0, zeroed when no
/// row qualified), so scan-style plans have a scalar answer even on empty
/// selections; grouped plans yield one group per key that actually occurred.
pub fn merge_partials(plan: &OlapPlan, partials: Vec<ChunkPartial>) -> (Vec<GroupRow>, PlanTotals) {
    let mut totals = PlanTotals::default();
    let mut merged: BTreeMap<u64, GroupAcc> = BTreeMap::new();
    for partial in partials {
        totals.selected += partial.selected;
        totals.joined += partial.joined;
        for (key, acc) in partial.groups {
            match merged.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(acc);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let g = slot.get_mut();
                    g.rows += acc.rows;
                    for (v, add) in g.values.iter_mut().zip(&acc.values) {
                        *v += add;
                    }
                }
            }
        }
    }
    if plan.group_by.is_none() && merged.is_empty() {
        merged.insert(0, GroupAcc { values: vec![0.0; plan.aggregates.len()], rows: 0 });
    }
    let groups = merged.into_iter().map(|(key, acc)| GroupRow { key, values: acc.values, rows: acc.rows }).collect();
    (groups, totals)
}

/// The result of evaluating one scan chunk of a [`ScanAggQuery`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScanChunkPartial {
    /// Partial aggregate over the chunk's qualifying rows.
    pub value: f64,
    /// Rows in the chunk that satisfied every predicate.
    pub qualifying: u64,
}

/// Whether any row of the chunk *could* satisfy the predicates, judged from
/// the chunk's per-column min/max — the zonemap ("secondary index") check.
/// `true` is always safe; `false` guarantees the chunk holds no qualifying
/// row, so skipping it cannot change the aggregate (the chunk's partial
/// would be exactly zero).
pub fn scan_chunk_can_qualify(mat: &MaterializedColumns, predicates: &[Predicate], rows: Range<usize>) -> bool {
    for pred in predicates {
        let pos = mat.pos(pred.column);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for row in rows.clone() {
            let v = mat.value(pos, row);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi < pred.lo || lo > pred.hi {
            return false;
        }
    }
    true
}

/// Evaluates a [`ScanAggQuery`] over one chunk of the materialised columns,
/// in ascending storage order — the scan-side counterpart of
/// [`process_chunk`]. Rows are filtered and aggregated row-at-a-time, so a
/// chunk's partial is deterministic regardless of which thread (or simulated
/// thread block) evaluates it; [`merge_scan_partials`] then pins the merge
/// order, which together makes `ScanAggQuery` f64 answers **byte-identical
/// across execution sites**.
pub fn scan_chunk(mat: &MaterializedColumns, query: &ScanAggQuery, rows: Range<usize>) -> ScanChunkPartial {
    let pred_pos: Vec<usize> = query.predicates.iter().map(|p| mat.pos(p.column)).collect();
    let agg_pos: Vec<usize> = query.aggregate.columns().iter().map(|&c| mat.pos(c)).collect();
    let mut partial = ScanChunkPartial::default();
    for row in rows {
        if query.predicates.iter().zip(&pred_pos).any(|(p, &pos)| !p.matches(mat.value(pos, row))) {
            continue;
        }
        partial.qualifying += 1;
        partial.value += match &query.aggregate {
            AggExpr::SumProduct(..) => mat.value(agg_pos[0], row) * mat.value(agg_pos[1], row),
            AggExpr::SumColumns(_) => agg_pos.iter().map(|&p| mat.value(p, row)).sum(),
            AggExpr::Count => 1.0,
        };
    }
    partial
}

/// Merges scan-chunk partials **in the order given** (callers pass ascending
/// chunk order) into the query's `(value, qualifying_rows)` answer. Chunks a
/// zonemap proved empty may simply be omitted: their partial is exactly
/// `0.0`, and `x + 0.0` is the f64 identity, so skipping preserves
/// bit-equality with a site that evaluated every chunk.
pub fn merge_scan_partials(partials: impl IntoIterator<Item = ScanChunkPartial>) -> (f64, u64) {
    let mut value = 0.0f64;
    let mut qualifying = 0u64;
    for p in partials {
        value += p.value;
        qualifying += p.qualifying;
    }
    (value, qualifying)
}

/// Everything both sites need before they can evaluate a plan's chunks: the
/// materialised probe columns and the (optional) join hash table.
#[derive(Debug, Clone)]
pub struct PlanData {
    /// Accessed probe columns, materialised in storage order.
    pub mat: MaterializedColumns,
    /// The join hash table (present exactly when the plan joins).
    pub hash: Option<JoinHashTable>,
}

/// The shared preamble of plan execution: validates the plan against the
/// presence of a build table, rejects empty tables, builds the join hash
/// table from the filtered build side and materialises the accessed probe
/// columns. Both sites call this so their data paths — and their error
/// behaviour on malformed or empty inputs — cannot drift apart; what remains
/// site-specific is how the chunks are scheduled and what the pipeline is
/// charged.
pub fn prepare_plan(
    probe_table: &SnapshotTable,
    build_table: Option<&SnapshotTable>,
    plan: &OlapPlan,
) -> Result<PlanData> {
    let build_group_col = check_plan(plan, build_table.is_some())?;
    if probe_table.row_count() == 0 {
        return Err(H2Error::InvalidKernel("cannot execute a plan over an empty probe table".into()));
    }
    if let Some(build) = build_table {
        if build.row_count() == 0 {
            return Err(H2Error::InvalidKernel("cannot execute a join plan over an empty build table".into()));
        }
    }
    let hash = match (&plan.join, build_table) {
        (Some(join), Some(build)) => Some(build_hash_table(build, join, build_group_col)?),
        _ => None,
    };
    let mat = MaterializedColumns::new(probe_table, plan.probe_columns_accessed())?;
    Ok(PlanData { mat, hash })
}

/// Validates `plan` against the presence of a build table and returns the
/// group column on the build side (if any). Shared by both sites so they
/// reject malformed plans identically.
pub fn check_plan(plan: &OlapPlan, has_build: bool) -> Result<Option<usize>> {
    plan.validate().map_err(H2Error::Config)?;
    match (&plan.join, has_build) {
        (Some(_), false) => return Err(H2Error::Config("join plan executed without a build table".into())),
        (None, true) => return Err(H2Error::Config("build table supplied but the plan has no join".into())),
        _ => {}
    }
    Ok(match plan.group_by {
        Some(PlanColumn::Build(c)) => Some(c),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{PartitionId, Predicate, Schema, Value};
    use h2tap_storage::{Database, Layout};

    /// probe: key = i, fk = i % 100, val = i as f64; build: key = 0..50,
    /// size = key % 10, brand = key % 5.
    fn tables(probe_rows: i64) -> (SnapshotTable, SnapshotTable) {
        let db = Database::new(1);
        let probe_schema = Schema::new(vec![
            h2tap_common::Attribute::new("k", AttrType::Int64),
            h2tap_common::Attribute::new("fk", AttrType::Int64),
            h2tap_common::Attribute::new("val", AttrType::Float64),
        ])
        .unwrap();
        let p = db.create_table("probe", probe_schema, Layout::Dsm).unwrap();
        for i in 0..probe_rows {
            db.insert(PartitionId(0), p, &[Value::Int64(i), Value::Int64(i % 100), Value::Float64(i as f64)]).unwrap();
        }
        let build_schema = Schema::new(vec![
            h2tap_common::Attribute::new("key", AttrType::Int64),
            h2tap_common::Attribute::new("size", AttrType::Int32),
            h2tap_common::Attribute::new("brand", AttrType::Int32),
        ])
        .unwrap();
        let b = db.create_table("build", build_schema, Layout::Dsm).unwrap();
        for i in 0..50i64 {
            db.insert(
                PartitionId(0),
                b,
                &[Value::Int64(i), Value::Int32((i % 10) as i32), Value::Int32((i % 5) as i32)],
            )
            .unwrap();
        }
        let snap = db.snapshot();
        (snap.table(p).unwrap().clone(), snap.table(b).unwrap().clone())
    }

    fn join_plan() -> OlapPlan {
        OlapPlan {
            predicates: vec![],
            join: Some(JoinSpec {
                probe_column: 1,
                build_key: 0,
                build_predicates: vec![Predicate::between(1, 0.0, 4.0)],
            }),
            group_by: Some(PlanColumn::Build(2)),
            aggregates: vec![AggExpr::SumColumns(vec![2]), AggExpr::Count],
        }
    }

    #[test]
    fn hash_build_filters_and_carries_group_payload() {
        let (_, build) = tables(10);
        let plan = join_plan();
        let table = build_hash_table(&build, plan.join.as_ref().unwrap(), Some(2)).unwrap();
        // size <= 4 keeps keys with key % 10 in 0..=4: 25 of 50.
        assert_eq!(table.entries(), 25);
        assert_eq!(table.build_rows_in, 50);
        // Key 3 survives, payload is brand 3 % 5 = 3 (raw Int32 cell).
        assert_eq!(table.get(3.0f64.to_bits()), Some(3));
        assert_eq!(table.get(5.0f64.to_bits()), None);
    }

    #[test]
    fn duplicate_build_keys_are_rejected() {
        // A build table keyed on a column with repeats (i % 2) violates the
        // PK-join contract.
        let join = JoinSpec { probe_column: 0, build_key: 1, build_predicates: vec![] };
        let db = Database::new(1);
        let t = db.create_table("b", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        for i in 0..4i64 {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(i % 2)]).unwrap();
        }
        let snap = db.snapshot();
        let dup = snap.table(t).unwrap().clone();
        assert!(build_hash_table(&dup, &join, None).is_err());
    }

    #[test]
    fn chunked_evaluation_matches_a_scalar_reference() {
        let (probe, build) = tables(1_000);
        let plan = join_plan();
        let hash = build_hash_table(&build, plan.join.as_ref().unwrap(), Some(2)).unwrap();
        let mat = MaterializedColumns::new(&probe, plan.probe_columns_accessed()).unwrap();
        let partials: Vec<ChunkPartial> =
            (0..mat.chunk_count()).map(|i| process_chunk(&mat, &plan, Some(&hash), mat.chunk_range(i))).collect();
        let (groups, totals) = merge_partials(&plan, partials);
        // fk = i % 100 joins when it hits one of the 25 surviving build keys
        // (fk < 50 and fk % 10 <= 4), each fk value occurring 10 times.
        assert_eq!(totals.selected, 1_000);
        assert_eq!(totals.joined, 250);
        // Groups are brands 0..5 of surviving keys.
        assert_eq!(groups.len(), 5);
        let total_rows: u64 = groups.iter().map(|g| g.rows).sum();
        assert_eq!(total_rows, 250);
        // SumColumns([2]) over probe col2 = i as f64; reference per brand.
        let mut expect: BTreeMap<u64, f64> = BTreeMap::new();
        for i in 0..1_000u64 {
            let fk = i % 100;
            if fk % 10 <= 4 && fk < 50 {
                let brand = (fk % 5) as u32 as u64;
                *expect.entry(brand).or_default() += i as f64;
            }
        }
        for g in &groups {
            let want = expect[&g.key];
            assert!((g.values[0] - want).abs() < 1e-9, "brand {} got {} want {want}", g.key, g.values[0]);
            assert_eq!(g.values[1], g.rows as f64, "count aggregate tracks rows");
        }
    }

    #[test]
    fn merge_order_is_chunk_order() {
        let (probe, _) = tables(200_000);
        let plan =
            OlapPlan { predicates: vec![], join: None, group_by: None, aggregates: vec![AggExpr::SumColumns(vec![2])] };
        let mat = MaterializedColumns::new(&probe, plan.probe_columns_accessed()).unwrap();
        assert!(mat.chunk_count() > 1, "test needs several chunks");
        let partials: Vec<ChunkPartial> =
            (0..mat.chunk_count()).map(|i| process_chunk(&mat, &plan, None, mat.chunk_range(i))).collect();
        let (a, _) = merge_partials(&plan, partials.clone());
        let (b, _) = merge_partials(&plan, partials);
        // Bit-equal on repeat evaluation: the contract the sites rely on.
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].key, 0);
    }

    #[test]
    fn ungrouped_plans_always_emit_the_global_group() {
        let (probe, _) = tables(100);
        // A predicate nothing satisfies: the selection is empty.
        let plan = OlapPlan {
            predicates: vec![Predicate::between(0, 1e9, 2e9)],
            join: None,
            group_by: None,
            aggregates: vec![AggExpr::SumColumns(vec![2]), AggExpr::Count],
        };
        let mat = MaterializedColumns::new(&probe, plan.probe_columns_accessed()).unwrap();
        let partials = vec![process_chunk(&mat, &plan, None, mat.chunk_range(0))];
        let (groups, totals) = merge_partials(&plan, partials);
        assert_eq!(totals.joined, 0);
        assert_eq!(groups, vec![GroupRow { key: 0, values: vec![0.0, 0.0], rows: 0 }]);
        // A grouped plan with an empty selection stays empty: no phantom
        // groups.
        let grouped = OlapPlan { group_by: Some(PlanColumn::Probe(0)), ..plan.clone() };
        let mat = MaterializedColumns::new(&probe, grouped.probe_columns_accessed()).unwrap();
        let partials = vec![process_chunk(&mat, &grouped, None, mat.chunk_range(0))];
        let (groups, _) = merge_partials(&grouped, partials);
        assert!(groups.is_empty());
    }

    #[test]
    fn scan_chunks_match_a_scalar_reference_and_merge_bit_equal() {
        let (probe, _) = tables(200_000);
        let query =
            ScanAggQuery { predicates: vec![Predicate::between(1, 10.0, 59.0)], aggregate: AggExpr::SumProduct(1, 2) };
        let mat = MaterializedColumns::new(&probe, query.columns_accessed()).unwrap();
        assert!(mat.chunk_count() > 1, "test needs several chunks");
        let partials: Vec<ScanChunkPartial> =
            (0..mat.chunk_count()).map(|i| scan_chunk(&mat, &query, mat.chunk_range(i))).collect();
        let (value, qualifying) = merge_scan_partials(partials.clone());
        let (again, _) = merge_scan_partials(partials);
        assert_eq!(value, again, "same partials in the same order are bit-equal");
        // Scalar reference: fk = i % 100 in 10..=59, aggregate fk * i.
        let mut expect = 0.0f64;
        let mut rows = 0u64;
        for i in 0..200_000u64 {
            let fk = i % 100;
            if (10..=59).contains(&fk) {
                expect += fk as f64 * i as f64;
                rows += 1;
            }
        }
        assert_eq!(qualifying, rows);
        assert!((value - expect).abs() < expect.abs() * 1e-12, "{value} vs {expect}");
    }

    #[test]
    fn zonemap_check_is_safe_and_skipping_preserves_the_answer() {
        // col0 = i is inserted sorted, so chunk min/max bound it tightly.
        let (probe, _) = tables(200_000);
        let query = ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 999.0)], aggregate: AggExpr::Count };
        let mat = MaterializedColumns::new(&probe, query.columns_accessed()).unwrap();
        let mut skipped = 0usize;
        let mut kept = Vec::new();
        for i in 0..mat.chunk_count() {
            let range = mat.chunk_range(i);
            if scan_chunk_can_qualify(&mat, &query.predicates, range.clone()) {
                kept.push(scan_chunk(&mat, &query, range));
            } else {
                // Safety: a skipped chunk must truly have an all-zero partial.
                assert_eq!(scan_chunk(&mat, &query, range), ScanChunkPartial::default());
                skipped += 1;
            }
        }
        assert!(skipped > 0, "sorted data must allow skipping");
        let (value, qualifying) = merge_scan_partials(kept);
        assert_eq!(value, 1_000.0);
        assert_eq!(qualifying, 1_000);
    }

    #[test]
    fn check_plan_enforces_join_build_pairing() {
        let plan = join_plan();
        assert_eq!(check_plan(&plan, true).unwrap(), Some(2));
        assert!(check_plan(&plan, false).is_err());
        let scan = OlapPlan { predicates: vec![], join: None, group_by: None, aggregates: vec![AggExpr::Count] };
        assert_eq!(check_plan(&scan, false).unwrap(), None);
        assert!(check_plan(&scan, true).is_err());
    }
}
