//! Software-managed cache coherence.
//!
//! On the non-cache-coherent hardware the paper targets, a store performed by
//! one core is not automatically visible to loads on another core: the owner
//! must explicitly **write back** its dirty cache lines before handing data
//! over, and the receiver must **invalidate** any stale copies before
//! reading. Caldera inserts these two operations at exactly two points of the
//! transaction protocol (when a server thread grants a remote lock and when a
//! client thread releases its locks at commit).
//!
//! This module models that discipline so it can be *checked*: a
//! [`CoherenceDomain`] holds the authoritative "memory" version of each cache
//! line, every core owns a [`SoftwareCache`] of (line → version) entries, and
//! reading a line through a cache that has neither invalidated nor been
//! written back since the last remote update yields the stale version —
//! surfacing the bug a real non-CC machine would expose.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a cache line. Callers typically derive it from a record id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(pub u64);

/// The authoritative shared-memory image: line → latest written-back version.
///
/// A version is a monotonically increasing counter; data payloads live in the
/// storage engine, the coherence domain only tracks visibility.
#[derive(Debug, Default)]
pub struct CoherenceDomain {
    memory: RwLock<HashMap<LineId, u64>>,
    writebacks: AtomicU64,
    invalidations: AtomicU64,
}

impl CoherenceDomain {
    /// Creates an empty domain.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The version of `line` that has been written back to memory.
    pub fn memory_version(&self, line: LineId) -> u64 {
        *self.memory.read().get(&line).unwrap_or(&0)
    }

    fn publish(&self, line: LineId, version: u64) {
        let mut mem = self.memory.write();
        let entry = mem.entry(line).or_insert(0);
        if version > *entry {
            *entry = version;
        }
    }

    /// Number of explicit write-back operations performed in this domain.
    pub fn writeback_count(&self) -> u64 {
        self.writebacks.load(Ordering::Relaxed)
    }

    /// Number of explicit invalidation operations performed in this domain.
    pub fn invalidation_count(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

/// A core-private cache with explicit, software-controlled coherence.
#[derive(Debug)]
pub struct SoftwareCache {
    domain: Arc<CoherenceDomain>,
    /// line → (version, dirty)
    lines: HashMap<LineId, (u64, bool)>,
}

impl SoftwareCache {
    /// Creates a cache attached to a coherence domain.
    pub fn new(domain: Arc<CoherenceDomain>) -> Self {
        Self { domain, lines: HashMap::new() }
    }

    /// Reads `line` through the cache: a cached copy is returned as-is (even
    /// if stale — that is the point of the model), otherwise the memory
    /// version is fetched and cached clean.
    pub fn read(&mut self, line: LineId) -> u64 {
        if let Some((version, _)) = self.lines.get(&line) {
            return *version;
        }
        let v = self.domain.memory_version(line);
        self.lines.insert(line, (v, false));
        v
    }

    /// Writes `line` in the local cache, producing a new version that is
    /// *not* visible to other cores until [`SoftwareCache::writeback`].
    /// Returns the new (locally visible) version.
    pub fn write(&mut self, line: LineId) -> u64 {
        let base = self.lines.get(&line).map(|(v, _)| *v).unwrap_or_else(|| self.domain.memory_version(line));
        let new = base + 1;
        self.lines.insert(line, (new, true));
        new
    }

    /// Writes all dirty lines back to memory, making them visible to other
    /// cores. Returns how many lines were flushed.
    pub fn writeback(&mut self) -> usize {
        let mut flushed = 0;
        for (line, (version, dirty)) in self.lines.iter_mut() {
            if *dirty {
                self.domain.publish(*line, *version);
                *dirty = false;
                flushed += 1;
            }
        }
        if flushed > 0 {
            self.domain.writebacks.fetch_add(flushed as u64, Ordering::Relaxed);
        }
        flushed
    }

    /// Writes back a single line, used when granting a remote lock on just
    /// that record.
    pub fn writeback_line(&mut self, line: LineId) -> bool {
        if let Some((version, dirty)) = self.lines.get_mut(&line) {
            if *dirty {
                self.domain.publish(line, *version);
                *dirty = false;
                self.domain.writebacks.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Drops all clean and dirty copies so the next read fetches from memory.
    pub fn invalidate_all(&mut self) {
        let n = self.lines.len() as u64;
        self.lines.clear();
        if n > 0 {
            self.domain.invalidations.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Drops the cached copy of one line.
    pub fn invalidate_line(&mut self, line: LineId) {
        if self.lines.remove(&line).is_some() {
            self.domain.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the cache currently holds a dirty copy of `line`.
    pub fn is_dirty(&self, line: LineId) -> bool {
        self.lines.get(&line).map(|(_, d)| *d).unwrap_or(false)
    }

    /// Whether the cached copy of `line` (if any) is older than memory, i.e.
    /// the caller would read stale data. Exposed so tests and the strict
    /// runtime mode can assert the protocol inserted the required
    /// invalidations.
    pub fn is_stale(&self, line: LineId) -> bool {
        match self.lines.get(&line) {
            Some((version, dirty)) => !*dirty && *version < self.domain.memory_version(line),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_invisible_until_writeback() {
        let domain = CoherenceDomain::new();
        let mut a = SoftwareCache::new(Arc::clone(&domain));
        let mut b = SoftwareCache::new(Arc::clone(&domain));
        let line = LineId(7);

        let v = a.write(line);
        assert_eq!(v, 1);
        assert!(a.is_dirty(line));
        // Core B still sees the old memory version.
        assert_eq!(b.read(line), 0);

        assert_eq!(a.writeback(), 1);
        // B's cached copy is now stale; a fresh read after invalidation sees v1.
        assert!(b.is_stale(line));
        b.invalidate_line(line);
        assert_eq!(b.read(line), 1);
    }

    #[test]
    fn missing_invalidation_yields_stale_read() {
        let domain = CoherenceDomain::new();
        let mut owner = SoftwareCache::new(Arc::clone(&domain));
        let mut reader = SoftwareCache::new(Arc::clone(&domain));
        let line = LineId(1);
        assert_eq!(reader.read(line), 0); // warm the reader's cache
        owner.write(line);
        owner.writeback();
        // Without an invalidation the reader keeps returning the stale copy.
        assert_eq!(reader.read(line), 0);
        assert!(reader.is_stale(line));
    }

    #[test]
    fn writeback_line_flushes_only_that_line() {
        let domain = CoherenceDomain::new();
        let mut c = SoftwareCache::new(Arc::clone(&domain));
        c.write(LineId(1));
        c.write(LineId(2));
        assert!(c.writeback_line(LineId(1)));
        assert_eq!(domain.memory_version(LineId(1)), 1);
        assert_eq!(domain.memory_version(LineId(2)), 0);
        assert!(c.is_dirty(LineId(2)));
        assert!(!c.writeback_line(LineId(3)), "unknown lines are not dirty");
    }

    #[test]
    fn counters_track_protocol_activity() {
        let domain = CoherenceDomain::new();
        let mut c = SoftwareCache::new(Arc::clone(&domain));
        c.write(LineId(1));
        c.write(LineId(2));
        c.writeback();
        c.invalidate_all();
        assert_eq!(domain.writeback_count(), 2);
        assert_eq!(domain.invalidation_count(), 2);
    }

    #[test]
    fn repeated_writes_bump_versions() {
        let domain = CoherenceDomain::new();
        let mut c = SoftwareCache::new(Arc::clone(&domain));
        let line = LineId(9);
        assert_eq!(c.write(line), 1);
        assert_eq!(c.write(line), 2);
        c.writeback();
        assert_eq!(domain.memory_version(line), 2);
    }
}
