//! The message-passing fabric: per-core mailboxes over bounded channels.
//!
//! Caldera schedules one worker thread per core of the task-parallel
//! archipelago; threads never synchronise through shared memory, they
//! exchange [`Envelope`]s through this fabric. On real non-CC hardware the
//! transport would be the on-chip message-passing network (e.g. the Intel
//! SCC's message buffers); here it is a set of bounded multi-producer,
//! single-consumer channels, which preserves the programming model ("the
//! message-passing layer can be replaced ... without any change to the core
//! database logic").

use crate::CoreId;
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use h2tap_common::{H2Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A message in flight between two cores.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending core.
    pub from: CoreId,
    /// Destination core.
    pub to: CoreId,
    /// Payload.
    pub payload: M,
}

/// Shared counters for fabric traffic, used by experiments to report message
/// overhead.
#[derive(Debug, Default)]
pub struct FabricStats {
    sent: AtomicU64,
    delivered: AtomicU64,
}

impl FabricStats {
    /// Messages handed to the fabric.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Messages pulled out of mailboxes.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

/// The sending half owned by each worker: can address any core.
#[derive(Debug, Clone)]
pub struct Postbox<M> {
    core: CoreId,
    senders: Arc<Vec<Sender<Envelope<M>>>>,
    stats: Arc<FabricStats>,
}

impl<M> Postbox<M> {
    /// The core this postbox belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Number of cores in the fabric.
    pub fn fanout(&self) -> usize {
        self.senders.len()
    }

    /// Sends `payload` to `to`. Blocks if the destination mailbox is full,
    /// which provides natural back-pressure between OLTP workers.
    pub fn send(&self, to: CoreId, payload: M) -> Result<()> {
        let sender =
            self.senders.get(to.0 as usize).ok_or_else(|| H2Error::ChannelClosed(format!("no such core {to:?}")))?;
        sender
            .send(Envelope { from: self.core, to, payload })
            .map_err(|_| H2Error::ChannelClosed(format!("mailbox of {to:?} closed")))?;
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The receiving half owned by each worker: its private mailbox.
#[derive(Debug)]
pub struct Mailbox<M> {
    core: CoreId,
    receiver: Receiver<Envelope<M>>,
    stats: Arc<FabricStats>,
}

impl<M> Mailbox<M> {
    /// The core this mailbox belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Envelope<M>>> {
        match self.receiver.try_recv() {
            Ok(env) => {
                self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                Ok(Some(env))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(H2Error::ChannelClosed(format!("all senders to {:?} dropped", self.core)))
            }
        }
    }

    /// Blocking receive with a timeout; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope<M>>> {
        match self.receiver.recv_timeout(timeout) {
            Ok(env) => {
                self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                Ok(Some(env))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(H2Error::ChannelClosed(format!("all senders to {:?} dropped", self.core)))
            }
        }
    }
}

/// Builds the fabric for `cores` workers and returns one (postbox, mailbox)
/// pair per core, in core order.
///
/// `mailbox_capacity` bounds each mailbox; the default used by the OLTP
/// runtime (1024) is deep enough that lock-grant replies never deadlock
/// behind request traffic in the paper's workloads.
pub fn build_fabric<M>(cores: usize, mailbox_capacity: usize) -> (Vec<Postbox<M>>, Vec<Mailbox<M>>, Arc<FabricStats>) {
    assert!(cores > 0, "fabric needs at least one core");
    let stats = Arc::new(FabricStats::default());
    let mut senders = Vec::with_capacity(cores);
    let mut receivers = Vec::with_capacity(cores);
    for _ in 0..cores {
        let (tx, rx) = bounded(mailbox_capacity.max(1));
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let postboxes = (0..cores)
        .map(|i| Postbox { core: CoreId(i as u32), senders: Arc::clone(&senders), stats: Arc::clone(&stats) })
        .collect();
    let mailboxes = receivers
        .into_iter()
        .enumerate()
        .map(|(i, receiver)| Mailbox { core: CoreId(i as u32), receiver, stats: Arc::clone(&stats) })
        .collect();
    (postboxes, mailboxes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let (post, mail, stats) = build_fabric::<u32>(3, 8);
        post[0].send(CoreId(2), 99).unwrap();
        let env = mail[2].try_recv().unwrap().unwrap();
        assert_eq!(env.from, CoreId(0));
        assert_eq!(env.to, CoreId(2));
        assert_eq!(env.payload, 99);
        assert!(mail[1].try_recv().unwrap().is_none());
        assert_eq!(stats.sent(), 1);
        assert_eq!(stats.delivered(), 1);
    }

    #[test]
    fn sending_to_unknown_core_fails() {
        let (post, _mail, _) = build_fabric::<u32>(2, 8);
        assert!(post[0].send(CoreId(5), 1).is_err());
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let (_post, mail, _) = build_fabric::<u32>(1, 8);
        let got = mail[0].recv_timeout(Duration::from_millis(5)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn cross_thread_request_reply() {
        let (post, mut mail, _) = build_fabric::<String>(2, 8);
        let server_mail = mail.remove(1);
        let server_post = post[1].clone();
        let client_post = post[0].clone();
        let client_mail = mail.remove(0);

        let server = thread::spawn(move || {
            let env = server_mail.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
            server_post.send(env.from, format!("re:{}", env.payload)).unwrap();
        });
        client_post.send(CoreId(1), "lock".to_string()).unwrap();
        let reply = client_mail.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(reply.payload, "re:lock");
        server.join().unwrap();
    }

    #[test]
    fn fanout_reports_core_count() {
        let (post, _mail, _) = build_fabric::<u8>(4, 2);
        assert_eq!(post[0].fanout(), 4);
        assert_eq!(post[3].core(), CoreId(3));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_fabric_panics() {
        let _ = build_fabric::<u8>(0, 1);
    }
}
