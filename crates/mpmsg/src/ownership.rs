//! Partition-ownership discipline.
//!
//! On non-CC hardware "two processors can never simultaneously access a
//! shared memory word because each processor has exclusive access over its
//! partition". The registry records which core owns which partition and, in
//! strict mode, turns any access by a non-owner into an error — the software
//! analogue of the crash/corruption a real non-coherent machine would
//! produce. The OLTP runtime checks it in debug builds and in the dedicated
//! coherence tests.

use crate::CoreId;
use h2tap_common::{H2Error, PartitionId, Result};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Maps partitions to their owning cores and polices access.
#[derive(Debug, Default)]
pub struct OwnershipRegistry {
    owners: RwLock<HashMap<PartitionId, CoreId>>,
    strict: bool,
}

impl OwnershipRegistry {
    /// A registry that records ownership but does not fail on violations.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry that returns an error on any access by a non-owner.
    pub fn strict() -> Self {
        Self { owners: RwLock::new(HashMap::new()), strict: true }
    }

    /// Whether the registry is in strict mode.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Assigns (or re-assigns) a partition to a core. Re-assignment models
    /// partition migration when cores move between archipelagos.
    pub fn assign(&self, partition: PartitionId, core: CoreId) {
        self.owners.write().insert(partition, core);
    }

    /// The core that owns `partition`, if any.
    pub fn owner(&self, partition: PartitionId) -> Option<CoreId> {
        self.owners.read().get(&partition).copied()
    }

    /// Checks that `core` may touch `partition` directly.
    ///
    /// # Errors
    /// In strict mode, returns [`H2Error::OwnershipViolation`] when the
    /// partition is owned by a different core or unassigned.
    pub fn check_access(&self, core: CoreId, partition: PartitionId) -> Result<()> {
        match self.owner(partition) {
            Some(owner) if owner == core => Ok(()),
            Some(owner) => {
                if self.strict {
                    Err(H2Error::OwnershipViolation(format!(
                        "core {core:?} touched partition {partition} owned by {owner:?}"
                    )))
                } else {
                    Ok(())
                }
            }
            None => {
                if self.strict {
                    Err(H2Error::OwnershipViolation(format!("partition {partition} is unassigned")))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Number of assigned partitions.
    pub fn len(&self) -> usize {
        self.owners.read().len()
    }

    /// Whether no partitions are assigned.
    pub fn is_empty(&self) -> bool {
        self.owners.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_lookup() {
        let reg = OwnershipRegistry::new();
        reg.assign(PartitionId(0), CoreId(3));
        assert_eq!(reg.owner(PartitionId(0)), Some(CoreId(3)));
        assert_eq!(reg.owner(PartitionId(1)), None);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn lenient_mode_allows_cross_partition_access() {
        let reg = OwnershipRegistry::new();
        reg.assign(PartitionId(0), CoreId(0));
        assert!(reg.check_access(CoreId(1), PartitionId(0)).is_ok());
        assert!(reg.check_access(CoreId(1), PartitionId(9)).is_ok());
    }

    #[test]
    fn strict_mode_rejects_non_owner_access() {
        let reg = OwnershipRegistry::strict();
        reg.assign(PartitionId(0), CoreId(0));
        assert!(reg.check_access(CoreId(0), PartitionId(0)).is_ok());
        let err = reg.check_access(CoreId(1), PartitionId(0));
        assert!(matches!(err, Err(H2Error::OwnershipViolation(_))));
        let unassigned = reg.check_access(CoreId(1), PartitionId(7));
        assert!(matches!(unassigned, Err(H2Error::OwnershipViolation(_))));
    }

    #[test]
    fn reassignment_models_migration() {
        let reg = OwnershipRegistry::strict();
        reg.assign(PartitionId(0), CoreId(0));
        reg.assign(PartitionId(0), CoreId(5));
        assert!(reg.check_access(CoreId(0), PartitionId(0)).is_err());
        assert!(reg.check_access(CoreId(5), PartitionId(0)).is_ok());
    }
}
