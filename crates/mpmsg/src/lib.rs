//! Message-passing substrate for non-cache-coherent multicores.
//!
//! The H2TAP architecture "decouples shared memory from cache coherence":
//! data lives in globally shared memory, but threads may not rely on the
//! hardware to keep their caches coherent. This crate provides the three
//! pieces Caldera's task-parallel (OLTP) archipelago needs to run under that
//! contract:
//!
//! * [`fabric`] — per-core mailboxes over bounded channels, the transport for
//!   lock-request / lock-grant / release messages,
//! * [`cache`] — a software-managed cache model with explicit write-back and
//!   invalidation, plus staleness detection so tests can prove the protocol
//!   inserts them where the paper says it must,
//! * [`ownership`] — the partition-ownership discipline (each core has
//!   exclusive access to its partition) with an optional strict mode that
//!   turns violations into errors.
//!
//! On cache-coherent hosts (like the one the paper's own evaluation uses) the
//! fabric simply rides on coherent shared memory; the point is that the
//! *engine* never assumes coherence, so the transport could be swapped for a
//! hardware message-passing network or an RDMA fabric without touching the
//! database logic.

pub mod cache;
pub mod fabric;
pub mod ownership;

pub use cache::{CoherenceDomain, LineId, SoftwareCache};
pub use fabric::{build_fabric, Envelope, FabricStats, Mailbox, Postbox};
pub use ownership::OwnershipRegistry;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a CPU core participating in an archipelago.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_display() {
        assert_eq!(CoreId(4).to_string(), "core4");
    }
}
