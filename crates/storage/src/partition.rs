//! A horizontal partition: the per-core slice of every table.
//!
//! Caldera "stores data in shared memory as a collection of horizontal
//! partitions" and assigns one partition to each OLTP worker thread, which
//! then mediates all access to partition-local records. A [`PartitionStore`]
//! is that slice: a map from table id to [`TableFragment`].

use crate::table::TableFragment;
use crate::telemetry::CowTelemetry;
use crate::Layout;
use h2tap_common::{Epoch, H2Error, PartitionId, Result, Schema, TableId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// All table fragments owned by one partition.
#[derive(Debug)]
pub struct PartitionStore {
    id: PartitionId,
    fragments: BTreeMap<TableId, TableFragment>,
    telemetry: Arc<CowTelemetry>,
}

impl PartitionStore {
    /// Creates an empty partition.
    pub fn new(id: PartitionId, telemetry: Arc<CowTelemetry>) -> Self {
        Self { id, fragments: BTreeMap::new(), telemetry }
    }

    /// This partition's id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Registers a table in this partition.
    pub fn register_table(&mut self, table: TableId, schema: Arc<Schema>, layout: Layout) {
        self.fragments.entry(table).or_insert_with(|| TableFragment::new(schema, layout, Arc::clone(&self.telemetry)));
    }

    /// The fragment of `table`, if registered.
    pub fn fragment(&self, table: TableId) -> Result<&TableFragment> {
        self.fragments.get(&table).ok_or_else(|| H2Error::UnknownTable(format!("{table} in partition {}", self.id)))
    }

    /// Mutable access to the fragment of `table`.
    pub fn fragment_mut(&mut self, table: TableId) -> Result<&mut TableFragment> {
        self.fragments.get_mut(&table).ok_or_else(|| H2Error::UnknownTable(format!("{table} in partition {}", self.id)))
    }

    /// Tables registered in this partition.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.fragments.keys().copied()
    }

    /// Inserts a record into `table`, returning its partition-local row.
    pub fn insert(&mut self, table: TableId, cells: &[u64], live_epoch: Epoch) -> Result<u64> {
        self.fragment_mut(table)?.insert(cells, live_epoch)
    }

    /// Reads a record from `table`.
    pub fn read_record(&self, table: TableId, row: u64) -> Result<Vec<u64>> {
        self.fragment(table)?.read_record(row)
    }

    /// Updates a record in `table`, shadow-copying if necessary.
    pub fn update_record(&mut self, table: TableId, row: u64, cells: &[u64], live_epoch: Epoch) -> Result<()> {
        self.fragment_mut(table)?.update_record(row, cells, live_epoch)
    }

    /// Total bytes of live page storage in this partition.
    pub fn byte_size(&self) -> u64 {
        self.fragments.values().map(|f| f.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::AttrType;

    fn store() -> (PartitionStore, TableId, Arc<Schema>) {
        let telemetry = CowTelemetry::new();
        let mut p = PartitionStore::new(PartitionId(0), telemetry);
        let schema = Arc::new(Schema::homogeneous("c", 3, AttrType::Int64));
        let t = TableId(1);
        p.register_table(t, Arc::clone(&schema), Layout::Dsm);
        (p, t, schema)
    }

    #[test]
    fn insert_read_update_roundtrip() {
        let (mut p, t, _) = store();
        let row = p.insert(t, &[1, 2, 3], Epoch::ZERO).unwrap();
        assert_eq!(p.read_record(t, row).unwrap(), vec![1, 2, 3]);
        p.update_record(t, row, &[4, 5, 6], Epoch::ZERO).unwrap();
        assert_eq!(p.read_record(t, row).unwrap(), vec![4, 5, 6]);
    }

    #[test]
    fn unknown_table_errors() {
        let (mut p, _, _) = store();
        assert!(p.insert(TableId(99), &[1], Epoch::ZERO).is_err());
        assert!(p.read_record(TableId(99), 0).is_err());
        assert!(matches!(p.fragment(TableId(99)), Err(H2Error::UnknownTable(_))));
    }

    #[test]
    fn register_is_idempotent() {
        let (mut p, t, schema) = store();
        p.insert(t, &[1, 2, 3], Epoch::ZERO).unwrap();
        p.register_table(t, schema, Layout::Dsm);
        // Re-registering must not wipe existing data.
        assert_eq!(p.fragment(t).unwrap().row_count(), 1);
        assert_eq!(p.tables().count(), 1);
    }

    #[test]
    fn byte_size_grows_with_data() {
        let (mut p, t, _) = store();
        let before = p.byte_size();
        p.insert(t, &[1, 2, 3], Epoch::ZERO).unwrap();
        assert!(p.byte_size() > before);
    }
}
