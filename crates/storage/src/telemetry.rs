//! Copy-on-write and garbage-collection telemetry.
//!
//! The paper's Figures 5-7 are entirely about the cost of the shadow-copy
//! mechanism: how much memory bandwidth the copy-on-write traffic consumes
//! and how it recedes as a snapshot "converges". These counters expose that
//! traffic so experiments can report it alongside throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters describing shadow-copy activity.
#[derive(Debug, Default)]
pub struct CowTelemetry {
    pages_copied: AtomicU64,
    bytes_copied: AtomicU64,
    in_place_updates: AtomicU64,
    pages_reclaimed: AtomicU64,
    bytes_reclaimed: AtomicU64,
}

impl CowTelemetry {
    /// Creates a fresh telemetry handle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one page shadow copy of `bytes` bytes.
    pub fn record_copy(&self, bytes: u64) {
        self.pages_copied.fetch_add(1, Ordering::Relaxed);
        self.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records an update that did not need a shadow copy.
    pub fn record_in_place(&self) {
        self.in_place_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Records garbage collection of superseded pages.
    pub fn record_reclaim(&self, pages: u64, bytes: u64) {
        self.pages_reclaimed.fetch_add(pages, Ordering::Relaxed);
        self.bytes_reclaimed.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Pages shadow-copied so far.
    pub fn pages_copied(&self) -> u64 {
        self.pages_copied.load(Ordering::Relaxed)
    }

    /// Bytes shadow-copied so far.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied.load(Ordering::Relaxed)
    }

    /// Updates that hit an already-private page.
    pub fn in_place_updates(&self) -> u64 {
        self.in_place_updates.load(Ordering::Relaxed)
    }

    /// Pages reclaimed by snapshot garbage collection.
    pub fn pages_reclaimed(&self) -> u64 {
        self.pages_reclaimed.load(Ordering::Relaxed)
    }

    /// Bytes reclaimed by snapshot garbage collection.
    pub fn bytes_reclaimed(&self) -> u64 {
        self.bytes_reclaimed.load(Ordering::Relaxed)
    }

    /// Snapshot of all counters, for experiment output.
    pub fn snapshot(&self) -> CowStats {
        CowStats {
            pages_copied: self.pages_copied(),
            bytes_copied: self.bytes_copied(),
            in_place_updates: self.in_place_updates(),
            pages_reclaimed: self.pages_reclaimed(),
            bytes_reclaimed: self.bytes_reclaimed(),
        }
    }
}

/// Point-in-time copy of the [`CowTelemetry`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CowStats {
    /// Pages shadow-copied.
    pub pages_copied: u64,
    /// Bytes shadow-copied.
    pub bytes_copied: u64,
    /// Updates applied in place.
    pub in_place_updates: u64,
    /// Pages reclaimed by GC.
    pub pages_reclaimed: u64,
    /// Bytes reclaimed by GC.
    pub bytes_reclaimed: u64,
}

impl CowStats {
    /// Difference between two counter snapshots (self - earlier).
    #[must_use]
    pub fn delta_since(&self, earlier: &CowStats) -> CowStats {
        CowStats {
            pages_copied: self.pages_copied - earlier.pages_copied,
            bytes_copied: self.bytes_copied - earlier.bytes_copied,
            in_place_updates: self.in_place_updates - earlier.in_place_updates,
            pages_reclaimed: self.pages_reclaimed - earlier.pages_reclaimed,
            bytes_reclaimed: self.bytes_reclaimed - earlier.bytes_reclaimed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = CowTelemetry::new();
        t.record_copy(4096);
        t.record_copy(4096);
        t.record_in_place();
        t.record_reclaim(3, 12288);
        assert_eq!(t.pages_copied(), 2);
        assert_eq!(t.bytes_copied(), 8192);
        assert_eq!(t.in_place_updates(), 1);
        assert_eq!(t.pages_reclaimed(), 3);
        assert_eq!(t.bytes_reclaimed(), 12288);
    }

    #[test]
    fn stats_delta() {
        let t = CowTelemetry::new();
        t.record_copy(100);
        let before = t.snapshot();
        t.record_copy(50);
        t.record_in_place();
        let after = t.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.pages_copied, 1);
        assert_eq!(d.bytes_copied, 50);
        assert_eq!(d.in_place_updates, 1);
    }
}
