//! Pages: the unit of storage and of copy-on-write.
//!
//! Every page carries the epoch at which it was last (shadow-)copied, which
//! is how the snapshot mechanism distinguishes pages shared with a snapshot
//! (must be copied before the first update) from pages already private to the
//! live database (may be updated in place) — the in-memory state sketched in
//! Figure 3 of the paper.
//!
//! A page holds up to `capacity` records of a fixed-arity schema as 8-byte
//! cells. Row-major pages implement NSM; column-major pages implement DSM and
//! PAX (a PAX page is simply a column-major page whose capacity is derived
//! from the 4 KiB page budget, so each per-attribute run is a minipage).

use crate::layout::Layout;
use h2tap_common::{Epoch, H2Error, Result};

/// Internal cell arrangement of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellOrder {
    RowMajor,
    ColumnMajor,
}

/// A fixed-capacity page of records.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    epoch: Epoch,
    order: CellOrder,
    arity: usize,
    capacity: usize,
    len: usize,
    cells: Vec<u64>,
}

impl Page {
    /// Creates an empty page for `arity`-attribute records in the given
    /// layout, holding at most `capacity` records.
    pub fn new(layout: Layout, arity: usize, capacity: usize, epoch: Epoch) -> Self {
        let order = match layout {
            Layout::Nsm => CellOrder::RowMajor,
            Layout::Dsm | Layout::Pax { .. } => CellOrder::ColumnMajor,
        };
        Self { epoch, order, arity, capacity, len: 0, cells: vec![0; arity * capacity] }
    }

    /// The epoch at which this page was created or last shadow-copied.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Stamps the page with a new epoch (after a shadow copy).
    pub fn set_epoch(&mut self, epoch: Epoch) {
        self.epoch = epoch;
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of records the page can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the page is full.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Number of attributes per record.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Bytes of cell storage this page occupies (used for copy-on-write
    /// accounting).
    pub fn byte_size(&self) -> u64 {
        (self.cells.len() * std::mem::size_of::<u64>()) as u64
    }

    #[inline]
    fn idx(&self, row: usize, attr: usize) -> usize {
        match self.order {
            CellOrder::RowMajor => row * self.arity + attr,
            CellOrder::ColumnMajor => attr * self.capacity + row,
        }
    }

    /// Appends a record; returns its row slot within the page.
    ///
    /// # Errors
    /// Fails when the page is full or the record has the wrong arity.
    pub fn push(&mut self, record: &[u64]) -> Result<usize> {
        if record.len() != self.arity {
            return Err(H2Error::Config(format!(
                "record arity {} does not match page arity {}",
                record.len(),
                self.arity
            )));
        }
        if self.is_full() {
            return Err(H2Error::Config("page is full".into()));
        }
        let row = self.len;
        for (attr, cell) in record.iter().enumerate() {
            let i = self.idx(row, attr);
            self.cells[i] = *cell;
        }
        self.len += 1;
        Ok(row)
    }

    /// Reads one cell.
    ///
    /// # Errors
    /// Fails when the row or attribute is out of bounds.
    pub fn get(&self, row: usize, attr: usize) -> Result<u64> {
        self.check(row, attr)?;
        Ok(self.cells[self.idx(row, attr)])
    }

    /// Writes one cell.
    ///
    /// # Errors
    /// Fails when the row or attribute is out of bounds.
    pub fn set(&mut self, row: usize, attr: usize, value: u64) -> Result<()> {
        self.check(row, attr)?;
        let i = self.idx(row, attr);
        self.cells[i] = value;
        Ok(())
    }

    /// Reads a whole record.
    pub fn record(&self, row: usize) -> Result<Vec<u64>> {
        self.check(row, 0)?;
        Ok((0..self.arity).map(|a| self.cells[self.idx(row, a)]).collect())
    }

    /// Overwrites a whole record in place.
    pub fn set_record(&mut self, row: usize, record: &[u64]) -> Result<()> {
        if record.len() != self.arity {
            return Err(H2Error::Config("record arity mismatch".into()));
        }
        self.check(row, 0)?;
        for (attr, cell) in record.iter().enumerate() {
            let i = self.idx(row, attr);
            self.cells[i] = *cell;
        }
        Ok(())
    }

    fn check(&self, row: usize, attr: usize) -> Result<()> {
        if row >= self.len {
            return Err(H2Error::UnknownRecord(format!("row {row} out of {}", self.len)));
        }
        if attr >= self.arity {
            return Err(H2Error::UnknownAttribute(format!("attr {attr} out of {}", self.arity)));
        }
        Ok(())
    }

    /// A contiguous slice of one attribute's values, available only for
    /// column-major (DSM/PAX) pages; NSM callers must iterate records.
    pub fn column_slice(&self, attr: usize) -> Option<&[u64]> {
        if self.order == CellOrder::ColumnMajor && attr < self.arity {
            let start = attr * self.capacity;
            Some(&self.cells[start..start + self.len])
        } else {
            None
        }
    }

    /// Iterates the values of one attribute regardless of cell order.
    pub fn iter_attr(&self, attr: usize) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |row| self.cells[self.idx(row, attr)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(layout: Layout) -> Page {
        let mut p = Page::new(layout, 3, 4, Epoch::ZERO);
        for r in 0..3u64 {
            p.push(&[r, r * 10, r * 100]).unwrap();
        }
        p
    }

    #[test]
    fn push_and_read_roundtrip_nsm_and_dsm() {
        for layout in [Layout::Nsm, Layout::Dsm, Layout::PAPER_PAX] {
            let p = filled(layout);
            assert_eq!(p.len(), 3);
            assert_eq!(p.get(2, 1).unwrap(), 20);
            assert_eq!(p.record(1).unwrap(), vec![1, 10, 100]);
        }
    }

    #[test]
    fn full_page_rejects_push() {
        let mut p = Page::new(Layout::Dsm, 2, 1, Epoch::ZERO);
        p.push(&[1, 2]).unwrap();
        assert!(p.is_full());
        assert!(p.push(&[3, 4]).is_err());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut p = Page::new(Layout::Nsm, 2, 4, Epoch::ZERO);
        assert!(p.push(&[1]).is_err());
        p.push(&[1, 2]).unwrap();
        assert!(p.set_record(0, &[1, 2, 3]).is_err());
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let p = filled(Layout::Dsm);
        assert!(p.get(3, 0).is_err());
        assert!(p.get(0, 3).is_err());
        assert!(p.record(9).is_err());
    }

    #[test]
    fn set_updates_cell() {
        let mut p = filled(Layout::Nsm);
        p.set(0, 2, 777).unwrap();
        assert_eq!(p.get(0, 2).unwrap(), 777);
        p.set_record(1, &[9, 8, 7]).unwrap();
        assert_eq!(p.record(1).unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn column_slice_only_for_columnar_layouts() {
        let dsm = filled(Layout::Dsm);
        assert_eq!(dsm.column_slice(1).unwrap(), &[0, 10, 20]);
        let nsm = filled(Layout::Nsm);
        assert!(nsm.column_slice(1).is_none());
        // iter_attr works for both
        let via_iter: Vec<u64> = nsm.iter_attr(1).collect();
        assert_eq!(via_iter, vec![0, 10, 20]);
    }

    #[test]
    fn epoch_stamping() {
        let mut p = filled(Layout::Dsm);
        assert_eq!(p.epoch(), Epoch::ZERO);
        p.set_epoch(Epoch(4));
        assert_eq!(p.epoch(), Epoch(4));
    }

    #[test]
    fn byte_size_reflects_capacity() {
        let p = Page::new(Layout::Dsm, 4, 100, Epoch::ZERO);
        assert_eq!(p.byte_size(), 4 * 100 * 8);
    }
}
