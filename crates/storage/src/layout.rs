//! Storage layouts: NSM, DSM and PAX.
//!
//! The paper's Section 4 ("Data layout") supports three layouts and argues
//! that the hybrid PAX layout is the right middle ground for H2TAP: like NSM
//! it keeps whole records inside one page (cheap transactional updates), like
//! DSM it stores the values of one attribute contiguously (coalesced GPU
//! accesses and minimal PCIe traffic). The [`ScanProfile`] produced here is
//! what the OLAP engine feeds to the GPU model to decide how efficient a scan
//! over a given layout is.

use h2tap_common::Schema;
use serde::{Deserialize, Serialize};

/// Physical record organization of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// N-ary Storage Model: whole records stored contiguously, row-major.
    Nsm,
    /// Decomposition Storage Model: one array per attribute.
    Dsm,
    /// PAX: pages of `page_bytes` split into one minipage per attribute.
    Pax {
        /// Page size in bytes; the paper uses 4 KiB pages whose minipages are
        /// close to the 512-byte PCIe MTU.
        page_bytes: u32,
    },
}

impl Layout {
    /// The PAX configuration used in the paper's Figure 10 experiment:
    /// 4 KiB pages, which for a 16-attribute integer schema yields 16
    /// minipages of 64 values (256 bytes) each.
    pub const PAPER_PAX: Layout = Layout::Pax { page_bytes: 4096 };

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Layout::Nsm => "NSM",
            Layout::Dsm => "DSM",
            Layout::Pax { .. } => "PAX",
        }
    }

    /// How many records one PAX page of this layout holds for `schema`.
    /// For NSM/DSM the storage engine picks its own page capacity, so this
    /// returns `None`.
    pub fn pax_rows_per_page(self, schema: &Schema) -> Option<usize> {
        match self {
            Layout::Pax { page_bytes } => {
                let record = schema.record_width().max(1);
                Some(((page_bytes as usize) / record).max(1))
            }
            _ => None,
        }
    }

    /// The size in bytes of one minipage (the per-attribute region of a PAX
    /// page) for `schema`, assuming homogeneous attribute widths; used to
    /// check the "minipage close to the PCIe MTU" configuration rule.
    pub fn pax_minipage_bytes(self, schema: &Schema) -> Option<usize> {
        match self {
            Layout::Pax { .. } => {
                let rows = self.pax_rows_per_page(schema)?;
                let avg_width = schema.record_width() / schema.arity().max(1);
                Some(rows * avg_width)
            }
            _ => None,
        }
    }

    /// Builds the scan profile for reading `attrs_accessed` of `schema` over
    /// `rows` records stored in this layout.
    pub fn scan_profile(self, schema: &Schema, attrs_accessed: &[usize], rows: u64) -> ScanProfile {
        let accessed_width: usize = attrs_accessed
            .iter()
            // h2tap: allow(error_swallow) — cost estimate only: an out-of-range attr index contributes zero width rather than failing the profile.
            .filter_map(|&i| schema.attr(i).ok())
            .map(|a| a.ty.width())
            .sum();
        let useful_bytes = rows * accessed_width as u64;
        match self {
            Layout::Nsm => {
                // Values of one attribute are `record_width` apart; reading K
                // attributes of a record still leaves (arity - K) attributes'
                // worth of gap, so the effective stride per useful element is
                // the full record width divided by the attributes accessed.
                ScanProfile {
                    layout: self,
                    useful_bytes,
                    contiguous: false,
                    stride_bytes: schema.record_width() as u32,
                    elem_bytes: (accessed_width.max(1) as u32).min(schema.record_width() as u32),
                }
            }
            Layout::Dsm => ScanProfile {
                layout: self,
                useful_bytes,
                contiguous: true,
                stride_bytes: accessed_width.max(1) as u32,
                elem_bytes: accessed_width.max(1) as u32,
            },
            Layout::Pax { .. } => {
                // Minipages are contiguous runs of one attribute, so accesses
                // coalesce like DSM; the only overhead is the page-granular
                // interleaving, modelled as a small fixed inefficiency by the
                // OLAP engine (minipage switches), not as a stride.
                ScanProfile {
                    layout: self,
                    useful_bytes,
                    contiguous: true,
                    stride_bytes: accessed_width.max(1) as u32,
                    elem_bytes: accessed_width.max(1) as u32,
                }
            }
        }
    }
}

/// Description of the memory traffic of a layout-aware scan, independent of
/// any particular hardware model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanProfile {
    /// The layout this profile describes.
    pub layout: Layout,
    /// Payload bytes the query actually needs.
    pub useful_bytes: u64,
    /// Whether consecutive useful values are adjacent in memory.
    pub contiguous: bool,
    /// Distance between consecutive useful values when not contiguous.
    pub stride_bytes: u32,
    /// Width of each useful value (or group of values read together).
    pub elem_bytes: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::AttrType;

    fn bench_schema() -> Schema {
        // The Figure 10 table: 16 four-byte integer attributes.
        Schema::homogeneous("col", 16, AttrType::Int32)
    }

    #[test]
    fn paper_pax_page_matches_described_geometry() {
        let s = bench_schema();
        let pax = Layout::PAPER_PAX;
        // "Each PAX page contains 16 minipages, and each minipage contains 64
        // values" — 64 rows of 16 x 4-byte attributes in a 4 KiB page.
        assert_eq!(pax.pax_rows_per_page(&s), Some(64));
        // Each minipage is 256 bytes, i.e. at most the 512-byte PCIe MTU.
        let mini = pax.pax_minipage_bytes(&s).unwrap();
        assert!(mini <= 512, "minipage {mini} bytes");
        assert_eq!(mini, 256);
    }

    #[test]
    fn nsm_profile_is_strided() {
        let s = bench_schema();
        let p = Layout::Nsm.scan_profile(&s, &[0], 1000);
        assert!(!p.contiguous);
        assert_eq!(p.stride_bytes, 64);
        assert_eq!(p.elem_bytes, 4);
        assert_eq!(p.useful_bytes, 4000);
    }

    #[test]
    fn dsm_and_pax_profiles_are_contiguous() {
        let s = bench_schema();
        for layout in [Layout::Dsm, Layout::PAPER_PAX] {
            let p = layout.scan_profile(&s, &[0, 1], 1000);
            assert!(p.contiguous, "{layout:?}");
            assert_eq!(p.useful_bytes, 8000);
        }
    }

    #[test]
    fn accessing_more_attributes_increases_useful_bytes() {
        let s = bench_schema();
        let one = Layout::Dsm.scan_profile(&s, &[0], 100);
        let all: Vec<usize> = (0..16).collect();
        let sixteen = Layout::Dsm.scan_profile(&s, &all, 100);
        assert_eq!(sixteen.useful_bytes, 16 * one.useful_bytes);
    }

    #[test]
    fn nsm_accessing_all_attributes_degenerates_to_full_record_reads() {
        let s = bench_schema();
        let all: Vec<usize> = (0..16).collect();
        let p = Layout::Nsm.scan_profile(&s, &all, 10);
        // Reading every attribute means the whole record is useful.
        assert_eq!(p.elem_bytes, p.stride_bytes);
    }

    #[test]
    fn labels() {
        assert_eq!(Layout::Nsm.label(), "NSM");
        assert_eq!(Layout::Dsm.label(), "DSM");
        assert_eq!(Layout::PAPER_PAX.label(), "PAX");
    }

    #[test]
    fn non_pax_layouts_have_no_pax_geometry() {
        let s = bench_schema();
        assert!(Layout::Nsm.pax_rows_per_page(&s).is_none());
        assert!(Layout::Dsm.pax_minipage_bytes(&s).is_none());
    }
}
