//! Caldera's storage engine.
//!
//! The paper's Section 4 describes a storage layer with three properties:
//!
//! 1. **Hybrid layouts** — tables can be stored in NSM (row-major), DSM
//!    (column-major) or PAX (columnar minipages inside fixed-size pages),
//!    because OLTP favours NSM while GPU-side OLAP needs the coalesced
//!    accesses of DSM/PAX ([`layout`], [`page`]).
//! 2. **A hierarchical organization** — partition → table → page, where each
//!    node carries an epoch number (Figure 3) ([`partition`], [`table`]).
//! 3. **Software shadow-copy snapshots** — taking a snapshot is a shallow
//!    copy plus an epoch bump; the first update to a captured page performs
//!    copy-on-write; releasing a snapshot lets superseded versions be
//!    reclaimed ([`snapshot`], [`database`], [`telemetry`]).
//!
//! The storage engine is deliberately oblivious to *who* calls it: the OLTP
//! runtime (`h2tap-oltp`) routes all updates through the owning partition's
//! worker thread, and the OLAP runtime (`h2tap-olap`) only ever reads
//! snapshots, which together give the single-writer discipline the paper's
//! non-cache-coherent target requires.

pub mod codec;
pub mod database;
pub mod layout;
pub mod page;
pub mod partition;
pub mod snapshot;
pub mod table;
pub mod telemetry;

pub use codec::{decode_cell, decode_cell_f64, decode_record, encode_record, encode_value};
pub use database::{Database, GcReport, TableMeta};
pub use layout::{Layout, ScanProfile};
pub use page::Page;
pub use partition::PartitionStore;
pub use snapshot::{Snapshot, SnapshotTable, SnapshotTableId};
pub use table::TableFragment;
pub use telemetry::{CowStats, CowTelemetry};
