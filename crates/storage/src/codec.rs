//! Encoding between logical [`Value`]s and the 8-byte cells pages store.

use h2tap_common::{AttrType, H2Error, Result, Schema, Value};

/// Encodes one value into its 8-byte cell representation.
pub fn encode_value(value: &Value) -> u64 {
    value.to_cell()
}

/// Decodes one cell back into a value of the given type.
///
/// Strings are stored as stable 8-byte hashes (no workload in the paper's
/// evaluation filters or aggregates on string payloads), so they decode to an
/// opaque `Int64` code.
pub fn decode_cell(ty: AttrType, cell: u64) -> Value {
    match ty {
        AttrType::Int32 => Value::Int32(cell as u32 as i32),
        AttrType::Int64 => Value::Int64(cell as i64),
        AttrType::Float64 => Value::Float64(f64::from_bits(cell)),
        AttrType::Date => Value::Date(cell as u32 as i32),
        AttrType::Str => Value::Int64(cell as i64),
    }
}

/// Decodes one cell to its numeric (`f64`) interpretation, the form the
/// analytical engines aggregate over.
pub fn decode_cell_f64(ty: AttrType, cell: u64) -> f64 {
    match ty {
        AttrType::Int32 | AttrType::Date => f64::from(cell as u32 as i32),
        AttrType::Int64 | AttrType::Str => cell as i64 as f64,
        AttrType::Float64 => f64::from_bits(cell),
    }
}

/// Encodes a full record according to `schema`.
///
/// # Errors
/// Fails when the record arity does not match the schema.
pub fn encode_record(schema: &Schema, values: &[Value]) -> Result<Vec<u64>> {
    if values.len() != schema.arity() {
        return Err(H2Error::Config(format!(
            "record has {} values but schema has {} attributes",
            values.len(),
            schema.arity()
        )));
    }
    Ok(values.iter().map(encode_value).collect())
}

/// Decodes a full record according to `schema`.
pub fn decode_record(schema: &Schema, cells: &[u64]) -> Result<Vec<Value>> {
    if cells.len() != schema.arity() {
        return Err(H2Error::Config("cell count does not match schema arity".into()));
    }
    Ok(cells.iter().zip(schema.attributes()).map(|(cell, attr)| decode_cell(attr.ty, *cell)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("id", AttrType::Int64),
            Attribute::new("qty", AttrType::Int32),
            Attribute::new("price", AttrType::Float64),
            Attribute::new("ship", AttrType::Date),
        ])
        .unwrap()
    }

    #[test]
    fn record_roundtrip() {
        let s = schema();
        let rec = vec![Value::Int64(-5), Value::Int32(7), Value::Float64(2.5), Value::Date(1000)];
        let cells = encode_record(&s, &rec).unwrap();
        let back = decode_record(&s, &cells).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn negative_int32_roundtrip() {
        assert_eq!(decode_cell(AttrType::Int32, encode_value(&Value::Int32(-42))), Value::Int32(-42));
        assert_eq!(decode_cell(AttrType::Date, encode_value(&Value::Date(-1))), Value::Date(-1));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        assert!(encode_record(&s, &[Value::Int64(1)]).is_err());
        assert!(decode_record(&s, &[1, 2]).is_err());
    }
}
