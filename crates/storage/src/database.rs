//! The shared-memory database: catalog, partitions, snapshots and GC.
//!
//! [`Database`] owns the hierarchical partition → table → page organization
//! and the snapshot clock. OLTP workers obtain their partition's store and
//! operate on it through short, uncontended critical sections (each partition
//! is only ever touched by its owning worker plus the snapshot path); the
//! OLAP runtime takes [`Snapshot`]s and never touches the live store.

use crate::codec::{decode_record, encode_record};
use crate::layout::Layout;
use crate::partition::PartitionStore;
use crate::snapshot::{Snapshot, SnapshotTable, SnapshotTableId};
use crate::telemetry::{CowStats, CowTelemetry};
use h2tap_common::{Epoch, H2Error, PartitionId, RecordId, Result, Schema, TableId, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Catalog entry for one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table id.
    pub id: TableId,
    /// Human-readable name.
    pub name: String,
    /// Schema shared by every partition fragment.
    pub schema: Arc<Schema>,
    /// Physical layout.
    pub layout: Layout,
}

/// Result of releasing a snapshot: how much superseded data became
/// reclaimable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Pages whose snapshot version had been superseded by copy-on-write.
    pub pages_reclaimed: u64,
    /// Bytes those pages occupied.
    pub bytes_reclaimed: u64,
}

/// The Caldera shared-memory database.
#[derive(Debug)]
pub struct Database {
    /// Process-unique instance id, part of every snapshot table's cache
    /// identity so frozen images from different databases never alias.
    instance: u64,
    partitions: Vec<Arc<RwLock<PartitionStore>>>,
    catalog: RwLock<BTreeMap<TableId, TableMeta>>,
    names: RwLock<BTreeMap<String, TableId>>,
    next_table: AtomicU32,
    live_epoch: AtomicU64,
    next_snapshot: AtomicU64,
    active_snapshots: Mutex<BTreeMap<u64, Epoch>>,
    telemetry: Arc<CowTelemetry>,
}

impl Database {
    /// Creates a database partitioned `partition_count` ways (one partition
    /// per OLTP worker core).
    pub fn new(partition_count: usize) -> Arc<Self> {
        assert!(partition_count > 0, "database needs at least one partition");
        let telemetry = CowTelemetry::new();
        let partitions = (0..partition_count)
            .map(|i| Arc::new(RwLock::new(PartitionStore::new(PartitionId(i as u32), Arc::clone(&telemetry)))))
            .collect();
        Arc::new(Self {
            instance: crate::snapshot::next_source_id(),
            partitions,
            catalog: RwLock::new(BTreeMap::new()),
            names: RwLock::new(BTreeMap::new()),
            next_table: AtomicU32::new(0),
            live_epoch: AtomicU64::new(0),
            next_snapshot: AtomicU64::new(0),
            active_snapshots: Mutex::new(BTreeMap::new()),
            telemetry,
        })
    }

    /// Number of horizontal partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The store of one partition.
    pub fn partition(&self, p: PartitionId) -> Result<Arc<RwLock<PartitionStore>>> {
        self.partitions.get(p.0 as usize).cloned().ok_or_else(|| H2Error::Config(format!("partition {p} out of range")))
    }

    /// Copy-on-write telemetry counters.
    pub fn telemetry(&self) -> CowStats {
        self.telemetry.snapshot()
    }

    /// The current live epoch (pages stamped with an older epoch are still
    /// shared with at least one snapshot).
    pub fn live_epoch(&self) -> Epoch {
        Epoch(self.live_epoch.load(Ordering::Acquire))
    }

    /// Creates a table with the given layout, registered in every partition.
    pub fn create_table(&self, name: impl Into<String>, schema: Schema, layout: Layout) -> Result<TableId> {
        let name = name.into();
        if self.names.read().contains_key(&name) {
            return Err(H2Error::Config(format!("table {name:?} already exists")));
        }
        let id = TableId(self.next_table.fetch_add(1, Ordering::Relaxed));
        let schema = Arc::new(schema);
        for p in &self.partitions {
            p.write().register_table(id, Arc::clone(&schema), layout);
        }
        let meta = TableMeta { id, name: name.clone(), schema, layout };
        self.catalog.write().insert(id, meta);
        self.names.write().insert(name, id);
        Ok(id)
    }

    /// Catalog entry of `table`.
    pub fn table_meta(&self, table: TableId) -> Result<TableMeta> {
        self.catalog.read().get(&table).cloned().ok_or_else(|| H2Error::UnknownTable(table.to_string()))
    }

    /// Looks a table up by name.
    pub fn table_by_name(&self, name: &str) -> Result<TableMeta> {
        let id = *self.names.read().get(name).ok_or_else(|| H2Error::UnknownTable(name.to_string()))?;
        self.table_meta(id)
    }

    /// Ids of all tables.
    pub fn tables(&self) -> Vec<TableId> {
        self.catalog.read().keys().copied().collect()
    }

    /// Total records of `table` across all partitions.
    pub fn row_count(&self, table: TableId) -> Result<u64> {
        let mut total = 0;
        for p in &self.partitions {
            total += p.read().fragment(table)?.row_count();
        }
        Ok(total)
    }

    /// Inserts a record (given as logical values) into a specific partition.
    pub fn insert(&self, partition: PartitionId, table: TableId, values: &[Value]) -> Result<RecordId> {
        let meta = self.table_meta(table)?;
        let cells = encode_record(&meta.schema, values)?;
        let store = self.partition(partition)?;
        let row = store.write().insert(table, &cells, self.live_epoch())?;
        Ok(RecordId::new(partition, table, row))
    }

    /// Reads a record as logical values.
    pub fn read(&self, rid: RecordId) -> Result<Vec<Value>> {
        let meta = self.table_meta(rid.table)?;
        let store = self.partition(rid.partition)?;
        let cells = store.read().read_record(rid.table, rid.row)?;
        decode_record(&meta.schema, &cells)
    }

    /// Overwrites a record with new logical values, shadow-copying the
    /// backing page if a snapshot still shares it.
    pub fn update(&self, rid: RecordId, values: &[Value]) -> Result<()> {
        let meta = self.table_meta(rid.table)?;
        let cells = encode_record(&meta.schema, values)?;
        let store = self.partition(rid.partition)?;
        let result = store.write().update_record(rid.table, rid.row, &cells, self.live_epoch());
        result
    }

    /// Takes a snapshot: a shallow copy of every table's page lists plus an
    /// increment of the live epoch, so that the first subsequent update of
    /// any captured page triggers a shadow copy.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        let snapshot_epoch = Epoch(self.live_epoch.fetch_add(1, Ordering::AcqRel));
        let id = self.next_snapshot.fetch_add(1, Ordering::Relaxed);
        let catalog = self.catalog.read();
        let mut tables = BTreeMap::new();
        for (tid, meta) in catalog.iter() {
            let mut per_partition = Vec::with_capacity(self.partitions.len());
            for p in &self.partitions {
                // h2tap: allow(lock_order) — ordering rule: catalog before partitions, never reversed (registration touches partitions and the catalog as disjoint one-statement sections). The catalog guard keeps table creation out while every partition's page list is frozen.
                let guard = p.read();
                let pages = guard.fragment(*tid).map(|f| f.pages().to_vec()).unwrap_or_default();
                per_partition.push(pages);
            }
            tables.insert(
                *tid,
                SnapshotTable {
                    schema: Arc::clone(&meta.schema),
                    layout: meta.layout,
                    partitions: per_partition,
                    identity: SnapshotTableId { source: self.instance, table: *tid, epoch: snapshot_epoch },
                },
            );
        }
        drop(catalog); // the registry insert below needs no catalog consistency — narrow the critical section
        self.active_snapshots.lock().insert(id, snapshot_epoch);
        Arc::new(Snapshot::new(id, snapshot_epoch, tables))
    }

    /// Number of snapshots that have been taken and not yet released.
    pub fn active_snapshot_count(&self) -> usize {
        self.active_snapshots.lock().len()
    }

    /// Releases a snapshot and reports how many of its pages had been
    /// superseded by copy-on-write (and are therefore reclaimable once the
    /// last referencing snapshot is gone).
    pub fn release_snapshot(&self, snapshot: &Snapshot) -> Result<GcReport> {
        let removed = self.active_snapshots.lock().remove(&snapshot.id());
        if removed.is_none() {
            return Err(H2Error::UnknownSnapshot(snapshot.id()));
        }
        let mut report = GcReport::default();
        for tid in snapshot.tables() {
            let frozen = snapshot.table(tid)?;
            for (p_idx, frozen_pages) in frozen.partitions.iter().enumerate() {
                let live = self.partitions[p_idx].read();
                let live_pages = live.fragment(tid).map(|f| f.pages().to_vec()).unwrap_or_default();
                for (i, page) in frozen_pages.iter().enumerate() {
                    let superseded = match live_pages.get(i) {
                        Some(live_page) => !Arc::ptr_eq(live_page, page),
                        None => true,
                    };
                    if superseded {
                        report.pages_reclaimed += 1;
                        report.bytes_reclaimed += page.byte_size();
                    }
                }
            }
        }
        self.telemetry.record_reclaim(report.pages_reclaimed, report.bytes_reclaimed);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::AttrType;

    fn db() -> (Arc<Database>, TableId) {
        let db = Database::new(2);
        let t = db.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        (db, t)
    }

    #[test]
    fn create_table_registers_everywhere() {
        let (db, t) = db();
        assert_eq!(db.partition_count(), 2);
        assert_eq!(db.row_count(t).unwrap(), 0);
        assert!(db.table_by_name("t").is_ok());
        assert!(db.table_by_name("missing").is_err());
        assert!(db.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).is_err());
    }

    #[test]
    fn insert_read_update_via_record_ids() {
        let (db, t) = db();
        let rid = db.insert(PartitionId(1), t, &[Value::Int64(10), Value::Int64(20)]).unwrap();
        assert_eq!(db.read(rid).unwrap(), vec![Value::Int64(10), Value::Int64(20)]);
        db.update(rid, &[Value::Int64(30), Value::Int64(40)]).unwrap();
        assert_eq!(db.read(rid).unwrap(), vec![Value::Int64(30), Value::Int64(40)]);
        assert_eq!(db.row_count(t).unwrap(), 1);
    }

    #[test]
    fn snapshot_isolates_later_updates() {
        let (db, t) = db();
        let rid = db.insert(PartitionId(0), t, &[Value::Int64(1), Value::Int64(2)]).unwrap();
        let snap = db.snapshot();
        db.update(rid, &[Value::Int64(100), Value::Int64(200)]).unwrap();
        // Live database sees the new value...
        assert_eq!(db.read(rid).unwrap()[0], Value::Int64(100));
        // ...the snapshot still sees the old one.
        let frozen = snap.table(t).unwrap();
        let col0 = frozen.column(0);
        assert_eq!(col0, vec![1]);
        // COW happened exactly once.
        assert_eq!(db.telemetry().pages_copied, 1);
    }

    #[test]
    fn updates_before_any_snapshot_are_in_place() {
        let (db, t) = db();
        let rid = db.insert(PartitionId(0), t, &[Value::Int64(1), Value::Int64(2)]).unwrap();
        db.update(rid, &[Value::Int64(3), Value::Int64(4)]).unwrap();
        assert_eq!(db.telemetry().pages_copied, 0);
    }

    #[test]
    fn snapshot_is_instantaneous_shallow_copy() {
        let (db, t) = db();
        for i in 0..100 {
            db.insert(PartitionId((i % 2) as u32), t, &[Value::Int64(i), Value::Int64(i)]).unwrap();
        }
        let snap = db.snapshot();
        // Shallow copy: the snapshot references the same page objects.
        let frozen = snap.table(t).unwrap();
        let live = db.partition(PartitionId(0)).unwrap();
        let live_first = live.read().fragment(t).unwrap().pages()[0].clone();
        assert!(Arc::ptr_eq(&frozen.partitions[0][0], &live_first));
    }

    #[test]
    fn release_snapshot_reports_superseded_pages() {
        let (db, t) = db();
        let rid = db.insert(PartitionId(0), t, &[Value::Int64(1), Value::Int64(2)]).unwrap();
        let snap = db.snapshot();
        db.update(rid, &[Value::Int64(9), Value::Int64(9)]).unwrap();
        let report = db.release_snapshot(&snap).unwrap();
        assert_eq!(report.pages_reclaimed, 1);
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(db.active_snapshot_count(), 0);
        // Releasing twice is an error.
        assert!(db.release_snapshot(&snap).is_err());
    }

    #[test]
    fn release_without_updates_reclaims_nothing() {
        let (db, t) = db();
        db.insert(PartitionId(0), t, &[Value::Int64(1), Value::Int64(2)]).unwrap();
        let snap = db.snapshot();
        let report = db.release_snapshot(&snap).unwrap();
        assert_eq!(report.pages_reclaimed, 0);
    }

    #[test]
    fn snapshot_tables_carry_their_identity() {
        let (first, t) = db();
        let s1 = first.snapshot();
        let s2 = first.snapshot();
        let id1 = s1.table(t).unwrap().identity;
        let id2 = s2.table(t).unwrap().identity;
        assert_eq!(id1.table, t);
        assert_eq!(id1.epoch, s1.epoch());
        assert_eq!(id1.source, id2.source, "same database instance");
        assert_ne!(id1, id2, "a new snapshot means a new epoch, so a new identity");
        // A different database never shares a source id, even for the same
        // table id and epoch.
        let (other, t2) = db();
        let s3 = other.snapshot();
        assert_eq!(t2, t);
        assert_ne!(s3.table(t2).unwrap().identity.source, id1.source);
    }

    #[test]
    fn epochs_advance_with_snapshots() {
        let (db, _) = db();
        assert_eq!(db.live_epoch(), Epoch(0));
        let s1 = db.snapshot();
        assert_eq!(s1.epoch(), Epoch(0));
        assert_eq!(db.live_epoch(), Epoch(1));
        let s2 = db.snapshot();
        assert_eq!(s2.epoch(), Epoch(1));
        assert_eq!(db.active_snapshot_count(), 2);
    }
}
