//! Immutable database snapshots.
//!
//! "Caldera always executes OLAP queries on a database snapshot." A snapshot
//! is a shallow copy of the hierarchical data organization: it holds `Arc`s
//! to the same pages as the live database at the moment it was taken, so
//! taking one is an O(pages) pointer copy, not a data copy. Transactions that
//! later update a page shadow-copy it into the live database, leaving the
//! snapshot's version untouched (see [`crate::table::TableFragment`]).

use crate::layout::{Layout, ScanProfile};
use crate::page::Page;
use h2tap_common::{Epoch, H2Error, Result, Schema, TableId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The frozen image of one table across all partitions.
#[derive(Debug, Clone)]
pub struct SnapshotTable {
    /// Table schema.
    pub schema: Arc<Schema>,
    /// Table layout.
    pub layout: Layout,
    /// Page lists per partition, in partition order.
    pub partitions: Vec<Vec<Arc<Page>>>,
}

impl SnapshotTable {
    /// Total number of records in the frozen image.
    pub fn row_count(&self) -> u64 {
        self.partitions.iter().flatten().map(|p| p.len() as u64).sum()
    }

    /// Iterates the values of one attribute across all partitions and pages.
    pub fn iter_attr(&self, attr: usize) -> impl Iterator<Item = u64> + '_ {
        self.partitions.iter().flatten().flat_map(move |p| p.iter_attr(attr))
    }

    /// Materialises one attribute as a contiguous vector.
    pub fn column(&self, attr: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.row_count() as usize);
        out.extend(self.iter_attr(attr));
        out
    }

    /// Calls `f` once per record with the requested attributes, in storage
    /// order. This is the row-at-a-time access path the OLAP primitives use
    /// when they need several columns of the same record (e.g. TPC-H Q6).
    pub fn for_each_row(&self, attrs: &[usize], mut f: impl FnMut(&[u64])) {
        let mut buf = vec![0u64; attrs.len()];
        for page in self.partitions.iter().flatten() {
            for row in 0..page.len() {
                for (i, &attr) in attrs.iter().enumerate() {
                    buf[i] = page.get(row, attr).expect("attr within arity");
                }
                f(&buf);
            }
        }
    }

    /// The memory-traffic profile of scanning `attrs` of this frozen table.
    pub fn scan_profile(&self, attrs: &[usize]) -> ScanProfile {
        self.layout.scan_profile(&self.schema, attrs, self.row_count())
    }
}

/// A consistent, immutable view of the whole database.
#[derive(Debug, Clone)]
pub struct Snapshot {
    id: u64,
    epoch: Epoch,
    tables: BTreeMap<TableId, SnapshotTable>,
}

impl Snapshot {
    pub(crate) fn new(id: u64, epoch: Epoch, tables: BTreeMap<TableId, SnapshotTable>) -> Self {
        Self { id, epoch, tables }
    }

    /// Snapshot id (used to release it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The epoch this snapshot froze.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The frozen image of `table`.
    pub fn table(&self, table: TableId) -> Result<&SnapshotTable> {
        self.tables.get(&table).ok_or_else(|| H2Error::UnknownTable(format!("{table} in snapshot {}", self.id)))
    }

    /// Ids of all tables captured by the snapshot.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.tables.keys().copied()
    }

    /// Total pages referenced by this snapshot.
    pub fn page_count(&self) -> usize {
        self.tables.values().map(|t| t.partitions.iter().map(|p| p.len()).sum::<usize>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::AttrType;

    fn frozen_table() -> SnapshotTable {
        let schema = Arc::new(Schema::homogeneous("c", 3, AttrType::Int32));
        let mut p0 = Page::new(Layout::Dsm, 3, 8, Epoch::ZERO);
        let mut p1 = Page::new(Layout::Dsm, 3, 8, Epoch::ZERO);
        for i in 0..5u64 {
            p0.push(&[i, i * 2, i * 3]).unwrap();
        }
        for i in 5..9u64 {
            p1.push(&[i, i * 2, i * 3]).unwrap();
        }
        SnapshotTable { schema, layout: Layout::Dsm, partitions: vec![vec![Arc::new(p0)], vec![Arc::new(p1)]] }
    }

    #[test]
    fn row_count_spans_partitions() {
        assert_eq!(frozen_table().row_count(), 9);
    }

    #[test]
    fn column_materialisation_preserves_order() {
        let t = frozen_table();
        let col: Vec<u64> = t.column(1);
        assert_eq!(col, vec![0, 2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn for_each_row_delivers_requested_attrs() {
        let t = frozen_table();
        let mut sums = Vec::new();
        t.for_each_row(&[0, 2], |r| sums.push(r[0] + r[1]));
        assert_eq!(sums.len(), 9);
        assert_eq!(sums[1], 1 + 3);
    }

    #[test]
    fn snapshot_table_lookup() {
        let mut tables = BTreeMap::new();
        tables.insert(TableId(1), frozen_table());
        let snap = Snapshot::new(7, Epoch(2), tables);
        assert_eq!(snap.id(), 7);
        assert_eq!(snap.epoch(), Epoch(2));
        assert!(snap.table(TableId(1)).is_ok());
        assert!(snap.table(TableId(2)).is_err());
        assert_eq!(snap.tables().collect::<Vec<_>>(), vec![TableId(1)]);
        assert_eq!(snap.page_count(), 2);
    }

    #[test]
    fn scan_profile_reflects_layout() {
        let t = frozen_table();
        let p = t.scan_profile(&[0]);
        assert!(p.contiguous);
        assert_eq!(p.useful_bytes, 9 * 4);
    }
}
