//! Immutable database snapshots.
//!
//! "Caldera always executes OLAP queries on a database snapshot." A snapshot
//! is a shallow copy of the hierarchical data organization: it holds `Arc`s
//! to the same pages as the live database at the moment it was taken, so
//! taking one is an O(pages) pointer copy, not a data copy. Transactions that
//! later update a page shadow-copy it into the live database, leaving the
//! snapshot's version untouched (see [`crate::table::TableFragment`]).

use crate::layout::{Layout, ScanProfile};
use crate::page::Page;
use h2tap_common::{Epoch, H2Error, Result, Schema, TableId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Source of globally unique data-source numbers: every [`crate::Database`]
/// instance takes one at construction, and every detached
/// ([`SnapshotTableId::detached`]) frozen table takes its own, so two frozen
/// images from different origins can never share an identity.
static NEXT_SOURCE: AtomicU64 = AtomicU64::new(0);

pub(crate) fn next_source_id() -> u64 {
    NEXT_SOURCE.fetch_add(1, Ordering::Relaxed)
}

/// The identity of one frozen table image: which database instance it came
/// from, which table, and which snapshot epoch froze it.
///
/// Two [`SnapshotTable`]s with equal identities reference byte-identical
/// data — the epoch is bumped on every snapshot and copy-on-write keeps a
/// frozen epoch's pages immutable — which is what makes the identity a safe
/// key for caching *derived* plan data (materialised columns, zonemap stats,
/// join hash tables) across queries and across execution sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotTableId {
    /// Process-unique id of the owning [`crate::Database`] instance (or of
    /// the detached table itself, see [`SnapshotTableId::detached`]).
    pub source: u64,
    /// The table within that database.
    pub table: TableId,
    /// The snapshot epoch the image was frozen at.
    pub epoch: Epoch,
}

impl SnapshotTableId {
    /// A fresh identity for a frozen table assembled outside any database
    /// (tests, ad-hoc tooling). Each call returns a distinct `source`, so a
    /// detached table never aliases a database snapshot — or another
    /// detached table — in a plan-data cache.
    pub fn detached() -> Self {
        Self { source: next_source_id(), table: TableId(u32::MAX), epoch: Epoch::ZERO }
    }
}

/// The frozen image of one table across all partitions.
#[derive(Debug, Clone)]
pub struct SnapshotTable {
    /// Table schema.
    pub schema: Arc<Schema>,
    /// Table layout.
    pub layout: Layout,
    /// Page lists per partition, in partition order.
    pub partitions: Vec<Vec<Arc<Page>>>,
    /// Cache identity of this frozen image (database instance + table +
    /// snapshot epoch).
    pub identity: SnapshotTableId,
}

impl SnapshotTable {
    /// Total number of records in the frozen image.
    pub fn row_count(&self) -> u64 {
        self.partitions.iter().flatten().map(|p| p.len() as u64).sum()
    }

    /// Iterates the values of one attribute across all partitions and pages.
    pub fn iter_attr(&self, attr: usize) -> impl Iterator<Item = u64> + '_ {
        self.partitions.iter().flatten().flat_map(move |p| p.iter_attr(attr))
    }

    /// Materialises one attribute as a contiguous vector. Column-major
    /// (DSM/PAX) pages are bulk-copied slice-at-a-time; only row-major NSM
    /// pages fall back to per-cell strided reads.
    pub fn column(&self, attr: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.row_count() as usize);
        for page in self.partitions.iter().flatten() {
            match page.column_slice(attr) {
                Some(slice) => out.extend_from_slice(slice),
                None => out.extend(page.iter_attr(attr)),
            }
        }
        out
    }

    /// Copies rows `rows` (in storage order) of attribute `attr` into `out`
    /// (`out.len()` must equal the range length) — the chunk-granular
    /// counterpart of [`SnapshotTable::column`], which is what lets callers
    /// materialise disjoint chunks of the same column from different
    /// threads. Column-major (DSM/PAX) pages are bulk-copied slice-at-a-time;
    /// row-major NSM pages fall back to per-cell strided reads.
    pub fn column_into(&self, attr: usize, rows: std::ops::Range<usize>, out: &mut [u64]) {
        debug_assert_eq!(out.len(), rows.len());
        let mut page_start = 0usize;
        let mut written = 0usize;
        for page in self.partitions.iter().flatten() {
            let page_end = page_start + page.len();
            if page_end > rows.start && page_start < rows.end {
                let lo = rows.start.max(page_start) - page_start;
                let hi = rows.end.min(page_end) - page_start;
                match page.column_slice(attr) {
                    Some(slice) => out[written..written + (hi - lo)].copy_from_slice(&slice[lo..hi]),
                    None => {
                        for (slot, cell) in out[written..written + (hi - lo)]
                            .iter_mut()
                            .zip(page.iter_attr(attr).skip(lo).take(hi - lo))
                        {
                            *slot = cell;
                        }
                    }
                }
                written += hi - lo;
            }
            page_start = page_end;
            if page_start >= rows.end {
                break;
            }
        }
        debug_assert_eq!(written, rows.len(), "range within the table's rows");
    }

    /// Calls `f` once per record with the requested attributes, in storage
    /// order. This is the row-at-a-time access path the OLAP primitives use
    /// when they need several columns of the same record (e.g. TPC-H Q6).
    /// Fails up front when an attribute index is outside the schema.
    pub fn for_each_row(&self, attrs: &[usize], mut f: impl FnMut(&[u64])) -> Result<()> {
        for &attr in attrs {
            if attr >= self.schema.arity() {
                return Err(H2Error::UnknownAttribute(format!(
                    "attribute {attr} of {}-ary table",
                    self.schema.arity()
                )));
            }
        }
        let mut buf = vec![0u64; attrs.len()];
        for page in self.partitions.iter().flatten() {
            for row in 0..page.len() {
                for (i, &attr) in attrs.iter().enumerate() {
                    // h2tap: allow(panic) — attrs validated against the schema arity above; pages share that schema.
                    buf[i] = page.get(row, attr).expect("attr within arity");
                }
                f(&buf);
            }
        }
        Ok(())
    }

    /// The memory-traffic profile of scanning `attrs` of this frozen table.
    pub fn scan_profile(&self, attrs: &[usize]) -> ScanProfile {
        self.layout.scan_profile(&self.schema, attrs, self.row_count())
    }
}

/// A consistent, immutable view of the whole database.
#[derive(Debug, Clone)]
pub struct Snapshot {
    id: u64,
    epoch: Epoch,
    tables: BTreeMap<TableId, SnapshotTable>,
}

impl Snapshot {
    pub(crate) fn new(id: u64, epoch: Epoch, tables: BTreeMap<TableId, SnapshotTable>) -> Self {
        Self { id, epoch, tables }
    }

    /// Snapshot id (used to release it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The epoch this snapshot froze.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The frozen image of `table`.
    pub fn table(&self, table: TableId) -> Result<&SnapshotTable> {
        self.tables.get(&table).ok_or_else(|| H2Error::UnknownTable(format!("{table} in snapshot {}", self.id)))
    }

    /// Ids of all tables captured by the snapshot.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.tables.keys().copied()
    }

    /// Total pages referenced by this snapshot.
    pub fn page_count(&self) -> usize {
        self.tables.values().map(|t| t.partitions.iter().map(|p| p.len()).sum::<usize>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::AttrType;

    fn frozen_table() -> SnapshotTable {
        let schema = Arc::new(Schema::homogeneous("c", 3, AttrType::Int32));
        let mut p0 = Page::new(Layout::Dsm, 3, 8, Epoch::ZERO);
        let mut p1 = Page::new(Layout::Dsm, 3, 8, Epoch::ZERO);
        for i in 0..5u64 {
            p0.push(&[i, i * 2, i * 3]).unwrap();
        }
        for i in 5..9u64 {
            p1.push(&[i, i * 2, i * 3]).unwrap();
        }
        SnapshotTable {
            schema,
            layout: Layout::Dsm,
            partitions: vec![vec![Arc::new(p0)], vec![Arc::new(p1)]],
            identity: SnapshotTableId::detached(),
        }
    }

    #[test]
    fn row_count_spans_partitions() {
        assert_eq!(frozen_table().row_count(), 9);
    }

    #[test]
    fn column_materialisation_preserves_order() {
        let t = frozen_table();
        let col: Vec<u64> = t.column(1);
        assert_eq!(col, vec![0, 2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn column_into_copies_arbitrary_ranges_across_pages() {
        let t = frozen_table(); // 9 rows over two pages (5 + 4)
        let full: Vec<u64> = t.column(1);
        for (lo, hi) in [(0, 9), (0, 0), (3, 7), (5, 9), (4, 5), (0, 5), (8, 9)] {
            let mut out = vec![u64::MAX; hi - lo];
            t.column_into(1, lo..hi, &mut out);
            assert_eq!(out, &full[lo..hi], "range {lo}..{hi}");
        }
    }

    #[test]
    fn column_into_handles_row_major_pages() {
        // NSM pages have no contiguous column slice: the strided fallback
        // must deliver the same cells.
        let schema = Arc::new(Schema::homogeneous("c", 2, AttrType::Int64));
        let mut page = Page::new(Layout::Nsm, 2, 8, Epoch::ZERO);
        for i in 0..6u64 {
            page.push(&[i, i * 7]).unwrap();
        }
        let t = SnapshotTable {
            schema,
            layout: Layout::Nsm,
            partitions: vec![vec![Arc::new(page)]],
            identity: SnapshotTableId::detached(),
        };
        let mut out = vec![0u64; 3];
        t.column_into(1, 2..5, &mut out);
        assert_eq!(out, vec![14, 21, 28]);
    }

    #[test]
    fn for_each_row_delivers_requested_attrs() {
        let t = frozen_table();
        let mut sums = Vec::new();
        t.for_each_row(&[0, 2], |r| sums.push(r[0] + r[1])).unwrap();
        assert_eq!(sums.len(), 9);
        assert_eq!(sums[1], 1 + 3);
    }

    #[test]
    fn snapshot_table_lookup() {
        let mut tables = BTreeMap::new();
        tables.insert(TableId(1), frozen_table());
        let snap = Snapshot::new(7, Epoch(2), tables);
        assert_eq!(snap.id(), 7);
        assert_eq!(snap.epoch(), Epoch(2));
        assert!(snap.table(TableId(1)).is_ok());
        assert!(snap.table(TableId(2)).is_err());
        assert_eq!(snap.tables().collect::<Vec<_>>(), vec![TableId(1)]);
        assert_eq!(snap.page_count(), 2);
    }

    #[test]
    fn detached_identities_never_collide() {
        let a = SnapshotTableId::detached();
        let b = SnapshotTableId::detached();
        assert_ne!(a, b, "every detached table gets its own source id");
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn scan_profile_reflects_layout() {
        let t = frozen_table();
        let p = t.scan_profile(&[0]);
        assert!(p.contiguous);
        assert_eq!(p.useful_bytes, 9 * 4);
    }
}
