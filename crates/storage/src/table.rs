//! A table fragment: the pages of one table inside one partition.
//!
//! Updates go through [`TableFragment::writable_page`], which implements the
//! shadow-copy rule of the paper: if the page's epoch is older than the
//! current live epoch it is still shared with at least one snapshot, so it is
//! cloned, restamped with the live epoch and swapped into the live page list
//! before being modified; otherwise it is already private and is updated in
//! place. Epoch propagation to the table node mirrors the paper's
//! "repeat this copy-on-write process all the way back to the root".

use crate::layout::Layout;
use crate::page::Page;
use crate::telemetry::CowTelemetry;
use h2tap_common::{Epoch, H2Error, Result, Schema};
use std::sync::Arc;

/// Default number of records per page for NSM and DSM tables. PAX pages
/// derive their capacity from the configured page size instead.
pub const DEFAULT_ROWS_PER_PAGE: usize = 4096;

/// The pages of one table within one partition.
#[derive(Debug, Clone)]
pub struct TableFragment {
    schema: Arc<Schema>,
    layout: Layout,
    rows_per_page: usize,
    epoch: Epoch,
    pages: Vec<Arc<Page>>,
    telemetry: Arc<CowTelemetry>,
}

impl TableFragment {
    /// Creates an empty fragment.
    pub fn new(schema: Arc<Schema>, layout: Layout, telemetry: Arc<CowTelemetry>) -> Self {
        let rows_per_page = layout.pax_rows_per_page(&schema).unwrap_or(DEFAULT_ROWS_PER_PAGE);
        Self { schema, layout, rows_per_page, epoch: Epoch::ZERO, pages: Vec::new(), telemetry }
    }

    /// The fragment's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The fragment's layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The epoch of the table node (the highest epoch of any page change).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Number of records stored.
    pub fn row_count(&self) -> u64 {
        match self.pages.last() {
            None => 0,
            Some(last) => ((self.pages.len() - 1) * self.rows_per_page + last.len()) as u64,
        }
    }

    /// Records per page.
    pub fn rows_per_page(&self) -> usize {
        self.rows_per_page
    }

    /// The live page list (shallow-copied by snapshots).
    pub fn pages(&self) -> &[Arc<Page>] {
        &self.pages
    }

    fn locate(&self, row: u64) -> Result<(usize, usize)> {
        let page_idx = (row as usize) / self.rows_per_page;
        let slot = (row as usize) % self.rows_per_page;
        let page =
            self.pages.get(page_idx).ok_or_else(|| H2Error::UnknownRecord(format!("row {row} beyond fragment")))?;
        if slot >= page.len() {
            return Err(H2Error::UnknownRecord(format!("row {row} beyond fragment")));
        }
        Ok((page_idx, slot))
    }

    /// Returns a mutable reference to page `page_idx`, shadow-copying it
    /// first if it is still visible to a snapshot (epoch older than
    /// `live_epoch`).
    fn writable_page(&mut self, page_idx: usize, live_epoch: Epoch) -> &mut Page {
        let page = &mut self.pages[page_idx];
        if page.epoch() < live_epoch {
            // Shared with a snapshot: shadow copy.
            let mut copy = Page::clone(page);
            copy.set_epoch(live_epoch);
            self.telemetry.record_copy(copy.byte_size());
            *page = Arc::new(copy);
        } else {
            self.telemetry.record_in_place();
        }
        if self.epoch < live_epoch {
            self.epoch = live_epoch;
        }
        // The Arc we just (possibly) replaced is uniquely owned only if no
        // snapshot shares it; `make_mut` clones defensively otherwise, which
        // keeps the invariant even if a snapshot was taken concurrently.
        Arc::make_mut(&mut self.pages[page_idx])
    }

    /// Appends a record (encoded as cells) and returns its row index.
    pub fn insert(&mut self, cells: &[u64], live_epoch: Epoch) -> Result<u64> {
        if cells.len() != self.schema.arity() {
            return Err(H2Error::Config("record arity does not match schema".into()));
        }
        let needs_new_page = self.pages.last().map(|p| p.is_full()).unwrap_or(true);
        if needs_new_page {
            self.pages.push(Arc::new(Page::new(self.layout, self.schema.arity(), self.rows_per_page, live_epoch)));
            if self.epoch < live_epoch {
                self.epoch = live_epoch;
            }
        }
        let page_idx = self.pages.len() - 1;
        let slot = self.writable_page(page_idx, live_epoch).push(cells)?;
        Ok((page_idx * self.rows_per_page + slot) as u64)
    }

    /// Reads one cell.
    pub fn read_cell(&self, row: u64, attr: usize) -> Result<u64> {
        let (page_idx, slot) = self.locate(row)?;
        self.pages[page_idx].get(slot, attr)
    }

    /// Reads a whole record.
    pub fn read_record(&self, row: u64) -> Result<Vec<u64>> {
        let (page_idx, slot) = self.locate(row)?;
        self.pages[page_idx].record(slot)
    }

    /// Updates one cell, shadow-copying the backing page if needed.
    pub fn update_cell(&mut self, row: u64, attr: usize, value: u64, live_epoch: Epoch) -> Result<()> {
        let (page_idx, slot) = self.locate(row)?;
        self.writable_page(page_idx, live_epoch).set(slot, attr, value)
    }

    /// Overwrites a whole record, shadow-copying the backing page if needed.
    pub fn update_record(&mut self, row: u64, cells: &[u64], live_epoch: Epoch) -> Result<()> {
        let (page_idx, slot) = self.locate(row)?;
        self.writable_page(page_idx, live_epoch).set_record(slot, cells)
    }

    /// Iterates all values of one attribute across all pages.
    pub fn iter_attr(&self, attr: usize) -> impl Iterator<Item = u64> + '_ {
        self.pages.iter().flat_map(move |p| p.iter_attr(attr))
    }

    /// Total bytes of page storage held by the live fragment.
    pub fn byte_size(&self) -> u64 {
        self.pages.iter().map(|p| p.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::AttrType;

    fn fragment(layout: Layout) -> TableFragment {
        let schema = Arc::new(Schema::homogeneous("c", 4, AttrType::Int32));
        TableFragment::new(schema, layout, CowTelemetry::new())
    }

    #[test]
    fn insert_and_read_back() {
        let mut f = fragment(Layout::Dsm);
        for i in 0..10u64 {
            let row = f.insert(&[i, i + 1, i + 2, i + 3], Epoch::ZERO).unwrap();
            assert_eq!(row, i);
        }
        assert_eq!(f.row_count(), 10);
        assert_eq!(f.read_cell(7, 2).unwrap(), 9);
        assert_eq!(f.read_record(3).unwrap(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn rows_span_multiple_pages() {
        let schema = Arc::new(Schema::homogeneous("c", 16, AttrType::Int32));
        let mut f = TableFragment::new(schema, Layout::PAPER_PAX, CowTelemetry::new());
        // PAX pages for this schema hold 64 rows; insert 200.
        for i in 0..200u64 {
            f.insert(&[i; 16], Epoch::ZERO).unwrap();
        }
        assert_eq!(f.rows_per_page(), 64);
        assert_eq!(f.pages().len(), 4);
        assert_eq!(f.read_cell(199, 0).unwrap(), 199);
    }

    #[test]
    fn update_in_place_when_no_snapshot() {
        let mut f = fragment(Layout::Nsm);
        f.insert(&[1, 2, 3, 4], Epoch::ZERO).unwrap();
        f.update_cell(0, 1, 99, Epoch::ZERO).unwrap();
        assert_eq!(f.read_cell(0, 1).unwrap(), 99);
        assert_eq!(f.telemetry.pages_copied(), 0);
        assert!(f.telemetry.in_place_updates() >= 1);
    }

    #[test]
    fn update_after_snapshot_epoch_shadow_copies_once() {
        let mut f = fragment(Layout::Dsm);
        f.insert(&[1, 2, 3, 4], Epoch::ZERO).unwrap();
        f.insert(&[5, 6, 7, 8], Epoch::ZERO).unwrap();
        let shared = f.pages()[0].clone(); // simulate a snapshot holding the page
        let live = Epoch(1);
        f.update_cell(0, 0, 100, live).unwrap();
        // Snapshot's copy still sees the old value; live sees the new one.
        assert_eq!(shared.get(0, 0).unwrap(), 1);
        assert_eq!(f.read_cell(0, 0).unwrap(), 100);
        assert_eq!(f.telemetry.pages_copied(), 1);
        // A second update in the same epoch hits the private copy in place.
        f.update_cell(1, 0, 200, live).unwrap();
        assert_eq!(f.telemetry.pages_copied(), 1);
        assert_eq!(f.epoch(), live);
    }

    #[test]
    fn out_of_bounds_rows_error() {
        let mut f = fragment(Layout::Dsm);
        f.insert(&[1, 2, 3, 4], Epoch::ZERO).unwrap();
        assert!(f.read_cell(1, 0).is_err());
        assert!(f.update_cell(5, 0, 0, Epoch::ZERO).is_err());
    }

    #[test]
    fn iter_attr_crosses_pages() {
        let schema = Arc::new(Schema::homogeneous("c", 2, AttrType::Int32));
        let mut f = TableFragment::new(schema, Layout::Dsm, CowTelemetry::new());
        for i in 0..(DEFAULT_ROWS_PER_PAGE as u64 + 10) {
            f.insert(&[i, 0], Epoch::ZERO).unwrap();
        }
        let col: Vec<u64> = f.iter_attr(0).collect();
        assert_eq!(col.len(), DEFAULT_ROWS_PER_PAGE + 10);
        assert_eq!(col[DEFAULT_ROWS_PER_PAGE + 9], DEFAULT_ROWS_PER_PAGE as u64 + 9);
    }

    #[test]
    fn arity_mismatch_on_insert_is_rejected() {
        let mut f = fragment(Layout::Dsm);
        assert!(f.insert(&[1, 2], Epoch::ZERO).is_err());
    }
}
