//! CPU columnar OLAP baselines: a MonetDB-like and a "DBMS-C"-like engine.
//!
//! Figure 4 of the paper compares GPU-powered Caldera against two CPU column
//! stores running TPC-H Q6 parallelised across all 24 cores: MonetDB (open
//! source, 1.27x faster than the commercial engine thanks to secondary
//! indexes) and an anonymised commercial column store "DBMS-C". Neither is
//! available here, so this module implements two scan engines with the same
//! architectural distinction:
//!
//! * [`CpuEngineKind::MonetLike`] builds per-chunk zonemaps (min/max
//!   "secondary indexes") on predicate columns and skips chunks that cannot
//!   qualify; it also has a slightly lower per-tuple cost (column-at-a-time
//!   vectorised execution).
//! * [`CpuEngineKind::DbmsCLike`] always scans every chunk.
//!
//! Both compute exact answers over the real data; reported time combines a
//! measured wall-clock component with a bandwidth-bound analytical model so
//! that cross-engine comparisons (CPU vs the simulated GPU) use the same
//! simulated-hardware frame of reference.

use h2tap_common::{AggExpr, Result, ScanAggQuery, SimDuration};
use h2tap_storage::SnapshotTable;
use std::time::Instant;

/// The two CPU baseline engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuEngineKind {
    /// MonetDB-like: zonemap skipping plus vectorised execution.
    MonetLike,
    /// Commercial column store "DBMS-C": plain parallel scan.
    DbmsCLike,
}

impl CpuEngineKind {
    /// Display label matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            CpuEngineKind::MonetLike => "MonetDB",
            CpuEngineKind::DbmsCLike => "DBMS-C",
        }
    }

    /// Per-tuple processing cost in nanoseconds, calibrated against the
    /// paper's Figure 4: MonetDB answers Q6 over SF-300 (1.8 B rows) in about
    /// 7 s on 24 cores, i.e. roughly 93 ns of aggregate per-tuple work, and
    /// DBMS-C is 1.27x slower. Column-at-a-time execution materialises
    /// intermediates per operator, which is why the constant is far above a
    /// single fused-loop pass.
    fn per_tuple_ns(self) -> f64 {
        match self {
            CpuEngineKind::MonetLike => 93.0,
            CpuEngineKind::DbmsCLike => 118.0,
        }
    }

    /// Whether the engine consults zonemaps before scanning a chunk.
    fn uses_zonemaps(self) -> bool {
        matches!(self, CpuEngineKind::MonetLike)
    }
}

/// The CPU socket configuration of the paper's evaluation server: two
/// 12-core Xeon E5-2650L v3 with about 2 x 34 GB/s of sustained memory
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Cores used for the scan.
    pub cores: u32,
    /// Sustained aggregate memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
}

impl Default for CpuSpec {
    fn default() -> Self {
        Self { cores: 24, mem_bandwidth_gbps: 68.0 }
    }
}

/// Result of running a query on a CPU baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuOlapResult {
    /// The aggregate value.
    pub value: f64,
    /// Number of qualifying records.
    pub qualifying_rows: u64,
    /// Records actually scanned (after zonemap skipping).
    pub rows_scanned: u64,
    /// Chunks skipped thanks to zonemaps.
    pub chunks_skipped: u64,
    /// Modelled execution time on the paper's 24-core server.
    pub sim_time: SimDuration,
    /// Wall-clock time of the real computation in this process.
    pub wall_time: std::time::Duration,
}

/// A CPU columnar scan engine.
#[derive(Debug, Clone, Copy)]
pub struct CpuOlapEngine {
    kind: CpuEngineKind,
    spec: CpuSpec,
    /// Rows per scan chunk (zonemap granularity).
    chunk_rows: usize,
}

impl CpuOlapEngine {
    /// Creates an engine of the given kind on the default server spec.
    pub fn new(kind: CpuEngineKind) -> Self {
        Self { kind, spec: CpuSpec::default(), chunk_rows: 64 * 1024 }
    }

    /// Overrides the hardware spec (used by ablation benches).
    #[must_use]
    pub fn with_spec(mut self, spec: CpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// The engine kind.
    pub fn kind(&self) -> CpuEngineKind {
        self.kind
    }

    /// Executes `query` over a frozen table, returning the exact result and
    /// modelled/measured costs.
    pub fn execute(&self, table: &SnapshotTable, query: &ScanAggQuery) -> Result<CpuOlapResult> {
        let started = Instant::now();
        let cols = query.columns_accessed();
        let attr_types: Vec<_> = cols
            .iter()
            .map(|&c| table.schema.attr(c).map(|a| a.ty))
            .collect::<Result<Vec<_>>>()?;

        // Materialise the accessed columns chunk by chunk so zonemaps have a
        // real structure to work against.
        let mut value = 0.0f64;
        let mut qualifying = 0u64;
        let mut rows_scanned = 0u64;
        let mut chunks_skipped = 0u64;
        let total_rows = table.row_count();

        // Column positions within the materialised row buffer.
        let pos_of = |col: usize| cols.iter().position(|&c| c == col).expect("accessed column");

        let mut chunk: Vec<Vec<f64>> = vec![Vec::with_capacity(self.chunk_rows); cols.len()];
        let flush = |chunk: &mut Vec<Vec<f64>>,
                         value: &mut f64,
                         qualifying: &mut u64,
                         rows_scanned: &mut u64,
                         chunks_skipped: &mut u64| {
            let rows = chunk[0].len();
            if rows == 0 {
                return;
            }
            // Zonemap check: can any row in this chunk qualify?
            if self.kind.uses_zonemaps() {
                let mut possible = true;
                for pred in &query.predicates {
                    let col = &chunk[pos_of(pred.column)];
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for v in col {
                        lo = lo.min(*v);
                        hi = hi.max(*v);
                    }
                    if hi < pred.lo || lo > pred.hi {
                        possible = false;
                        break;
                    }
                }
                if !possible {
                    *chunks_skipped += 1;
                    for c in chunk.iter_mut() {
                        c.clear();
                    }
                    return;
                }
            }
            *rows_scanned += rows as u64;
            for row in 0..rows {
                let mut ok = true;
                for pred in &query.predicates {
                    if !pred.matches(chunk[pos_of(pred.column)][row]) {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                *qualifying += 1;
                match &query.aggregate {
                    AggExpr::SumProduct(a, b) => {
                        *value += chunk[pos_of(*a)][row] * chunk[pos_of(*b)][row];
                    }
                    AggExpr::SumColumns(sum_cols) => {
                        for c in sum_cols {
                            *value += chunk[pos_of(*c)][row];
                        }
                    }
                    AggExpr::Count => *value += 1.0,
                }
            }
            for c in chunk.iter_mut() {
                c.clear();
            }
        };

        let mut buffered = 0usize;
        let mut row_buf = vec![0u64; cols.len()];
        table.for_each_row(&cols, |cells| {
            row_buf.copy_from_slice(cells);
            for (i, cell) in row_buf.iter().enumerate() {
                let v = match attr_types[i] {
                    h2tap_common::AttrType::Float64 => f64::from_bits(*cell),
                    h2tap_common::AttrType::Int32 | h2tap_common::AttrType::Date => (*cell as u32 as i32) as f64,
                    _ => *cell as i64 as f64,
                };
                chunk[i].push(v);
            }
            buffered += 1;
            if buffered == self.chunk_rows {
                flush(&mut chunk, &mut value, &mut qualifying, &mut rows_scanned, &mut chunks_skipped);
                buffered = 0;
            }
        });
        flush(&mut chunk, &mut value, &mut qualifying, &mut rows_scanned, &mut chunks_skipped);

        // Analytical time model: the scan is memory-bandwidth bound; zonemap
        // skipping reduces the bytes moved (predicate columns of skipped
        // chunks are still summarised by the index, charged at 1% of their
        // size), and per-tuple work is spread over all cores.
        let accessed_width: u64 = cols
            .iter()
            .map(|&c| table.schema.attr(c).map(|a| a.ty.width() as u64).unwrap_or(8))
            .sum();
        let scanned_bytes = rows_scanned * accessed_width;
        let skipped_bytes = (total_rows - rows_scanned) * accessed_width;
        let bytes_moved = scanned_bytes + skipped_bytes / 100;
        let bandwidth_time = bytes_moved as f64 / (self.spec.mem_bandwidth_gbps * 1e9);
        let cpu_time = rows_scanned as f64 * self.kind.per_tuple_ns() * 1e-9 / f64::from(self.spec.cores.max(1));
        let sim_time = SimDuration::from_secs_f64(bandwidth_time.max(cpu_time) + bandwidth_time.min(cpu_time) * 0.25);

        Ok(CpuOlapResult {
            value,
            qualifying_rows: qualifying,
            rows_scanned,
            chunks_skipped,
            sim_time,
            wall_time: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{AttrType, PartitionId, Predicate, Schema, Value};
    use h2tap_storage::{Database, Layout};

    /// Builds a 2-column table: col0 = 0..n (sorted), col1 = col0 * 2.
    fn table(n: i64) -> h2tap_storage::SnapshotTable {
        let db = Database::new(1);
        let schema = Schema::homogeneous("c", 2, AttrType::Int64);
        let t = db.create_table("t", schema, Layout::Dsm).unwrap();
        for i in 0..n {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(i * 2)]).unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    #[test]
    fn both_engines_compute_the_same_exact_answer() {
        let t = table(10_000);
        let query = ScanAggQuery {
            predicates: vec![Predicate::between(0, 0.0, 999.0)],
            aggregate: AggExpr::SumProduct(0, 1),
        };
        let monet = CpuOlapEngine::new(CpuEngineKind::MonetLike).execute(&t, &query).unwrap();
        let dbmsc = CpuOlapEngine::new(CpuEngineKind::DbmsCLike).execute(&t, &query).unwrap();
        let expected: f64 = (0..1000).map(|i| (i * i * 2) as f64).sum();
        assert_eq!(monet.value, expected);
        assert_eq!(dbmsc.value, expected);
        assert_eq!(monet.qualifying_rows, 1000);
    }

    #[test]
    fn monet_like_skips_chunks_on_clustered_predicates() {
        // col0 is inserted in sorted order, so zonemaps can skip chunks.
        let t = table(300_000);
        let query = ScanAggQuery {
            predicates: vec![Predicate::between(0, 0.0, 9_999.0)],
            aggregate: AggExpr::Count,
        };
        let monet = CpuOlapEngine::new(CpuEngineKind::MonetLike).execute(&t, &query).unwrap();
        let dbmsc = CpuOlapEngine::new(CpuEngineKind::DbmsCLike).execute(&t, &query).unwrap();
        assert_eq!(monet.value, 10_000.0);
        assert!(monet.chunks_skipped > 0, "zonemaps should skip chunks on sorted data");
        assert_eq!(dbmsc.chunks_skipped, 0);
        assert!(monet.rows_scanned < dbmsc.rows_scanned);
        assert!(monet.sim_time < dbmsc.sim_time);
    }

    #[test]
    fn count_aggregate_counts_qualifying_rows() {
        let t = table(1000);
        let query = ScanAggQuery {
            predicates: vec![Predicate::between(1, 0.0, 10.0)],
            aggregate: AggExpr::Count,
        };
        let r = CpuOlapEngine::new(CpuEngineKind::DbmsCLike).execute(&t, &query).unwrap();
        assert_eq!(r.value, 6.0); // col1 in {0,2,4,6,8,10}
    }

    #[test]
    fn sim_time_scales_with_data_size() {
        let small = table(10_000);
        let big = table(100_000);
        let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let engine = CpuOlapEngine::new(CpuEngineKind::DbmsCLike);
        let ts = engine.execute(&small, &query).unwrap().sim_time;
        let tb = engine.execute(&big, &query).unwrap().sim_time;
        let ratio = tb.as_secs_f64() / ts.as_secs_f64();
        assert!((8.0..12.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(CpuEngineKind::MonetLike.label(), "MonetDB");
        assert_eq!(CpuEngineKind::DbmsCLike.label(), "DBMS-C");
    }
}
