//! CPU columnar OLAP baselines: a MonetDB-like and a "DBMS-C"-like engine.
//!
//! Figure 4 of the paper compares GPU-powered Caldera against two CPU column
//! stores running TPC-H Q6 parallelised across all 24 cores: MonetDB (open
//! source, 1.27x faster than the commercial engine thanks to secondary
//! indexes) and an anonymised commercial column store "DBMS-C". Neither is
//! available here, so this module exposes two scan-engine configurations with
//! the same architectural distinction:
//!
//! * [`CpuEngineKind::MonetLike`] builds per-chunk zonemaps (min/max
//!   "secondary indexes") on predicate columns and skips chunks that cannot
//!   qualify; it also has a slightly lower per-tuple cost (column-at-a-time
//!   vectorised execution).
//! * [`CpuEngineKind::DbmsCLike`] always scans every chunk.
//!
//! The scan engine itself lives in [`h2tap_olap::cpu`] — it was promoted out
//! of this module when it became Caldera's CPU execution site — so the
//! Figure-4 baselines and Caldera's own CPU dispatch exercise exactly the
//! same code path. This module is a thin wrapper that keeps the paper's
//! engine names and the baseline-facing API.

use h2tap_common::{Result, ScanAggQuery};
use h2tap_olap::cpu::CpuScanProfile;
use h2tap_storage::SnapshotTable;

pub use h2tap_olap::cpu::{CpuOlapResult, CpuSpec};

/// The two CPU baseline engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuEngineKind {
    /// MonetDB-like: zonemap skipping plus vectorised execution.
    MonetLike,
    /// Commercial column store "DBMS-C": plain parallel scan.
    DbmsCLike,
}

impl CpuEngineKind {
    /// Display label matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            CpuEngineKind::MonetLike => "MonetDB",
            CpuEngineKind::DbmsCLike => "DBMS-C",
        }
    }

    /// The shared-engine profile this baseline runs with.
    pub fn profile(self) -> CpuScanProfile {
        match self {
            CpuEngineKind::MonetLike => CpuScanProfile::vectorized(),
            CpuEngineKind::DbmsCLike => CpuScanProfile::materializing(),
        }
    }
}

/// A CPU columnar scan baseline: [`CpuEngineKind`] branding over the shared
/// [`h2tap_olap::CpuOlapEngine`].
#[derive(Debug, Clone)]
pub struct CpuOlapEngine {
    kind: CpuEngineKind,
    inner: h2tap_olap::CpuOlapEngine,
}

impl CpuOlapEngine {
    /// Creates an engine of the given kind on the default server spec.
    pub fn new(kind: CpuEngineKind) -> Self {
        Self { kind, inner: h2tap_olap::CpuOlapEngine::new(kind.profile()) }
    }

    /// Overrides the hardware spec (used by ablation benches).
    #[must_use]
    pub fn with_spec(mut self, spec: CpuSpec) -> Self {
        self.inner = self.inner.with_spec(spec);
        self
    }

    /// The engine kind.
    pub fn kind(&self) -> CpuEngineKind {
        self.kind
    }

    /// Executes `query` over a frozen table, returning the exact result and
    /// modelled/measured costs.
    pub fn execute(&self, table: &SnapshotTable, query: &ScanAggQuery) -> Result<CpuOlapResult> {
        self.inner.execute_scan(table, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2tap_common::{AggExpr, AttrType, PartitionId, Predicate, Schema, Value};
    use h2tap_storage::{Database, Layout};

    /// Builds a 2-column table: col0 = 0..n (sorted), col1 = col0 * 2.
    fn table(n: i64) -> h2tap_storage::SnapshotTable {
        let db = Database::new(1);
        let schema = Schema::homogeneous("c", 2, AttrType::Int64);
        let t = db.create_table("t", schema, Layout::Dsm).unwrap();
        for i in 0..n {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(i * 2)]).unwrap();
        }
        let snap = db.snapshot();
        snap.table(t).unwrap().clone()
    }

    #[test]
    fn both_engines_compute_the_same_exact_answer() {
        let t = table(10_000);
        let query =
            ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 999.0)], aggregate: AggExpr::SumProduct(0, 1) };
        let monet = CpuOlapEngine::new(CpuEngineKind::MonetLike).execute(&t, &query).unwrap();
        let dbmsc = CpuOlapEngine::new(CpuEngineKind::DbmsCLike).execute(&t, &query).unwrap();
        let expected: f64 = (0..1000).map(|i| (i * i * 2) as f64).sum();
        assert_eq!(monet.value, expected);
        assert_eq!(dbmsc.value, expected);
        assert_eq!(monet.qualifying_rows, 1000);
    }

    #[test]
    fn monet_like_skips_chunks_on_clustered_predicates() {
        // col0 is inserted in sorted order, so zonemaps can skip chunks.
        let t = table(300_000);
        let query = ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 9_999.0)], aggregate: AggExpr::Count };
        let monet = CpuOlapEngine::new(CpuEngineKind::MonetLike).execute(&t, &query).unwrap();
        let dbmsc = CpuOlapEngine::new(CpuEngineKind::DbmsCLike).execute(&t, &query).unwrap();
        assert_eq!(monet.value, 10_000.0);
        assert!(monet.chunks_skipped > 0, "zonemaps should skip chunks on sorted data");
        assert_eq!(dbmsc.chunks_skipped, 0);
        assert!(monet.rows_scanned < dbmsc.rows_scanned);
        assert!(monet.sim_time < dbmsc.sim_time);
    }

    #[test]
    fn count_aggregate_counts_qualifying_rows() {
        let t = table(1000);
        let query = ScanAggQuery { predicates: vec![Predicate::between(1, 0.0, 10.0)], aggregate: AggExpr::Count };
        let r = CpuOlapEngine::new(CpuEngineKind::DbmsCLike).execute(&t, &query).unwrap();
        assert_eq!(r.value, 6.0); // col1 in {0,2,4,6,8,10}
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(CpuEngineKind::MonetLike.label(), "MonetDB");
        assert_eq!(CpuEngineKind::DbmsCLike.label(), "DBMS-C");
    }

    #[test]
    fn baseline_and_caldera_cpu_site_share_the_engine() {
        // The MonetDB-like baseline and the archipelago CPU site run the same
        // scan kernel, so with the same spec they must report identical
        // answers and identical modelled times.
        let t = table(50_000);
        let query = ScanAggQuery {
            predicates: vec![Predicate::between(0, 100.0, 40_000.0)],
            aggregate: AggExpr::SumColumns(vec![1]),
        };
        let baseline = CpuOlapEngine::new(CpuEngineKind::MonetLike).execute(&t, &query).unwrap();
        let site = h2tap_olap::CpuOlapEngine::new(CpuScanProfile::vectorized()).execute_scan(&t, &query).unwrap();
        assert_eq!(baseline.value, site.value);
        assert_eq!(baseline.qualifying_rows, site.qualifying_rows);
        assert_eq!(baseline.sim_time, site.sim_time);
    }
}
