//! Baseline systems the paper evaluates Caldera against.
//!
//! * [`silo`] — a Silo-style shared-everything OCC engine (Figures 8, 9),
//! * [`sn_silo`] — one Silo instance per core with a two-phase-commit layer
//!   for multi-site transactions (Figure 9),
//! * [`cpu_olap`] — MonetDB-like and "DBMS-C"-like CPU columnar scan engines
//!   (Figure 4).
//!
//! The baselines answer the same workloads as Caldera over the same data so
//! that every comparison in the benchmark harness is apples-to-apples.

pub mod cpu_olap;
pub mod silo;
pub mod sn_silo;

pub use cpu_olap::{CpuEngineKind, CpuOlapEngine, CpuOlapResult, CpuSpec};
pub use silo::{SiloDb, SiloGenerator, SiloRuntime, SiloTxn, SiloWindow};
pub use sn_silo::{run_sn_silo_benchmark, SnSilo, SnSiloGenerator, SnSiloWindow};
