//! A Silo-style main-memory OLTP engine (the paper's OLTP baseline).
//!
//! Silo (Tu et al., SOSP 2013) is a shared-everything engine built on
//! optimistic concurrency control: transactions read record versions
//! optimistically, buffer their writes, and at commit lock their write set,
//! validate that nothing they read has changed, and install new versions
//! stamped with a transaction id. Unlike Caldera it relies on cache-coherent
//! shared memory for its version words and record locks, which is exactly the
//! dependency the paper argues will not survive on emerging hardware.
//!
//! This implementation keeps the parts that matter for Figures 8 and 9 —
//! epoch-based TIDs, read-set validation, write-set locking in a canonical
//! order, abort/retry — and omits durable logging (the paper's experiments
//! run with logging disabled as well).

use h2tap_common::rng::SplitMixRng;
use h2tap_common::stats::throughput;
use h2tap_common::{H2Error, Result, TableId, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lock bit stored in the high bit of a record's TID word.
const LOCK_BIT: u64 = 1 << 63;

/// One record: a TID word (version + lock bit) and the current value.
#[derive(Debug)]
pub struct SiloRecord {
    tid: AtomicU64,
    data: RwLock<Vec<Value>>,
}

impl SiloRecord {
    fn new(data: Vec<Value>) -> Self {
        Self { tid: AtomicU64::new(0), data: RwLock::new(data) }
    }

    /// Reads a consistent (version, value) pair by re-checking the TID word.
    fn stable_read(&self) -> (u64, Vec<Value>) {
        loop {
            let before = self.tid.load(Ordering::Acquire);
            if before & LOCK_BIT != 0 {
                std::hint::spin_loop();
                continue;
            }
            let value = self.data.read().clone();
            let after = self.tid.load(Ordering::Acquire);
            if before == after {
                return (before, value);
            }
        }
    }

    fn try_lock(&self) -> Option<u64> {
        let current = self.tid.load(Ordering::Acquire);
        if current & LOCK_BIT != 0 {
            return None;
        }
        self.tid
            .compare_exchange(current, current | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
            .ok()
            .map(|_| current)
    }

    fn unlock(&self, new_tid: Option<u64>) {
        match new_tid {
            Some(tid) => self.tid.store(tid & !LOCK_BIT, Ordering::Release),
            None => {
                let current = self.tid.load(Ordering::Acquire);
                self.tid.store(current & !LOCK_BIT, Ordering::Release);
            }
        }
    }
}

/// One table: a key index plus the record arena.
#[derive(Debug, Default)]
struct SiloTable {
    index: RwLock<HashMap<i64, Arc<SiloRecord>>>,
}

/// The shared-everything Silo database.
#[derive(Debug)]
pub struct SiloDb {
    tables: RwLock<HashMap<TableId, SiloTable>>,
    global_epoch: AtomicU64,
}

impl SiloDb {
    /// Creates an empty database.
    pub fn new() -> Arc<Self> {
        Arc::new(Self { tables: RwLock::new(HashMap::new()), global_epoch: AtomicU64::new(1) })
    }

    /// Registers a table.
    pub fn create_table(&self, table: TableId) {
        self.tables.write().entry(table).or_default();
    }

    /// Loads a record outside of any transaction (bulk loading).
    pub fn load(&self, table: TableId, key: i64, values: Vec<Value>) -> Result<()> {
        let tables = self.tables.read();
        let t = tables.get(&table).ok_or_else(|| H2Error::UnknownTable(table.to_string()))?;
        // h2tap: allow(lock_order) — ordering rule: the tables map is always acquired before a table's index and never the reverse; the index guard is a statement temporary that cannot outlive the tables guard.
        t.index.write().insert(key, Arc::new(SiloRecord::new(values)));
        Ok(())
    }

    /// Number of records in `table`.
    pub fn table_len(&self, table: TableId) -> usize {
        // h2tap: allow(lock_order) — ordering rule: the tables map is always acquired before a table's index and never the reverse; both guards are temporaries of this one statement.
        self.tables.read().get(&table).map(|t| t.index.read().len()).unwrap_or(0)
    }

    /// Advances the global epoch (Silo does this on a timer thread; the
    /// benchmark driver calls it between windows).
    pub fn advance_epoch(&self) {
        self.global_epoch.fetch_add(1, Ordering::AcqRel);
    }

    fn record(&self, table: TableId, key: i64) -> Result<Arc<SiloRecord>> {
        let tables = self.tables.read();
        let t = tables.get(&table).ok_or_else(|| H2Error::UnknownTable(table.to_string()))?;
        // h2tap: allow(lock_order) — ordering rule: the tables map is always acquired before a table's index and never the reverse; the index guard is a statement temporary that cannot outlive the tables guard.
        let record = t.index.read().get(&key).cloned();
        record.ok_or_else(|| H2Error::UnknownRecord(format!("key {key} in {table}")))
    }

    fn insert_record(&self, table: TableId, key: i64, values: Vec<Value>) -> Result<Arc<SiloRecord>> {
        let tables = self.tables.read();
        let t = tables.get(&table).ok_or_else(|| H2Error::UnknownTable(table.to_string()))?;
        // h2tap: allow(lock_order) — ordering rule: the tables map is always acquired before a table's index and never the reverse; the index guard is released with the tables guard at function exit.
        let mut index = t.index.write();
        if index.contains_key(&key) {
            return Err(H2Error::TxnAborted(format!("duplicate key {key}")));
        }
        let rec = Arc::new(SiloRecord::new(values));
        index.insert(key, Arc::clone(&rec));
        Ok(rec)
    }
}

/// A transaction running under Silo's OCC protocol.
pub struct SiloTxn {
    db: Arc<SiloDb>,
    read_set: Vec<(Arc<SiloRecord>, u64)>,
    write_set: Vec<(Arc<SiloRecord>, Vec<Value>)>,
    inserts: Vec<(TableId, i64, Vec<Value>)>,
}

impl SiloTxn {
    /// Begins a transaction.
    pub fn begin(db: Arc<SiloDb>) -> Self {
        Self { db, read_set: Vec::new(), write_set: Vec::new(), inserts: Vec::new() }
    }

    /// Reads the record with primary key `key`.
    pub fn read(&mut self, table: TableId, key: i64) -> Result<Vec<Value>> {
        let rec = self.db.record(table, key)?;
        // Read-your-writes.
        if let Some((_, values)) = self.write_set.iter().rev().find(|(r, _)| Arc::ptr_eq(r, &rec)) {
            return Ok(values.clone());
        }
        let (tid, values) = rec.stable_read();
        self.read_set.push((rec, tid));
        Ok(values)
    }

    /// Buffers an overwrite of the record with primary key `key`.
    pub fn write(&mut self, table: TableId, key: i64, values: Vec<Value>) -> Result<()> {
        let rec = self.db.record(table, key)?;
        self.write_set.retain(|(r, _)| !Arc::ptr_eq(r, &rec));
        self.write_set.push((rec, values));
        Ok(())
    }

    /// Buffers an insert.
    pub fn insert(&mut self, table: TableId, key: i64, values: Vec<Value>) {
        self.inserts.push((table, key, values));
    }

    /// Runs Silo's commit protocol: lock write set in canonical order,
    /// validate the read set, install writes with a fresh TID.
    pub fn commit(mut self) -> Result<()> {
        // Phase 1: lock the write set in address order to avoid deadlock.
        self.write_set.sort_by_key(|(rec, _)| Arc::as_ptr(rec) as usize);
        let mut locked: Vec<(Arc<SiloRecord>, u64)> = Vec::with_capacity(self.write_set.len());
        for (rec, _) in &self.write_set {
            match rec.try_lock() {
                Some(tid) => locked.push((Arc::clone(rec), tid)),
                None => {
                    for (r, _) in &locked {
                        r.unlock(None);
                    }
                    return Err(H2Error::TxnAborted("write-set lock conflict".into()));
                }
            }
        }
        // Phase 2: validate the read set.
        for (rec, seen_tid) in &self.read_set {
            let current = rec.tid.load(Ordering::Acquire);
            let locked_by_us = locked.iter().any(|(r, _)| Arc::ptr_eq(r, rec));
            let locked_by_other = current & LOCK_BIT != 0 && !locked_by_us;
            if (current & !LOCK_BIT) != *seen_tid || locked_by_other {
                for (r, _) in &locked {
                    r.unlock(None);
                }
                return Err(H2Error::TxnAborted("read-set validation failed".into()));
            }
        }
        // Phase 3: install writes with a new TID in the current epoch.
        let epoch = self.db.global_epoch.load(Ordering::Acquire);
        let max_seen = locked.iter().map(|(_, tid)| *tid).max().unwrap_or(0);
        let new_tid = ((epoch << 32) | ((max_seen & 0xFFFF_FFFF) + 1)) & !LOCK_BIT;
        for (rec, values) in self.write_set.drain(..) {
            *rec.data.write() = values;
            rec.unlock(Some(new_tid));
        }
        // Inserts are installed at commit (simplified from Silo's node-set
        // validation; the paper's workloads never conflict on inserts).
        for (table, key, values) in self.inserts.drain(..) {
            self.db.insert_record(table, key, values)?;
        }
        Ok(())
    }

    /// Discards the transaction.
    pub fn abort(self) {}
}

/// Generator of Silo transactions for benchmark mode.
pub trait SiloGenerator: Send + Sync {
    /// Runs one transaction on `db`; returns `Ok(true)` if it committed,
    /// `Ok(false)` if it aborted and should be counted as such.
    fn run_one(&self, db: &Arc<SiloDb>, worker: usize, seq: u64, rng: &mut SplitMixRng) -> Result<()>;
}

/// Result of a Silo benchmark window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiloWindow {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions (after retries).
    pub aborted: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Committed transactions per second.
    pub throughput_tps: f64,
}

/// Multi-threaded Silo benchmark driver.
pub struct SiloRuntime {
    db: Arc<SiloDb>,
    workers: usize,
    max_retries: u32,
    seed: u64,
}

impl SiloRuntime {
    /// Creates a driver with `workers` threads.
    pub fn new(db: Arc<SiloDb>, workers: usize) -> Self {
        Self { db, workers, max_retries: 64, seed: 0xC0FFEE }
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<SiloDb> {
        &self.db
    }

    /// Runs `generator` on all workers for `window` and reports throughput.
    pub fn run_for(&self, generator: Arc<dyn SiloGenerator>, window: Duration) -> SiloWindow {
        let stop = Arc::new(AtomicBool::new(false));
        let committed = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..self.workers {
                let db = Arc::clone(&self.db);
                let generator = Arc::clone(&generator);
                let stop = Arc::clone(&stop);
                let committed = Arc::clone(&committed);
                let aborted = Arc::clone(&aborted);
                let mut rng = SplitMixRng::new(self.seed ^ (w as u64).wrapping_mul(0x9E37_79B9));
                let max_retries = self.max_retries;
                scope.spawn(move || {
                    let mut seq = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let mut attempts = 0;
                        loop {
                            match generator.run_one(&db, w, seq, &mut rng) {
                                Ok(()) => {
                                    committed.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(H2Error::TxnAborted(_)) if attempts < max_retries => {
                                    attempts += 1;
                                }
                                Err(_) => {
                                    aborted.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        seq += 1;
                    }
                });
            }
            std::thread::sleep(window);
            stop.store(true, Ordering::Release);
        });
        let elapsed = start.elapsed();
        let committed = committed.load(Ordering::Relaxed);
        SiloWindow {
            committed,
            aborted: aborted.load(Ordering::Relaxed),
            elapsed,
            throughput_tps: throughput(committed, elapsed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(0);

    fn db_with_rows(n: i64) -> Arc<SiloDb> {
        let db = SiloDb::new();
        db.create_table(T);
        for k in 0..n {
            db.load(T, k, vec![Value::Int64(k), Value::Int64(100)]).unwrap();
        }
        db
    }

    #[test]
    fn read_your_writes_and_commit() {
        let db = db_with_rows(4);
        let mut txn = SiloTxn::begin(Arc::clone(&db));
        let mut rec = txn.read(T, 1).unwrap();
        rec[1] = Value::Int64(500);
        txn.write(T, 1, rec).unwrap();
        assert_eq!(txn.read(T, 1).unwrap()[1], Value::Int64(500));
        txn.commit().unwrap();
        let mut check = SiloTxn::begin(db);
        assert_eq!(check.read(T, 1).unwrap()[1], Value::Int64(500));
    }

    #[test]
    fn stale_read_set_fails_validation() {
        let db = db_with_rows(4);
        let mut t1 = SiloTxn::begin(Arc::clone(&db));
        let _ = t1.read(T, 2).unwrap();
        // A concurrent transaction updates the same record and commits first.
        let mut t2 = SiloTxn::begin(Arc::clone(&db));
        let mut rec = t2.read(T, 2).unwrap();
        rec[1] = Value::Int64(7);
        t2.write(T, 2, rec).unwrap();
        t2.commit().unwrap();
        // t1 now writes something based on its stale read; validation fails.
        t1.write(T, 3, vec![Value::Int64(3), Value::Int64(0)]).unwrap();
        assert!(t1.commit().is_err());
    }

    #[test]
    fn blind_writes_to_distinct_records_do_not_conflict() {
        let db = db_with_rows(4);
        let mut t1 = SiloTxn::begin(Arc::clone(&db));
        let mut t2 = SiloTxn::begin(Arc::clone(&db));
        t1.write(T, 0, vec![Value::Int64(0), Value::Int64(1)]).unwrap();
        t2.write(T, 1, vec![Value::Int64(1), Value::Int64(2)]).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
    }

    #[test]
    fn inserts_are_visible_after_commit() {
        let db = db_with_rows(1);
        let mut txn = SiloTxn::begin(Arc::clone(&db));
        txn.insert(T, 50, vec![Value::Int64(50), Value::Int64(1)]);
        txn.commit().unwrap();
        assert_eq!(db.table_len(T), 2);
        let mut check = SiloTxn::begin(db);
        assert_eq!(check.read(T, 50).unwrap()[0], Value::Int64(50));
    }

    #[test]
    fn unknown_keys_error() {
        let db = db_with_rows(1);
        let mut txn = SiloTxn::begin(db);
        assert!(txn.read(T, 42).is_err());
        assert!(txn.write(TableId(9), 0, vec![]).is_err());
    }

    #[test]
    fn concurrent_increments_preserve_the_sum() {
        struct Incr;
        impl SiloGenerator for Incr {
            fn run_one(&self, db: &Arc<SiloDb>, _w: usize, _s: u64, rng: &mut SplitMixRng) -> Result<()> {
                let key = rng.next_below(8) as i64;
                let mut txn = SiloTxn::begin(Arc::clone(db));
                let mut rec = txn.read(T, key)?;
                rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 1);
                txn.write(T, key, rec)?;
                txn.commit()
            }
        }
        let db = db_with_rows(8);
        let rt = SiloRuntime::new(Arc::clone(&db), 4);
        let window = rt.run_for(Arc::new(Incr), Duration::from_millis(100));
        assert!(window.committed > 0);
        // Sum of balances must equal the initial sum plus committed increments.
        let mut txn = SiloTxn::begin(db);
        let mut sum = 0i64;
        for k in 0..8 {
            sum += txn.read(T, k).unwrap()[1].as_i64().unwrap();
        }
        assert_eq!(sum, 800 + window.committed as i64);
    }
}
