//! Shared-nothing Silo (SN-Silo): one Silo instance per core plus a
//! two-phase-commit layer.
//!
//! The paper's Figure 9 compares Caldera against "SN-Silo", which
//! "represents how one could use current OLTP engines on emerging non-CC
//! multi-cores; the SN-Silo setup uses one instance of Silo per core and a
//! distributed transaction layer to coordinate multi-site transactions using
//! the two-phase commit (2PC) protocol". Single-site transactions run
//! directly against the local instance; multi-site transactions pay remote
//! read round trips plus a prepare round and a commit round, which is exactly
//! the overhead the figure attributes to SN designs.
//!
//! Participants never force a log (the workload is read-only and the paper's
//! setup runs without durability), so the measured cost is pure messaging and
//! blocking — the distributed-transaction overhead of [42] in the paper.

use crate::silo::{SiloDb, SiloTxn};
use crossbeam_channel::{bounded, Receiver, Sender};
use h2tap_common::rng::SplitMixRng;
use h2tap_common::stats::throughput;
use h2tap_common::{H2Error, Result, TableId, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Messages from a coordinator to a participant instance.
enum ParticipantMsg {
    /// Execute a read on behalf of a distributed transaction.
    Read { table: TableId, key: i64, reply: Sender<Result<Vec<Value>>> },
    /// 2PC phase 1.
    Prepare { reply: Sender<bool> },
    /// 2PC phase 2.
    Commit,
    /// Shut the participant down.
    Shutdown,
}

/// A shared-nothing deployment of Silo: one instance (and one server thread)
/// per partition.
pub struct SnSilo {
    instances: Vec<Arc<SiloDb>>,
    senders: Vec<Sender<ParticipantMsg>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    partitions: usize,
}

impl SnSilo {
    /// Creates `partitions` independent Silo instances, each served by its
    /// own participant thread.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0);
        let instances: Vec<Arc<SiloDb>> = (0..partitions).map(|_| SiloDb::new()).collect();
        let mut senders = Vec::with_capacity(partitions);
        let mut handles = Vec::with_capacity(partitions);
        for instance in &instances {
            let (tx, rx): (Sender<ParticipantMsg>, Receiver<ParticipantMsg>) = bounded(1024);
            senders.push(tx);
            let db = Arc::clone(instance);
            handles.push(std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ParticipantMsg::Read { table, key, reply } => {
                            let mut txn = SiloTxn::begin(Arc::clone(&db));
                            let result = txn.read(table, key);
                            // Read-only participant work: commit immediately.
                            let _ = txn.commit();
                            let _ = reply.send(result);
                        }
                        ParticipantMsg::Prepare { reply } => {
                            // Read-only vote: always yes (no log force).
                            let _ = reply.send(true);
                        }
                        ParticipantMsg::Commit => {}
                        ParticipantMsg::Shutdown => break,
                    }
                }
            }));
        }
        Self { instances, senders, handles, partitions }
    }

    /// Number of partitions/instances.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The local instance of `partition`.
    pub fn instance(&self, partition: usize) -> &Arc<SiloDb> {
        &self.instances[partition]
    }

    /// Creates `table` in every instance.
    pub fn create_table(&self, table: TableId) {
        for db in &self.instances {
            db.create_table(table);
        }
    }

    /// Bulk-loads a record into the instance owning `partition`.
    pub fn load(&self, partition: usize, table: TableId, key: i64, values: Vec<Value>) -> Result<()> {
        self.instances[partition].load(table, key, values)
    }

    /// Executes a read-only transaction that reads `local_keys` from the
    /// coordinator's instance and `remote_reads` (partition, key) pairs from
    /// other instances, running 2PC when any remote partition participates.
    pub fn read_transaction(
        &self,
        coordinator: usize,
        table: TableId,
        local_keys: &[i64],
        remote_reads: &[(usize, i64)],
    ) -> Result<u64> {
        let mut checksum = 0u64;
        // Local reads run directly against the local instance.
        let mut local_txn = SiloTxn::begin(Arc::clone(&self.instances[coordinator]));
        for key in local_keys {
            let rec = local_txn.read(table, *key)?;
            checksum = checksum.wrapping_add(rec[0].as_i64().unwrap_or(0) as u64);
        }
        local_txn.commit()?;

        if remote_reads.is_empty() {
            return Ok(checksum);
        }

        // Remote reads: one round trip each.
        let mut participants: Vec<usize> = Vec::new();
        for (partition, key) in remote_reads {
            let (tx, rx) = bounded(1);
            self.senders[*partition]
                .send(ParticipantMsg::Read { table, key: *key, reply: tx })
                .map_err(|_| H2Error::ChannelClosed("participant gone".into()))?;
            let rec = rx.recv().map_err(|_| H2Error::ChannelClosed("participant reply lost".into()))??;
            checksum = checksum.wrapping_add(rec[0].as_i64().unwrap_or(0) as u64);
            if !participants.contains(partition) {
                participants.push(*partition);
            }
        }

        // 2PC: prepare round...
        let mut votes = Vec::new();
        for p in &participants {
            let (tx, rx) = bounded(1);
            self.senders[*p]
                .send(ParticipantMsg::Prepare { reply: tx })
                .map_err(|_| H2Error::ChannelClosed("participant gone".into()))?;
            votes.push(rx);
        }
        for vote in votes {
            let yes = vote.recv().map_err(|_| H2Error::ChannelClosed("vote lost".into()))?;
            if !yes {
                return Err(H2Error::TxnAborted("participant voted no".into()));
            }
        }
        // ...then commit round.
        for p in &participants {
            self.senders[*p]
                .send(ParticipantMsg::Commit)
                .map_err(|_| H2Error::ChannelClosed("participant gone".into()))?;
        }
        Ok(checksum)
    }

    /// Shuts down all participant threads.
    pub fn shutdown(mut self) {
        for tx in &self.senders {
            let _ = tx.send(ParticipantMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Generates the read-only multisite workload of Figure 9 for SN-Silo.
pub trait SnSiloGenerator: Send + Sync {
    /// Runs one transaction hosted on `coordinator`.
    fn run_one(&self, sn: &SnSilo, coordinator: usize, seq: u64, rng: &mut SplitMixRng) -> Result<()>;
}

/// Result of an SN-Silo benchmark window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnSiloWindow {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Committed transactions per second.
    pub throughput_tps: f64,
}

/// Runs `generator` with one coordinator thread per partition for `window`.
pub fn run_sn_silo_benchmark(
    sn: &SnSilo,
    generator: Arc<dyn SnSiloGenerator>,
    window: Duration,
    seed: u64,
) -> SnSiloWindow {
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..sn.partitions() {
            let generator = Arc::clone(&generator);
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let mut rng = SplitMixRng::new(seed ^ (w as u64).wrapping_mul(0x517C_C1B7));
            let sn_ref = &*sn;
            scope.spawn(move || {
                let mut seq = 0u64;
                while !stop.load(Ordering::Acquire) {
                    match generator.run_one(sn_ref, w, seq, &mut rng) {
                        Ok(()) => committed.fetch_add(1, Ordering::Relaxed),
                        Err(_) => aborted.fetch_add(1, Ordering::Relaxed),
                    };
                    seq += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Release);
    });
    let elapsed = start.elapsed();
    let committed = committed.load(Ordering::Relaxed);
    SnSiloWindow {
        committed,
        aborted: aborted.load(Ordering::Relaxed),
        elapsed,
        throughput_tps: throughput(committed, elapsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(0);

    fn loaded(partitions: usize, rows_per_partition: i64) -> SnSilo {
        let sn = SnSilo::new(partitions);
        sn.create_table(T);
        for p in 0..partitions {
            for k in 0..rows_per_partition {
                let key = p as i64 * 1_000_000 + k;
                sn.load(p, T, key, vec![Value::Int64(key), Value::Int64(0)]).unwrap();
            }
        }
        sn
    }

    #[test]
    fn single_site_transactions_avoid_messaging() {
        let sn = loaded(2, 10);
        let sum = sn.read_transaction(0, T, &[0, 1, 2], &[]).unwrap();
        assert_eq!(sum, (0..3u64).sum::<u64>());
        sn.shutdown();
    }

    #[test]
    fn multi_site_transactions_read_remote_instances() {
        let sn = loaded(3, 10);
        let sum = sn.read_transaction(0, T, &[0, 1], &[(1, 1_000_000), (2, 2_000_005)]).unwrap();
        assert_eq!(sum, 1 + 1_000_000 + 2_000_005);
        sn.shutdown();
    }

    #[test]
    fn unknown_remote_keys_abort() {
        let sn = loaded(2, 4);
        assert!(sn.read_transaction(0, T, &[], &[(1, 77)]).is_err());
        sn.shutdown();
    }

    #[test]
    fn benchmark_driver_counts_commits() {
        struct Gen;
        impl SnSiloGenerator for Gen {
            fn run_one(&self, sn: &SnSilo, coordinator: usize, _seq: u64, rng: &mut SplitMixRng) -> Result<()> {
                let local: Vec<i64> =
                    (0..4).map(|_| coordinator as i64 * 1_000_000 + rng.next_below(10) as i64).collect();
                let remote_p = (coordinator + 1) % sn.partitions();
                let remote = vec![(remote_p, remote_p as i64 * 1_000_000 + rng.next_below(10) as i64)];
                sn.read_transaction(coordinator, TableId(0), &local, &remote).map(|_| ())
            }
        }
        let sn = loaded(2, 10);
        let window = run_sn_silo_benchmark(&sn, Arc::new(Gen), Duration::from_millis(100), 7);
        assert!(window.committed > 0);
        assert_eq!(window.aborted, 0);
        sn.shutdown();
    }
}
