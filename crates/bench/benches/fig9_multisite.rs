//! Criterion bench for Figure 9: multi-site transaction sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use h2tap_bench::experiments::fig9;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_multisite");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));
    group.bench_function("caldera_silo_snsilo_20pct_multisite", |b| {
        b.iter(|| black_box(fig9(2, 20_000, &[20], Duration::from_millis(150))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
