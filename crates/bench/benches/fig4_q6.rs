//! Criterion bench for Figure 4: TPC-H Q6 across engines.

use criterion::{criterion_group, criterion_main, Criterion};
use h2tap_bench::experiments::fig4;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_q6");
    group.sample_size(10);
    group.bench_function("q6_caldera_vs_cpu_60k_rows", |b| {
        b.iter(|| black_box(fig4(black_box(60_000))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
