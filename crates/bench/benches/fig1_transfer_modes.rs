//! Criterion bench for Figure 1: the transfer-mode microbenchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use h2tap_bench::experiments::fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_transfer_modes");
    group.sample_size(10);
    group.bench_function("five_filters_all_modes_256MiB", |b| {
        b.iter(|| black_box(fig1(black_box(256 << 20))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
