//! Criterion bench for Figure 8: TPC-C NewOrder scalability.

use criterion::{criterion_group, criterion_main, Criterion};
use h2tap_bench::experiments::fig8;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_tpcc");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    group.bench_function("neworder_caldera_vs_silo_2_cores", |b| {
        b.iter(|| black_box(fig8(&[2], Duration::from_millis(150))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
