//! Criterion bench for Figures 10 and 11: storage layouts on the GPU.

use criterion::{criterion_group, criterion_main, Criterion};
use h2tap_bench::experiments::{fig10, fig11};
use std::hint::black_box;

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("layouts");
    group.sample_size(10);
    group.bench_function("fig10_uva_layouts_60k_rows", |b| {
        b.iter(|| black_box(fig10(black_box(60_000), &[1, 4, 16])));
    });
    group.bench_function("fig11_device_resident_60k_rows", |b| {
        b.iter(|| black_box(fig11(black_box(60_000))));
    });
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
