//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p h2tap-bench --bin experiments -- all
//! cargo run --release -p h2tap-bench --bin experiments -- table1 fig1 fig4
//! cargo run --release -p h2tap-bench --bin experiments -- fig5 --quick
//! ```
//!
//! `--quick` shrinks data sizes and sweep points so the full set finishes in
//! about a minute; without it the defaults match the scaled configuration
//! documented in EXPERIMENTS.md.

use h2tap_bench::experiments as exp;
use std::time::Duration;

struct Scale {
    lineitem_rows: u64,
    layout_rows: u64,
    fig1_bytes: u64,
    oltp_workers: usize,
    window: Duration,
    working_sets: Vec<u32>,
    sharing_sweep: Vec<u32>,
    core_counts: Vec<usize>,
    multisite_pcts: Vec<u32>,
}

impl Scale {
    fn full() -> Self {
        Self {
            lineitem_rows: exp::DEFAULT_LINEITEM_ROWS,
            layout_rows: 400_000,
            fig1_bytes: 2 << 30,
            oltp_workers: 4,
            window: Duration::from_millis(1500),
            working_sets: vec![1, 2, 4, 8, 16, 32, 64, 100],
            sharing_sweep: vec![10, 20, 40, 70, 100],
            core_counts: vec![1, 2, 4, 8],
            multisite_pcts: vec![0, 20, 40, 60, 80, 100],
        }
    }

    fn quick() -> Self {
        Self {
            lineitem_rows: 60_000,
            layout_rows: 60_000,
            fig1_bytes: 256 << 20,
            oltp_workers: 2,
            window: Duration::from_millis(300),
            working_sets: vec![1, 16, 100],
            sharing_sweep: vec![10, 50, 100],
            core_counts: vec![1, 2, 4],
            multisite_pcts: vec![0, 50, 100],
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn model_line(m: &h2tap_scheduler::CostModel) -> String {
    format!(
        "per-tuple {:.1} ns | per-core bw {:.2} GB/s | gpu dispatch {:.1} us | gpu bw scale {:.2}",
        m.cpu_per_tuple_ns,
        m.cpu_core_bandwidth_gbps,
        m.gpu_dispatch_overhead_secs * 1e6,
        m.gpu_bandwidth_scale
    )
}

fn model_json(m: &h2tap_scheduler::CostModel) -> String {
    format!(
        "{{\"cpu_per_tuple_ns\":{},\"cpu_core_bandwidth_gbps\":{},\"gpu_dispatch_overhead_secs\":{},\"gpu_bandwidth_scale\":{}}}",
        m.cpu_per_tuple_ns, m.cpu_core_bandwidth_gbps, m.gpu_dispatch_overhead_secs, m.gpu_bandwidth_scale
    )
}

/// Serialises the calibration summary to JSON by hand — the workspace's
/// offline serde stand-in has no serializer, and the artifact format is
/// small and stable (tracked across PRs as `BENCH_calibration.json`).
fn calibration_json(s: &exp::CalibrationSummary) -> String {
    let misplaced: Vec<String> = s.rows.iter().filter(|r| !r.agree).map(|r| r.query.to_string()).collect();
    format!(
        "{{\n  \"queries\": {},\n  \"warmup_queries\": {},\n  \"agreement_early\": {:.4},\n  \
         \"agreement_steady\": {:.4},\n  \"cpu_mean_rel_error\": {:.4},\n  \"gpu_mean_rel_error\": {:.4},\n  \
         \"misplaced_queries\": [{}],\n  \"initial_model\": {},\n  \"calibrated_model\": {}\n}}\n",
        s.queries,
        s.warmup_queries,
        s.agreement_early,
        s.agreement_steady,
        s.cpu_mean_rel_error,
        s.gpu_mean_rel_error,
        misplaced.join(","),
        model_json(&s.initial_model),
        model_json(&s.calibrated_model)
    )
}

/// Serialises the host-path wall-clock summary to JSON by hand (the offline
/// serde stand-in has no serializer; the artifact is tracked across PRs as
/// `BENCH_hostperf.json` — the first entry of the measured perf trajectory).
fn hostperf_json(s: &exp::HostPerfSummary) -> String {
    let items: Vec<String> = s
        .rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"workload\":\"{}\",\"lineitem_rows\":{},\"queries\":{},\"reference_ms\":{:.3},\
                 \"pr5_cold_ms\":{:.3},\"vectorized_cold_ms\":{:.3},\"vectorized_cached_ms\":{:.3},\
                 \"cold_speedup\":{:.3},\"cached_speedup\":{:.3},\"simd_speedup\":{:.3},\
                 \"latency\":{{\"reference\":{},\"pr5_cold\":{},\"vectorized_cold\":{},\"vectorized_cached\":{}}}}}",
                r.workload,
                r.lineitem_rows,
                r.queries,
                r.reference_ms,
                r.pr5_cold_ms,
                r.vectorized_cold_ms,
                r.vectorized_cached_ms,
                r.cold_speedup,
                r.cached_speedup,
                r.simd_speedup,
                r.reference_latency.json(),
                r.pr5_latency.json(),
                r.vectorized_cold_latency.json(),
                r.vectorized_cached_latency.json()
            )
        })
        .collect();
    // Counter and gauge families stay separate in the artifact (see
    // `PlanCacheStats::counters` / `gauges`): the counters may be diffed
    // across PRs, the gauges are point-in-time samples.
    let counters = s.cache.counters();
    let gauges = s.cache.gauges();
    format!(
        "{{\n\"min_cold_speedup\": {:.3},\n\"min_cached_speedup\": {:.3},\n\"min_simd_speedup\": {:.3},\n\"cache\": \
         {{\"counters\": {{\"column_hits\": {}, \"column_misses\": {}, \"hash_hits\": {}, \"hash_misses\": {}, \
         \"invalidations\": {}, \"evictions\": {}}}, \"gauges\": {{\"occupancy_bytes\": {}, \"budget_bytes\": \
         {}}}}},\n\"rows\": [\n{}\n]\n}}\n",
        s.min_cold_speedup,
        s.min_cached_speedup,
        s.min_simd_speedup,
        counters.column_hits,
        counters.column_misses,
        counters.hash_hits,
        counters.hash_misses,
        counters.invalidations,
        counters.evictions,
        gauges.occupancy_bytes,
        gauges.budget_bytes.map_or("null".into(), |b| b.to_string()),
        items.join(",\n")
    )
}

/// Serialises the concurrency sweep to JSON by hand (the offline serde
/// stand-in has no serializer; the artifact is tracked across PRs as
/// `BENCH_concurrency.json`).
fn concurrency_json(s: &exp::ConcurrencySummary) -> String {
    let items: Vec<String> = s
        .rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"threads\":{},\"queries\":{},\"wall_ms\":{:.3},\"queries_per_sec\":{:.1},\
                 \"speedup_vs_serial\":{:.3},\"latency\":{}}}",
                r.threads,
                r.queries,
                r.wall_ms,
                r.queries_per_sec,
                r.speedup_vs_serial,
                r.latency.json()
            )
        })
        .collect();
    format!(
        "{{\n\"serial_qps\": {:.1},\n\"shared_scan_attaches\": {},\n\"admission_queued\": {},\n\"rows\": [\n{}\n]\n}}\n",
        s.serial_qps,
        s.shared_scan_attaches,
        s.admission_queued,
        items.join(",\n")
    )
}

/// Serialises the chaos summary to JSON by hand (the offline serde
/// stand-in has no serializer; the artifact is tracked across PRs as
/// `BENCH_chaos.json`).
fn chaos_json(s: &exp::ChaosSummary) -> String {
    let items: Vec<String> = s
        .phases
        .iter()
        .map(|p| {
            format!(
                "  {{\"phase\":\"{}\",\"clients\":{},\"queries\":{},\"client_errors\":{},\"wrong_answers\":{},\
                 \"availability\":{:.6},\"faults\":{},\"retries\":{},\"fallbacks\":{},\"gpu_quarantines\":{},\
                 \"wall_ms\":{:.3},\"latency\":{}}}",
                p.phase,
                p.clients,
                p.queries,
                p.client_errors,
                p.wrong_answers,
                p.availability,
                p.faults,
                p.retries,
                p.fallbacks,
                p.gpu_quarantines,
                p.wall_ms,
                p.latency.json()
            )
        })
        .collect();
    format!(
        "{{\n\"availability\": {:.6},\n\"wrong_answers\": {},\n\"client_errors\": {},\n\"time_to_recover_ms\": \
         {:.3},\n\"final_gpu_state\": \"{}\",\n\"phases\": [\n{}\n]\n}}\n",
        s.availability,
        s.wrong_answers,
        s.client_errors,
        s.time_to_recover_ms,
        s.final_gpu_state,
        items.join(",\n")
    )
}

/// Serialises the multi-GPU sweep to JSON by hand (the offline serde
/// stand-in has no serializer; the artifact is tracked across PRs as
/// `BENCH_multigpu.json`).
fn multigpu_json(rows: &[exp::MultiGpuRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"mix\":\"{}\",\"devices\":{},\"placement\":\"{}\",\"lineitem_rows\":{},\"chosen\":\"{}\",\
                 \"cpu_ms\":{:.4},\"gpu_ms\":{:.4},\"multi_gpu_ms\":{:.4}}}",
                r.mix, r.devices, r.placement, r.lineitem_rows, r.chosen, r.cpu_ms, r.gpu_ms, r.multi_gpu_ms
            )
        })
        .collect();
    let multi_won = rows.iter().filter(|r| r.chosen == "multi-gpu").count();
    format!(
        "{{\n\"configurations\": {},\n\"multi_gpu_routed\": {},\n\"rows\": [\n{}\n]\n}}\n",
        rows.len(),
        multi_won,
        items.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let trace_out: Option<String> = args.iter().position(|a| a == "--trace-out").and_then(|i| args.get(i + 1)).cloned();
    // Flag values must not be mistaken for experiment names.
    let mut selected: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--trace-out" {
            skip_next = true;
        } else if !a.starts_with("--") {
            selected.push(a.clone());
        }
    }
    let run_all = selected.is_empty() || selected.iter().any(|a| a == "all");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let wants = |name: &str| run_all || selected.iter().any(|a| a == name);

    if wants("table1") {
        header("Table 1: GPU generations");
        println!(
            "{:<14} {:<9} {:>6} {:>10} {:>9} {:>9} {:>9} {:>7}",
            "GPU", "Arch", "Cores", "GFLOPS", "Mem(MB)", "BW(GB/s)", "I/f", "I/f GB/s"
        );
        for r in exp::table1() {
            println!(
                "{:<14} {:<9} {:>6} {:>10.1} {:>9} {:>9.1} {:>9} {:>7.0}",
                r.gpu,
                r.architecture,
                r.cores,
                r.fp32_gflops,
                r.mem_capacity_mib,
                r.mem_bandwidth_gbps,
                r.interface,
                r.interface_gbps
            );
        }
    }

    if wants("fig1") {
        header("Figure 1: scan execution time under Fermi/Maxwell (5 filter queries)");
        for r in exp::fig1(scale.fig1_bytes) {
            let per: Vec<String> = r.per_query_secs.iter().map(|t| format!("{t:.3}")).collect();
            println!("{:<22} {:<7} total {:>7.3}s  per-query [{}]", r.gpu, r.mode, r.total_secs, per.join(", "));
        }
    }

    if wants("fig4") {
        header("Figure 4: TPC-H Q6, GPU Caldera vs CPU column stores");
        let rows = exp::fig4(scale.lineitem_rows);
        for r in &rows {
            println!("{:<16} {:>9.4}s   revenue {:.2}", r.engine, r.seconds, r.revenue);
        }
        if let (Some(gpu), Some(monet)) =
            (rows.iter().find(|r| r.engine.contains("Caldera")), rows.iter().find(|r| r.engine.contains("MonetDB")))
        {
            println!("-> Caldera speedup over MonetDB: {:.2}x", monet.seconds / gpu.seconds);
        }
    }

    if wants("placement") {
        header("Placement: CPU/GPU crossover for Q6 (data size x residency)");
        println!(
            "{:<10} {:>16} {:>6} {:>12} {:>8} {:>12} {:>12}",
            "rows", "placement", "cores", "scan bytes", "chosen", "cpu (ms)", "gpu (ms)"
        );
        let sweep: Vec<u64> = if quick { vec![5_000, 120_000] } else { vec![5_000, 20_000, 60_000, 120_000, 300_000] };
        for r in exp::fig_placement(&sweep, 24) {
            println!(
                "{:<10} {:>16} {:>6} {:>12} {:>8} {:>12.4} {:>12.4}",
                r.lineitem_rows,
                r.placement,
                r.cpu_cores,
                r.bytes_to_scan,
                r.chosen,
                r.cpu_secs * 1e3,
                r.gpu_secs * 1e3
            );
        }
    }

    if wants("operators") {
        header("Operators: join/group-by placement vs pure scans (selectivity x group cardinality)");
        println!(
            "{:<16} {:>9} {:>8} {:>7} {:>8} {:>11} {:>6} {:>6} {:>12} {:>12}",
            "placement",
            "max_size",
            "group",
            "groups",
            "joined",
            "plan chosen",
            "scan",
            "agree",
            "cpu (ms)",
            "gpu (ms)"
        );
        let (rows, parts) = if quick { (60_000, 2_000) } else { (scale.lineitem_rows, 20_000) };
        for r in exp::fig_operators(rows, parts, 24) {
            println!(
                "{:<16} {:>9} {:>8} {:>7} {:>8} {:>11} {:>6} {:>6} {:>12.4} {:>12.4}",
                r.placement,
                r.max_size,
                r.group_by,
                r.groups,
                r.joined_rows,
                r.plan_chosen,
                r.scan_chosen,
                if r.plan_chosen == r.scan_chosen { "same" } else { "DIFF" },
                r.cpu_secs * 1e3,
                r.gpu_secs * 1e3
            );
        }
    }

    if wants("multigpu") {
        header("Multi-GPU: device-mix x residency sweep with three-way routing");
        println!(
            "{:<18} {:>4} {:>16} {:>10} {:>10} {:>12} {:>12} {:>14}",
            "mix", "devs", "placement", "rows", "chosen", "cpu (ms)", "gpu (ms)", "multi-gpu (ms)"
        );
        let sweep: Vec<u64> = if quick { vec![5_000, 150_000] } else { vec![5_000, 60_000, 150_000, 300_000] };
        let rows = exp::fig_multigpu(&sweep, 24);
        for r in &rows {
            println!(
                "{:<18} {:>4} {:>16} {:>10} {:>10} {:>12.4} {:>12.4} {:>14.4}",
                r.mix, r.devices, r.placement, r.lineitem_rows, r.chosen, r.cpu_ms, r.gpu_ms, r.multi_gpu_ms
            );
        }
        let multi_won = rows.iter().filter(|r| r.chosen == "multi-gpu").count();
        println!("-> {multi_won} of {} configurations routed to the multi-GPU site", rows.len());
        if json {
            let path = "BENCH_multigpu.json";
            std::fs::write(path, multigpu_json(&rows)).expect("write multi-GPU summary");
            println!("wrote {path}");
        }
    }

    if wants("hostperf") {
        header("Host path: real wall-clock, reference vs scalar batch vs SIMD vs cached (repeated-query stream)");
        println!(
            "{:<12} {:>10} {:>8} {:>14} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
            "workload",
            "rows",
            "queries",
            "reference ms",
            "scalar ms",
            "simd ms",
            "cached ms",
            "cold x",
            "cached x",
            "simd x"
        );
        let (rows, parts, repeats) = if quick { (120_000, 5_000, 6) } else { (scale.lineitem_rows, 20_000, 10) };
        let s = exp::fig_hostperf(rows, parts, repeats);
        for r in &s.rows {
            println!(
                "{:<12} {:>10} {:>8} {:>14.2} {:>12.2} {:>12.2} {:>12.2} {:>8.2} {:>8.2} {:>8.2}",
                r.workload,
                r.lineitem_rows,
                r.queries,
                r.reference_ms,
                r.pr5_cold_ms,
                r.vectorized_cold_ms,
                r.vectorized_cached_ms,
                r.cold_speedup,
                r.cached_speedup,
                r.simd_speedup
            );
            println!(
                "  {:<10} latency (cached path): p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms | max {:.3} ms",
                "",
                r.vectorized_cached_latency.p50_ms,
                r.vectorized_cached_latency.p95_ms,
                r.vectorized_cached_latency.p99_ms,
                r.vectorized_cached_latency.max_ms
            );
        }
        println!(
            "-> worst-case speedups: {:.2}x cold (vectorization alone), {:.2}x cached, {:.2}x simd-over-scalar | \
             cache: {} hits / {} misses / {} evictions / {} occupancy bytes",
            s.min_cold_speedup,
            s.min_cached_speedup,
            s.min_simd_speedup,
            s.cache.hits(),
            s.cache.misses(),
            s.cache.evictions,
            s.cache.occupancy_bytes
        );
        // Release-mode acceptance gate: this binary is a dedicated process
        // (CI runs it as the hostperf smoke step), so the min-based stream
        // timings are clean and the thresholds are enforceable. Debug
        // builds keep their bounds checks and closure frames, so the
        // wall-clock ratios are meaningless there and the gate is
        // compiled out with the optimisations.
        #[cfg(not(debug_assertions))]
        {
            assert!(s.min_cold_speedup > 1.0, "vectorization must beat row-at-a-time cold: {:.2}x", s.min_cold_speedup);
            assert!(
                s.min_cached_speedup > 1.5,
                "the warm cache must amortise derivation: {:.2}x",
                s.min_cached_speedup
            );
            assert!(
                s.min_simd_speedup >= 1.2,
                "the SIMD cold path must beat the scalar batch path by >= 1.2x: {:.2}x",
                s.min_simd_speedup
            );
        }
        if json {
            let path = "BENCH_hostperf.json";
            std::fs::write(path, hostperf_json(&s)).expect("write hostperf summary");
            println!("wrote {path}");
        }
    }

    if wants("concurrency") {
        header("Concurrency: wall-clock scaling of concurrent OLAP serving (shared scans + admission)");
        println!(
            "{:<8} {:>9} {:>12} {:>12} {:>9} {:>9} {:>9}",
            "threads", "queries", "wall ms", "queries/s", "speedup", "p50 ms", "p99 ms"
        );
        let (rows, parts, per_thread) = if quick { (120_000, 6_000, 6) } else { (200_000, 10_000, 24) };
        let sweep: Vec<u32> = if quick { vec![1, 4, 8] } else { vec![1, 2, 4, 8, 16, 32, 64] };
        let s = exp::fig_concurrency(rows, parts, per_thread, &sweep, Some(8));
        for r in &s.rows {
            println!(
                "{:<8} {:>9} {:>12.2} {:>12.1} {:>9.2} {:>9.3} {:>9.3}",
                r.threads,
                r.queries,
                r.wall_ms,
                r.queries_per_sec,
                r.speedup_vs_serial,
                r.latency.p50_ms,
                r.latency.p99_ms
            );
        }
        println!(
            "-> serial {:.1} queries/s | shared-scan attaches {} | queued admissions {}",
            s.serial_qps, s.shared_scan_attaches, s.admission_queued
        );
        // Release-mode acceptance gate, machine-gated like the hostperf
        // thresholds: the >= 2x-at-8-threads claim needs 8 real cores, and
        // debug-build wall-clock ratios are meaningless.
        #[cfg(not(debug_assertions))]
        {
            assert!(
                s.shared_scan_attaches > 0,
                "concurrent cold queries must share materialisations (0 attaches recorded)"
            );
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            if cores >= 8 {
                if let Some(speedup) = s.speedup_at(8) {
                    assert!(speedup >= 2.0, "8 concurrent clients must beat serial by >= 2x, got {speedup:.2}x");
                }
            }
        }
        if json {
            let path = "BENCH_concurrency.json";
            std::fs::write(path, concurrency_json(&s)).expect("write concurrency summary");
            println!("wrote {path}");
        }
    }

    if wants("chaos") {
        header("Chaos: concurrent serving under seeded fault plans, bit-checked against a fault-free oracle");
        println!(
            "{:<16} {:>8} {:>8} {:>7} {:>7} {:>9} {:>7} {:>8} {:>10} {:>9} {:>9}",
            "phase",
            "queries",
            "errors",
            "wrong",
            "faults",
            "retries",
            "fbacks",
            "quarant",
            "avail %",
            "p50 ms",
            "p99 ms"
        );
        let (rows, clients, per_client) = if quick { (40_000, 4, 8) } else { (120_000, 8, 16) };
        let s = exp::fig_chaos(rows, clients, per_client);
        for p in &s.phases {
            println!(
                "{:<16} {:>8} {:>8} {:>7} {:>7} {:>9} {:>7} {:>8} {:>10.2} {:>9.3} {:>9.3}",
                p.phase,
                p.queries,
                p.client_errors,
                p.wrong_answers,
                p.faults,
                p.retries,
                p.fallbacks,
                p.gpu_quarantines,
                p.availability * 100.0,
                p.latency.p50_ms,
                p.latency.p99_ms
            );
        }
        println!(
            "-> availability {:.2}% | wrong answers {} | time-to-recover {:.2} ms | final gpu breaker: {}",
            s.availability * 100.0,
            s.wrong_answers,
            s.time_to_recover_ms,
            s.final_gpu_state
        );
        // Release-mode acceptance gate: under the default transient-storm and
        // device-loss plans the resilience ladder must keep serving (>= 99%
        // availability) and must never trade correctness for liveness.
        #[cfg(not(debug_assertions))]
        {
            assert!(s.availability >= 0.99, "chaos availability fell below 99%: {:.4}", s.availability);
            assert_eq!(s.wrong_answers, 0, "a fault path changed an answer");
            assert_eq!(s.client_errors, 0, "a fault leaked to a client as an error");
            assert!(s.time_to_recover_ms > 0.0, "device loss never fired, recovery was not measured");
        }
        if json {
            let path = "BENCH_chaos.json";
            std::fs::write(path, chaos_json(&s)).expect("write chaos summary");
            println!("wrote {path}");
        }
    }

    if wants("calibration") {
        header("Calibration: placement feedback loop from deliberately wrong cost constants");
        let queries = if quick { 80 } else { 200 };
        let s = exp::fig_calibration(queries, 24);
        println!("seed model:       {}", model_line(&s.initial_model));
        println!("calibrated model: {}", model_line(&s.calibrated_model));
        println!(
            "oracle agreement: {:>5.1}% during warm-up | {:>5.1}% after the first 50 observations",
            s.agreement_early * 100.0,
            s.agreement_steady * 100.0
        );
        println!(
            "steady-state prediction error: cpu {:.1}% | gpu {:.1}%",
            s.cpu_mean_rel_error * 100.0,
            s.gpu_mean_rel_error * 100.0
        );
        let misses: Vec<u64> = s.rows.iter().filter(|r| !r.agree).map(|r| r.query).collect();
        println!(
            "{} of {} queries disagreed with the forced-site oracle (query indexes {:?})",
            misses.len(),
            s.queries,
            misses
        );
        if json {
            let path = "BENCH_calibration.json";
            std::fs::write(path, calibration_json(&s)).expect("write calibration summary");
            println!("wrote {path}");
        }
    }

    if wants("fig5") {
        header("Figure 5: OLTP throughput vs working set and snapshot frequency");
        println!("{:<18} {:>12} {:>14}", "queries/snapshot", "working set %", "OLTP KTps");
        for r in exp::fig5(scale.lineitem_rows, scale.oltp_workers, &scale.working_sets) {
            println!("{:<18} {:>12} {:>14.1}", r.queries_per_snapshot, r.working_set_pct, r.oltp_tps / 1e3);
        }
    }

    if wants("fig6") {
        header("Figure 6: OLAP response time vs OLTP working set (one shared snapshot)");
        println!("{:<14} {:>10} {:>10} {:>10} {:>12}", "working set %", "avg (s)", "min (s)", "max (s)", "COW pages");
        for r in exp::fig6(scale.lineitem_rows, scale.oltp_workers, &scale.working_sets) {
            println!(
                "{:<14} {:>10.4} {:>10.4} {:>10.4} {:>12}",
                r.working_set_pct, r.olap_avg_secs, r.olap_min_secs, r.olap_max_secs, r.cow_pages
            );
        }
    }

    if wants("fig7") {
        header("Figure 7: snapshot sharing sweep at 100% working set");
        println!("{:<14} {:>12} {:>12}", "#OLAP queries", "OLAP avg (s)", "OLTP KTps");
        for r in exp::fig7(scale.lineitem_rows, scale.oltp_workers, &scale.sharing_sweep) {
            println!("{:<14} {:>12.4} {:>12.1}", r.olap_queries, r.olap_avg_secs, r.oltp_tps / 1e3);
        }
    }

    if wants("fig8") {
        header("Figure 8: TPC-C NewOrder scalability (Caldera vs Silo)");
        println!("{:<8} {:<10} {:>12}", "cores", "system", "KTps");
        for r in exp::fig8(&scale.core_counts, scale.window) {
            println!("{:<8} {:<10} {:>12.1}", r.x, r.system, r.tps / 1e3);
        }
    }

    if wants("fig9") {
        header("Figure 9: multi-site transaction sensitivity");
        println!("{:<14} {:<10} {:>12}", "multisite %", "system", "KTps");
        for r in exp::fig9(scale.oltp_workers.max(2), 50_000, &scale.multisite_pcts, scale.window) {
            println!("{:<14} {:<10} {:>12.1}", r.x, r.system, r.tps / 1e3);
        }
    }

    if wants("fig10") {
        header("Figure 10: layouts over UVA (host-resident), SUM(col1..colN)");
        println!("{:<6} {:>11} {:>12}", "layout", "attributes", "seconds");
        for r in exp::fig10(scale.layout_rows, &[1, 2, 4, 8, 16]) {
            println!("{:<6} {:>11} {:>12.4}", r.layout, r.attributes, r.seconds);
        }
    }

    if wants("fig11") {
        header("Figure 11: layouts with GPU-resident data (2 of 16 attributes)");
        println!("{:<24} {:<6} {:>12}", "GPU", "layout", "milliseconds");
        for r in exp::fig11(scale.layout_rows) {
            println!("{:<24} {:<6} {:>12.3}", r.gpu, r.layout, r.seconds * 1e3);
        }
    }

    if let Some(path) = trace_out {
        header("Trace: brand-revenue join stream with query tracing enabled");
        let (rows, parts, queries) = if quick { (60_000, 4_000, 4) } else { (200_000, 20_000, 8) };
        let trace = exp::capture_trace(rows, parts, queries);
        std::fs::write(&path, &trace).expect("write Chrome trace");
        println!(
            "wrote {path} ({} bytes, {queries} queries x {rows} rows) — open in chrome://tracing or ui.perfetto.dev",
            trace.len()
        );
    }
}
