//! The benchmark harness of the Caldera reproduction.
//!
//! [`experiments`] contains one driver function per table and figure of the
//! paper's evaluation; the `experiments` binary prints their rows (and
//! optionally JSON) and the Criterion benches under `benches/` time their hot
//! paths. See `EXPERIMENTS.md` at the workspace root for the paper-vs-
//! measured comparison produced from this harness.

pub mod experiments;

pub use experiments::{
    capture_trace, fig1, fig10, fig11, fig4, fig5, fig6, fig7, fig8, fig9, fig_calibration, fig_concurrency,
    fig_hostperf, fig_multigpu, fig_operators, fig_placement, run_htap, table1, CalibrationQueryRow,
    CalibrationSummary, ConcurrencyRow, ConcurrencySummary, Fig1Row, Fig4Row, HostPerfRow, HostPerfSummary, HtapParams,
    HtapRow, LatencyPercentiles, LayoutRow, MultiGpuRow, OltpComparisonRow, OperatorsRow, PlacementRow, Table1Row,
    DEFAULT_LINEITEM_ROWS,
};
