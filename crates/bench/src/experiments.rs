//! Experiment drivers: one function per table/figure of the paper.
//!
//! Every function returns plain row structs so the `experiments` binary can
//! print them, the Criterion benches can time their hot paths, and tests can
//! assert the qualitative shapes the paper reports. Data sizes are scaled
//! down from the paper's (SF-300, 16 GB, 24 cores) so a full sweep finishes
//! in minutes on a laptop; the scale knobs are explicit parameters.

use caldera::{Caldera, CalderaConfig, DataPlacement, DeviceLossPoint, FaultPlan, OlapTarget, SnapshotPolicy};
use h2tap_baselines::{CpuEngineKind, CpuOlapEngine, SiloDb, SiloRuntime, SnSilo};
use h2tap_common::stats::Histogram;
use h2tap_common::{SimDuration, TableId};
use h2tap_gpu_sim::{AccessMode, AccessPattern, GpuDevice, GpuSpec, KernelDesc, TransferDirection};
use h2tap_olap::GpuOlapEngine;
use h2tap_oltp::OltpConfig;
use h2tap_storage::Layout;
use h2tap_workloads::layoutbench;
use h2tap_workloads::multisite::{
    load_multisite_caldera, load_multisite_silo, load_multisite_sn, multisite_partitioner, CalderaMultisiteGenerator,
    MultisiteConfig, SiloMultisiteGenerator, SnSiloMultisiteGenerator,
};
use h2tap_workloads::tpcc::{
    load_tpcc, load_tpcc_silo, standalone_tables, tpcc_partitioner, NewOrderGenerator, SiloNewOrderGenerator,
    TpccConfig,
};
use h2tap_workloads::tpch::{self, q6};
use h2tap_workloads::ycsb::{YcsbConfig, YcsbGenerator};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// Default scale used by the binary: rows of lineitem for the HTAP
/// experiments (the paper uses SF-300 = 1.8 B rows; 300k keeps the full sweep
/// under a minute while staying far larger than any cache).
pub const DEFAULT_LINEITEM_ROWS: u64 = 300_000;

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// GPU marketing name.
    pub gpu: String,
    /// Architecture generation.
    pub architecture: String,
    /// CUDA cores.
    pub cores: u32,
    /// FP32 throughput in GFLOP/s.
    pub fp32_gflops: f64,
    /// Memory capacity in MiB.
    pub mem_capacity_mib: u64,
    /// Memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Interconnect type.
    pub interface: String,
    /// Interconnect bandwidth in GB/s.
    pub interface_gbps: f64,
}

/// Reproduces Table 1 from the device catalogue.
pub fn table1() -> Vec<Table1Row> {
    h2tap_gpu_sim::table1_catalog()
        .into_iter()
        .map(|spec| Table1Row {
            gpu: spec.name.clone(),
            architecture: spec.architecture.name().to_string(),
            cores: spec.cores,
            fp32_gflops: spec.fp32_gflops,
            mem_capacity_mib: spec.mem_capacity_mib,
            mem_bandwidth_gbps: spec.mem_bandwidth_gbps,
            interface: spec.interconnect.kind.label().to_string(),
            interface_gbps: spec.interconnect.kind.bandwidth_gbps(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 1: transfer modes across GPU generations
// ---------------------------------------------------------------------------

/// One bar of Figure 1: total time for five filter queries under one
/// GPU/access-mode combination.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// GPU used.
    pub gpu: String,
    /// Access mode label ("memcpy", "uva", "um").
    pub mode: String,
    /// Per-query execution times in seconds.
    pub per_query_secs: Vec<f64>,
    /// Total time for the five queries in seconds.
    pub total_secs: f64,
}

/// Runs the Figure 1 microbenchmark: five filter kernels over a column of
/// `column_bytes` bytes of integers (the paper uses 2 GiB).
pub fn fig1(column_bytes: u64) -> Vec<Fig1Row> {
    let combos: Vec<(GpuSpec, AccessMode, &str)> = vec![
        (GpuSpec::tesla_m2090(), AccessMode::Memcpy, "memcpy"),
        (GpuSpec::tesla_m2090(), AccessMode::Uva, "uva"),
        (GpuSpec::gtx_980(), AccessMode::Memcpy, "memcpy"),
        (GpuSpec::gtx_980(), AccessMode::Uva, "uva"),
        (GpuSpec::gtx_980(), AccessMode::UnifiedMemory, "um"),
    ];
    let mut rows = Vec::new();
    for (spec, mode, label) in combos {
        let gpu_name = format!("{} ({})", spec.name, spec.architecture.name());
        let mut device = GpuDevice::new(spec);
        let buffer = device
            .register_buffer("fig1.column", column_bytes, mode)
            .expect("Figure 1 column fits every evaluated configuration");
        let elements = column_bytes / 4;
        let mut per_query = Vec::with_capacity(5);
        for q in 0..5 {
            let mut total = SimDuration::ZERO;
            if mode == AccessMode::Memcpy {
                total += device.memcpy(column_bytes, TransferDirection::HostToDevice);
            }
            let desc = KernelDesc::new(format!("filter_q{q}"), elements)
                .flops_per_element(2.0)
                .read(buffer, column_bytes, AccessPattern::Sequential)
                .write(elements / 8);
            total += device.account(&desc).expect("kernel").time;
            if mode == AccessMode::Memcpy {
                total += device.memcpy(elements / 8, TransferDirection::DeviceToHost);
            }
            per_query.push(total.as_secs_f64());
        }
        rows.push(Fig1Row {
            gpu: gpu_name,
            mode: label.to_string(),
            total_secs: per_query.iter().sum(),
            per_query_secs: per_query,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 4: TPC-H Q6, GPU Caldera vs CPU column stores
// ---------------------------------------------------------------------------

/// One bar of Figure 4.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Engine name.
    pub engine: String,
    /// Q6 execution time in seconds (simulated hardware frame of reference).
    pub seconds: f64,
    /// The Q6 revenue aggregate (identical across engines).
    pub revenue: f64,
}

/// Runs Figure 4: Q6 on Caldera and on the two CPU baselines, without
/// concurrent transactions. The Caldera bar goes through `Caldera::run_olap_on`
/// — the exact dispatch path production queries take — and the CPU baselines
/// are thin wrappers over the same shared scan engine as Caldera's CPU site,
/// so every bar exercises first-class code.
pub fn fig4(rows: u64) -> Vec<Fig4Row> {
    let mut config = CalderaConfig::with_workers(1);
    config.snapshot_policy = SnapshotPolicy::Manual;
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem(&mut builder, Layout::Dsm, rows, 42).unwrap();
    let caldera = builder.start().unwrap();
    let query = q6();
    let mut rows_out = Vec::new();

    let outcome = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
    rows_out.push(Fig4Row {
        engine: "Caldera (GPU)".into(),
        seconds: outcome.time.as_secs_f64(),
        revenue: outcome.value,
    });

    // The baselines answer the same query over a snapshot of the same data.
    let snap = caldera.database().snapshot();
    let frozen = snap.table(table).unwrap();
    for kind in [CpuEngineKind::DbmsCLike, CpuEngineKind::MonetLike] {
        let result = CpuOlapEngine::new(kind).execute(frozen, &query).unwrap();
        rows_out.push(Fig4Row {
            engine: kind.label().into(),
            seconds: result.sim_time.as_secs_f64(),
            revenue: result.value,
        });
    }
    let _ = caldera.database().release_snapshot(&snap);
    caldera.shutdown();
    rows_out
}

// ---------------------------------------------------------------------------
// Placement: the CPU/GPU crossover the ExecutionSite dispatch makes real
// ---------------------------------------------------------------------------

/// One configuration of the placement sweep: where the scheduler routed Q6
/// and what each site would have charged for it.
#[derive(Debug, Clone, Serialize)]
pub struct PlacementRow {
    /// Rows in the lineitem table.
    pub lineitem_rows: u64,
    /// GPU data placement label ("host-uva" or "device-resident").
    pub placement: String,
    /// CPU cores owned by the data-parallel archipelago.
    pub cpu_cores: u32,
    /// Bytes Q6 must scan at this size.
    pub bytes_to_scan: u64,
    /// Site the placement heuristic chose ("cpu" or "gpu").
    pub chosen: String,
    /// Simulated Q6 time on the CPU site in seconds.
    pub cpu_secs: f64,
    /// Simulated Q6 time on the GPU site in seconds.
    pub gpu_secs: f64,
}

/// Sweeps data size x GPU residency and records, per configuration, the
/// scheduler's routing decision next to both sites' actual simulated times —
/// the crossover behind the paper's claim that the scheduler should pick
/// CPU or GPU per query. All queries run through `Caldera::run_olap` /
/// `run_olap_on`, i.e. the production dispatch path.
pub fn fig_placement(row_counts: &[u64], cpu_cores: usize) -> Vec<PlacementRow> {
    let mut out = Vec::new();
    for &rows in row_counts {
        for (placement, label) in
            [(DataPlacement::Host(AccessMode::Uva), "host-uva"), (DataPlacement::DeviceResident, "device-resident")]
        {
            let mut config = CalderaConfig::with_workers(1);
            config.olap_cpu_cores = cpu_cores;
            config.olap_device.placement = placement;
            // One snapshot for the whole sweep: routing, CPU and GPU probes
            // must see identical data.
            config.snapshot_policy = SnapshotPolicy::Manual;
            let mut builder = Caldera::builder(config);
            let table = tpch::load_lineitem(&mut builder, Layout::Dsm, rows, 7).unwrap();
            let caldera = builder.start().unwrap();
            let query = q6();
            let routed = caldera.run_olap(table, &query).unwrap();
            let cpu = caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap();
            let gpu = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
            assert_eq!(cpu.value, gpu.value, "sites disagree on Q6 revenue");
            out.push(PlacementRow {
                lineitem_rows: rows,
                placement: label.to_string(),
                cpu_cores: cpu_cores as u32,
                bytes_to_scan: tpch::q6_scan_bytes(rows),
                chosen: site_label(routed.site),
                cpu_secs: cpu.time.as_secs_f64(),
                gpu_secs: gpu.time.as_secs_f64(),
            });
            caldera.shutdown();
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Operators: join/group-by placement vs pure scans (the relational operator
// subsystem's experiment)
// ---------------------------------------------------------------------------

/// One configuration of the operators sweep: where the scheduler routed the
/// TPC-H-style join/group-by plan versus the pure scan of the same probe
/// columns, with both sites' actual simulated plan times.
#[derive(Debug, Clone, Serialize)]
pub struct OperatorsRow {
    /// Rows in the lineitem (probe) table.
    pub lineitem_rows: u64,
    /// Rows in the part (build) table.
    pub parts: u64,
    /// GPU data placement label ("host-uva" or "device-resident").
    pub placement: String,
    /// Build-side selectivity knob: parts with `p_size <= max_size` (of 50)
    /// enter the hash table.
    pub max_size: i32,
    /// Group-by column ("brand" = 25 groups, "partkey" = one per part).
    pub group_by: String,
    /// Result groups the plan produced.
    pub groups: u64,
    /// Lineitem rows surviving filter + join.
    pub joined_rows: u64,
    /// Site the placement heuristic chose for the join plan.
    pub plan_chosen: String,
    /// Site the placement heuristic chose for the pure scan of the same
    /// probe columns.
    pub scan_chosen: String,
    /// Simulated plan time on the CPU site in seconds.
    pub cpu_secs: f64,
    /// Simulated plan time on the GPU site in seconds.
    pub gpu_secs: f64,
}

fn site_label(site: OlapTarget) -> String {
    match site {
        OlapTarget::Cpu => "cpu".to_string(),
        OlapTarget::Gpu => "gpu".to_string(),
        OlapTarget::MultiGpu => "multi-gpu".to_string(),
    }
}

/// Sweeps GPU residency × build selectivity × group cardinality for the
/// `lineitem ⋈ part` brand-revenue plan, recording the scheduler's routing
/// decision for the plan *and* for a pure scan of the same probe columns.
/// This is the experiment behind the paper's claim that placement must see
/// access patterns: with host-resident data the probes' random gathers make
/// the GPU pay an interconnect transaction per row, so join plans flip to
/// the CPU while the equivalent scan stays on the GPU.
pub fn fig_operators(lineitem_rows: u64, parts: u64, cpu_cores: usize) -> Vec<OperatorsRow> {
    let mut out = Vec::new();
    for (placement, placement_label) in
        [(DataPlacement::Host(AccessMode::Uva), "host-uva"), (DataPlacement::DeviceResident, "device-resident")]
    {
        let mut config = CalderaConfig::with_workers(1);
        config.olap_cpu_cores = cpu_cores;
        config.olap_device.placement = placement;
        config.snapshot_policy = SnapshotPolicy::Manual;
        let mut builder = Caldera::builder(config);
        let lineitem = tpch::load_lineitem(&mut builder, Layout::Dsm, lineitem_rows, 7).unwrap();
        let part = tpch::load_part(&mut builder, Layout::Dsm, parts, 11).unwrap();
        let caldera = builder.start().unwrap();

        // The pure scan of the same probe columns, for the routing contrast.
        let scan = h2tap_common::ScanAggQuery {
            predicates: vec![h2tap_common::Predicate::between(tpch::columns::SHIPDATE, 730.0, 1094.0)],
            aggregate: h2tap_common::AggExpr::SumProduct(tpch::columns::EXTENDEDPRICE, tpch::columns::DISCOUNT),
        };
        let scan_chosen = site_label(caldera.run_olap(lineitem, &scan).unwrap().site);

        for max_size in [12, 50] {
            for by_partkey in [false, true] {
                let plan =
                    if by_partkey { tpch::partkey_revenue_plan(max_size) } else { tpch::brand_revenue_plan(max_size) };
                let routed = caldera.run_olap_plan(lineitem, Some(part), &plan).unwrap();
                let cpu = caldera.run_olap_plan_on(lineitem, Some(part), &plan, OlapTarget::Cpu).unwrap();
                let gpu = caldera.run_olap_plan_on(lineitem, Some(part), &plan, OlapTarget::Gpu).unwrap();
                assert_eq!(cpu.groups, gpu.groups, "sites disagree on the join/group-by result");
                out.push(OperatorsRow {
                    lineitem_rows,
                    parts,
                    placement: placement_label.to_string(),
                    max_size,
                    group_by: if by_partkey { "partkey".to_string() } else { "brand".to_string() },
                    groups: routed.groups.len() as u64,
                    joined_rows: routed.qualifying_rows,
                    plan_chosen: site_label(routed.site),
                    scan_chosen: scan_chosen.clone(),
                    cpu_secs: cpu.time.as_secs_f64(),
                    gpu_secs: gpu.time.as_secs_f64(),
                });
            }
        }
        caldera.shutdown();
    }
    out
}

// ---------------------------------------------------------------------------
// Multi-GPU: device-mix x residency sweep with three-way routing
// ---------------------------------------------------------------------------

/// One configuration of the multi-GPU sweep: where the scheduler routed Q6
/// among the CPU, single-GPU and multi-GPU sites, with all three sites'
/// forced (oracle) times.
#[derive(Debug, Clone, Serialize)]
pub struct MultiGpuRow {
    /// Device-mix label (e.g. "2x GTX 980").
    pub mix: String,
    /// Devices in the mix.
    pub devices: u32,
    /// GPU data placement label ("host-uva" or "device-resident"), shared by
    /// the single-GPU and multi-GPU sites.
    pub placement: String,
    /// Rows in the lineitem table.
    pub lineitem_rows: u64,
    /// Site the three-way placement argmin chose.
    pub chosen: String,
    /// Forced Q6 time on the CPU site in milliseconds.
    pub cpu_ms: f64,
    /// Forced Q6 time on the single-GPU site in milliseconds.
    pub gpu_ms: f64,
    /// Forced Q6 time on the multi-GPU site in milliseconds.
    pub multi_gpu_ms: f64,
}

/// Sweeps device mixes (homogeneous pairs, a fast+slow generation pair, and
/// a four-card Table 1 mix) x GPU residency x data size, recording the
/// three-way routing decision next to every site's forced time. This is the
/// experiment behind the multi-GPU acceptance criterion: at least one
/// workload must route to the multi-GPU site *and* win there — a placement
/// outcome neither the CPU nor the single GPU could produce.
pub fn fig_multigpu(row_counts: &[u64], cpu_cores: usize) -> Vec<MultiGpuRow> {
    let mixes: Vec<(&str, Vec<GpuSpec>)> = vec![
        ("2x GTX 980", vec![GpuSpec::gtx_980(), GpuSpec::gtx_980()]),
        ("980 Ti + GTX 580", vec![GpuSpec::gtx_980_ti(), GpuSpec::gtx_580()]),
        ("4x Table-1 mix", h2tap_gpu_sim::table1_mix(4)),
    ];
    let mut out = Vec::new();
    for (mix_label, gpus) in &mixes {
        for (placement, placement_label) in
            [(DataPlacement::Host(AccessMode::Uva), "host-uva"), (DataPlacement::DeviceResident, "device-resident")]
        {
            for &rows in row_counts {
                let mut config = CalderaConfig::with_workers(1);
                config.olap_cpu_cores = cpu_cores;
                config.olap_device.placement = placement;
                config.olap_multi_gpu = Some(caldera::OlapMultiGpuConfig::new(gpus.clone()).with_placement(placement));
                config.snapshot_policy = SnapshotPolicy::Manual;
                let mut builder = Caldera::builder(config);
                let table = tpch::load_lineitem(&mut builder, Layout::Dsm, rows, 7).unwrap();
                let caldera = builder.start().unwrap();
                let query = q6();
                let routed = caldera.run_olap(table, &query).unwrap();
                let cpu = caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap();
                let gpu = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
                let multi = caldera.run_olap_on(table, &query, OlapTarget::MultiGpu).unwrap();
                assert_eq!(cpu.value.to_bits(), multi.value.to_bits(), "sites disagree on Q6 revenue");
                assert_eq!(gpu.value.to_bits(), multi.value.to_bits(), "sites disagree on Q6 revenue");
                out.push(MultiGpuRow {
                    mix: mix_label.to_string(),
                    devices: gpus.len() as u32,
                    placement: placement_label.to_string(),
                    lineitem_rows: rows,
                    chosen: site_label(routed.site),
                    cpu_ms: cpu.time.as_millis_f64(),
                    gpu_ms: gpu.time.as_millis_f64(),
                    multi_gpu_ms: multi.time.as_millis_f64(),
                });
                caldera.shutdown();
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Calibration: the placement feedback loop converging on the oracle
// ---------------------------------------------------------------------------

/// One query of the calibration experiment.
#[derive(Debug, Clone, Serialize)]
pub struct CalibrationQueryRow {
    /// Query index within the stream.
    pub query: u64,
    /// Rows of the lineitem table this query scanned.
    pub lineitem_rows: u64,
    /// Site the (continuously recalibrated) placement heuristic chose.
    pub chosen: String,
    /// Site that was actually faster, measured by forced runs on both sites.
    pub oracle: String,
    /// Whether placement agreed with the oracle.
    pub agree: bool,
    /// Measured CPU-site time in milliseconds.
    pub cpu_ms: f64,
    /// Measured GPU-site time in milliseconds.
    pub gpu_ms: f64,
}

/// Summary of one calibration run: agreement trajectory, steady-state
/// prediction error, and the model before/after.
#[derive(Debug, Clone, Serialize)]
pub struct CalibrationSummary {
    /// Queries in the stream (each also runs forced on both sites).
    pub queries: u64,
    /// Queries counted as warm-up — the stream position at which 50 total
    /// observations (placed + forced) have been folded into the calibrator.
    pub warmup_queries: u64,
    /// Oracle-agreement fraction during warm-up.
    pub agreement_early: f64,
    /// Oracle-agreement fraction after the first 50 observations — the
    /// acceptance metric (>= 0.9 with 2x/5x-wrong seeds).
    pub agreement_steady: f64,
    /// Steady-state mean relative prediction error on the CPU site.
    pub cpu_mean_rel_error: f64,
    /// Steady-state mean relative prediction error on the GPU site.
    pub gpu_mean_rel_error: f64,
    /// The deliberately wrong seed model the engine started from.
    pub initial_model: h2tap_scheduler::CostModel,
    /// The calibrated model after the stream.
    pub calibrated_model: h2tap_scheduler::CostModel,
    /// Per-query rows, in stream order.
    pub rows: Vec<CalibrationQueryRow>,
}

/// Runs the placement-calibration experiment: one engine whose cost model is
/// seeded deliberately wrong — per-tuple CPU cost 2x too high, GPU dispatch
/// overhead 5x too low, exactly the drift ROADMAP warns about — answering a
/// round-robin stream of Q6 instances over four lineitem sizes that straddle
/// the CPU/GPU crossover. Every query also runs forced on both sites, which
/// (a) measures the oracle placement and (b) feeds the calibrator
/// ground-truth observations from each site. With the wrong seeds the small
/// sizes misroute to the GPU at first; the feedback loop re-estimates the
/// constants from the sites' reported time breakdowns and placement converges
/// to the oracle within tens of observations.
pub fn fig_calibration(queries: u64, cpu_cores: usize) -> CalibrationSummary {
    use h2tap_scheduler::CostModel;
    let sizes: [u64; 4] = [3_000, 8_000, 30_000, 100_000];
    let true_model = CalderaConfig::default().initial_cost_model();
    let initial_model = CostModel {
        cpu_per_tuple_ns: true_model.cpu_per_tuple_ns * 2.0,
        gpu_dispatch_overhead_secs: true_model.gpu_dispatch_overhead_secs / 5.0,
        ..true_model
    };

    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = cpu_cores;
    config.snapshot_policy = SnapshotPolicy::Manual;
    config.cost_model_seed = Some(initial_model);
    let mut builder = Caldera::builder(config);
    let tables: Vec<TableId> = sizes
        .iter()
        .map(|&rows| {
            tpch::load_lineitem_named(&mut builder, &format!("lineitem_{rows}"), Layout::Dsm, rows, 7).unwrap()
        })
        .collect();
    let caldera = builder.start().unwrap();
    let query = q6();

    // Each stream position records three observations (placed + two forced);
    // "after the first 50 observations" therefore begins at this query index.
    let warmup_queries = 50u64.div_ceil(3);
    let mut rows_out = Vec::with_capacity(queries as usize);
    let mut agree_early = 0u64;
    let mut agree_steady = 0u64;
    for i in 0..queries {
        let rows = sizes[(i % sizes.len() as u64) as usize];
        let table = tables[(i % sizes.len() as u64) as usize];
        let routed = caldera.run_olap(table, &query).unwrap();
        let cpu = caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap();
        let gpu = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
        let oracle = if cpu.time < gpu.time { OlapTarget::Cpu } else { OlapTarget::Gpu };
        let agree = routed.site == oracle;
        if i < warmup_queries {
            agree_early += u64::from(agree);
        } else {
            agree_steady += u64::from(agree);
        }
        rows_out.push(CalibrationQueryRow {
            query: i,
            lineitem_rows: rows,
            chosen: site_label(routed.site),
            oracle: site_label(oracle),
            agree,
            cpu_ms: cpu.time.as_millis_f64(),
            gpu_ms: gpu.time.as_millis_f64(),
        });
    }
    let calibrated_model = caldera.cost_model();
    let stats = caldera.shutdown();
    let steady = queries.saturating_sub(warmup_queries);
    CalibrationSummary {
        queries,
        warmup_queries,
        agreement_early: agree_early as f64 / warmup_queries.min(queries).max(1) as f64,
        agreement_steady: agree_steady as f64 / steady.max(1) as f64,
        cpu_mean_rel_error: stats.prediction_error_on(OlapTarget::Cpu).unwrap_or(f64::NAN),
        gpu_mean_rel_error: stats.prediction_error_on(OlapTarget::Gpu).unwrap_or(f64::NAN),
        initial_model,
        calibrated_model,
        rows: rows_out,
    }
}

// ---------------------------------------------------------------------------
// Figures 5-7: HTAP with software snapshotting
// ---------------------------------------------------------------------------

/// One measurement of the mixed HTAP workload.
#[derive(Debug, Clone, Serialize)]
pub struct HtapRow {
    /// OLTP working-set percentage.
    pub working_set_pct: u32,
    /// Snapshot sharing degree (queries per snapshot).
    pub queries_per_snapshot: u32,
    /// Number of OLAP queries executed.
    pub olap_queries: u32,
    /// OLTP throughput while the queries ran (transactions per second).
    pub oltp_tps: f64,
    /// Average OLAP response time in seconds.
    pub olap_avg_secs: f64,
    /// Minimum OLAP response time in seconds.
    pub olap_min_secs: f64,
    /// Maximum OLAP response time in seconds.
    pub olap_max_secs: f64,
    /// Median OLAP response time in seconds.
    pub olap_p50_secs: f64,
    /// 99th-percentile OLAP response time in seconds.
    pub olap_p99_secs: f64,
    /// Pages shadow-copied during the run.
    pub cow_pages: u64,
}

/// Parameters of the mixed HTAP experiments (Figures 5, 6, 7).
#[derive(Debug, Clone, Copy)]
pub struct HtapParams {
    /// Rows in the lineitem table.
    pub lineitem_rows: u64,
    /// OLTP worker threads (= partitions).
    pub oltp_workers: usize,
    /// Number of OLAP queries to run back-to-back.
    pub olap_queries: u32,
    /// Queries that share one snapshot.
    pub queries_per_snapshot: u32,
    /// OLTP working-set percentage (1-100).
    pub working_set_pct: u32,
}

impl Default for HtapParams {
    fn default() -> Self {
        Self {
            lineitem_rows: DEFAULT_LINEITEM_ROWS,
            oltp_workers: 4,
            olap_queries: 10,
            queries_per_snapshot: 10,
            working_set_pct: 100,
        }
    }
}

/// Runs the mixed workload of Section 5.1 once: the YCSB-like update workload
/// runs on the CPU archipelago while `olap_queries` Q6 instances run on the
/// GPU archipelago, sharing snapshots per the policy.
pub fn run_htap(params: HtapParams) -> HtapRow {
    let mut config = CalderaConfig::with_workers(params.oltp_workers);
    config.oltp = OltpConfig { workers: params.oltp_workers, ..OltpConfig::default() };
    config.snapshot_policy = SnapshotPolicy::EveryN { queries: params.queries_per_snapshot };
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem(&mut builder, Layout::PAPER_PAX, params.lineitem_rows, 7).unwrap();
    let ycsb = YcsbGenerator::new(YcsbConfig {
        working_set_pct: params.working_set_pct,
        ..YcsbConfig::paper_default(table, params.lineitem_rows, params.oltp_workers as u64)
    });
    builder.set_generator(Arc::new(ycsb));
    let caldera = builder.start().unwrap();

    // Start the OLTP window in a helper thread while OLAP queries run here,
    // mirroring "the OLTP workload is executed by the CPU until all OLAP
    // queries terminate".
    let oltp_handle = {
        let query_budget = Duration::from_millis(120 * u64::from(params.olap_queries.max(1)));
        let caldera_ref: &Caldera = &caldera;
        std::thread::scope(|scope| {
            let window = scope.spawn(move || caldera_ref.run_oltp_window(query_budget));
            let mut times = Histogram::new();
            let query = q6();
            for _ in 0..params.olap_queries {
                let outcome = caldera_ref.run_olap(table, &query).unwrap();
                times.record(outcome.time.as_secs_f64());
            }
            let bench = window.join().expect("oltp window thread").expect("oltp window");
            (bench, times)
        })
    };
    let (bench, times) = oltp_handle;
    let stats = caldera.shutdown();
    HtapRow {
        working_set_pct: params.working_set_pct,
        queries_per_snapshot: params.queries_per_snapshot,
        olap_queries: params.olap_queries,
        oltp_tps: bench.throughput_tps,
        olap_avg_secs: times.mean().unwrap_or(0.0),
        olap_min_secs: times.min().unwrap_or(0.0),
        olap_max_secs: times.max().unwrap_or(0.0),
        olap_p50_secs: times.p50().unwrap_or(0.0),
        olap_p99_secs: times.p99().unwrap_or(0.0),
        cow_pages: stats.cow.pages_copied,
    }
}

/// Figure 5: OLTP throughput vs working-set % for four snapshot frequencies.
pub fn fig5(lineitem_rows: u64, oltp_workers: usize, working_sets: &[u32]) -> Vec<HtapRow> {
    let mut rows = Vec::new();
    // q1 / q1,5 / q1,3,5,7 / q1-10 correspond to 10, 5, 2.5 and 1 queries per
    // snapshot; 2.5 is rounded to 3.
    for queries_per_snapshot in [10u32, 5, 3, 1] {
        for &ws in working_sets {
            rows.push(run_htap(HtapParams {
                lineitem_rows,
                oltp_workers,
                queries_per_snapshot,
                working_set_pct: ws,
                ..HtapParams::default()
            }));
        }
    }
    rows
}

/// Figure 6: OLAP response times vs working-set %, one shared snapshot.
pub fn fig6(lineitem_rows: u64, oltp_workers: usize, working_sets: &[u32]) -> Vec<HtapRow> {
    working_sets
        .iter()
        .map(|&ws| {
            run_htap(HtapParams {
                lineitem_rows,
                oltp_workers,
                queries_per_snapshot: 10,
                working_set_pct: ws,
                ..HtapParams::default()
            })
        })
        .collect()
}

/// Figure 7: sweep the number of queries sharing a snapshot at 100 % working
/// set.
pub fn fig7(lineitem_rows: u64, oltp_workers: usize, query_counts: &[u32]) -> Vec<HtapRow> {
    query_counts
        .iter()
        .map(|&n| {
            run_htap(HtapParams {
                lineitem_rows,
                oltp_workers,
                olap_queries: n,
                queries_per_snapshot: n,
                working_set_pct: 100,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8: TPC-C scalability, Caldera vs Silo
// ---------------------------------------------------------------------------

/// One point of Figure 8 or 9.
#[derive(Debug, Clone, Serialize)]
pub struct OltpComparisonRow {
    /// X-axis value (cores for Fig 8, multisite % for Fig 9).
    pub x: u32,
    /// System name.
    pub system: String,
    /// Committed transactions per second.
    pub tps: f64,
}

/// Runs Figure 8: TPC-C NewOrder throughput as the number of cores (and
/// warehouses) grows, for Caldera and Silo.
pub fn fig8(core_counts: &[usize], window: Duration) -> Vec<OltpComparisonRow> {
    let cfg = TpccConfig::default();
    let mut out = Vec::new();
    for &cores in core_counts {
        // Caldera.
        let mut config = CalderaConfig::with_workers(cores);
        config.oltp.seed = 0xF18;
        let mut builder = Caldera::builder(config);
        builder.set_partitioner(Arc::new(tpcc_partitioner(cores))).unwrap();
        let tables = load_tpcc(&mut builder, cores, cfg).unwrap();
        builder.set_generator(Arc::new(NewOrderGenerator::new(tables, cfg, cores)));
        let caldera = builder.start().unwrap();
        let window_result = caldera.run_oltp_window(window).unwrap();
        out.push(OltpComparisonRow { x: cores as u32, system: "Caldera".into(), tps: window_result.throughput_tps });
        caldera.shutdown();

        // Silo.
        let silo = SiloDb::new();
        let silo_tables = standalone_tables();
        load_tpcc_silo(&silo, silo_tables, cores, cfg).unwrap();
        let runtime = SiloRuntime::new(Arc::clone(&silo), cores);
        let silo_window = runtime.run_for(Arc::new(SiloNewOrderGenerator::new(silo_tables, cfg, cores)), window);
        out.push(OltpComparisonRow { x: cores as u32, system: "Silo".into(), tps: silo_window.throughput_tps });
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 9: multisite sensitivity, Caldera vs Silo vs SN-Silo
// ---------------------------------------------------------------------------

/// Runs Figure 9: throughput as the share of multi-site transactions grows.
pub fn fig9(
    partitions: usize,
    rows_per_partition: u64,
    multisite_percentages: &[u32],
    window: Duration,
) -> Vec<OltpComparisonRow> {
    let mut out = Vec::new();
    for &pct in multisite_percentages {
        // Caldera.
        let mut config = CalderaConfig::with_workers(partitions);
        config.oltp.seed = 0xF19;
        let mut builder = Caldera::builder(config);
        builder.set_partitioner(Arc::new(multisite_partitioner(partitions))).unwrap();
        let table = load_multisite_caldera(&mut builder, rows_per_partition, partitions).unwrap();
        let cfg = MultisiteConfig::paper(table, rows_per_partition, partitions, pct);
        builder.set_generator(Arc::new(CalderaMultisiteGenerator::new(cfg)));
        let caldera = builder.start().unwrap();
        let w = caldera.run_oltp_window(window).unwrap();
        out.push(OltpComparisonRow { x: pct, system: "Caldera".into(), tps: w.throughput_tps });
        caldera.shutdown();

        // Silo (single shared instance).
        let silo = SiloDb::new();
        let table_id = TableId(0);
        load_multisite_silo(&silo, table_id, rows_per_partition, partitions).unwrap();
        let silo_cfg = MultisiteConfig::paper(table_id, rows_per_partition, partitions, pct);
        let runtime = SiloRuntime::new(Arc::clone(&silo), partitions);
        let sw = runtime.run_for(Arc::new(SiloMultisiteGenerator::new(silo_cfg)), window);
        out.push(OltpComparisonRow { x: pct, system: "Silo".into(), tps: sw.throughput_tps });

        // SN-Silo (instance per core + 2PC).
        let sn = SnSilo::new(partitions);
        load_multisite_sn(&sn, table_id, rows_per_partition).unwrap();
        let sn_cfg = MultisiteConfig::paper(table_id, rows_per_partition, partitions, pct);
        let snw =
            h2tap_baselines::run_sn_silo_benchmark(&sn, Arc::new(SnSiloMultisiteGenerator::new(sn_cfg)), window, 0xF19);
        out.push(OltpComparisonRow { x: pct, system: "SN-Silo".into(), tps: snw.throughput_tps });
        sn.shutdown();
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 10 & 11: storage layouts on the GPU
// ---------------------------------------------------------------------------

/// One point of Figure 10 or 11.
#[derive(Debug, Clone, Serialize)]
pub struct LayoutRow {
    /// Layout label.
    pub layout: String,
    /// Attributes accessed by the query.
    pub attributes: usize,
    /// GPU used.
    pub gpu: String,
    /// Execution time in seconds.
    pub seconds: f64,
    /// The (exact) aggregate, identical across layouts.
    pub sum: f64,
}

/// Runs Figure 10: `SUM(col1+...+colN)` for N in `attribute_counts`, over a
/// host-resident (UVA) table in DSM, PAX and NSM.
pub fn fig10(rows: u64, attribute_counts: &[usize]) -> Vec<LayoutRow> {
    let mut out = Vec::new();
    for layout in [Layout::Dsm, Layout::PAPER_PAX, Layout::Nsm] {
        let (db, table) = layoutbench::build_layout_table(rows, layout, 99).unwrap();
        let snap = db.snapshot();
        let frozen = snap.table(table).unwrap();
        let engine = GpuOlapEngine::new(GpuDevice::new(GpuSpec::gtx_980()), DataPlacement::Host(AccessMode::Uva));
        let handle = engine.register_table(frozen, "dataset").unwrap();
        for &n in attribute_counts {
            let outcome = engine.execute(handle, frozen, &layoutbench::sum_query(n)).unwrap();
            out.push(LayoutRow {
                layout: layout.label().to_string(),
                attributes: n,
                gpu: "GTX 980 (Maxwell, UVA)".into(),
                seconds: outcome.time.as_secs_f64(),
                sum: outcome.value,
            });
        }
    }
    out
}

/// Runs Figure 11: the two-attribute query with all data resident in GPU
/// memory, on the Fermi and Maxwell devices.
pub fn fig11(rows: u64) -> Vec<LayoutRow> {
    let mut out = Vec::new();
    for spec in [GpuSpec::tesla_m2090(), GpuSpec::gtx_980()] {
        for layout in [Layout::Dsm, Layout::PAPER_PAX, Layout::Nsm] {
            let (db, table) = layoutbench::build_layout_table(rows, layout, 99).unwrap();
            let snap = db.snapshot();
            let frozen = snap.table(table).unwrap();
            let engine = GpuOlapEngine::new(GpuDevice::new(spec.clone()), DataPlacement::DeviceResident);
            let handle = engine.register_table(frozen, "dataset").unwrap();
            let outcome = engine.execute(handle, frozen, &layoutbench::sum_query(2)).unwrap();
            out.push(LayoutRow {
                layout: layout.label().to_string(),
                attributes: 2,
                gpu: format!("{} ({})", spec.name, spec.architecture.name()),
                seconds: outcome.time.as_secs_f64(),
                sum: outcome.value,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// hostperf: real wall-clock of the shared host data path
// ---------------------------------------------------------------------------

/// Per-query wall-clock latency percentiles of one timed code path, in
/// milliseconds — read off the same repeated stream the `*_ms` totals come
/// from, so tail behaviour (allocator stalls, preemption) is visible next
/// to the noise-robust min-based totals.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyPercentiles {
    /// Median per-query latency.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest observed query.
    pub max_ms: f64,
}

impl LatencyPercentiles {
    /// Extracts the percentiles from a histogram of per-query *seconds*.
    pub fn from_secs_histogram(h: &Histogram) -> Self {
        let ms = |v: Option<f64>| v.unwrap_or(0.0) * 1e3;
        Self { p50_ms: ms(h.p50()), p95_ms: ms(h.p95()), p99_ms: ms(h.p99()), max_ms: ms(h.max()) }
    }

    /// The `{"p50_ms":..}` object the tracked JSON artifacts embed.
    pub fn json(&self) -> String {
        format!(
            "{{\"p50_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4},\"max_ms\":{:.4}}}",
            self.p50_ms, self.p95_ms, self.p99_ms, self.max_ms
        )
    }
}

/// One workload of the host-path wall-clock experiment: the same repeated
/// query stream timed on three code paths of the shared operator pipeline.
#[derive(Debug, Clone, Serialize)]
pub struct HostPerfRow {
    /// Workload label ("q6-scan", "brand-join").
    pub workload: String,
    /// Rows of the lineitem (probe) table.
    pub lineitem_rows: u64,
    /// Queries in the repeated stream (per code path).
    pub queries: u32,
    /// Total wall-clock of the retained pre-PR path: row-at-a-time chunk
    /// evaluation, per-query O(chunk) zonemap recomputation, and a fresh
    /// materialisation + hash build per query.
    pub reference_ms: f64,
    /// Total wall-clock of the previous release's vectorized path cold:
    /// scalar batch kernels plus the serial two-pass materialisation, a
    /// fresh derivation per query. The baseline the explicit SIMD kernels
    /// and the fused parallel materialisation must beat.
    pub pr5_cold_ms: f64,
    /// Total wall-clock of the vectorized path with a *cold* cache (every
    /// query re-derives its plan data): isolates the vectorization win.
    pub vectorized_cold_ms: f64,
    /// Total wall-clock of the vectorized path against a *warm* shared
    /// plan-data cache: every query reuses the snapshot's materialised
    /// columns, zonemap stats and join hash table.
    pub vectorized_cached_ms: f64,
    /// `reference_ms / vectorized_cold_ms`.
    pub cold_speedup: f64,
    /// `reference_ms / vectorized_cached_ms`.
    pub cached_speedup: f64,
    /// `pr5_cold_ms / vectorized_cold_ms` — the raw-speed-floor win of the
    /// explicit SIMD kernels plus parallel materialisation over the scalar
    /// batch path, both cold.
    pub simd_speedup: f64,
    /// Per-query latency percentiles of the reference path.
    pub reference_latency: LatencyPercentiles,
    /// Per-query latency percentiles of the scalar batch (pr5) path.
    pub pr5_latency: LatencyPercentiles,
    /// Per-query latency percentiles of the SIMD path, cold cache.
    pub vectorized_cold_latency: LatencyPercentiles,
    /// Per-query latency percentiles of the SIMD path, warm cache.
    pub vectorized_cached_latency: LatencyPercentiles,
}

/// Result of the hostperf experiment: per-workload rows plus the worst-case
/// speedups (the acceptance figures) and the warm cache's counters.
#[derive(Debug, Clone)]
pub struct HostPerfSummary {
    /// Per-workload measurements.
    pub rows: Vec<HostPerfRow>,
    /// Smallest cold (vectorization-only) speedup across workloads.
    pub min_cold_speedup: f64,
    /// Smallest cached speedup across workloads.
    pub min_cached_speedup: f64,
    /// Smallest SIMD-over-scalar-batch cold speedup across workloads.
    pub min_simd_speedup: f64,
    /// Hit/miss counters of the warm cache after the cached runs.
    pub cache: h2tap_common::PlanCacheStats,
}

/// Measures **real wall-clock** (not simulated) execution of the shared
/// host data path over a repeated-query workload — Q6 (selective scan) and
/// the brand-revenue join plan — on three code paths: the retained
/// row-at-a-time reference, the vectorized path cold (fresh derivation per
/// query), and the vectorized path against the warm snapshot-keyed cache.
/// All three paths must produce bit-identical answers (asserted here), so
/// the only thing that differs is time. This is the first entry of the
/// repository's measured performance trajectory.
pub fn fig_hostperf(lineitem_rows: u64, part_keys: u64, repeats: u32) -> HostPerfSummary {
    use h2tap_olap::operators as ops;
    use h2tap_olap::PlanDataCache;
    use std::time::Instant;

    // Load both tables once; every path queries the same frozen snapshot.
    let mut builder = Caldera::builder(CalderaConfig::with_workers(1));
    let lineitem = tpch::load_lineitem(&mut builder, Layout::Dsm, lineitem_rows, 7).unwrap();
    let part = tpch::load_part(&mut builder, Layout::Dsm, part_keys, 11).unwrap();
    let snap = builder.database().snapshot();
    let fact = snap.table(lineitem).unwrap();
    let dim = snap.table(part).unwrap();

    // Stream time = repeats x the *fastest* single query. The minimum is
    // the standard noise-robust location estimator for wall-clock micro
    // measurements: a query can only measure slow (scheduler preemption,
    // a concurrent test thread on the same core), never fast, so the min
    // is the cleanest observation while keeping the total-stream-ms scale
    // of the tracked artifacts.
    // Alongside the total, every per-query time feeds a histogram so the
    // artifact also reports the latency *distribution* of each path.
    let time_stream = |mut query_once: Box<dyn FnMut() + '_>| -> (f64, LatencyPercentiles) {
        let mut best = f64::INFINITY;
        let mut hist = Histogram::new();
        for _ in 0..repeats {
            let started = Instant::now();
            query_once();
            let secs = started.elapsed().as_secs_f64();
            hist.record(secs);
            best = best.min(secs);
        }
        (best * f64::from(repeats) * 1e3, LatencyPercentiles::from_secs_histogram(&hist))
    };

    let mut rows = Vec::new();

    // ---- Workload 1: Q6, the selective scan-and-aggregate. -------------
    let query = q6();
    // Pre-PR path: fresh materialisation *without* zonemap statistics
    // (they did not exist), O(chunk) zonemap recomputation per chunk per
    // query, row-at-a-time evaluation. (One residual deviation understates
    // the win: the reference's hash build below uses the new multiply-shift
    // hasher rather than the old SipHash.)
    let scan_reference = || -> (f64, u64) {
        let mat = ops::MaterializedColumns::new_without_zonemaps(fact, query.columns_accessed()).unwrap();
        let mut kept = Vec::new();
        for i in 0..mat.chunk_count() {
            let range = mat.chunk_range(i);
            if ops::scan_chunk_can_qualify_reference(&mat, &query.predicates, range.clone()) {
                kept.push(ops::scan_chunk_reference(&mat, &query, range));
            }
        }
        ops::merge_scan_partials(kept)
    };
    // The previous release's cold path: serial two-pass materialisation
    // plus the scalar batch kernels, zonemap skipping enabled. (Its hash
    // build shares today's zonemap-free build-side materialisation, which
    // slightly *understates* the SIMD win.)
    let scan_pr5 = || -> (f64, u64) {
        let mat = ops::MaterializedColumns::new_serial(fact, query.columns_accessed()).unwrap();
        let mut kept = Vec::new();
        for i in 0..mat.chunk_count() {
            if ops::scan_chunk_can_qualify(&mat, &query.predicates, i) {
                kept.push(ops::scan_chunk_scalar(&mat, &query, mat.chunk_range(i)));
            }
        }
        ops::merge_scan_partials(kept)
    };
    let scan_vectorized = |cache: &PlanDataCache| -> (f64, u64) {
        let mat = cache.materialized(fact, query.columns_accessed()).unwrap();
        let mut kept = Vec::new();
        for i in 0..mat.chunk_count() {
            if ops::scan_chunk_can_qualify(&mat, &query.predicates, i) {
                kept.push(ops::scan_chunk(&mat, &query, mat.chunk_range(i)));
            }
        }
        ops::merge_scan_partials(kept)
    };
    let want = scan_reference();
    assert_eq!(scan_pr5().0.to_bits(), want.0.to_bits(), "scalar batch scan must be bit-identical");
    let cold_cache = PlanDataCache::new();
    assert_eq!(scan_vectorized(&cold_cache).0.to_bits(), want.0.to_bits(), "vectorized scan must be bit-identical");
    let warm_cache = PlanDataCache::new();
    assert_eq!(scan_vectorized(&warm_cache).0.to_bits(), want.0.to_bits());

    let (reference_ms, reference_latency) = time_stream(Box::new(|| {
        scan_reference();
    }));
    let (pr5_cold_ms, pr5_latency) = time_stream(Box::new(|| {
        scan_pr5();
    }));
    let (vectorized_cold_ms, vectorized_cold_latency) = time_stream(Box::new(|| {
        cold_cache.invalidate();
        scan_vectorized(&cold_cache);
    }));
    // The warm cache already holds the snapshot's derivation (warmed by the
    // equivalence check above): this is the repeated-query, cache-hit regime.
    let (vectorized_cached_ms, vectorized_cached_latency) = time_stream(Box::new(|| {
        scan_vectorized(&warm_cache);
    }));
    rows.push(HostPerfRow {
        workload: "q6-scan".into(),
        lineitem_rows,
        queries: repeats,
        reference_ms,
        pr5_cold_ms,
        vectorized_cold_ms,
        vectorized_cached_ms,
        cold_speedup: reference_ms / vectorized_cold_ms.max(1e-9),
        cached_speedup: reference_ms / vectorized_cached_ms.max(1e-9),
        simd_speedup: pr5_cold_ms / vectorized_cold_ms.max(1e-9),
        reference_latency,
        pr5_latency,
        vectorized_cold_latency,
        vectorized_cached_latency,
    });

    // ---- Workload 2: the brand-revenue join + group-by plan. -----------
    let plan = tpch::brand_revenue_plan(30);
    let group_col = ops::check_plan(&plan, true).unwrap();
    let join_reference = || -> (Vec<h2tap_common::GroupRow>, u64) {
        let hash = ops::build_hash_table(dim, plan.join.as_ref().unwrap(), group_col).unwrap();
        let mat = ops::MaterializedColumns::new_without_zonemaps(fact, plan.probe_columns_accessed()).unwrap();
        let partials: Vec<_> = (0..mat.chunk_count())
            .map(|i| ops::process_chunk_reference(&mat, &plan, Some(&hash), mat.chunk_range(i)))
            .collect();
        let (groups, totals) = ops::merge_partials(&plan, partials);
        (groups, totals.joined)
    };
    let join_pr5 = || -> (Vec<h2tap_common::GroupRow>, u64) {
        let hash = ops::build_hash_table(dim, plan.join.as_ref().unwrap(), group_col).unwrap();
        let mat = ops::MaterializedColumns::new_serial(fact, plan.probe_columns_accessed()).unwrap();
        let partials: Vec<_> = (0..mat.chunk_count())
            .map(|i| ops::process_chunk_scalar(&mat, &plan, Some(&hash), mat.chunk_range(i)))
            .collect();
        let (groups, totals) = ops::merge_partials(&plan, partials);
        (groups, totals.joined)
    };
    let join_vectorized = |cache: &PlanDataCache| -> (Vec<h2tap_common::GroupRow>, u64) {
        let data = cache.prepare_plan(fact, Some(dim), &plan).unwrap();
        let partials: Vec<_> = (0..data.mat.chunk_count())
            .map(|i| ops::process_chunk(&data.mat, &plan, data.hash.as_deref(), data.mat.chunk_range(i)))
            .collect();
        let (groups, totals) = ops::merge_partials(&plan, partials);
        (groups, totals.joined)
    };
    let want = join_reference();
    // Bitwise comparison (f64 `==` would both miss a -0.0/+0.0 drift and
    // spuriously reject bit-identical NaN aggregates).
    let assert_bit_identical = |(groups, joined): (Vec<h2tap_common::GroupRow>, u64)| {
        assert_eq!(joined, want.1, "vectorized join plan must agree on joined rows");
        assert_eq!(groups.len(), want.0.len());
        for (g, w) in groups.iter().zip(&want.0) {
            assert_eq!((g.key, g.rows), (w.key, w.rows));
            for (x, y) in g.values.iter().zip(&w.values) {
                assert_eq!(x.to_bits(), y.to_bits(), "vectorized join plan must be bit-identical: {x} vs {y}");
            }
        }
    };
    cold_cache.invalidate();
    assert_bit_identical(join_pr5());
    assert_bit_identical(join_vectorized(&cold_cache));
    assert_bit_identical(join_vectorized(&warm_cache));

    let (reference_ms, reference_latency) = time_stream(Box::new(|| {
        join_reference();
    }));
    let (pr5_cold_ms, pr5_latency) = time_stream(Box::new(|| {
        join_pr5();
    }));
    let (vectorized_cold_ms, vectorized_cold_latency) = time_stream(Box::new(|| {
        cold_cache.invalidate();
        join_vectorized(&cold_cache);
    }));
    let (vectorized_cached_ms, vectorized_cached_latency) = time_stream(Box::new(|| {
        join_vectorized(&warm_cache);
    }));
    rows.push(HostPerfRow {
        workload: "brand-join".into(),
        lineitem_rows,
        queries: repeats,
        reference_ms,
        pr5_cold_ms,
        vectorized_cold_ms,
        vectorized_cached_ms,
        cold_speedup: reference_ms / vectorized_cold_ms.max(1e-9),
        cached_speedup: reference_ms / vectorized_cached_ms.max(1e-9),
        simd_speedup: pr5_cold_ms / vectorized_cold_ms.max(1e-9),
        reference_latency,
        pr5_latency,
        vectorized_cold_latency,
        vectorized_cached_latency,
    });

    let min_cold = rows.iter().map(|r| r.cold_speedup).fold(f64::INFINITY, f64::min);
    let min_cached = rows.iter().map(|r| r.cached_speedup).fold(f64::INFINITY, f64::min);
    let min_simd = rows.iter().map(|r| r.simd_speedup).fold(f64::INFINITY, f64::min);
    HostPerfSummary {
        cache: warm_cache.stats(),
        rows,
        min_cold_speedup: min_cold,
        min_cached_speedup: min_cached,
        min_simd_speedup: min_simd,
    }
}

// ---------------------------------------------------------------------------
// concurrency: wall-clock scaling of concurrent OLAP serving
// ---------------------------------------------------------------------------

/// One thread-count point of the concurrency experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ConcurrencyRow {
    /// Client threads issuing queries concurrently.
    pub threads: u32,
    /// Total queries the round executed (threads x per-thread stream).
    pub queries: u64,
    /// Wall-clock of the whole round (all threads, barrier to last join).
    pub wall_ms: f64,
    /// Sustained throughput of the round.
    pub queries_per_sec: f64,
    /// `queries_per_sec / serial_qps` (the 1-thread round of the same run).
    pub speedup_vs_serial: f64,
    /// Per-query wall-clock latency percentiles across every client.
    pub latency: LatencyPercentiles,
}

/// Result of the concurrency experiment: the thread sweep plus the shared
/// counters that prove *why* it scales (shared-scan attaches) and that the
/// admission layer saw real contention (queued admissions).
#[derive(Debug, Clone)]
pub struct ConcurrencySummary {
    /// One row per swept thread count, in sweep order.
    pub rows: Vec<ConcurrencyRow>,
    /// Concurrent same-key materialisations that attached to an in-flight
    /// build instead of duplicating it (the shared-scan counter).
    pub shared_scan_attaches: u64,
    /// Admissions (across all sites) that waited behind the in-flight
    /// budget.
    pub admission_queued: u64,
    /// Throughput of the 1-thread round, the speedup baseline.
    pub serial_qps: f64,
}

impl ConcurrencySummary {
    /// The measured speedup at `threads` clients (`None` if not swept).
    pub fn speedup_at(&self, threads: u32) -> Option<f64> {
        self.rows.iter().find(|r| r.threads == threads).map(|r| r.speedup_vs_serial)
    }
}

/// Measures **real wall-clock** throughput and latency of the engine's
/// concurrent OLAP path: per round, the snapshot is refreshed (cold cache,
/// fresh epoch) and `threads` clients hammer the same Q6 scan + brand-join
/// plan stream through the production dispatch. Every answer is compared
/// bit-for-bit against a serial oracle taken on the same data, so the sweep
/// can only trade time, never correctness. Scaling comes from two places:
/// queries execute concurrently under the snapshot gate's read lock, and
/// the racing cold queries of each round share one materialisation instead
/// of duplicating it (counted in `shared_scan_attaches`).
pub fn fig_concurrency(
    lineitem_rows: u64,
    part_keys: u64,
    per_thread: u32,
    thread_counts: &[u32],
    admission_in_flight: Option<u32>,
) -> ConcurrencySummary {
    use std::sync::Barrier;
    use std::time::Instant;

    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 8;
    // Freshness is driven by the experiment itself (one refresh per round),
    // not by query count.
    config.snapshot_policy = SnapshotPolicy::Manual;
    config.olap_admission_in_flight = admission_in_flight;
    let mut builder = Caldera::builder(config);
    let lineitem = tpch::load_lineitem(&mut builder, Layout::Dsm, lineitem_rows, 7).unwrap();
    let part = tpch::load_part(&mut builder, Layout::Dsm, part_keys, 11).unwrap();
    let caldera = Arc::new(builder.start().unwrap());

    // Serial oracle on the same data: the bit patterns every concurrent
    // client must reproduce.
    let scan = q6();
    let plan = tpch::brand_revenue_plan(30);
    caldera.refresh_snapshot().unwrap();
    let oracle_scan = caldera.run_olap(lineitem, &scan).unwrap();
    let oracle_groups = caldera.run_olap_plan(lineitem, Some(part), &plan).unwrap().groups;

    let mut rows: Vec<ConcurrencyRow> = Vec::new();
    let mut serial_qps = 0.0;
    for &threads in thread_counts {
        // A fresh epoch per round: the round's first queries race to
        // rebuild the derived state, exercising the shared-scan attach path
        // instead of serving everything from a warm cache.
        caldera.refresh_snapshot().unwrap();
        let barrier = Arc::new(Barrier::new(threads as usize + 1));
        let hist = Arc::new(std::sync::Mutex::new(Histogram::new()));
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let caldera = Arc::clone(&caldera);
                let barrier = Arc::clone(&barrier);
                let hist = Arc::clone(&hist);
                let scan = scan.clone();
                let plan = plan.clone();
                let oracle_groups = oracle_groups.clone();
                let oracle_bits = oracle_scan.value.to_bits();
                std::thread::spawn(move || {
                    let mut local = Histogram::new();
                    barrier.wait();
                    for i in 0..per_thread {
                        let started = Instant::now();
                        // Alternate the two shapes, offset per worker so the
                        // mix is interleaved, not phased.
                        if (i + worker).is_multiple_of(2) {
                            let out = caldera.run_olap(lineitem, &scan).unwrap();
                            assert_eq!(
                                out.value.to_bits(),
                                oracle_bits,
                                "concurrent scan answers must stay bit-identical to serial"
                            );
                        } else {
                            let out = caldera.run_olap_plan(lineitem, Some(part), &plan).unwrap();
                            assert_eq!(
                                out.groups, oracle_groups,
                                "concurrent plan answers must stay bit-identical to serial"
                            );
                        }
                        local.record(started.elapsed().as_secs_f64());
                    }
                    hist.lock().unwrap().merge(&local);
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
        let queries = u64::from(threads) * u64::from(per_thread);
        let qps = queries as f64 / wall_secs;
        if threads == 1 {
            serial_qps = qps;
        }
        rows.push(ConcurrencyRow {
            threads,
            queries,
            wall_ms: wall_secs * 1e3,
            queries_per_sec: qps,
            speedup_vs_serial: if serial_qps > 0.0 { qps / serial_qps } else { 0.0 },
            latency: LatencyPercentiles::from_secs_histogram(&hist.lock().unwrap()),
        });
    }

    let caldera = Arc::try_unwrap(caldera).unwrap_or_else(|_| panic!("all clients joined"));
    let stats = caldera.shutdown();
    ConcurrencySummary {
        rows,
        shared_scan_attaches: stats.plan_cache.shared_scan_attaches,
        admission_queued: stats.olap_sites.iter().map(|s| s.admission.queued).sum(),
        serial_qps,
    }
}

// ---------------------------------------------------------------------------
// chaos: availability and exactness under injected faults
// ---------------------------------------------------------------------------

/// One fault-plan phase of the chaos experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosPhaseRow {
    /// Phase label ("fault_free", "transient_storm", "device_loss").
    pub phase: &'static str,
    /// Concurrent client threads.
    pub clients: u32,
    /// Queries issued by the phase.
    pub queries: u64,
    /// Queries that returned an error to a client (the ladder failed).
    pub client_errors: u64,
    /// Successful queries whose bits differed from the serial oracle.
    pub wrong_answers: u64,
    /// `(queries - client_errors) / queries`.
    pub availability: f64,
    /// Typed faults the dispatch layer observed during the phase.
    pub faults: u64,
    /// In-place transient retries during the phase.
    pub retries: u64,
    /// Next-best-site fallbacks during the phase.
    pub fallbacks: u64,
    /// Times the GPU site's breaker tripped during the phase.
    pub gpu_quarantines: u64,
    /// Wall-clock of the whole phase.
    pub wall_ms: f64,
    /// Per-query wall-clock latency percentiles (p99-under-faults).
    pub latency: LatencyPercentiles,
}

/// Result of the chaos experiment: the per-phase rows plus the headline
/// gate numbers (worst-phase availability, total wrong answers, how fast
/// the engine recovered from a permanent device loss).
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// One row per fault-plan phase, in execution order.
    pub phases: Vec<ChaosPhaseRow>,
    /// The minimum availability across every phase.
    pub availability: f64,
    /// Total bit-mismatches against the oracle (must be zero).
    pub wrong_answers: u64,
    /// Total client-visible errors (must be zero: every fault is absorbed).
    pub client_errors: u64,
    /// Wall-clock latency of the serial query during which the scheduled
    /// device loss fired — detection, breaker trip and re-route included,
    /// i.e. the time a client waited for the engine to recover.
    pub time_to_recover_ms: f64,
    /// The GPU breaker's position after the device-loss phase
    /// ("quarantined"/"half_open": the dead device stayed fenced off).
    pub final_gpu_state: &'static str,
}

fn chaos_engine(lineitem_rows: u64, fault_plan: Option<FaultPlan>) -> (Caldera, TableId) {
    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 8;
    // Device-resident data so placement genuinely prefers the GPU — the
    // site the fault plans then sabotage.
    config.olap_device.placement = DataPlacement::DeviceResident;
    config.snapshot_policy = SnapshotPolicy::Manual;
    config.olap_admission_in_flight = Some(8);
    config.fault_plan = fault_plan;
    let mut builder = Caldera::builder(config);
    let lineitem = tpch::load_lineitem(&mut builder, Layout::Dsm, lineitem_rows, 7).unwrap();
    (builder.start().unwrap(), lineitem)
}

/// Runs one fault-plan phase: `clients` threads issue `per_client` Q6 scans
/// each against a fresh engine under `fault_plan`, counting (not asserting)
/// client-visible errors and oracle mismatches so the caller can report and
/// gate on them.
fn chaos_phase(
    phase: &'static str,
    lineitem_rows: u64,
    fault_plan: Option<FaultPlan>,
    clients: u32,
    per_client: u32,
    oracle_bits: u64,
) -> (ChaosPhaseRow, caldera::HtapStats) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    use std::time::Instant;

    let (caldera, lineitem) = chaos_engine(lineitem_rows, fault_plan);
    let scan = q6();
    let caldera = Arc::new(caldera);
    let errors = Arc::new(AtomicU64::new(0));
    let wrong = Arc::new(AtomicU64::new(0));
    let hist = Arc::new(std::sync::Mutex::new(Histogram::new()));
    let barrier = Arc::new(Barrier::new(clients as usize + 1));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let caldera = Arc::clone(&caldera);
            let barrier = Arc::clone(&barrier);
            let errors = Arc::clone(&errors);
            let wrong = Arc::clone(&wrong);
            let hist = Arc::clone(&hist);
            let scan = scan.clone();
            std::thread::spawn(move || {
                let mut local = Histogram::new();
                barrier.wait();
                for _ in 0..per_client {
                    let started = Instant::now();
                    match caldera.run_olap(lineitem, &scan) {
                        Ok(out) => {
                            if out.value.to_bits() != oracle_bits {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    local.record(started.elapsed().as_secs_f64());
                }
                hist.lock().unwrap().merge(&local);
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let caldera = Arc::try_unwrap(caldera).unwrap_or_else(|_| panic!("all clients joined"));
    let stats = caldera.shutdown();
    let queries = u64::from(clients) * u64::from(per_client);
    let client_errors = errors.load(Ordering::Relaxed);
    let row = ChaosPhaseRow {
        phase,
        clients,
        queries,
        client_errors,
        wrong_answers: wrong.load(Ordering::Relaxed),
        availability: if queries > 0 { (queries - client_errors) as f64 / queries as f64 } else { 1.0 },
        faults: stats.resilience.faults,
        retries: stats.resilience.retries,
        fallbacks: stats.resilience.fallbacks,
        gpu_quarantines: stats
            .olap_sites
            .iter()
            .find(|s| s.target == OlapTarget::Gpu)
            .map_or(0, |s| s.health.quarantines),
        wall_ms,
        latency: LatencyPercentiles::from_secs_histogram(&hist.lock().unwrap()),
    };
    (row, stats)
}

/// The chaos experiment: the PR-9 concurrency harness under seeded fault
/// plans. Three phases against identical data — fault-free (the oracle and
/// the latency baseline), a transient-fault storm (retries must absorb it),
/// and a mid-stream permanent GPU loss (the breaker must quarantine the
/// dead device and re-route every query). Every successful answer is
/// bit-checked against the fault-free serial oracle; the summary carries
/// the availability/exactness gate numbers plus a serially measured
/// time-to-recover for the device loss.
pub fn fig_chaos(lineitem_rows: u64, clients: u32, per_client: u32) -> ChaosSummary {
    use std::time::Instant;

    // Serial oracle on a clean engine: the law for every phase below.
    let (clean, lineitem) = chaos_engine(lineitem_rows, None);
    let oracle_bits = clean.run_olap(lineitem, &q6()).unwrap().value.to_bits();
    clean.shutdown();

    let total_queries = u64::from(clients) * u64::from(per_client);
    let mut loss_plan = FaultPlan::transient_storm(0xC1DA05);
    // Kill the device roughly a third of the way through the stream, with
    // the storm still raging around it.
    loss_plan.device_loss_at =
        Some(DeviceLossPoint { site: "gpu".into(), device: 0, launch: (total_queries / 3).max(2) });

    let phases_spec: Vec<(&'static str, Option<FaultPlan>)> = vec![
        ("fault_free", None),
        ("transient_storm", Some(FaultPlan::transient_storm(0xC1DA))),
        ("device_loss", Some(loss_plan)),
    ];
    let mut phases = Vec::new();
    let mut final_gpu_state = "closed";
    for (phase, plan) in phases_spec {
        let (row, stats) = chaos_phase(phase, lineitem_rows, plan, clients, per_client, oracle_bits);
        if phase == "device_loss" {
            final_gpu_state = stats
                .olap_sites
                .iter()
                .find(|s| s.target == OlapTarget::Gpu)
                .map_or("closed", |s| s.health.state.name());
        }
        phases.push(row);
    }

    // Time-to-recover, measured serially so the number is attributable: one
    // client, a scheduled loss a few launches in, and the wall-clock of the
    // query that absorbs the loss (fault -> breaker trip -> re-route -> CPU
    // answer) is the recovery time a caller would observe.
    let mut serial_plan = FaultPlan::quiet(0x0C1DA);
    serial_plan.device_loss_at = Some(DeviceLossPoint { site: "gpu".into(), device: 0, launch: 4 });
    let (caldera, lineitem) = chaos_engine(lineitem_rows, Some(serial_plan));
    let scan = q6();
    let mut time_to_recover_ms = 0.0;
    for _ in 0..16 {
        let started = Instant::now();
        let out = caldera.run_olap(lineitem, &scan).unwrap();
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.value.to_bits(), oracle_bits, "the recovery query must stay exact");
        if time_to_recover_ms == 0.0 && caldera.stats().resilience.faults > 0 {
            time_to_recover_ms = elapsed_ms;
        }
    }
    caldera.shutdown();

    ChaosSummary {
        availability: phases.iter().map(|p| p.availability).fold(1.0, f64::min),
        wrong_answers: phases.iter().map(|p| p.wrong_answers).sum(),
        client_errors: phases.iter().map(|p| p.client_errors).sum(),
        time_to_recover_ms,
        final_gpu_state,
        phases,
    }
}

// ---------------------------------------------------------------------------
// Trace capture: the --trace-out artifact
// ---------------------------------------------------------------------------

/// Runs a brand-revenue join stream through the full engine with tracing
/// enabled and returns the Chrome trace-event JSON (Perfetto-loadable).
/// The stream shares one snapshot so the trace shows the cold dispatch
/// (cache misses, materialisation, hash build) followed by warm cache-hit
/// repeats — the shape `--trace-out` is meant to make visible.
pub fn capture_trace(lineitem_rows: u64, part_keys: u64, queries: u32) -> String {
    let mut config = CalderaConfig::with_workers(2);
    config.observability.tracing = true;
    config.snapshot_policy = SnapshotPolicy::EveryN { queries: 1_000 };
    let mut builder = Caldera::builder(config);
    let lineitem = tpch::load_lineitem(&mut builder, Layout::PAPER_PAX, lineitem_rows, 7).unwrap();
    let part = tpch::load_part(&mut builder, Layout::PAPER_PAX, part_keys, 11).unwrap();
    let caldera = builder.start().unwrap();
    let plan = tpch::brand_revenue_plan(30);
    for _ in 0..queries.max(1) {
        caldera.run_olap_plan(lineitem, Some(part), &plan).unwrap();
    }
    let json = caldera.chrome_trace_json();
    caldera.shutdown();
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_rows_in_generation_order() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].gpu, "GeForce 8800");
        assert_eq!(rows[4].interface, "NVLink");
    }

    #[test]
    fn hostperf_vectorized_and_cached_paths_beat_the_reference() {
        // Small scale to stay fast in CI; fig_hostperf itself asserts the
        // four code paths are bit-identical. The thresholds here are
        // deliberately looser than the full-scale acceptance figures
        // (>= 1.5x cold, >= 3x cached) to tolerate noisy shared runners.
        let s = fig_hostperf(60_000, 4_000, 4);
        assert_eq!(s.rows.len(), 2);
        // Wall-clock ratios are only meaningful in optimised builds; in
        // debug builds (tier-1 `cargo test`) the vectorized loops keep
        // their bounds checks and closure frames, so only the structural
        // and bit-identity guarantees are asserted there.
        #[cfg(not(debug_assertions))]
        {
            assert!(s.min_cold_speedup > 1.0, "vectorization must beat row-at-a-time: {:.2}x", s.min_cold_speedup);
            assert!(
                s.min_cached_speedup > 1.5,
                "the warm cache must amortise derivation: {:.2}x",
                s.min_cached_speedup
            );
            // Only a sanity bound on the raw-speed floor here: when
            // `cargo test --release` runs this alongside sibling tests on
            // a small core count, context-switch thrash flattens the SIMD
            // margin (it holds >= 1.9x in a dedicated process at this
            // scale). The full >= 1.2x acceptance gate runs in the
            // hostperf smoke binary, which CI executes serially.
            assert!(
                s.min_simd_speedup > 0.6,
                "the SIMD cold path must not lose badly to the scalar batch path: {:.2}x",
                s.min_simd_speedup
            );
            for r in &s.rows {
                assert!(
                    r.cached_speedup >= r.cold_speedup * 0.8,
                    "{}: caching must not materially lose to cold",
                    r.workload
                );
            }
        }
        // The warm cache served every repeat from its derived state.
        assert_eq!(s.cache.misses(), 3, "one scan materialisation + one probe materialisation + one hash build");
        assert!(s.cache.hits() > 0);
        // An unbounded cache still reports its occupancy (and no budget,
        // no evictions).
        assert!(s.cache.occupancy_bytes > 0, "the warm cache holds derived state");
        assert_eq!(s.cache.budget_bytes, None);
        assert_eq!(s.cache.evictions, 0);
    }

    #[test]
    fn fig1_shape_matches_the_paper() {
        let rows = fig1(256 << 20);
        let get = |gpu: &str, mode: &str| {
            rows.iter().find(|r| r.gpu.contains(gpu) && r.mode == mode).map(|r| r.total_secs).unwrap()
        };
        // Fermi: UVA slower than memcpy. Maxwell: UVA faster than memcpy,
        // UM fastest overall.
        assert!(get("Fermi", "uva") > get("Fermi", "memcpy"));
        assert!(get("Maxwell", "uva") < get("Maxwell", "memcpy"));
        assert!(get("Maxwell", "um") < get("Maxwell", "uva"));
        assert!(get("Maxwell", "memcpy") < get("Fermi", "memcpy"));
    }

    #[test]
    fn fig4_gpu_beats_cpu_and_monet_beats_dbmsc() {
        let rows = fig4(60_000);
        let get = |name: &str| rows.iter().find(|r| r.engine.contains(name)).unwrap();
        let caldera = get("Caldera");
        let monet = get("MonetDB");
        let dbmsc = get("DBMS-C");
        assert!(caldera.seconds < monet.seconds);
        assert!(monet.seconds <= dbmsc.seconds);
        // All engines agree on the revenue.
        assert!((caldera.revenue - monet.revenue).abs() < 1e-6);
        assert!((caldera.revenue - dbmsc.revenue).abs() < 1e-6);
    }

    #[test]
    fn fig_placement_shows_the_cpu_gpu_crossover() {
        let rows = fig_placement(&[5_000, 120_000], 24);
        let get =
            |placement: &str, n: u64| rows.iter().find(|r| r.placement == placement && r.lineitem_rows == n).unwrap();
        // Tiny scans route to the CPU regardless of residency: the fixed GPU
        // dispatch cost dominates at this size.
        assert_eq!(get("host-uva", 5_000).chosen, "cpu");
        assert_eq!(get("device-resident", 5_000).chosen, "cpu");
        // Large scans route to the GPU: device bandwidth (resident) or the
        // interconnect (UVA) beats per-tuple-bound CPU execution.
        assert_eq!(get("host-uva", 120_000).chosen, "gpu");
        assert_eq!(get("device-resident", 120_000).chosen, "gpu");
        // The routing decisions agree with the sites' actual simulated times.
        for r in &rows {
            let faster = if r.cpu_secs < r.gpu_secs { "cpu" } else { "gpu" };
            assert_eq!(r.chosen, faster, "{r:?}");
        }
    }

    #[test]
    fn fig_operators_routes_join_plans_differently_than_scans() {
        let rows = fig_operators(60_000, 2_000, 24);
        assert_eq!(rows.len(), 8);
        // Host-resident data: streaming the scan favours the GPU, but the
        // join's random probes flip every plan configuration to the CPU —
        // the acceptance contrast of the operator subsystem.
        for r in rows.iter().filter(|r| r.placement == "host-uva") {
            assert_eq!(r.scan_chosen, "gpu", "{r:?}");
            assert_eq!(r.plan_chosen, "cpu", "{r:?}");
            assert!(r.cpu_secs < r.gpu_secs, "routing must agree with the measured site times: {r:?}");
        }
        // Device-resident hash state caps the probe waste: plans stay where
        // the scan goes.
        for r in rows.iter().filter(|r| r.placement == "device-resident") {
            assert_eq!(r.scan_chosen, "gpu", "{r:?}");
            assert_eq!(r.plan_chosen, "gpu", "{r:?}");
        }
        // The sweep knobs act: wider size range → more joined rows; partkey
        // grouping → more groups.
        let get = |placement: &str, size: i32, group: &str| {
            rows.iter().find(|r| r.placement == placement && r.max_size == size && r.group_by == group).unwrap()
        };
        assert!(get("host-uva", 50, "brand").joined_rows > get("host-uva", 12, "brand").joined_rows);
        assert!(get("host-uva", 50, "partkey").groups > get("host-uva", 50, "brand").groups);
        // Every group is one of the 25 brands (empty brands may drop out at
        // this scale).
        assert!(get("host-uva", 50, "brand").groups <= tpch::PART_BRANDS);
        assert!(get("host-uva", 50, "brand").groups > 1);
    }

    #[test]
    fn fig_multigpu_routes_a_workload_only_the_multi_gpu_site_wins() {
        let rows = fig_multigpu(&[5_000, 150_000], 24);
        assert_eq!(rows.len(), 12);
        // Acceptance: at least one workload routes to the multi-GPU site and
        // neither the CPU nor the single GPU beats it there.
        let winner =
            rows.iter().find(|r| r.chosen == "multi-gpu").expect("some workload must route to the multi-GPU site");
        assert!(
            winner.multi_gpu_ms < winner.cpu_ms && winner.multi_gpu_ms < winner.gpu_ms,
            "the routed multi-GPU workload must be one neither other site wins: {winner:?}"
        );
        // Tiny scans keep routing to the CPU even with the mix available —
        // the argmin did not degenerate to "always multi".
        assert!(rows.iter().any(|r| r.chosen == "cpu"), "{rows:?}");
        // Every large device-resident homogeneous-pair configuration picks
        // the mix: halving the critical shard beats one card outright.
        for r in rows
            .iter()
            .filter(|r| r.mix == "2x GTX 980" && r.placement == "device-resident" && r.lineitem_rows == 150_000)
        {
            assert_eq!(r.chosen, "multi-gpu", "{r:?}");
            assert!(r.multi_gpu_ms < r.gpu_ms, "{r:?}");
        }
        // The fast+slow mix still beats the lone GTX 980 on resident data
        // (even its slow-generation shard streams concurrently); that the
        // slow card *bounds* the mix relative to a homogeneous fast pair is
        // pinned by the olap unit tests, where both mixes are constructed.
        let mixed = rows
            .iter()
            .find(|r| r.mix == "980 Ti + GTX 580" && r.placement == "device-resident" && r.lineitem_rows == 150_000)
            .unwrap();
        assert!(mixed.multi_gpu_ms < mixed.gpu_ms, "{mixed:?}");
    }

    #[test]
    fn fig_calibration_converges_to_the_oracle_placement() {
        let s = fig_calibration(120, 24);
        // The very first query (3k rows) misroutes: the 5x-low dispatch
        // overhead and 2x-high per-tuple cost both push small scans to the
        // GPU while the measured oracle is the CPU.
        assert!(!s.rows[0].agree, "seed constants must misplace the first small query: {:?}", s.rows[0]);
        assert_eq!(s.rows[0].chosen, "gpu");
        assert_eq!(s.rows[0].oracle, "cpu");
        // Acceptance: >= 90% oracle agreement after the first 50 observations
        // and per-site steady-state prediction error under 10%.
        assert!(s.agreement_steady >= 0.9, "steady agreement {}", s.agreement_steady);
        assert!(s.cpu_mean_rel_error < 0.10, "cpu error {}", s.cpu_mean_rel_error);
        assert!(s.gpu_mean_rel_error < 0.10, "gpu error {}", s.gpu_mean_rel_error);
        // The model moved from the wrong seeds toward the true constants.
        assert!(
            (s.calibrated_model.cpu_per_tuple_ns - 93.0).abs() < (s.initial_model.cpu_per_tuple_ns - 93.0).abs(),
            "per-tuple: {} -> {}",
            s.initial_model.cpu_per_tuple_ns,
            s.calibrated_model.cpu_per_tuple_ns
        );
        assert!(
            s.calibrated_model.gpu_dispatch_overhead_secs > s.initial_model.gpu_dispatch_overhead_secs,
            "dispatch overhead must rise from its 5x-low seed"
        );
    }

    #[test]
    fn fig10_nsm_is_slowest_and_dsm_pax_close() {
        let rows = fig10(30_000, &[1, 16]);
        let get = |layout: &str, n: usize| {
            rows.iter().find(|r| r.layout == layout && r.attributes == n).map(|r| r.seconds).unwrap()
        };
        assert!(get("NSM", 1) > get("DSM", 1));
        assert!(get("NSM", 1) > get("PAX", 1));
        let ratio = get("PAX", 16) / get("DSM", 16);
        assert!((0.9..1.25).contains(&ratio), "PAX/DSM {ratio}");
        // All layouts agree on the sums.
        let sums: Vec<f64> = rows.iter().filter(|r| r.attributes == 16).map(|r| r.sum).collect();
        assert!(sums.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
    }

    #[test]
    fn fig11_gap_collapses_when_device_resident() {
        let rows = fig11(30_000);
        let get = |gpu: &str, layout: &str| {
            rows.iter().find(|r| r.gpu.contains(gpu) && r.layout == layout).map(|r| r.seconds).unwrap()
        };
        // Maxwell is faster than Fermi for every layout.
        for layout in ["DSM", "PAX", "NSM"] {
            assert!(get("Maxwell", layout) < get("Fermi", layout), "{layout}");
        }
        // NSM penalty is bounded (2-4x) rather than the >10x of the UVA case.
        let fermi_ratio = get("Fermi", "NSM") / get("Fermi", "DSM");
        let maxwell_ratio = get("Maxwell", "NSM") / get("Maxwell", "DSM");
        assert!(fermi_ratio < 4.5, "fermi NSM/DSM {fermi_ratio}");
        assert!(maxwell_ratio < 3.0, "maxwell NSM/DSM {maxwell_ratio}");
        assert!(maxwell_ratio <= fermi_ratio + 0.2);
    }

    #[test]
    fn fig_chaos_absorbs_faults_without_wrong_answers() {
        // Small scale to stay fast in tier-1; the full-scale availability
        // and exactness gates run in the release-mode chaos smoke step.
        let s = fig_chaos(30_000, 4, 8);
        assert_eq!(s.phases.len(), 3);
        assert_eq!(s.wrong_answers, 0, "a fault path changed an answer");
        assert_eq!(s.client_errors, 0, "the resilience ladder leaked an error to a client");
        assert!((s.availability - 1.0).abs() < f64::EPSILON);
        let storm = s.phases.iter().find(|p| p.phase == "transient_storm").unwrap();
        assert!(storm.faults > 0, "the storm must actually fire");
        let loss = s.phases.iter().find(|p| p.phase == "device_loss").unwrap();
        assert!(loss.gpu_quarantines >= 1, "the device loss must trip the breaker");
        assert!(loss.fallbacks >= 1, "queries must re-route off the dead device");
        assert_ne!(s.final_gpu_state, "closed", "a still-dead device must stay fenced off");
        assert!(s.time_to_recover_ms > 0.0, "the serial loss run must measure a recovery");
        let clean = s.phases.iter().find(|p| p.phase == "fault_free").unwrap();
        assert_eq!(clean.faults, 0);
        assert_eq!(clean.retries, 0);
        assert_eq!(clean.fallbacks, 0);
    }
}
