//! Shared primitives for the Caldera H2TAP engine.
//!
//! This crate holds the small, dependency-free building blocks every other
//! crate in the workspace uses:
//!
//! * [`value`] — scalar values and column types,
//! * [`breakdown`] — per-query execution-time breakdowns (cost-model terms),
//! * [`schema`] — table schemas and attribute descriptors,
//! * [`rid`] — record, partition and table identifiers,
//! * [`epoch`] — epoch numbers used by the shadow-copy snapshot mechanism,
//! * [`query`] — the scan-and-aggregate query IR,
//! * [`plan`] — the relational logical plan (filter / hash join / group-by),
//! * [`simtime`] — the simulated-time type used by the hardware models,
//! * [`stats`] — streaming statistics (mean/min/max/percentiles),
//! * [`rng`] — a small deterministic PRNG plus a Zipfian generator,
//! * [`error`] — the shared error type.

pub mod breakdown;
pub mod epoch;
pub mod error;
pub mod plan;
pub mod query;
pub mod rid;
pub mod rng;
pub mod schema;
pub mod simtime;
pub mod stats;
pub mod value;

pub use breakdown::ExecBreakdown;
pub use epoch::Epoch;
pub use error::{FaultKind, H2Error, Result};
pub use plan::{chunk_shard, GroupRow, JoinSpec, OlapPlan, PlanColumn, HASH_ENTRY_BYTES, PLAN_CHUNK_ROWS};
pub use query::{AggExpr, Predicate, ScanAggQuery};
pub use rid::{PartitionId, RecordId, TableId};
pub use schema::{AttrType, Attribute, Schema};
pub use simtime::SimDuration;
pub use stats::{Histogram, PlanCacheCounters, PlanCacheGauges, PlanCacheStats};
pub use value::Value;
