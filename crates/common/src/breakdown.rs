//! Per-query execution-time breakdown reported by execution sites.
//!
//! The placement cost model is a sum of a bandwidth-bound streaming term, a
//! compute (per-tuple) term and a fixed dispatch overhead. For the placement
//! feedback loop to recalibrate those constants *individually*, a site must
//! report not only its total simulated time but how that time splits across
//! the same three terms — otherwise one term's error is unattributable and
//! the estimator can only rescale the whole prediction.

use serde::{Deserialize, Serialize};

/// How a site's simulated execution time decomposes into the cost model's
/// three linear terms. All fields are seconds in the simulated-hardware frame
/// of reference (the same frame `OlapOutcome::time` uses).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecBreakdown {
    /// Bandwidth-bound data movement: column streaming, interconnect
    /// transfers, random-access (cache-line / transaction) traffic.
    pub stream_secs: f64,
    /// Arithmetic / per-tuple processing work.
    pub compute_secs: f64,
    /// Fixed per-dispatch overheads that neither scale with bytes nor with
    /// rows (kernel launch latency, registration, result read-back setup).
    pub overhead_secs: f64,
}

impl ExecBreakdown {
    /// A breakdown with the given terms.
    pub fn new(stream_secs: f64, compute_secs: f64, overhead_secs: f64) -> Self {
        Self { stream_secs, compute_secs, overhead_secs }
    }

    /// Sum of all three terms. Sites whose terms overlap (e.g. compute hidden
    /// behind memory stalls) may report a total below their actual `time`;
    /// the calibrator only relies on the per-term magnitudes.
    pub fn total_secs(&self) -> f64 {
        self.stream_secs + self.compute_secs + self.overhead_secs
    }

    /// Accumulates another breakdown (used by multi-kernel executions).
    pub fn accumulate(&mut self, other: &ExecBreakdown) {
        self.stream_secs += other.stream_secs;
        self.compute_secs += other.compute_secs;
        self.overhead_secs += other.overhead_secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = ExecBreakdown::new(1.0, 2.0, 0.5);
        assert_eq!(a.total_secs(), 3.5);
        a.accumulate(&ExecBreakdown::new(0.5, 0.5, 0.25));
        assert_eq!(a, ExecBreakdown::new(1.5, 2.5, 0.75));
    }
}
