//! Streaming statistics used by the experiment harness, the scheduler and
//! the observability layer.
//!
//! [`Summary`] covers the paper's mean/min/max series (Figures 5-9);
//! [`Histogram`] adds the log-bucketed percentile view (p50/p95/p99/max)
//! that latency reporting and the `h2tap-obs` metrics registry build on —
//! constant memory, mergeable across threads, with a bounded relative
//! quantile error set by the bucket growth factor.

use serde::{Deserialize, Serialize};

/// Running summary of a series of `f64` observations.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Population standard deviation, or `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.mean().map(|m| {
            let var = (self.sum_sq / self.count as f64 - m * m).max(0.0);
            var.sqrt()
        })
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Buckets of [`Histogram`]: bucket 0 holds everything at or below
/// [`HIST_MIN_VALUE`], the rest grow geometrically by [`HIST_GROWTH`].
const HIST_BUCKETS: usize = 512;

/// Smallest distinguishable observation (1 ns when observations are seconds).
const HIST_MIN_VALUE: f64 = 1e-9;

/// Per-bucket growth factor: 2^(1/8), i.e. eight buckets per doubling. The
/// geometric-midpoint representative then carries a worst-case relative
/// error of `sqrt(2^(1/8)) - 1` (~4.4%).
const HIST_GROWTH: f64 = 1.090_507_732_665_257_7;

/// Log-bucketed histogram of non-negative `f64` observations (latencies in
/// seconds, byte counts, ...).
///
/// Fixed memory (512 buckets, eight per doubling from 1 ns up), O(1)
/// `record`, exact count/sum/min/max, and quantiles within ~4.5% relative
/// error of an exact sorted oracle. Two histograms recorded on different
/// threads [`merge`](Histogram::merge) losslessly, which is what makes the
/// percentiles reported by `HtapStats::metrics` safe to aggregate.
/// Non-finite and negative observations are ignored rather than poisoning
/// every later quantile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { counts: vec![0; HIST_BUCKETS], count: 0, sum: 0.0, min: None, max: None }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(x: f64) -> usize {
        if x <= HIST_MIN_VALUE {
            return 0;
        }
        let idx = 1 + ((x / HIST_MIN_VALUE).ln() / HIST_GROWTH.ln()).floor() as usize;
        idx.min(HIST_BUCKETS - 1)
    }

    /// Lower bound of bucket `idx` (the upper bound of bucket `idx - 1`).
    fn bucket_floor(idx: usize) -> f64 {
        if idx == 0 {
            0.0
        } else {
            HIST_MIN_VALUE * HIST_GROWTH.powi(idx as i32 - 1)
        }
    }

    /// Adds one observation; non-finite or negative values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        self.counts[Self::bucket_of(x)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded observation (exact), or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest recorded observation (exact), or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`), or `None` when empty. Within a bucket
    /// the geometric midpoint stands in for the true value, clamped to the
    /// exact observed `[min, max]`, so single-value series report exactly and
    /// everything else stays within the bucket's relative-error bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = Self::bucket_floor(idx);
                let hi = Self::bucket_floor(idx + 1);
                let mid = if idx == 0 { HIST_MIN_VALUE } else { (lo * hi).sqrt() };
                let (min, max) = (self.min.unwrap_or(mid), self.max.unwrap_or(mid));
                return Some(mid.clamp(min, max));
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one (lossless: bucket counts add,
    /// extrema combine), making per-thread recording safe to aggregate.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Hit/miss counters of the snapshot-keyed plan-data cache (materialised
/// columns + zonemap stats, and join hash tables) shared by the execution
/// sites. Reported through the engine's `HtapStats` so workloads can see how
/// much of the shared OLAP data path they amortise across queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Column-materialisation requests answered from the cache.
    pub column_hits: u64,
    /// Column-materialisation requests that had to materialise.
    pub column_misses: u64,
    /// Join-hash-table requests answered from the cache.
    pub hash_hits: u64,
    /// Join-hash-table requests that had to build.
    pub hash_misses: u64,
    /// Entries evicted because a newer snapshot epoch superseded them (or
    /// the whole cache was invalidated on a snapshot refresh).
    pub invalidations: u64,
    /// Entries evicted by the byte-budget LRU policy (distinct from
    /// `invalidations`, which counts correctness-driven drops).
    pub evictions: u64,
    /// Shared-scan attaches: requests that found the same derivation already
    /// *in flight* on another thread and waited for its result instead of
    /// racing to build a duplicate. Zero under serial workloads; under a
    /// concurrent same-table mix this counts the de-duplicated work.
    pub shared_scan_attaches: u64,
    /// Bytes currently held by cached entries. **A point-in-time gauge**,
    /// sampled when the stats are read: it can go *down* between two samples
    /// (eviction, invalidation) while every other field in this struct is a
    /// monotonic counter. Metric exporters must report it under gauge
    /// semantics — use [`PlanCacheStats::gauges`] /
    /// [`PlanCacheStats::counters`] to keep the two families apart.
    pub occupancy_bytes: u64,
    /// The configured byte budget, or `None` when the cache is unbounded.
    /// A configuration gauge, like `occupancy_bytes`.
    pub budget_bytes: Option<u64>,
}

/// The monotonic-counter half of [`PlanCacheStats`]: every field only ever
/// increases over the cache's lifetime, so exporters may report deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheCounters {
    /// Column-materialisation requests answered from the cache.
    pub column_hits: u64,
    /// Column-materialisation requests that had to materialise.
    pub column_misses: u64,
    /// Join-hash-table requests answered from the cache.
    pub hash_hits: u64,
    /// Join-hash-table requests that had to build.
    pub hash_misses: u64,
    /// Correctness-driven drops (snapshot superseded / cache invalidated).
    pub invalidations: u64,
    /// Byte-budget LRU evictions.
    pub evictions: u64,
    /// Requests that attached to an in-flight derivation (shared scans).
    pub shared_scan_attaches: u64,
}

/// The point-in-time-gauge half of [`PlanCacheStats`]: values sampled at
/// read time that may move in either direction between samples. Never
/// accumulate these as if they were counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheGauges {
    /// Bytes held by cached entries at sampling time.
    pub occupancy_bytes: u64,
    /// The configured byte budget, or `None` when unbounded.
    pub budget_bytes: Option<u64>,
}

impl PlanCacheStats {
    /// Total requests answered from the cache.
    pub fn hits(&self) -> u64 {
        self.column_hits + self.hash_hits
    }

    /// Total requests that had to recompute.
    pub fn misses(&self) -> u64 {
        self.column_misses + self.hash_misses
    }

    /// Fraction of requests answered from the cache, or `None` before any
    /// request was made.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits() + self.misses();
        (total > 0).then(|| self.hits() as f64 / total as f64)
    }

    /// The monotonic counters only — what a cumulative metric exporter may
    /// safely diff across samples.
    pub fn counters(&self) -> PlanCacheCounters {
        PlanCacheCounters {
            column_hits: self.column_hits,
            column_misses: self.column_misses,
            hash_hits: self.hash_hits,
            hash_misses: self.hash_misses,
            invalidations: self.invalidations,
            evictions: self.evictions,
            shared_scan_attaches: self.shared_scan_attaches,
        }
    }

    /// The point-in-time gauges only (occupancy, budget) — sampled at read
    /// time, free to decrease between samples.
    pub fn gauges(&self) -> PlanCacheGauges {
        PlanCacheGauges { occupancy_bytes: self.occupancy_bytes, budget_bytes: self.budget_bytes }
    }
}

/// Computes throughput in operations per second from a count and a wall-clock
/// duration, returning 0 for zero durations.
pub fn throughput(ops: u64, elapsed: std::time::Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        ops as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_has_no_stats() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.std_dev().is_none());
    }

    #[test]
    fn mean_min_max() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 6.0] {
            s.record(x);
        }
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 12.0);
    }

    #[test]
    fn std_dev_of_constant_series_is_zero() {
        let mut s = Summary::new();
        for _ in 0..10 {
            s.record(5.0);
        }
        assert!(s.std_dev().unwrap() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(3.0);
        let mut b = Summary::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.max(), Some(5.0));
        // merging into an empty summary keeps the other's extrema
        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty.min(), Some(1.0));
    }

    #[test]
    fn throughput_handles_zero_duration() {
        assert_eq!(throughput(100, std::time::Duration::ZERO), 0.0);
        let t = throughput(100, std::time::Duration::from_secs(2));
        assert!((t - 50.0).abs() < 1e-9);
    }

    /// Exact quantile of a sorted sample, matching the histogram's
    /// ceil-rank convention.
    fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn assert_quantiles_close(values: &[f64], tolerance: f64) {
        let mut h = Histogram::new();
        let mut sorted = values.to_vec();
        for &v in values {
            h.record(v);
        }
        sorted.sort_by(f64::total_cmp);
        for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let approx = h.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact.abs().max(1e-12);
            assert!(rel <= tolerance, "q={q}: histogram {approx} vs oracle {exact} (rel {rel:.4})");
        }
    }

    #[test]
    fn histogram_quantiles_track_a_uniform_oracle() {
        // Uniform over three decades of latency.
        let values: Vec<f64> = (1..=2000).map(|i| 1e-5 + i as f64 * (1e-2 - 1e-5) / 2000.0).collect();
        assert_quantiles_close(&values, 0.05);
    }

    #[test]
    fn histogram_quantiles_track_a_bimodal_oracle() {
        // Two tight modes three orders of magnitude apart (cache hit vs
        // cold derivation) — the shape percentile reporting exists for.
        let mut values = Vec::new();
        for i in 0..900 {
            values.push(2e-6 * (1.0 + (i % 10) as f64 * 0.01));
        }
        for i in 0..100 {
            values.push(3e-3 * (1.0 + (i % 10) as f64 * 0.01));
        }
        assert_quantiles_close(&values, 0.05);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        // p50 sits in the fast mode, p95+ in the slow mode.
        assert!(h.p50().unwrap() < 1e-4);
        assert!(h.p95().unwrap() > 1e-3);
    }

    #[test]
    fn histogram_single_value_series_is_exact() {
        let mut h = Histogram::new();
        for _ in 0..57 {
            h.record(0.012_345);
        }
        // min==max clamping makes every quantile exact, not just close.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(0.012_345));
        }
        assert_eq!(h.max(), Some(0.012_345));
        assert_eq!(h.count(), 57);
    }

    #[test]
    fn histogram_empty_has_none_semantics() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
        assert!(h.p50().is_none());
        assert!(h.p95().is_none());
        assert!(h.p99().is_none());
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.mean().is_none());
    }

    #[test]
    fn histogram_ignores_non_finite_and_negative() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
        h.record(0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(0.5));
    }

    #[test]
    fn histogram_merge_is_associative_and_lossless() {
        let make = |seed: u64, n: u64| {
            let mut h = Histogram::new();
            for i in 0..n {
                // Deterministic pseudo-random spread across decades.
                let x = ((seed * 2_654_435_761 + i * 40_503) % 100_000) as f64 * 1e-7 + 1e-6;
                h.record(x);
            }
            h
        };
        let (a, b, c) = (make(1, 400), make(2, 300), make(3, 500));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left.counts, right.counts, "bucket counts must merge associatively");
        assert_eq!(left.count(), right.count());
        assert_eq!(left.min(), right.min());
        assert_eq!(left.max(), right.max());
        assert!((left.sum() - right.sum()).abs() < 1e-9);
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(left.quantile(q), right.quantile(q));
        }
        // Merging equals recording everything into one histogram.
        let mut all = make(1, 400);
        all.merge(&make(2, 300));
        all.merge(&make(3, 500));
        assert_eq!(all.counts, left.counts);
    }

    #[test]
    fn plan_cache_stats_split_into_counters_and_gauges() {
        let stats = PlanCacheStats {
            column_hits: 5,
            column_misses: 2,
            hash_hits: 3,
            hash_misses: 1,
            invalidations: 4,
            evictions: 6,
            shared_scan_attaches: 7,
            occupancy_bytes: 4096,
            budget_bytes: Some(8192),
        };
        let c = stats.counters();
        assert_eq!(
            c,
            PlanCacheCounters {
                column_hits: 5,
                column_misses: 2,
                hash_hits: 3,
                hash_misses: 1,
                invalidations: 4,
                evictions: 6,
                shared_scan_attaches: 7,
            }
        );
        let g = stats.gauges();
        assert_eq!(g, PlanCacheGauges { occupancy_bytes: 4096, budget_bytes: Some(8192) });
        // The split is exhaustive: every field lands in exactly one family.
        let rebuilt = PlanCacheStats {
            column_hits: c.column_hits,
            column_misses: c.column_misses,
            hash_hits: c.hash_hits,
            hash_misses: c.hash_misses,
            invalidations: c.invalidations,
            evictions: c.evictions,
            shared_scan_attaches: c.shared_scan_attaches,
            occupancy_bytes: g.occupancy_bytes,
            budget_bytes: g.budget_bytes,
        };
        assert_eq!(rebuilt, stats);
    }
}
