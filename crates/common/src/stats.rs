//! Streaming statistics used by the experiment harness and the scheduler.
//!
//! The evaluation section reports averages, minima and maxima of OLAP
//! response times (Figure 6) and throughput series (Figures 5, 7, 8, 9), so a
//! small reservoir-free summary type is enough.

use serde::{Deserialize, Serialize};

/// Running summary of a series of `f64` observations.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Population standard deviation, or `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.mean().map(|m| {
            let var = (self.sum_sq / self.count as f64 - m * m).max(0.0);
            var.sqrt()
        })
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Hit/miss counters of the snapshot-keyed plan-data cache (materialised
/// columns + zonemap stats, and join hash tables) shared by the execution
/// sites. Reported through the engine's `HtapStats` so workloads can see how
/// much of the shared OLAP data path they amortise across queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Column-materialisation requests answered from the cache.
    pub column_hits: u64,
    /// Column-materialisation requests that had to materialise.
    pub column_misses: u64,
    /// Join-hash-table requests answered from the cache.
    pub hash_hits: u64,
    /// Join-hash-table requests that had to build.
    pub hash_misses: u64,
    /// Entries evicted because a newer snapshot epoch superseded them (or
    /// the whole cache was invalidated on a snapshot refresh).
    pub invalidations: u64,
    /// Entries evicted by the byte-budget LRU policy (distinct from
    /// `invalidations`, which counts correctness-driven drops).
    pub evictions: u64,
    /// Bytes currently held by cached entries (a gauge sampled when the
    /// stats are read, not a counter).
    pub occupancy_bytes: u64,
    /// The configured byte budget, or `None` when the cache is unbounded.
    pub budget_bytes: Option<u64>,
}

impl PlanCacheStats {
    /// Total requests answered from the cache.
    pub fn hits(&self) -> u64 {
        self.column_hits + self.hash_hits
    }

    /// Total requests that had to recompute.
    pub fn misses(&self) -> u64 {
        self.column_misses + self.hash_misses
    }

    /// Fraction of requests answered from the cache, or `None` before any
    /// request was made.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits() + self.misses();
        (total > 0).then(|| self.hits() as f64 / total as f64)
    }
}

/// Computes throughput in operations per second from a count and a wall-clock
/// duration, returning 0 for zero durations.
pub fn throughput(ops: u64, elapsed: std::time::Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        ops as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_has_no_stats() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.std_dev().is_none());
    }

    #[test]
    fn mean_min_max() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 6.0] {
            s.record(x);
        }
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 12.0);
    }

    #[test]
    fn std_dev_of_constant_series_is_zero() {
        let mut s = Summary::new();
        for _ in 0..10 {
            s.record(5.0);
        }
        assert!(s.std_dev().unwrap() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(3.0);
        let mut b = Summary::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.max(), Some(5.0));
        // merging into an empty summary keeps the other's extrema
        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty.min(), Some(1.0));
    }

    #[test]
    fn throughput_handles_zero_duration() {
        assert_eq!(throughput(100, std::time::Duration::ZERO), 0.0);
        let t = throughput(100, std::time::Duration::from_secs(2));
        assert!((t - 50.0).abs() < 1e-9);
    }
}
