//! The relational logical plan: scan → filter → hash join → group-by.
//!
//! [`crate::ScanAggQuery`] covers the paper's evaluation (one filtered
//! scan-and-aggregate), but the scheduler argument of the paper only bites
//! when queries have *non-streaming* access patterns: "the scheduler can
//! combine dynamic run-time information … to decide if a given analytical
//! query should be executed on CPU or GPU cores". [`OlapPlan`] is the
//! smallest IR that exercises that: a filtered scan of a probe (fact) table,
//! an optional hash join against a second build (dimension) table, and an
//! optional group-by with per-group aggregates. Hash-table probes are
//! data-dependent random accesses — exactly the pattern where CPU caches and
//! GPU coalescing behave differently, so placement stops degenerating to a
//! bandwidth ratio.
//!
//! Execution sites must produce **byte-identical** results for the same plan
//! over the same snapshot. Floating-point addition is not associative, so the
//! evaluation order is part of the IR contract: rows are processed in storage
//! order within fixed chunks of [`PLAN_CHUNK_ROWS`] rows, per-chunk partial
//! aggregates are merged in ascending chunk order, and groups are emitted in
//! ascending order of their raw 64-bit key cell.

use crate::query::{AggExpr, Predicate};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Rows per execution chunk. Part of the IR contract: every execution site
/// accumulates per-chunk partial aggregates over chunks of exactly this many
/// rows (in storage order) and merges them in ascending chunk order, which is
/// what makes f64 aggregates byte-identical across sites regardless of how
/// the chunks were scheduled (CPU thread pool, GPU thread blocks).
pub const PLAN_CHUNK_ROWS: usize = 64 * 1024;

/// Bytes of one hash-table entry (64-bit key plus 64-bit payload). Shared by
/// the execution sites (which size their simulated hash tables with it) and
/// the placement heuristic (which uses it to estimate probe-side random
/// traffic and build-side footprint).
pub const HASH_ENTRY_BYTES: u64 = 16;

/// The shard a chunk belongs to when a table's [`PLAN_CHUNK_ROWS`] chunks are
/// spread across `shards` execution units (the devices of a multi-GPU site):
/// round-robin in ascending chunk order. Part of the IR contract alongside
/// the chunk size — the assignment is a *partition* (every chunk lands on
/// exactly one shard, shards are disjoint, their union covers the table) and
/// it never changes the merge order: partials always merge in ascending chunk
/// index regardless of which shard (or device, or thread) produced them, so
/// sharding cannot perturb a single bit of the f64 aggregates.
pub const fn chunk_shard(chunk: usize, shards: usize) -> usize {
    if shards == 0 {
        0
    } else {
        chunk % shards
    }
}

/// The side of a plan a column reference points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanColumn {
    /// Attribute of the probe (fact) table.
    Probe(usize),
    /// Attribute of the build (dimension) table; requires a join.
    Build(usize),
}

/// An equi-join of the probe table against a hash table built from a second
/// registered table. Join semantics are primary-key (FK → PK): build keys
/// must be unique among rows surviving `build_predicates`; a probe row joins
/// with at most one build row and is dropped when no build row matches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// Attribute of the probe table matched against the build key.
    pub probe_column: usize,
    /// Attribute of the build table serving as the (unique) join key.
    pub build_key: usize,
    /// Conjunctive range predicates applied to build rows before they are
    /// inserted into the hash table (dimension filtering — this is what makes
    /// the join selective).
    pub build_predicates: Vec<Predicate>,
}

/// A filtered scan with an optional hash join and an optional group-by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlapPlan {
    /// Conjunctive range predicates over the probe table.
    pub predicates: Vec<Predicate>,
    /// Optional hash join against the build table.
    pub join: Option<JoinSpec>,
    /// Optional group-by key. `None` produces a single global group (key 0).
    /// A `Build` key requires `join` to be present.
    pub group_by: Option<PlanColumn>,
    /// Aggregates computed per group over probe-table columns, in output
    /// order.
    pub aggregates: Vec<AggExpr>,
}

impl OlapPlan {
    /// A plan equivalent to a [`crate::ScanAggQuery`]: filtered scan, no
    /// join, one global aggregate.
    pub fn scan(query: &crate::ScanAggQuery) -> Self {
        Self {
            predicates: query.predicates.clone(),
            join: None,
            group_by: None,
            aggregates: vec![query.aggregate.clone()],
        }
    }

    /// Whether the plan is structurally valid: a `Build` group key or any
    /// build predicate requires a join, and at least one aggregate must be
    /// present.
    pub fn validate(&self) -> Result<(), String> {
        if self.aggregates.is_empty() {
            return Err("plan has no aggregates".into());
        }
        if matches!(self.group_by, Some(PlanColumn::Build(_))) && self.join.is_none() {
            return Err("group-by on the build side requires a join".into());
        }
        Ok(())
    }

    /// Probe-table attribute indexes the plan touches (predicates, join probe
    /// column, probe-side group key, aggregates), deduplicated and sorted.
    pub fn probe_columns_accessed(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self
            .predicates
            .iter()
            .map(|p| p.column)
            .chain(self.join.iter().map(|j| j.probe_column))
            .chain(self.group_by.iter().filter_map(|g| match g {
                PlanColumn::Probe(c) => Some(*c),
                PlanColumn::Build(_) => None,
            }))
            .chain(self.aggregates.iter().flat_map(|a| a.columns()))
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Build-table attribute indexes the plan touches (join key, build
    /// predicates, build-side group key), deduplicated and sorted. Empty when
    /// the plan has no join.
    pub fn build_columns_accessed(&self) -> Vec<usize> {
        let Some(join) = &self.join else { return Vec::new() };
        let mut cols: Vec<usize> = std::iter::once(join.build_key)
            .chain(join.build_predicates.iter().map(|p| p.column))
            .chain(self.group_by.iter().filter_map(|g| match g {
                PlanColumn::Build(c) => Some(*c),
                PlanColumn::Probe(_) => None,
            }))
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Bytes a columnar engine must stream from the probe table.
    pub fn probe_scan_bytes(&self, schema: &Schema, rows: u64) -> u64 {
        column_bytes(&self.probe_columns_accessed(), schema, rows)
    }

    /// Bytes a columnar engine must stream from the build table.
    pub fn build_scan_bytes(&self, schema: &Schema, rows: u64) -> u64 {
        column_bytes(&self.build_columns_accessed(), schema, rows)
    }

    /// Estimated bytes of data-dependent random access the plan performs:
    /// one hash-table entry per probe row (the probe side of the join). Zero
    /// for plans without a join — those stream sequentially. This is the
    /// access-pattern feature that separates plan placement from scan
    /// placement.
    pub fn random_access_bytes(&self, probe_rows: u64) -> u64 {
        if self.join.is_some() {
            probe_rows * HASH_ENTRY_BYTES
        } else {
            0
        }
    }

    /// Estimated hash-table footprint: one entry per build row (the
    /// scheduler cannot see build-predicate selectivity ahead of execution,
    /// so it sizes for the worst case).
    pub fn hash_table_bytes(&self, build_rows: u64) -> u64 {
        if self.join.is_some() {
            build_rows * HASH_ENTRY_BYTES
        } else {
            0
        }
    }
}

fn column_bytes(cols: &[usize], schema: &Schema, rows: u64) -> u64 {
    cols.iter().filter_map(|&c| schema.attr(c).ok()).map(|attr| rows * attr.ty.width() as u64).sum()
}

/// One group of a plan result: the raw 64-bit cell of the group key (0 for
/// the global group of a plan without `group_by`), the aggregate values in
/// plan order, and the number of contributing rows. `PartialEq` compares f64
/// aggregates exactly — cross-site equivalence is byte-identical by the
/// chunked-evaluation contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupRow {
    /// Raw 64-bit storage cell of the group key.
    pub key: u64,
    /// Aggregate values, in `OlapPlan::aggregates` order.
    pub values: Vec<f64>,
    /// Rows that contributed to this group.
    pub rows: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, ScanAggQuery};
    use crate::schema::{AttrType, Attribute};

    fn join() -> JoinSpec {
        JoinSpec { probe_column: 1, build_key: 0, build_predicates: vec![Predicate::between(2, 0.0, 10.0)] }
    }

    #[test]
    fn scan_plan_mirrors_the_query() {
        let q =
            ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 1.0)], aggregate: AggExpr::SumProduct(1, 2) };
        let plan = OlapPlan::scan(&q);
        assert!(plan.validate().is_ok());
        assert_eq!(plan.probe_columns_accessed(), q.columns_accessed());
        assert!(plan.build_columns_accessed().is_empty());
        assert_eq!(plan.random_access_bytes(1000), 0);
        assert_eq!(plan.hash_table_bytes(1000), 0);
    }

    #[test]
    fn column_sets_cover_every_plan_piece() {
        let plan = OlapPlan {
            predicates: vec![Predicate::between(4, 0.0, 1.0)],
            join: Some(join()),
            group_by: Some(PlanColumn::Build(3)),
            aggregates: vec![AggExpr::SumProduct(5, 6), AggExpr::Count],
        };
        assert_eq!(plan.probe_columns_accessed(), vec![1, 4, 5, 6]);
        assert_eq!(plan.build_columns_accessed(), vec![0, 2, 3]);
        let probe_group = OlapPlan { group_by: Some(PlanColumn::Probe(9)), ..plan };
        assert_eq!(probe_group.probe_columns_accessed(), vec![1, 4, 5, 6, 9]);
        assert_eq!(probe_group.build_columns_accessed(), vec![0, 2]);
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let no_aggs = OlapPlan { predicates: vec![], join: None, group_by: None, aggregates: vec![] };
        assert!(no_aggs.validate().is_err());
        let build_group_without_join = OlapPlan {
            predicates: vec![],
            join: None,
            group_by: Some(PlanColumn::Build(0)),
            aggregates: vec![AggExpr::Count],
        };
        assert!(build_group_without_join.validate().is_err());
    }

    #[test]
    fn join_plans_report_random_access_and_footprint() {
        let plan =
            OlapPlan { predicates: vec![], join: Some(join()), group_by: None, aggregates: vec![AggExpr::Count] };
        assert_eq!(plan.random_access_bytes(1_000), 1_000 * HASH_ENTRY_BYTES);
        assert_eq!(plan.hash_table_bytes(500), 500 * HASH_ENTRY_BYTES);
    }

    #[test]
    fn chunk_shard_is_a_round_robin_partition() {
        for shards in 1..=6usize {
            let mut counts = vec![0usize; shards];
            for chunk in 0..97 {
                let s = chunk_shard(chunk, shards);
                assert!(s < shards);
                counts[s] += 1;
            }
            // Round-robin balance: shard sizes differ by at most one chunk.
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "{counts:?}");
        }
        // Degenerate shard counts stay total.
        assert_eq!(chunk_shard(5, 0), 0);
        assert_eq!(chunk_shard(5, 1), 0);
    }

    #[test]
    fn scan_bytes_use_accessed_columns_only() {
        let schema = Schema::new(vec![
            Attribute::new("k", AttrType::Int64),
            Attribute::new("v", AttrType::Int32),
            Attribute::new("w", AttrType::Float64),
        ])
        .unwrap();
        let plan = OlapPlan {
            predicates: vec![Predicate::between(1, 0.0, 5.0)],
            join: None,
            group_by: Some(PlanColumn::Probe(0)),
            aggregates: vec![AggExpr::SumColumns(vec![2])],
        };
        // col0 (8) + col1 (4) + col2 (8) = 20 bytes per row.
        assert_eq!(plan.probe_scan_bytes(&schema, 10), 200);
        assert_eq!(plan.build_scan_bytes(&schema, 10), 0);
    }
}
