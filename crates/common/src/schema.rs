//! Table schemas.
//!
//! A [`Schema`] is an ordered list of [`Attribute`]s. The storage engine uses
//! it to size NSM records, DSM columns, and PAX minipages; the OLAP engine
//! uses it to resolve attribute names in query plans.

use crate::error::{H2Error, Result};
use serde::{Deserialize, Serialize};

/// Physical type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Date as days since epoch (stored as i32).
    Date,
    /// Short, fixed-maximum-length string.
    Str,
}

impl AttrType {
    /// Width in bytes of the canonical fixed-width cell for this type.
    ///
    /// All cells are stored as 8-byte words in columnar pages, but the
    /// *logical* width matters for NSM record sizing and PCIe transfer
    /// accounting, mirroring the paper's 4-byte-integer microbenchmarks.
    pub fn width(self) -> usize {
        match self {
            AttrType::Int32 | AttrType::Date => 4,
            AttrType::Int64 | AttrType::Float64 => 8,
            AttrType::Str => 16,
        }
    }
}

/// A single named attribute of a table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Physical type.
    pub ty: AttrType,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Self { name: name.into(), ty }
    }
}

/// An ordered set of attributes describing a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from a list of attributes.
    ///
    /// # Errors
    /// Returns [`H2Error::InvalidSchema`] if the list is empty or contains
    /// duplicate names.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        if attrs.is_empty() {
            return Err(H2Error::InvalidSchema("schema must have at least one attribute".into()));
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(H2Error::InvalidSchema(format!("duplicate attribute name {:?}", a.name)));
            }
        }
        Ok(Self { attrs })
    }

    /// Convenience constructor for a schema of `n` homogeneous attributes
    /// named `prefix0..prefixN-1`, as used by the Figure 10/11 layout
    /// microbenchmark (16 integer attributes).
    pub fn homogeneous(prefix: &str, n: usize, ty: AttrType) -> Self {
        let attrs = (0..n).map(|i| Attribute::new(format!("{prefix}{i}"), ty)).collect();
        Self::new(attrs).expect("homogeneous schema is always valid for n >= 1")
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The attribute at `idx`.
    ///
    /// # Errors
    /// Returns [`H2Error::UnknownAttribute`] when `idx` is out of bounds.
    pub fn attr(&self, idx: usize) -> Result<&Attribute> {
        self.attrs.get(idx).ok_or_else(|| H2Error::UnknownAttribute(format!("index {idx}")))
    }

    /// Total logical width in bytes of one record under NSM.
    pub fn record_width(&self) -> usize {
        self.attrs.iter().map(|a| a.ty.width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Schema {
        Schema::new(vec![
            Attribute::new("k", AttrType::Int64),
            Attribute::new("qty", AttrType::Int32),
            Attribute::new("price", AttrType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_schema() {
        assert!(matches!(Schema::new(vec![]), Err(H2Error::InvalidSchema(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![Attribute::new("a", AttrType::Int32), Attribute::new("a", AttrType::Int64)]);
        assert!(matches!(err, Err(H2Error::InvalidSchema(_))));
    }

    #[test]
    fn index_lookup() {
        let s = simple();
        assert_eq!(s.index_of("qty"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn record_width_sums_attribute_widths() {
        assert_eq!(simple().record_width(), 8 + 4 + 8);
    }

    #[test]
    fn homogeneous_builder() {
        let s = Schema::homogeneous("col", 16, AttrType::Int32);
        assert_eq!(s.arity(), 16);
        assert_eq!(s.index_of("col15"), Some(15));
        assert_eq!(s.record_width(), 64);
    }

    #[test]
    fn attr_out_of_bounds_errors() {
        assert!(simple().attr(3).is_err());
        assert!(simple().attr(0).is_ok());
    }
}
