//! Scalar values stored in Caldera tables.
//!
//! Caldera is a main-memory HTAP prototype; the paper's workloads (TPC-H Q6,
//! TPC-C NewOrder, YCSB-style updates, the 16-attribute layout
//! microbenchmark) only need a handful of fixed-width types plus short
//! strings. Values are kept deliberately small (16 bytes for the enum) so
//! record copies during shadow-copying stay cheap.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single scalar cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 32-bit signed integer (TPC-H quantities, keys, YCSB counters).
    Int32(i32),
    /// 64-bit signed integer (row ids, large keys).
    Int64(i64),
    /// 64-bit float (prices, discounts).
    Float64(f64),
    /// Date stored as days since an arbitrary epoch (TPC-H shipdate).
    Date(i32),
    /// Short string, e.g. TPC-C district names. Boxed to keep the enum small.
    Str(Box<str>),
}

impl Value {
    /// Returns the value as `i64` when it holds any integer-like variant.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(i64::from(*v)),
            Value::Int64(v) => Some(*v),
            Value::Date(v) => Some(i64::from(*v)),
            Value::Float64(_) | Value::Str(_) => None,
        }
    }

    /// Returns the value as `f64` when it holds a numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(f64::from(*v)),
            Value::Int64(v) => Some(*v as f64),
            Value::Date(v) => Some(f64::from(*v)),
            Value::Float64(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The width in bytes this value occupies in a fixed-width columnar page.
    pub fn fixed_width(&self) -> usize {
        match self {
            Value::Int32(_) | Value::Date(_) => 4,
            Value::Int64(_) | Value::Float64(_) => 8,
            Value::Str(s) => s.len(),
        }
    }

    /// Encodes the value into the canonical 8-byte cell representation used
    /// by the storage engine for fixed-width layouts. Strings are hashed to
    /// a stable 8-byte code (the layout microbenchmarks never use strings).
    pub fn to_cell(&self) -> u64 {
        match self {
            Value::Int32(v) => *v as u32 as u64,
            Value::Int64(v) => *v as u64,
            Value::Date(v) => *v as u32 as u64,
            Value::Float64(v) => v.to_bits(),
            Value::Str(s) => {
                // FNV-1a, stable across runs so snapshots agree.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in s.as_bytes() {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "date({v})"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_conversions() {
        assert_eq!(Value::Int32(7).as_i64(), Some(7));
        assert_eq!(Value::Int64(-3).as_i64(), Some(-3));
        assert_eq!(Value::Date(100).as_i64(), Some(100));
        assert_eq!(Value::Float64(1.5).as_i64(), None);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(Value::Int32(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float64(2.25).as_f64(), Some(2.25));
        assert_eq!(Value::from("x").as_f64(), None);
    }

    #[test]
    fn cell_roundtrip_for_floats() {
        let v = Value::Float64(3.125);
        assert_eq!(f64::from_bits(v.to_cell()), 3.125);
    }

    #[test]
    fn fixed_widths() {
        assert_eq!(Value::Int32(1).fixed_width(), 4);
        assert_eq!(Value::Int64(1).fixed_width(), 8);
        assert_eq!(Value::Float64(1.0).fixed_width(), 8);
        assert_eq!(Value::from("abcd").fixed_width(), 4);
    }

    #[test]
    fn string_cells_are_stable() {
        assert_eq!(Value::from("caldera").to_cell(), Value::from("caldera").to_cell());
        assert_ne!(Value::from("caldera").to_cell(), Value::from("silo").to_cell());
    }

    #[test]
    fn enum_stays_small() {
        assert!(std::mem::size_of::<Value>() <= 24);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int32(5).to_string(), "5");
        assert_eq!(Value::Date(9).to_string(), "date(9)");
        assert_eq!(Value::from("a").to_string(), "\"a\"");
    }
}
