//! Simulated time.
//!
//! The GPU and interconnect models report *simulated* execution times: they
//! process real data but account time analytically from device bandwidths,
//! coalescing behaviour, and transfer sizes (see `h2tap-gpu-sim`). Simulated
//! durations are kept in nanoseconds as `u128` so that multi-second scans of
//! multi-gigabyte tables cannot overflow and so that accumulation is exact.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A simulated duration with nanosecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimDuration {
    nanos: u128,
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };

    /// From nanoseconds.
    pub const fn from_nanos(nanos: u128) -> Self {
        Self { nanos }
    }

    /// From microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self { nanos: micros as u128 * 1_000 }
    }

    /// From milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self { nanos: millis as u128 * 1_000_000 }
    }

    /// From seconds expressed as a float (used by the bandwidth cost model:
    /// `bytes / bytes_per_second`). Negative or non-finite inputs clamp to 0.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Self::ZERO;
        }
        Self { nanos: (secs * 1e9) as u128 }
    }

    /// Nanoseconds.
    pub const fn as_nanos(self) -> u128 {
        self.nanos
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Milliseconds as a float, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self { nanos: self.nanos.saturating_sub(rhs.nanos) }
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, rhs: Self) -> Self {
        if self.nanos >= rhs.nanos {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        Self { nanos: self.nanos + rhs.nanos }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.nanos += rhs.nanos;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        Self { nanos: self.nanos.saturating_sub(rhs.nanos) }
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> Self {
        Self { nanos: self.nanos * u128::from(rhs) }
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_millis(3);
        assert_eq!((a + b).as_millis_f64(), 5.0);
        assert_eq!((b - a).as_millis_f64(), 1.0);
        assert_eq!((a - b), SimDuration::ZERO);
        assert_eq!((a * 4).as_millis_f64(), 8.0);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total.as_millis_f64(), 7.0);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert!(SimDuration::from_millis(1500).to_string().ends_with('s'));
        assert!(SimDuration::from_micros(1500).to_string().ends_with("ms"));
        assert!(SimDuration::from_nanos(1500).to_string().ends_with("us"));
    }

    #[test]
    fn max_picks_larger() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_millis(3);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
