//! Epoch numbers for the shadow-copy snapshot mechanism.
//!
//! Every node of Caldera's hierarchical data organization (partition → table
//! → column → page, Figure 3 of the paper) carries an epoch number. Taking a
//! snapshot is a shallow copy of the top-level container plus an increment of
//! the live epoch; copy-on-write then bumps the epoch of every shadow-copied
//! node so the garbage collector can tell superseded versions from live ones.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A monotonically increasing snapshot epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The initial epoch of a freshly created database.
    pub const ZERO: Epoch = Epoch(0);

    /// The next epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// Whether a node stamped with `self` is visible to a snapshot taken at
    /// `snapshot`: nodes are visible when they were created at or before the
    /// snapshot epoch.
    pub fn visible_to(self, snapshot: Epoch) -> bool {
        self.0 <= snapshot.0
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_is_monotonic() {
        let e = Epoch::ZERO;
        assert!(e.next() > e);
        assert_eq!(e.next().next(), Epoch(2));
    }

    #[test]
    fn visibility_rules() {
        let snap = Epoch(5);
        assert!(Epoch(5).visible_to(snap));
        assert!(Epoch(0).visible_to(snap));
        assert!(!Epoch(6).visible_to(snap));
    }

    #[test]
    fn display() {
        assert_eq!(Epoch(3).to_string(), "e3");
    }
}
