//! A minimal scan-and-aggregate query IR.
//!
//! Every analytical query in the paper's evaluation is a selection plus an
//! aggregation over one table: TPC-H Q6 (`SUM(l_extendedprice * l_discount)`
//! under three range predicates) and the layout microbenchmark
//! (`SELECT SUM(col1 + ... + colN) FROM dataset`). This small IR is shared by
//! the Caldera OLAP engine and the CPU columnar baselines so that all engines
//! answer exactly the same question.

use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// An inclusive range predicate over one attribute, evaluated on the
/// attribute's numeric interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute index in the table schema.
    pub column: usize,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Predicate {
    /// Builds a `lo <= column <= hi` predicate.
    pub fn between(column: usize, lo: f64, hi: f64) -> Self {
        Self { column, lo, hi }
    }

    /// Whether `value` satisfies the predicate.
    pub fn matches(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }
}

/// The aggregate computed over qualifying records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggExpr {
    /// `SUM(col_a * col_b)` — TPC-H Q6's revenue aggregate.
    SumProduct(usize, usize),
    /// `SUM(col_1 + col_2 + ... + col_n)` — the layout microbenchmark.
    SumColumns(Vec<usize>),
    /// `COUNT(*)` of qualifying records.
    Count,
}

impl AggExpr {
    /// Attribute indexes the aggregate itself reads.
    pub fn columns(&self) -> Vec<usize> {
        match self {
            AggExpr::SumProduct(a, b) => vec![*a, *b],
            AggExpr::SumColumns(cols) => cols.clone(),
            AggExpr::Count => vec![],
        }
    }
}

/// A filtered scan-and-aggregate query over one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanAggQuery {
    /// Conjunctive range predicates.
    pub predicates: Vec<Predicate>,
    /// The aggregate to compute.
    pub aggregate: AggExpr,
}

impl ScanAggQuery {
    /// A query with no predicates.
    pub fn aggregate_only(aggregate: AggExpr) -> Self {
        Self { predicates: Vec::new(), aggregate }
    }

    /// All attribute indexes the query touches (predicates + aggregate),
    /// deduplicated and sorted — this is what determines how many columns an
    /// engine must move.
    pub fn columns_accessed(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.predicates.iter().map(|p| p.column).chain(self.aggregate.columns()).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Bytes a columnar engine must read to answer this query over `rows`
    /// records of `schema`: the accessed columns' widths times the row count.
    /// Attributes missing from the schema are ignored (the engine will reject
    /// them at execution time anyway). This is the `bytes_to_scan` term of
    /// the scheduler's placement hints.
    pub fn scan_bytes(&self, schema: &Schema, rows: u64) -> u64 {
        self.columns_accessed()
            .iter()
            .filter_map(|&c| schema.attr(c).ok())
            .map(|attr| rows * attr.ty.width() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_bounds_are_inclusive() {
        let p = Predicate::between(0, 1.0, 2.0);
        assert!(p.matches(1.0));
        assert!(p.matches(2.0));
        assert!(!p.matches(0.999));
        assert!(!p.matches(2.001));
    }

    #[test]
    fn columns_accessed_dedupes_and_sorts() {
        let q = ScanAggQuery {
            predicates: vec![Predicate::between(3, 0.0, 1.0), Predicate::between(1, 0.0, 1.0)],
            aggregate: AggExpr::SumProduct(3, 2),
        };
        assert_eq!(q.columns_accessed(), vec![1, 2, 3]);
    }

    #[test]
    fn scan_bytes_counts_accessed_columns_once() {
        use crate::schema::{AttrType, Attribute};
        let schema =
            Schema::new(vec![Attribute::new("a", AttrType::Int32), Attribute::new("b", AttrType::Float64)]).unwrap();
        let q =
            ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 1.0)], aggregate: AggExpr::SumProduct(0, 1) };
        // Column 0 (4 bytes) is shared by predicate and aggregate; column 1
        // is 8 bytes: 12 bytes per row.
        assert_eq!(q.scan_bytes(&schema, 100), 1200);
        // Out-of-schema columns are ignored.
        let bad = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![9]));
        assert_eq!(bad.scan_bytes(&schema, 100), 0);
    }

    #[test]
    fn aggregate_only_has_no_predicates() {
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        assert!(q.predicates.is_empty());
        assert_eq!(q.columns_accessed(), vec![0, 1]);
        assert_eq!(AggExpr::Count.columns(), Vec::<usize>::new());
    }
}
