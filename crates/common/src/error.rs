//! The shared error type of the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, H2Error>;

/// The kind of an injected (or surfaced) execution-site fault. Lives in
/// `common` so the error type can carry it without depending on the GPU
/// simulator; the fault *injector* itself lives in `h2tap-gpu-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A kernel launch failed and can be retried (ECC hiccup, driver
    /// timeout, preemption).
    TransientKernel,
    /// A transient out-of-memory spike: allocation pressure that clears on
    /// retry, distinct from a genuine capacity miss.
    OomSpike,
    /// The interconnect stalled: the launch completed but paid a large
    /// latency penalty. Never surfaces as an error — time-only.
    InterconnectStall,
    /// The device fell off the bus. Permanent: every later launch fails.
    DeviceLost,
}

impl FaultKind {
    /// Stable lower-snake name, used in metrics keys and span payloads.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransientKernel => "transient_kernel",
            FaultKind::OomSpike => "oom_spike",
            FaultKind::InterconnectStall => "interconnect_stall",
            FaultKind::DeviceLost => "device_lost",
        }
    }

    /// All kinds, in declaration order (metrics/report iteration).
    pub const ALL: [FaultKind; 4] =
        [FaultKind::TransientKernel, FaultKind::OomSpike, FaultKind::InterconnectStall, FaultKind::DeviceLost];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors surfaced by the Caldera engine and its substrates.
#[derive(Debug, Clone, PartialEq)]
pub enum H2Error {
    /// A schema was malformed (empty, duplicate attribute names, ...).
    InvalidSchema(String),
    /// An attribute name or index does not exist in the schema.
    UnknownAttribute(String),
    /// A table id does not exist in the catalog.
    UnknownTable(String),
    /// A record id does not exist.
    UnknownRecord(String),
    /// A transaction was aborted (deadlock avoidance, validation failure,
    /// explicit user abort, or 2PC vote-no).
    TxnAborted(String),
    /// A lock could not be acquired within the deadlock-avoidance budget.
    LockTimeout(String),
    /// The GPU simulator was asked to do something its configuration cannot
    /// do (e.g. allocate past device capacity without oversubscription).
    GpuOutOfMemory { requested_bytes: u64, capacity_bytes: u64 },
    /// A kernel or operator was configured inconsistently.
    InvalidKernel(String),
    /// A message-passing endpoint disconnected unexpectedly.
    ChannelClosed(String),
    /// The scheduler could not satisfy a placement request.
    Placement(String),
    /// A snapshot id is unknown or already released.
    UnknownSnapshot(u64),
    /// The caller violated the non-cache-coherent ownership discipline
    /// (touched a partition it does not own). Only raised in strict mode.
    OwnershipViolation(String),
    /// Generic configuration error.
    Config(String),
    /// An injected (or real) execution-site fault. `transient` faults are
    /// retry candidates; persistent ones mean the site is gone.
    Fault { site: String, kind: FaultKind, transient: bool },
    /// A deadline or queue-wait budget expired before the work could run.
    Timeout(String),
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2Error::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            H2Error::UnknownAttribute(m) => write!(f, "unknown attribute: {m}"),
            H2Error::UnknownTable(m) => write!(f, "unknown table: {m}"),
            H2Error::UnknownRecord(m) => write!(f, "unknown record: {m}"),
            H2Error::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            H2Error::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            H2Error::GpuOutOfMemory { requested_bytes, capacity_bytes } => {
                write!(f, "GPU out of memory: requested {requested_bytes} bytes, capacity {capacity_bytes} bytes")
            }
            H2Error::InvalidKernel(m) => write!(f, "invalid kernel: {m}"),
            H2Error::ChannelClosed(m) => write!(f, "channel closed: {m}"),
            H2Error::Placement(m) => write!(f, "placement error: {m}"),
            H2Error::UnknownSnapshot(id) => write!(f, "unknown snapshot: {id}"),
            H2Error::OwnershipViolation(m) => write!(f, "ownership violation: {m}"),
            H2Error::Config(m) => write!(f, "configuration error: {m}"),
            H2Error::Fault { site, kind, transient } => {
                let class = if *transient { "transient" } else { "persistent" };
                write!(f, "{class} {kind} fault on site {site}")
            }
            H2Error::Timeout(m) => write!(f, "timed out: {m}"),
        }
    }
}

impl std::error::Error for H2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = H2Error::TxnAborted("write conflict".into());
        assert!(e.to_string().contains("write conflict"));
        let g = H2Error::GpuOutOfMemory { requested_bytes: 10, capacity_bytes: 4 };
        assert!(g.to_string().contains("requested 10"));
    }

    #[test]
    fn fault_display_distinguishes_transient_from_persistent() {
        let t = H2Error::Fault { site: "gpu".into(), kind: FaultKind::TransientKernel, transient: true };
        assert!(t.to_string().contains("transient transient_kernel fault on site gpu"));
        let p = H2Error::Fault { site: "gpu".into(), kind: FaultKind::DeviceLost, transient: false };
        assert!(p.to_string().contains("persistent device_lost"));
        assert!(H2Error::Timeout("admission".into()).to_string().contains("admission"));
    }

    #[test]
    fn fault_kind_names_are_stable() {
        let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["transient_kernel", "oom_spike", "interconnect_stall", "device_lost"]);
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<H2Error>();
    }
}
