//! The shared error type of the workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, H2Error>;

/// Errors surfaced by the Caldera engine and its substrates.
#[derive(Debug, Clone, PartialEq)]
pub enum H2Error {
    /// A schema was malformed (empty, duplicate attribute names, ...).
    InvalidSchema(String),
    /// An attribute name or index does not exist in the schema.
    UnknownAttribute(String),
    /// A table id does not exist in the catalog.
    UnknownTable(String),
    /// A record id does not exist.
    UnknownRecord(String),
    /// A transaction was aborted (deadlock avoidance, validation failure,
    /// explicit user abort, or 2PC vote-no).
    TxnAborted(String),
    /// A lock could not be acquired within the deadlock-avoidance budget.
    LockTimeout(String),
    /// The GPU simulator was asked to do something its configuration cannot
    /// do (e.g. allocate past device capacity without oversubscription).
    GpuOutOfMemory { requested_bytes: u64, capacity_bytes: u64 },
    /// A kernel or operator was configured inconsistently.
    InvalidKernel(String),
    /// A message-passing endpoint disconnected unexpectedly.
    ChannelClosed(String),
    /// The scheduler could not satisfy a placement request.
    Placement(String),
    /// A snapshot id is unknown or already released.
    UnknownSnapshot(u64),
    /// The caller violated the non-cache-coherent ownership discipline
    /// (touched a partition it does not own). Only raised in strict mode.
    OwnershipViolation(String),
    /// Generic configuration error.
    Config(String),
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2Error::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            H2Error::UnknownAttribute(m) => write!(f, "unknown attribute: {m}"),
            H2Error::UnknownTable(m) => write!(f, "unknown table: {m}"),
            H2Error::UnknownRecord(m) => write!(f, "unknown record: {m}"),
            H2Error::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            H2Error::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            H2Error::GpuOutOfMemory { requested_bytes, capacity_bytes } => {
                write!(f, "GPU out of memory: requested {requested_bytes} bytes, capacity {capacity_bytes} bytes")
            }
            H2Error::InvalidKernel(m) => write!(f, "invalid kernel: {m}"),
            H2Error::ChannelClosed(m) => write!(f, "channel closed: {m}"),
            H2Error::Placement(m) => write!(f, "placement error: {m}"),
            H2Error::UnknownSnapshot(id) => write!(f, "unknown snapshot: {id}"),
            H2Error::OwnershipViolation(m) => write!(f, "ownership violation: {m}"),
            H2Error::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for H2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = H2Error::TxnAborted("write conflict".into());
        assert!(e.to_string().contains("write conflict"));
        let g = H2Error::GpuOutOfMemory { requested_bytes: 10, capacity_bytes: 4 };
        assert!(g.to_string().contains("requested 10"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<H2Error>();
    }
}
