//! Deterministic pseudo-random number generation for workloads.
//!
//! Workload generators (YCSB-style updates, TPC-C NewOrder, the multi-site
//! microbenchmark) must be reproducible across runs so that experiment output
//! is stable. We use a small xoshiro256** generator seeded explicitly, plus a
//! Zipfian generator because the paper describes its OLTP workload as "an
//! update-only YCSB workload with a theta value (zipfian distribution) of
//! zero" — i.e. uniform — but the harness also sweeps non-zero theta as an
//! ablation.

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct SplitMixRng {
    s: [u64; 4],
}

impl SplitMixRng {
    /// Creates a generator from a 64-bit seed using SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift reduction; bias is negligible for bound << 2^64.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Zipfian key-distribution generator over `[0, n)` with skew `theta`.
///
/// `theta == 0` degenerates to the uniform distribution, which is what the
/// paper's OLTP workload uses; larger values concentrate accesses on a hot
/// set (used by the hot/cold ablation).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a Zipfian generator over `n` items with parameter `theta`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta >= 1.0` (the standard YCSB formulation
    /// is undefined at 1.0).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be nonempty");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self { n, theta, alpha, zetan, eta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, sampled approximation for very large n to keep
        // construction O(1M) at most.
        let step = (n / 1_000_000).max(1);
        let mut sum = 0.0;
        let mut i = 1;
        while i <= n {
            sum += step as f64 / (i as f64).powf(theta);
            i += step;
        }
        sum
    }

    /// Draws the next key in `[0, n)`.
    pub fn sample(&self, rng: &mut SplitMixRng) -> u64 {
        if self.theta == 0.0 {
            return rng.next_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMixRng::new(42);
        let mut b = SplitMixRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMixRng::new(1);
        let mut b = SplitMixRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_respect_bound() {
        let mut r = SplitMixRng::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
            let v = r.next_in_range(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = SplitMixRng::new(11);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMixRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut r = SplitMixRng::new(13);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "uniform draw too skewed: {counts:?}");
    }

    #[test]
    fn zipf_high_theta_is_skewed() {
        let mut r = SplitMixRng::new(17);
        let z = Zipf::new(1_000, 0.99);
        let mut head = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // with theta=0.99, the top-10 keys of 1000 should absorb well over 20%
        assert!(head as f64 / total as f64 > 0.2);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 0.5);
    }
}
