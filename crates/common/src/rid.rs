//! Identifiers for partitions, tables and records.
//!
//! Caldera's OLTP runtime partitions every table horizontally across the
//! cores of the task-parallel archipelago (one partition per worker thread).
//! A [`RecordId`] is therefore a *logical* identifier: the physical location
//! of the record changes whenever copy-on-write shadow-copies its page, but
//! the (partition, table, row) triple stays stable and is what lock tables
//! and primary-key indexes refer to.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a horizontal partition (one per OLTP worker core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PartitionId(pub u32);

/// Identifier of a table within the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Logical identifier of a record: partition, table, and row slot within the
/// partition-local fragment of that table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId {
    /// Owning partition.
    pub partition: PartitionId,
    /// Table the record belongs to.
    pub table: TableId,
    /// Row slot within the partition-local table fragment.
    pub row: u64,
}

impl RecordId {
    /// Creates a record id.
    pub fn new(partition: PartitionId, table: TableId, row: u64) -> Self {
        Self { partition, table, row }
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/r{}", self.partition, self.table, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn record_ids_are_hashable_and_ordered() {
        let a = RecordId::new(PartitionId(0), TableId(1), 5);
        let b = RecordId::new(PartitionId(0), TableId(1), 6);
        let c = RecordId::new(PartitionId(1), TableId(1), 0);
        assert!(a < b);
        assert!(b < c);
        let set: HashSet<_> = [a, b, c, a].into_iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_is_compact() {
        let r = RecordId::new(PartitionId(3), TableId(2), 42);
        assert_eq!(r.to_string(), "P3/T2/r42");
    }
}
