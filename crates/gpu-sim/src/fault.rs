//! Deterministic fault injection for the simulated device fleet.
//!
//! A [`FaultPlan`] is a seeded, fully reproducible description of how the
//! hardware should misbehave: per-launch rates for transient kernel faults,
//! OOM spikes and interconnect stalls, plus permanent device loss either at
//! a scheduled launch index or at a per-launch rate. The plan itself holds
//! no state; [`FaultPlan::injector_for`] derives one [`FaultInjector`] per
//! physical device, seeded from the plan seed, the owning site's label and
//! the device ordinal, so every device sees an independent but reproducible
//! fault sequence. The injector is consulted once per kernel launch
//! ([`GpuDevice::account`](crate::GpuDevice::account)); its decisions are a
//! pure function of the seed and the launch index.
//!
//! Faults only ever change *timing* (stalls) or turn launches into typed
//! [`H2Error::Fault`](h2tap_common::H2Error) errors — results are still
//! computed on the host, so any query that completes, however many retries
//! or fallbacks it took, returns bit-identical f64 values.

use h2tap_common::rng::SplitMixRng;
use h2tap_common::{FaultKind, SimDuration};

/// A scheduled permanent device loss: the device `device` of the site
/// labelled `site` dies at its `launch`-th kernel launch (0-based) and every
/// launch from that point on fails with a persistent
/// [`FaultKind::DeviceLost`] fault.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLossPoint {
    /// Site key the device belongs to (`"gpu"`, `"multi_gpu"`).
    pub site: String,
    /// Device ordinal within the site (single-GPU sites use 0).
    pub device: usize,
    /// 0-based launch index at which the device disappears.
    pub launch: u64,
}

/// A seeded, reproducible fault schedule for the whole device fleet.
///
/// Rates are per-launch probabilities in `[0, 1]` and are evaluated in a
/// fixed order (device loss, transient kernel, OOM spike, interconnect
/// stall) against a single uniform draw, so the fault sequence for a given
/// seed never depends on float rounding of partial sums being re-ordered.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; per-device injector seeds are derived from it.
    pub seed: u64,
    /// Per-launch probability of a retryable kernel fault.
    pub transient_kernel_rate: f64,
    /// Per-launch probability of a transient allocation-pressure failure.
    pub oom_spike_rate: f64,
    /// Per-launch probability of an interconnect stall (time-only).
    pub interconnect_stall_rate: f64,
    /// Simulated extra latency one stall adds to the launch.
    pub stall_penalty: SimDuration,
    /// Per-launch probability of spontaneous permanent device loss.
    pub device_loss_rate: f64,
    /// Scheduled permanent loss of one specific device, if any.
    pub device_loss_at: Option<DeviceLossPoint>,
}

impl FaultPlan {
    /// A plan with every rate at zero and no scheduled loss: installing it
    /// is observationally identical to installing no plan at all.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            transient_kernel_rate: 0.0,
            oom_spike_rate: 0.0,
            interconnect_stall_rate: 0.0,
            stall_penalty: SimDuration::ZERO,
            device_loss_rate: 0.0,
            device_loss_at: None,
        }
    }

    /// The default chaos plan: a storm of transient faults and stalls at
    /// rates high enough to exercise every rung of the retry ladder, with
    /// no permanent loss.
    pub fn transient_storm(seed: u64) -> Self {
        Self {
            seed,
            transient_kernel_rate: 0.05,
            oom_spike_rate: 0.02,
            interconnect_stall_rate: 0.03,
            stall_penalty: SimDuration::from_micros(200),
            device_loss_rate: 0.0,
            device_loss_at: None,
        }
    }

    /// True when the plan can never fire: no rate is positive and no loss
    /// is scheduled.
    pub fn is_quiet(&self) -> bool {
        self.transient_kernel_rate <= 0.0
            && self.oom_spike_rate <= 0.0
            && self.interconnect_stall_rate <= 0.0
            && self.device_loss_rate <= 0.0
            && self.device_loss_at.is_none()
    }

    /// Derives the injector for one device. The sub-seed folds in the site
    /// label and device ordinal so sibling devices draw independent
    /// sequences, while the same (plan seed, site, ordinal) triple always
    /// produces the same injector.
    pub fn injector_for(&self, site: &str, device: usize) -> FaultInjector {
        // FNV-1a over the site label keeps the derivation dependency-free
        // and stable across runs/platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in site.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let sub_seed = self.seed ^ h ^ (device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let loss_at = self.device_loss_at.as_ref().filter(|p| p.site == site && p.device == device).map(|p| p.launch);
        FaultInjector {
            site: site.to_string(),
            rng: SplitMixRng::new(sub_seed),
            launches: 0,
            lost: false,
            transient_kernel_rate: self.transient_kernel_rate,
            oom_spike_rate: self.oom_spike_rate,
            interconnect_stall_rate: self.interconnect_stall_rate,
            stall_penalty: self.stall_penalty,
            device_loss_rate: self.device_loss_rate,
            loss_at,
        }
    }
}

/// What the injector decided for one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// The launch proceeds normally.
    Pass,
    /// The launch proceeds but pays the stall penalty on top of its
    /// simulated time.
    Stall(SimDuration),
    /// The launch fails with a typed fault.
    Fail { kind: FaultKind, transient: bool },
}

/// Per-device fault state: the derived RNG stream, the launch counter the
/// decisions are keyed on, and the sticky device-lost flag.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    site: String,
    rng: SplitMixRng,
    launches: u64,
    lost: bool,
    transient_kernel_rate: f64,
    oom_spike_rate: f64,
    interconnect_stall_rate: f64,
    stall_penalty: SimDuration,
    device_loss_rate: f64,
    loss_at: Option<u64>,
}

impl FaultInjector {
    /// The site key injected faults are attributed to.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// True once the device has been permanently lost.
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Decides the fate of the next launch. Called exactly once per
    /// [`GpuDevice::account`](crate::GpuDevice::account); the sequence of
    /// decisions is a pure function of the injector's seed.
    pub fn decide(&mut self) -> FaultDecision {
        let idx = self.launches;
        self.launches += 1;
        if self.lost {
            return FaultDecision::Fail { kind: FaultKind::DeviceLost, transient: false };
        }
        if self.loss_at == Some(idx) {
            self.lost = true;
            return FaultDecision::Fail { kind: FaultKind::DeviceLost, transient: false };
        }
        let u = self.rng.next_f64();
        let mut acc = self.device_loss_rate;
        if u < acc {
            self.lost = true;
            return FaultDecision::Fail { kind: FaultKind::DeviceLost, transient: false };
        }
        acc += self.transient_kernel_rate;
        if u < acc {
            return FaultDecision::Fail { kind: FaultKind::TransientKernel, transient: true };
        }
        acc += self.oom_spike_rate;
        if u < acc {
            return FaultDecision::Fail { kind: FaultKind::OomSpike, transient: true };
        }
        acc += self.interconnect_stall_rate;
        if u < acc {
            return FaultDecision::Stall(self.stall_penalty);
        }
        FaultDecision::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> FaultPlan {
        let mut p = FaultPlan::transient_storm(42);
        // Crank the rates so a short sequence contains every decision kind.
        p.transient_kernel_rate = 0.3;
        p.oom_spike_rate = 0.2;
        p.interconnect_stall_rate = 0.2;
        p
    }

    #[test]
    fn same_seed_produces_the_identical_fault_sequence() {
        let plan = storm();
        let mut a = plan.injector_for("gpu", 0);
        let mut b = plan.injector_for("gpu", 0);
        let seq_a: Vec<FaultDecision> = (0..10_000).map(|_| a.decide()).collect();
        let seq_b: Vec<FaultDecision> = (0..10_000).map(|_| b.decide()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|d| matches!(d, FaultDecision::Fail { transient: true, .. })));
        assert!(seq_a.iter().any(|d| matches!(d, FaultDecision::Stall(_))));
        assert!(seq_a.iter().any(|d| matches!(d, FaultDecision::Pass)));
    }

    #[test]
    fn sibling_devices_draw_independent_sequences() {
        let plan = storm();
        let mut a = plan.injector_for("multi_gpu", 0);
        let mut b = plan.injector_for("multi_gpu", 1);
        let seq_a: Vec<FaultDecision> = (0..256).map(|_| a.decide()).collect();
        let seq_b: Vec<FaultDecision> = (0..256).map(|_| b.decide()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn quiet_plan_always_passes() {
        let mut inj = FaultPlan::quiet(7).injector_for("gpu", 0);
        assert!(FaultPlan::quiet(7).is_quiet());
        assert!((0..1_000).all(|_| inj.decide() == FaultDecision::Pass));
    }

    #[test]
    fn scheduled_loss_is_sticky_and_device_scoped() {
        let mut plan = FaultPlan::quiet(9);
        plan.device_loss_at = Some(DeviceLossPoint { site: "gpu".into(), device: 0, launch: 3 });
        assert!(!plan.is_quiet());
        let mut hit = plan.injector_for("gpu", 0);
        for _ in 0..3 {
            assert_eq!(hit.decide(), FaultDecision::Pass);
        }
        for _ in 0..4 {
            assert_eq!(hit.decide(), FaultDecision::Fail { kind: FaultKind::DeviceLost, transient: false });
        }
        assert!(hit.is_lost());
        // A different device of the same plan never dies.
        let mut other = plan.injector_for("multi_gpu", 0);
        assert!((0..16).all(|_| other.decide() == FaultDecision::Pass));
    }
}
